"""Powerful-peer selection tests (§3's level-lookup usage)."""

import pytest

from repro.apps.selection import level_census, peers_at_level, powerful_peers
from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork


@pytest.fixture(scope="module")
def mixed_net():
    net = PeerWindowNetwork(
        config=ProtocolConfig(id_bits=16, multicast_processing_delay=0.1),
        master_seed=19,
    )
    keys = net.seed_nodes([1e9] * 10 + [40.0] * 10, mean_lifetime_s=600.0)
    net.run(until=10.0)
    return net, keys


class TestSelection:
    def test_powerful_peers_sorted_strongest_first(self, mixed_net):
        net, keys = mixed_net
        viewer = net.node(keys[0])  # a level-0 node sees everyone
        top = powerful_peers(viewer, 8)
        levels = [p.level for p in top]
        assert levels == sorted(levels)
        assert levels[0] == 0

    def test_excludes_self(self, mixed_net):
        net, keys = mixed_net
        viewer = net.node(keys[0])
        everyone = powerful_peers(viewer, 100)
        assert viewer.node_id.value not in {p.node_id.value for p in everyone}

    def test_k_bounds(self, mixed_net):
        net, keys = mixed_net
        viewer = net.node(keys[0])
        assert powerful_peers(viewer, 0) == []
        assert len(powerful_peers(viewer, 3)) == 3
        with pytest.raises(ValueError):
            powerful_peers(viewer, -1)

    def test_peers_at_level(self, mixed_net):
        net, keys = mixed_net
        viewer = net.node(keys[0])
        strong = peers_at_level(viewer, 0)
        assert len(strong) == 9  # the other nine strong nodes
        assert all(p.level == 0 for p in strong)
        with pytest.raises(ValueError):
            peers_at_level(viewer, -1)

    def test_level_census_matches_global_histogram(self, mixed_net):
        """A level-0 node's local census equals the network's figure 5."""
        net, keys = mixed_net
        viewer = net.node(keys[0])
        assert level_census(viewer) == net.level_histogram()

    def test_deep_node_census_is_partial(self, mixed_net):
        """A deep node only sees its own prefix — the census is local,
        exactly as the paper intends."""
        net, keys = mixed_net
        deep = net.node(keys[-1])
        assert deep.level > 0
        census = level_census(deep)
        assert sum(census.values()) == len(deep.peer_list)
        assert sum(census.values()) < 20
