"""Backup, load-balancing and bidding application tests."""

import numpy as np
import pytest

from repro.apps.backup import BackupMatcher
from repro.apps.bidding import BidMatcher, score_bid
from repro.apps.load_balance import LoadBalancer, Transfer
from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork
from repro.workloads.attached_info import (
    BidInfo,
    backup_attached_info,
    bid_attached_info,
    load_attached_info,
)


@pytest.fixture(scope="module")
def app_net():
    rng = np.random.default_rng(21)
    n = 50
    os_infos = backup_attached_info(rng, n)
    load_infos = load_attached_info(rng, n)
    bid_infos = bid_attached_info(rng, n)
    infos = [{**os_infos[i], **load_infos[i], **bid_infos[i]} for i in range(n)]
    net = PeerWindowNetwork(
        config=ProtocolConfig(id_bits=16, multicast_processing_delay=0.1),
        master_seed=8,
    )
    keys = net.seed_nodes(
        [{"threshold_bps": 1e6, "attached_info": infos[i]} for i in range(n)]
    )
    net.run(until=10.0)
    return net, keys


class TestBackup:
    def test_similar_partners_share_os(self, app_net):
        net, keys = app_net
        node = net.node(keys[0])
        matcher = BackupMatcher(node)
        own = matcher.own_os
        for p in matcher.partners(5, similar=True):
            assert p.attached_info["os"] == own

    def test_different_partners_differ(self, app_net):
        net, keys = app_net
        matcher = BackupMatcher(net.node(keys[0]))
        own = matcher.own_os
        partners = matcher.partners(5, similar=False)
        assert partners
        for p in partners:
            assert p.attached_info["os"] != own

    def test_diversity_set_unique_oses(self, app_net):
        net, keys = app_net
        matcher = BackupMatcher(net.node(keys[0]))
        div = matcher.diversity_set(6)
        oses = [p.attached_info["os"] for p in div]
        assert len(oses) == len(set(oses))
        # Different-OS entries come first.
        if len(div) > 1:
            assert oses[0] != matcher.own_os

    def test_census_counts_everyone_with_os(self, app_net):
        net, keys = app_net
        matcher = BackupMatcher(net.node(keys[0]))
        census = matcher.os_census()
        assert sum(census.values()) == len(net.node(keys[0]).peer_list)

    def test_missing_own_os_raises(self, app_net):
        net, keys = app_net
        node = net.node(keys[1])
        saved = node.attached_info
        node.attached_info = {}
        try:
            with pytest.raises(ValueError):
                BackupMatcher(node).partners(3)
        finally:
            node.attached_info = saved


class TestLoadBalance:
    def test_plan_reduces_max_load(self, app_net):
        net, keys = app_net
        lb = LoadBalancer(net.node(keys[0]), high=1.0, low=0.5)
        result = lb.imbalance_before_after()
        if lb.overloaded():
            assert result["after"] <= result["before"]
            assert result["after"] <= 1.0 + 1e-9

    def test_transfers_never_overfill_targets(self, app_net):
        net, keys = app_net
        lb = LoadBalancer(net.node(keys[0]))
        loads = lb.visible_loads()
        for t in lb.plan():
            loads[t.dst_id] += t.amount
        for dst in {t.dst_id for t in lb.plan()}:
            assert loads[dst] <= lb.high + 1e-6

    def test_orderings(self, app_net):
        net, keys = app_net
        lb = LoadBalancer(net.node(keys[0]))
        over = lb.overloaded()
        loads = lb.visible_loads()
        assert all(loads[a] >= loads[b] for a, b in zip(over, over[1:]))

    def test_transfer_validation(self):
        with pytest.raises(ValueError):
            Transfer(1, 2, 0.0)

    def test_threshold_validation(self, app_net):
        net, keys = app_net
        with pytest.raises(ValueError):
            LoadBalancer(net.node(keys[0]), high=0.5, low=0.5)


class TestBidding:
    def test_best_offers_are_viable_and_sorted(self, app_net):
        net, keys = app_net
        matcher = BidMatcher(net.node(keys[0]))
        offers = matcher.best_offers(need_gb=5.0, max_price=3.0, k=5)
        scores = [s for _, _, s in offers]
        assert scores == sorted(scores, reverse=True)
        for _, bid, _ in offers:
            assert bid.storage_gb >= 5.0
            assert bid.price_per_gb <= 3.0

    def test_market_depth_counts_viable(self, app_net):
        net, keys = app_net
        matcher = BidMatcher(net.node(keys[0]))
        depth_loose = matcher.market_depth(1.0, 100.0)
        depth_tight = matcher.market_depth(100.0, 0.1)
        assert depth_loose >= depth_tight

    def test_score_dominance(self):
        cheap = BidInfo(storage_gb=50.0, availability=0.9, price_per_gb=0.5)
        pricey = BidInfo(storage_gb=50.0, availability=0.9, price_per_gb=1.5)
        assert score_bid(cheap, 10.0, 2.0) > score_bid(pricey, 10.0, 2.0)
        flaky = BidInfo(storage_gb=50.0, availability=0.2, price_per_gb=0.5)
        assert score_bid(cheap, 10.0, 2.0) > score_bid(flaky, 10.0, 2.0)

    def test_nonviable_scores_minus_inf(self):
        small = BidInfo(storage_gb=1.0, availability=0.9, price_per_gb=0.5)
        assert score_bid(small, 10.0, 2.0) == float("-inf")

    def test_score_validation(self):
        bid = BidInfo(10.0, 0.5, 1.0)
        with pytest.raises(ValueError):
            score_bid(bid, 0.0, 1.0)
