"""GUESS non-forwarding search tests."""

import numpy as np
import pytest

from repro.apps.guess import GuessSearch, _holds
from repro.core.protocol import PeerWindowNetwork
from repro.core.config import ProtocolConfig
from repro.workloads.attached_info import guess_attached_info


@pytest.fixture(scope="module")
def guess_net():
    rng = np.random.default_rng(11)
    infos = guess_attached_info(rng, 60)
    net = PeerWindowNetwork(
        config=ProtocolConfig(id_bits=16, multicast_processing_delay=0.1),
        master_seed=6,
    )
    keys = net.seed_nodes(
        [{"threshold_bps": 1e6, "attached_info": infos[i]} for i in range(60)]
    )
    net.run(until=10.0)
    return net, keys


class TestGuessSearch:
    def test_candidates_exclude_free_riders_and_self(self, guess_net):
        net, keys = guess_net
        gs = GuessSearch(net.node(keys[0]))
        for p in gs.candidates():
            assert p.attached_info["shared_files"] > 0
            assert p.node_id.value != net.node(keys[0]).node_id.value

    def test_candidates_sorted_by_share_size(self, guess_net):
        net, keys = guess_net
        gs = GuessSearch(net.node(keys[0]))
        shares = [p.attached_info["shared_files"] for p in gs.candidates()]
        assert shares == sorted(shares, reverse=True)

    def test_holds_is_deterministic(self, guess_net):
        net, keys = guess_net
        gs = GuessSearch(net.node(keys[0]), universe=1000)
        pool = gs.candidates()
        if pool:
            p = pool[0]
            assert _holds(p, 7, 1000) == _holds(p, 7, 1000)

    def test_query_counts_hits(self, guess_net):
        net, keys = guess_net
        gs = GuessSearch(net.node(keys[0]), universe=2000)
        for key in range(50):
            gs.query(key)
        assert gs.queries == 50
        assert 0 <= gs.hits <= 50
        assert gs.hit_rate() == gs.hits / 50

    def test_hit_rate_monotone_in_list_size(self, guess_net):
        """The paper's motivating claim: more collected pointers, higher
        local hit rate."""
        net, keys = guess_net
        gs = GuessSearch(net.node(keys[0]), universe=5000)
        curve = gs.hit_rate_vs_list_size(range(150), [1, 5, 15, 40], probe_budget=40)
        rates = [r for _, r in curve]
        assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:]))
        assert rates[-1] > rates[0]

    def test_invalid_query_key(self, guess_net):
        net, keys = guess_net
        gs = GuessSearch(net.node(keys[0]), universe=10)
        with pytest.raises(ValueError):
            gs.query(10)

    def test_invalid_universe(self, guess_net):
        net, keys = guess_net
        with pytest.raises(ValueError):
            GuessSearch(net.node(keys[0]), universe=0)
