"""Bloom-filter attached-info compression tests (§3, LOCKSS usage)."""

import numpy as np
import pytest

from repro.apps.compress import BloomFilter, DocumentDirectory
from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork


class TestBloomFilter:
    def test_no_false_negatives(self):
        f = BloomFilter(size_bits=512, n_hashes=4)
        items = [f"doc-{i}" for i in range(40)]
        f.update(items)
        assert all(item in f for item in items)

    def test_false_positive_rate_near_prediction(self):
        f = BloomFilter.optimal(expected_items=30, size_bits=256)
        f.update(f"doc-{i}" for i in range(30))
        predicted = f.false_positive_rate()
        trials = 4000
        fps = sum(1 for i in range(trials) if f"other-{i}" in f)
        assert fps / trials == pytest.approx(predicted, abs=0.05)

    def test_empty_filter_rejects_everything(self):
        f = BloomFilter()
        assert "x" not in f
        assert f.false_positive_rate() == 0.0

    def test_optimal_hash_count(self):
        # k = m/n ln2: 256/32*0.693 ≈ 5.5 → 6
        f = BloomFilter.optimal(expected_items=32, size_bits=256)
        assert 4 <= f.n_hashes <= 8

    def test_roundtrip_via_int(self):
        f = BloomFilter(128, 3)
        f.update(["a", "b", "c"])
        g = BloomFilter.from_int(f.to_int(), 128, 3, count=3)
        assert "a" in g and "b" in g and "c" in g
        assert g.fill_ratio() == f.fill_ratio()

    def test_fill_ratio_grows(self):
        f = BloomFilter(128, 3)
        r0 = f.fill_ratio()
        f.add("x")
        assert f.fill_ratio() > r0

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(size_bits=4)
        with pytest.raises(ValueError):
            BloomFilter(n_hashes=0)
        with pytest.raises(ValueError):
            BloomFilter.optimal(0)


class TestDocumentDirectory:
    @pytest.fixture(scope="class")
    def doc_net(self):
        rng = np.random.default_rng(31)
        n = 40
        holdings = {}
        specs = []
        all_docs = [f"doc-{i}" for i in range(200)]
        for i in range(n):
            docs = set(rng.choice(all_docs, size=12, replace=False))
            info = DocumentDirectory.make_attached_info(docs, size_bits=512)
            specs.append({"threshold_bps": 1e9, "attached_info": info})
            holdings[i] = docs
        net = PeerWindowNetwork(
            config=ProtocolConfig(id_bits=16, multicast_processing_delay=0.1),
            master_seed=14,
        )
        keys = net.seed_nodes(specs)
        net.run(until=10.0)
        return net, keys, holdings

    def test_true_holders_always_found(self, doc_net):
        net, keys, holdings = doc_net
        directory = DocumentDirectory(net.node(keys[0]))
        for doc in sorted(holdings[5])[:5]:
            true_holders = {
                net.node(k).node_id.value
                for k, docs in holdings.items()
                if doc in docs and k != keys[0]
            }
            tp, _fp = directory.lookup_quality(doc, true_holders)
            assert tp == len(true_holders)  # Bloom filters never miss

    def test_false_positives_bounded(self, doc_net):
        net, keys, holdings = doc_net
        directory = DocumentDirectory(net.node(keys[0]))
        total_fp = 0
        probes = 0
        for i in range(50):
            doc = f"nonexistent-{i}"
            hits = directory.probable_holders(doc)
            total_fp += len(hits)
            probes += len(net.node(keys[0]).peer_list) - 1
        assert total_fp / probes < 0.05  # 512-bit filter on 12 docs

    def test_pointer_stays_small(self, doc_net):
        """The point of §3's compression: expressing ~12 documents costs
        512 bits, not 12 document names."""
        net, keys, holdings = doc_net
        p = next(iter(net.node(keys[0]).peer_list))
        filt = p.attached_info["doc_filter"]
        assert filt.size_bits == 512
