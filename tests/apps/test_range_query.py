"""Range-query planner tests (§3, Mercury usage)."""

import numpy as np
import pytest

from repro.apps.range_query import (
    AttributeSummary,
    RangePredicate,
    RangeQueryPlanner,
)
from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork


class TestAttributeSummary:
    def test_from_values_counts(self):
        s = AttributeSummary.from_values([0.5, 1.5, 1.6, 9.9], 0.0, 10.0, buckets=10)
        assert s.total == 4
        assert s.counts[0] == 1
        assert s.counts[1] == 2
        assert s.counts[9] == 1

    def test_full_range_estimate_equals_total(self):
        s = AttributeSummary.from_values(list(range(100)), 0.0, 100.0, buckets=8)
        assert s.estimate_in_range(0.0, 100.0) == pytest.approx(100.0)

    def test_partial_bucket_interpolation(self):
        s = AttributeSummary(0.0, 10.0, (10,))  # one bucket, 10 tuples
        assert s.estimate_in_range(0.0, 5.0) == pytest.approx(5.0)
        assert s.estimate_in_range(2.5, 7.5) == pytest.approx(5.0)

    def test_empty_range(self):
        s = AttributeSummary(0.0, 10.0, (10,))
        assert s.estimate_in_range(5.0, 5.0) == 0.0

    def test_size_bits_small(self):
        """§3: summaries must stay pointer-sized."""
        s = AttributeSummary.from_values(list(range(1000)), 0.0, 1000.0, 16)
        assert s.size_bits() <= 512

    def test_validation(self):
        with pytest.raises(ValueError):
            AttributeSummary(0.0, 0.0, (1,))
        with pytest.raises(ValueError):
            AttributeSummary(0.0, 1.0, ())
        with pytest.raises(ValueError):
            RangePredicate("x", 5.0, 5.0)


@pytest.fixture(scope="module")
def planner_net():
    rng = np.random.default_rng(41)
    n = 40
    domains = {"price": (0.0, 100.0), "size": (0.0, 1000.0)}
    net = PeerWindowNetwork(
        config=ProtocolConfig(id_bits=16, multicast_processing_delay=0.1),
        master_seed=17,
    )
    specs = []
    ground = []
    for i in range(n):
        # Half the nodes store cheap items, half expensive.
        if i % 2 == 0:
            prices = rng.uniform(0.0, 30.0, size=50)
        else:
            prices = rng.uniform(60.0, 100.0, size=50)
        sizes = rng.uniform(0.0, 1000.0, size=50)
        ground.append((prices, sizes))
        specs.append(
            {
                "threshold_bps": 1e9,
                "attached_info": RangeQueryPlanner.make_attached_info(
                    {"price": prices, "size": sizes}, domains
                ),
            }
        )
    keys = net.seed_nodes(specs)
    net.run(until=10.0)
    return net, keys, ground


class TestPlanner:
    def test_selectivity_matches_ground_truth(self, planner_net):
        net, keys, ground = planner_net
        planner = RangeQueryPlanner(net.node(keys[0]))
        pred = RangePredicate("price", 0.0, 30.0)
        est = planner.selectivity(pred)
        true = sum((p < 30).sum() for p, _ in ground) / sum(len(p) for p, _ in ground)
        assert est == pytest.approx(true, abs=0.08)

    def test_node_count_identifies_holders(self, planner_net):
        net, keys, ground = planner_net
        planner = RangeQueryPlanner(net.node(keys[0]))
        cheap = planner.node_count(RangePredicate("price", 0.0, 30.0))
        # ~half the peers store cheap items (excluding self).
        assert 15 <= cheap <= 25

    def test_holders_have_matching_summaries(self, planner_net):
        net, keys, ground = planner_net
        planner = RangeQueryPlanner(net.node(keys[0]))
        for p in planner.holders(RangePredicate("price", 60.0, 100.0)):
            hist = p.attached_info["summaries"]["price"]
            assert hist.estimate_in_range(60.0, 100.0) >= 0.5

    def test_plan_orders_most_selective_first(self, planner_net):
        net, keys, ground = planner_net
        planner = RangeQueryPlanner(net.node(keys[0]))
        narrow = RangePredicate("price", 0.0, 5.0)
        wide = RangePredicate("size", 0.0, 900.0)
        plan = planner.plan([wide, narrow])
        assert plan[0] == narrow

    def test_unknown_attribute_zero_selectivity(self, planner_net):
        net, keys, ground = planner_net
        planner = RangeQueryPlanner(net.node(keys[0]))
        assert planner.selectivity(RangePredicate("color", 0.0, 1.0)) == 0.0
