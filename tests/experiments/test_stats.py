"""Replication / confidence-interval harness tests."""

import pytest

from repro.experiments.scalable import ScalableParams
from repro.experiments.stats import (
    MetricSummary,
    compare,
    replicate,
    summarize_metric,
)

FAST = ScalableParams(n_target=1500, duration_s=200.0, warmup_s=80.0)


class TestSummarize:
    def test_interval_contains_mean(self):
        s = summarize_metric("x", [1.0, 2.0, 3.0, 4.0])
        assert s.ci_low < s.mean < s.ci_high
        assert s.mean == 2.5
        assert s.n == 4

    def test_single_value_degenerate(self):
        s = summarize_metric("x", [7.0])
        assert s.ci_low == s.ci_high == s.mean == 7.0

    def test_wider_confidence_wider_interval(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        s90 = summarize_metric("x", values, confidence=0.90)
        s99 = summarize_metric("x", values, confidence=0.99)
        assert s99.half_width() > s90.half_width()

    def test_t_interval_wider_than_normal(self):
        """Small samples must use the t distribution (heavier tails)."""
        import numpy as np

        values = [1.0, 2.0, 3.0]
        s = summarize_metric("x", values, confidence=0.95)
        sem = np.std(values, ddof=1) / np.sqrt(3)
        normal_half = 1.96 * sem
        assert s.half_width() > normal_half

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize_metric("x", [])
        with pytest.raises(ValueError):
            summarize_metric("x", [1.0], confidence=1.0)


class TestReplicate:
    def test_default_metrics_collected(self):
        out = replicate(FAST, seeds=[1, 2, 3])
        assert set(out) >= {"mean_error_rate", "frac_level0", "n_levels"}
        for summary in out.values():
            assert isinstance(summary, MetricSummary)
            assert summary.n == 3

    def test_error_rate_interval_positive_and_tight(self):
        out = replicate(FAST, seeds=[1, 2, 3, 4])
        err = out["mean_error_rate"]
        assert err.ci_low > 0
        assert err.half_width() < err.mean  # replications agree

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            replicate(FAST, seeds=[])


class TestCompare:
    def test_probe_interval_effect_detected(self):
        """Slower probing must significantly raise the error rate — the
        paired test should detect it with few seeds."""
        from dataclasses import replace

        fast_probe = replace(FAST, probe_interval_s=10.0)
        slow_probe = replace(FAST, probe_interval_s=120.0)
        summary, p = compare(
            fast_probe, slow_probe, seeds=[1, 2, 3],
            metric=lambda r: r.mean_error_rate,
        )
        assert summary.mean > 0  # slower probing → more error
        assert summary.ci_low > 0  # CI excludes zero
        assert p < 0.05

    def test_null_effect_not_detected(self):
        """Comparing a configuration to itself finds nothing."""
        summary, p = compare(
            FAST, FAST, seeds=[1, 2], metric=lambda r: r.mean_error_rate
        )
        assert summary.mean == 0.0
        assert p == 1.0

    def test_needs_two_seeds(self):
        with pytest.raises(ValueError):
            compare(FAST, FAST, seeds=[1], metric=lambda r: 0.0)
