"""Scalable-engine tests: bookkeeping invariants and physical sanity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scalable import (
    ScalableParams,
    ScalableSim,
    binomial_broadcast,
)


def fast_params(**kw):
    base = dict(n_target=2000, duration_s=300.0, warmup_s=100.0, seed=3)
    base.update(kw)
    return ScalableParams(**base)


@pytest.fixture(scope="module")
def fast_result():
    return ScalableSim(fast_params()).run()


class TestBroadcast:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=400))
    def test_full_coverage(self, seed, n):
        """The vectorized dissemination reaches every audience member."""
        rng = np.random.default_rng(seed)
        bits = 32
        subject = np.uint64(rng.integers(0, 1 << bits, dtype=np.uint64))
        levels = rng.integers(0, 5, size=n).astype(np.int32)
        # Build member ids sharing the subject's first `level` bits.
        suffix_bits = bits - levels
        ids = np.empty(n, dtype=np.uint64)
        for i in range(n):
            lvl = int(levels[i])
            prefix = (int(subject) >> (bits - lvl)) << (bits - lvl) if lvl else 0
            ids[i] = prefix | int(rng.integers(0, 1 << (bits - lvl)))
        _, unique_idx = np.unique(ids, return_index=True)
        ids = ids[unique_idx]
        levels = levels[unique_idx]
        root = int(np.lexsort((ids, levels))[0])
        depths, senders = binomial_broadcast(ids, levels, root, bits)
        assert (depths >= 0).all()
        assert depths[root] == 0
        assert senders.sum() == ids.size - 1  # exactly one receive each

    def test_depth_logarithmic(self):
        rng = np.random.default_rng(0)
        n, bits = 4096, 32
        ids = np.unique(rng.integers(0, 1 << bits, size=n, dtype=np.uint64))
        levels = np.zeros(ids.size, dtype=np.int32)
        depths, senders = binomial_broadcast(ids, levels, 0, bits)
        assert depths.max() <= 2.5 * np.log2(ids.size)
        assert senders[0] <= 2.0 * np.log2(ids.size)

    def test_empty_audience(self):
        depths, senders = binomial_broadcast(
            np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int32), 0, 16
        )
        assert depths.size == 0


class TestBookkeeping:
    def test_population_stationary(self, fast_result):
        res = fast_result
        assert res.final_population == pytest.approx(res.params.n_target, rel=0.1)

    def test_level_fractions_sum_to_one(self, fast_result):
        total = sum(r.fraction for r in fast_result.rows)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_counts_match_oracle(self):
        """The prefix counters must agree with a direct recount."""
        sim = ScalableSim(fast_params(n_target=500, duration_s=100.0, warmup_s=50.0))
        res = sim.run()
        ids = sim.ids[sim.alive]
        bits = sim.p.id_bits
        for l in (0, 1, 3, 5):
            direct = np.bincount(
                (ids >> np.uint64(bits - l)).astype(np.int64), minlength=1 << l
            ) if l else np.array([ids.size])
            assert np.array_equal(sim._counts[l][: direct.size], direct)

    def test_level_counts_match_levels_array(self):
        sim = ScalableSim(fast_params(n_target=500, duration_s=100.0, warmup_s=50.0))
        sim.run()
        for l in range(sim.p.max_level + 1):
            expected = int(
                (sim.alive & (np.minimum(sim.levels, sim.p.max_level) == l)).sum()
            )
            assert int(sim._level_counts[l].sum()) == expected

    def test_peer_list_size_halves_per_level(self, fast_result):
        rows = {r.level: r for r in fast_result.rows if r.population > 0}
        levels = sorted(rows)
        for a, b in zip(levels, levels[1:]):
            if b == a + 1:
                ratio = rows[a].mean_list_size / max(rows[b].mean_list_size, 1)
                assert ratio == pytest.approx(2.0, rel=0.35)

    def test_max_min_list_sizes_tight(self, fast_result):
        """Figure 6: max and min within a level are 'hard to distinguish'."""
        for r in fast_result.rows:
            if r.population >= 10 and r.level <= 3:
                assert r.max_list_size <= 2.0 * max(r.min_list_size, 1.0)

    def test_event_counters_consistent(self, fast_result):
        res = fast_result
        assert res.joins > 0 and res.leaves > 0
        # Poisson joins at N/L over (warmup+duration).
        expected = res.params.n_target / (135 * 60.0) * (
            res.params.warmup_s + res.params.duration_s
        )
        assert res.joins == pytest.approx(expected, rel=0.4)


class TestErrorModel:
    def test_error_rates_small_but_positive(self, fast_result):
        for r in fast_result.rows:
            if r.population > 0:
                assert 0.0 < r.error_rate < 0.05

    def test_error_scales_with_probe_interval(self):
        fast = ScalableSim(fast_params(probe_interval_s=10.0, seed=4)).run()
        slow = ScalableSim(fast_params(probe_interval_s=120.0, seed=4)).run()
        assert slow.mean_error_rate > fast.mean_error_rate

    def test_bandwidth_proportional_to_list_size(self, fast_result):
        rows = [r for r in fast_result.rows if r.population > 5]
        if len(rows) >= 2:
            top, deep = rows[0], rows[-1]
            size_ratio = top.mean_list_size / max(deep.mean_list_size, 1.0)
            bw_ratio = top.in_bps / max(deep.in_bps, 1e-9)
            # Same order of magnitude (probe floor flattens the tail).
            assert 0.2 * size_ratio < bw_ratio < 5.0 * size_ratio

    def test_output_concentrated_at_top_levels(self, fast_result):
        """Figure 8: almost all multicast sends come from levels 0-1."""
        rows = {r.level: r for r in fast_result.rows if r.population > 0}
        if 0 in rows and len(rows) > 1:
            deepest = rows[max(rows)]
            assert rows[0].out_bps > deepest.out_bps


class TestValidation:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            ScalableParams(n_target=1)
        with pytest.raises(ValueError):
            ScalableParams(id_bits=63)
        with pytest.raises(ValueError):
            ScalableParams(lifetime_rate=0.0)
        with pytest.raises(ValueError):
            ScalableParams(max_level=0)
