"""CLI tests (``python -m repro``)."""

import csv

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        args_dict = vars(args)
        assert args_dict["nodes"] == 20_000
        assert args_dict["csv"] is None

    def test_sweep_args(self):
        args = build_parser().parse_args(["fig9", "--scales", "100", "200"])
        assert args.scales == [100, 200]


class TestCommands:
    FAST = ["-n", "1500", "--duration", "120", "--warmup", "50"]

    def test_fig5_runs_and_prints(self, capsys):
        assert main(["fig5"] + self.FAST) == 0
        out = capsys.readouterr().out
        assert "figure 5" in out
        assert "level" in out

    def test_fig7_csv_export(self, tmp_path, capsys):
        path = tmp_path / "fig7.csv"
        assert main(["fig7", "--csv", str(path)] + self.FAST) == 0
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["level", "error_rate"]
        assert len(rows) >= 2
        assert float(rows[1][1]) >= 0.0

    def test_common_summary_line(self, capsys):
        assert main(["common"] + self.FAST) == 0
        out = capsys.readouterr().out
        assert "mean error rate" in out
        assert "root out-degree" in out

    def test_fig9_sweep(self, capsys):
        assert main(
            ["fig9", "--scales", "500", "1500", "--duration", "100", "--warmup", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "figures 9/10" in out

    def test_fig11_sweep(self, capsys):
        assert main(
            ["fig11", "--rates", "0.5", "2.0", "-n", "1000",
             "--duration", "100", "--warmup", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "figures 11/12" in out

    def test_predict_no_simulation(self, capsys):
        assert main(["predict", "-n", "100000"]) == 0
        out = capsys.readouterr().out
        assert "closed-form level distribution" in out
        assert "predicted levels: 7" in out

    def test_baselines_table(self, capsys):
        assert main(["baselines", "-n", "100000"]) == 0
        out = capsys.readouterr().out
        assert "explicit-probe" in out
        assert "one-hop-dht" in out

    def test_fig5_chart_flag(self, capsys):
        assert main(["fig5", "--chart"] + self.FAST) == 0
        out = capsys.readouterr().out
        assert "node distribution by level" in out
        assert "█" in out

    def test_fig11_log_chart_flag(self, capsys):
        assert main(
            ["fig11", "--chart", "--rates", "0.5", "2.0", "-n", "1000",
             "--duration", "100", "--warmup", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "log y" in out
        assert "*" in out
