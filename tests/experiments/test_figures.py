"""Figure-level claims (§5), asserted at CI scale.

Each test states the paper's qualitative claim and checks the reproduced
trend.  Absolute scale differs (2k-10k nodes here vs 100k in the paper;
set REPRO_FULL=1 on the benches for paper scale), but the shapes are
scale-free.
"""

import pytest

from repro.experiments.figures import (
    clear_cache,
    fig5_node_distribution,
    fig6_peer_list_sizes,
    fig7_error_rates,
    fig8_bandwidth,
    fig9_scalability_levels,
    fig10_scalability_error,
    fig11_adaptivity_levels,
    fig12_adaptivity_error,
)
from repro.experiments.scalable import ScalableParams

CI_COMMON = ScalableParams(n_target=8000, duration_s=600.0, warmup_s=200.0, seed=7)
CI_SWEEP = ScalableParams(n_target=8000, duration_s=400.0, warmup_s=150.0, seed=7)


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestFig5:
    def test_majority_at_level_zero(self):
        """Paper: 'more than half of the nodes running at level 0'."""
        rows = fig5_node_distribution(CI_COMMON)
        frac0 = next(f for lvl, _, f in rows if lvl == 0)
        assert frac0 > 0.5

    def test_multiple_levels_populated(self):
        rows = fig5_node_distribution(CI_COMMON)
        assert len(rows) >= 3


class TestFig6:
    def test_sizes_halve_and_are_tight(self):
        rows = fig6_peer_list_sizes(CI_COMMON)
        by_level = {lvl: (mean, lo, hi) for lvl, mean, lo, hi in rows}
        levels = sorted(by_level)
        for a, b in zip(levels, levels[1:]):
            if b == a + 1:
                assert by_level[a][0] / max(by_level[b][0], 1) == pytest.approx(
                    2.0, rel=0.4
                )
        # max ≈ min ("hard to be distinguished") at well-populated levels.
        mean, lo, hi = by_level[levels[0]]
        assert hi <= 1.5 * max(lo, 1.0)


class TestFig7:
    def test_error_below_paper_band(self):
        """Paper: error rate less than 0.5% at every level — our leave
        accounting includes the §4.1 detection delay, so allow up to 1%."""
        rows = fig7_error_rates(CI_COMMON)
        for lvl, err in rows:
            assert err < 0.01


class TestFig8:
    def test_input_tracks_list_size_and_output_top_heavy(self):
        bw = fig8_bandwidth(CI_COMMON)
        sizes = {lvl: mean for lvl, mean, _, _ in fig6_peer_list_sizes(CI_COMMON)}
        in_by_level = {lvl: i for lvl, i, _ in bw}
        levels = sorted(in_by_level)
        # Input decreases with level (list size halves).
        assert in_by_level[levels[0]] > in_by_level[levels[-1]]
        # Output concentrated at the strongest level.
        out_by_level = {lvl: o for lvl, _, o in bw}
        assert out_by_level[levels[0]] == max(out_by_level.values())

    def test_input_cost_per_1000_pointers_band(self):
        """Paper: ~500 bps per 1000 pointers; our churn model gives the
        same order (250-900 bps)."""
        bw = fig8_bandwidth(CI_COMMON)
        sizes = {lvl: mean for lvl, mean, _, _ in fig6_peer_list_sizes(CI_COMMON)}
        lvl0_in = next(i for lvl, i, _ in bw if lvl == 0)
        per_1000 = lvl0_in / sizes[0] * 1000.0
        assert 150.0 < per_1000 < 1200.0


class TestFig9and10:
    def test_levels_grow_with_scale(self):
        """Paper: small systems collapse to level 0; levels multiply as N
        grows."""
        points = fig9_scalability_levels(scales=[500, 2000, 8000], base=CI_SWEEP)
        frac0 = [dict(p.level_fractions).get(0, 0.0) for p in points]
        assert frac0[0] > frac0[-1]
        n_levels = [p.n_levels for p in points]
        assert n_levels[-1] >= n_levels[0]

    def test_smallest_scale_nearly_all_level0(self):
        points = fig9_scalability_levels(scales=[500], base=CI_SWEEP)
        assert dict(points[0].level_fractions).get(0, 0.0) > 0.85

    def test_error_rises_slightly_with_scale(self):
        rows = fig10_scalability_error(scales=[500, 2000, 8000], base=CI_SWEEP)
        errs = [e for _, e in rows]
        assert errs[-1] >= errs[0] * 0.8  # rises or ~flat, never collapses
        # "the change is very slight": within a small factor across 16x N.
        assert errs[-1] < 5 * max(errs[0], 1e-5)


class TestFig11and12:
    def test_short_lifetimes_push_nodes_deeper(self):
        """Paper: at Lifetime_Rate 0.1 only ~15% hold level 0 and many
        more levels appear."""
        points = fig11_adaptivity_levels(rates=[0.1, 1.0, 10.0], base=CI_SWEEP)
        frac0 = [dict(p.level_fractions).get(0, 0.0) for p in points]
        assert frac0[0] < frac0[1] < frac0[2] + 1e-9
        n_levels = [p.n_levels for p in points]
        assert n_levels[0] > n_levels[2]

    def test_error_inverse_in_lifetime(self):
        """Paper: error ≈ multicast_delay / lifetime — about 10x higher at
        rate 0.1 than at rate 1."""
        rows = dict(fig12_adaptivity_error(rates=[0.1, 1.0], base=CI_SWEEP))
        ratio = rows[0.1] / rows[1.0]
        assert 3.0 < ratio < 30.0
