"""Analytic predictor tests: closed forms vs the simulation engines."""

import pytest

from repro.experiments.predict import (
    predict_bps_per_1000_pointers,
    predict_error_rate,
    predict_figure11,
    predict_figure9,
    predict_input_bps,
    predict_level_distribution,
    predict_n_levels,
    system_event_rate,
)
from repro.experiments.scalable import ScalableParams, ScalableSim


class TestClosedForms:
    def test_event_rate(self):
        # 100k nodes, 8100s lifetimes, 2 changes: 24.7 events/s.
        assert system_event_rate(100_000, 8100.0, 2.0) == pytest.approx(24.69, abs=0.01)

    def test_paper_common_majority_level0(self):
        dist = predict_level_distribution(100_000)
        assert dist[0] > 0.5  # figure 5's headline

    def test_levels_grow_with_scale(self):
        rows = predict_figure9([5_000, 100_000])
        assert len(rows[1][1]) > len(rows[0][1])

    def test_n_levels_matches_distribution_support(self):
        dist = predict_level_distribution(100_000)
        assert max(dist) + 1 == predict_n_levels(100_000)

    def test_lifetime_rate_01_about_ten_levels(self):
        """Paper figure 11: rate 0.1 at 100k → ~10 levels."""
        n = predict_n_levels(100_000, mean_lifetime_s=810.0)
        assert 9 <= n <= 11

    def test_input_bps_halves_per_level(self):
        a = predict_input_bps(100_000, 0)
        b = predict_input_bps(100_000, 1)
        assert a == pytest.approx(2 * b)

    def test_bps_per_1000_pointers_constant(self):
        assert predict_bps_per_1000_pointers() == pytest.approx(
            1000 * 2 * 1000 / 8100.0
        )

    def test_error_rate_inverse_in_lifetime(self):
        slow = predict_error_rate(100_000, mean_lifetime_s=8100.0)
        fast = predict_error_rate(100_000, mean_lifetime_s=810.0)
        assert fast / slow == pytest.approx(10.0)

    def test_figure11_sweep_shape(self):
        rows = predict_figure11([0.1, 10.0], n_nodes=100_000)
        assert rows[0][1].get(0, 0.0) < rows[1][1].get(0, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            system_event_rate(-1, 100.0)


class TestAgainstSimulation:
    def test_level_distribution_matches_scalable_engine(self):
        params = ScalableParams(n_target=5000, duration_s=400.0, warmup_s=150.0, seed=2)
        result = ScalableSim(params).run()
        predicted = predict_level_distribution(5000)
        simulated = {r.level: r.fraction for r in result.rows if r.population > 0}
        for level in set(predicted) | set(simulated):
            assert predicted.get(level, 0.0) == pytest.approx(
                simulated.get(level, 0.0), abs=0.08
            )

    def test_error_rate_matches_scalable_engine(self):
        params = ScalableParams(n_target=5000, duration_s=400.0, warmup_s=150.0, seed=2)
        result = ScalableSim(params).run()
        predicted = predict_error_rate(
            5000, mean_link_latency_s=0.78  # the transit-stub mean
        )
        assert result.mean_error_rate == pytest.approx(predicted, rel=0.5)
