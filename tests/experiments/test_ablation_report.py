"""Ablation and report-formatting tests."""

import pytest

from repro.experiments.ablation import (
    ablate_hysteresis,
    ablate_probe_interval,
    ablate_target_policy,
    ablate_threshold_floor,
)
from repro.experiments.report import format_cell, format_table, print_table
from repro.experiments.scalable import ScalableParams

FAST = ScalableParams(n_target=2000, duration_s=200.0, warmup_s=80.0, seed=5)


class TestAblations:
    def test_probe_interval_error_monotone(self):
        rows = ablate_probe_interval([5.0, 60.0], base=FAST)
        assert rows[1][1] > rows[0][1]

    def test_strongest_first_beats_random_targets(self):
        """The §4.2 design choice: strongest-first always covers; random
        choice strands subtrees in deep hierarchies."""
        worst_random = 1.0
        for seed in range(3):
            r = ablate_target_policy(n_members=1024, id_bits=24, seed=seed)
            assert r["strongest_coverage"] == 1.0
            worst_random = min(worst_random, r["random_coverage"])
        assert worst_random < 1.0

    def test_hysteresis_width_controls_flapping(self):
        rows = dict(ablate_hysteresis([0.3, 0.95]))
        assert rows[0.95] > rows[0.3]

    def test_threshold_floor_sets_depth(self):
        rows = dict(ablate_threshold_floor([2000.0, 125.0], base=FAST))
        assert rows[125.0] >= rows[2000.0]

    def test_digitization_robustness(self):
        """Figure 5's majority-at-level-0 claim must survive ±10 points of
        digitization uncertainty in the bandwidth CDF."""
        from dataclasses import replace

        from repro.experiments.ablation import ablate_bandwidth_digitization

        base = replace(FAST, n_target=4000, lifetime_rate=0.2)
        rows = dict(ablate_bandwidth_digitization([-0.1, 0.0, 0.1], base))
        assert rows[-0.1] <= rows[0.0] <= rows[0.1]  # monotone in the shift

    def test_lifetime_shape_invariance(self):
        """The level structure depends on the mean lifetime, not the
        distribution's shape; error rates stay in one band."""
        from repro.experiments.ablation import ablate_lifetime_shape

        rows = ablate_lifetime_shape(FAST)
        levels = [n for _, _, n in rows]
        assert max(levels) - min(levels) <= 1
        errors = [e for _, e, _ in rows]
        assert max(errors) < 2.5 * min(errors)


class TestReport:
    def test_format_cell(self):
        assert format_cell(0.0) == "0"
        assert format_cell(12345.6) == "12,346"
        assert format_cell(3.14159) == "3.14"
        assert format_cell(0.00123) == "0.00123"
        assert format_cell("x") == "x"

    def test_format_table_aligned(self):
        text = format_table(["a", "bb"], [[1, 2.5], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all lines equal width

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_print_table_returns_text(self, capsys):
        text = print_table("T", ["x"], [[1]])
        out = capsys.readouterr().out
        assert "== T ==" in out
        assert text.strip() in out
