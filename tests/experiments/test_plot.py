"""Terminal-plot rendering tests."""

import pytest

from repro.experiments.plot import (
    bar_chart,
    level_distribution_chart,
    line_chart,
    sparkline,
)


class TestBarChart:
    def test_bars_scale_to_peak(self):
        out = bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        out = bar_chart([("x", 1.0), ("long", 1.0)])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_title_first_line(self):
        assert bar_chart([("a", 1.0)], title="T").splitlines()[0] == "T"

    def test_zero_values_no_bars(self):
        out = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "█" not in out

    def test_empty_and_invalid(self):
        assert "(no data)" in bar_chart([])
        with pytest.raises(ValueError):
            bar_chart([("a", -1.0)])
        with pytest.raises(ValueError):
            bar_chart([("a", 1.0)], width=0)


class TestSparkline:
    def test_monotone_ramp(self):
        out = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert out == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestLineChart:
    def test_grid_dimensions(self):
        out = line_chart([(0, 0), (1, 1)], width=20, height=5)
        rows = [l for l in out.splitlines() if "|" in l]
        assert len(rows) == 5

    def test_points_plotted_at_corners(self):
        out = line_chart([(0, 0), (10, 10)], width=20, height=5)
        rows = [l for l in out.splitlines() if "|" in l]
        body = [l.split("|", 1)[1] for l in rows]
        assert body[0].rstrip().endswith("*")  # max y at top-right
        assert body[-1].lstrip().startswith("*")  # min y at bottom-left

    def test_log_y_extents(self):
        out = line_chart([(1, 0.001), (2, 0.1)], log_y=True)
        assert "0.001" in out
        assert "0.1" in out

    def test_log_y_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_chart([(1, 0.0)], log_y=True)

    def test_empty(self):
        assert "(no data)" in line_chart([])


class TestLevelDistributionChart:
    def test_levels_labelled(self):
        out = level_distribution_chart([(0, 0.6), (1, 0.3), (2, 0.1)])
        assert "L0" in out and "L2" in out
        lines = out.splitlines()
        assert lines[1].count("█") > lines[3].count("█")
