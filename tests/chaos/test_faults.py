"""FaultPlan: schedule building, deterministic replay, survivor floor."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.chaos import ChaosTrace, FaultPlan
from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork

CONFIG = ProtocolConfig(
    id_bits=16,
    probe_interval=5.0,
    probe_timeout=1.0,
    probe_misses_to_fail=2,
    multicast_ack_timeout=1.0,
    report_timeout=2.0,
    level_check_interval=1e6,
    multicast_processing_delay=0.1,
)


def make_net(n=12, seed=9):
    net = PeerWindowNetwork(config=CONFIG, master_seed=seed)
    net.seed_nodes([1e9] * n)
    net.run(until=5.0)
    return net


class TestPlanBuilding:
    def test_builders_chain_and_record_params(self):
        plan = FaultPlan(seed=4).crash(5.0, count=2).partition(10.0, duration=3.0)
        assert [e.kind for e in plan.events] == ["crash", "partition"]
        assert plan.events[0].get("count") == 2
        assert plan.events[1].get("duration") == 3.0

    def test_horizon_covers_durations_and_downtime(self):
        plan = FaultPlan()
        plan.partition(10.0, duration=4.0)
        plan.crash_recover(5.0, down_for=30.0)
        assert plan.horizon == pytest.approx(35.0)

    def test_describe_is_stable(self):
        plan = FaultPlan().pair_loss(1.0, pairs=3, rate=0.25, duration=2.0)
        assert plan.events[0].describe() == "pair_loss duration=2 pairs=3 rate=0.25"

    def test_install_rejects_partitioned_networks(self):
        plan = FaultPlan().crash(1.0)
        with pytest.raises(ValueError):
            plan.install(SimpleNamespace(sim=None), ChaosTrace())


class TestDeterminism:
    def run_once(self, plan_seed):
        net = make_net()
        trace = ChaosTrace()
        plan = FaultPlan(seed=plan_seed)
        plan.crash(3.0, count=2)
        plan.partition(8.0, groups=2, duration=1.5)
        plan.pair_loss(12.0, pairs=6, rate=0.5, duration=3.0)
        plan.install(net, trace)
        net.run(until=net.sim.now + 20.0)
        return trace.text()

    def test_same_seed_replays_bit_for_bit(self):
        assert self.run_once(0) == self.run_once(0)

    def test_different_seed_picks_different_victims(self):
        assert self.run_once(0) != self.run_once(1)


class TestSurvivorFloor:
    def test_oversized_crash_is_rejected_at_install(self):
        """A count exceeding the install-time population is a
        misconfigured plan, not a fault (ISSUE 7 satellite)."""
        net = make_net(n=6)
        with pytest.raises(ValueError, match="exceeds the population"):
            FaultPlan(seed=0).crash(1.0, count=100).install(net, ChaosTrace())

    def test_crash_never_extinguishes_population(self):
        """A full-population crash request still clamps to the
        fire-time survivor floor."""
        net = make_net(n=6)
        trace = ChaosTrace()
        FaultPlan(seed=0).crash(1.0, count=6).install(net, trace)
        net.run(until=net.sim.now + 5.0)
        assert len(net.live_nodes()) == FaultPlan.MIN_SURVIVORS

    def test_zombies_respect_the_floor(self):
        net = make_net(n=5)
        trace = ChaosTrace()
        FaultPlan(seed=0).zombie(1.0, count=5, duration=2.0).install(net, trace)
        net.run(until=net.sim.now + 2.0)
        zombies = sum(1 for k in net.nodes if net.transport.is_zombie(k))
        assert zombies == len(net.nodes) - FaultPlan.MIN_SURVIVORS


class TestReversals:
    def test_every_injection_reverses(self):
        """Each windowed fault clears itself: the transport ends the run
        with no partition, no pair loss, no duplication, scale 1 and no
        zombies."""
        net = make_net()
        trace = ChaosTrace()
        plan = FaultPlan(seed=2)
        plan.partition(1.0, duration=2.0)
        plan.pair_loss(1.5, pairs=5, rate=0.4, duration=2.0)
        plan.latency_spike(2.0, scale=2.5, duration=2.0)
        plan.slow(2.5, count=2, extra=0.2, duration=2.0)
        plan.zombie(3.0, count=1, duration=1.5)
        plan.duplicate(3.5, rate=0.3, duration=2.0)
        plan.install(net, trace)
        net.run(until=net.sim.now + 15.0)
        tr = net.transport
        assert not tr.partitioned
        assert tr._pair_loss == {}
        assert tr.duplication_rate == 0.0
        assert tr.latency_scale == 1.0
        assert tr._latency_extra == {}
        assert tr._zombies == set()

    def test_disruption_callback_fires_on_inject_and_reverse(self):
        net = make_net()
        times = []
        plan = FaultPlan(seed=0).partition(2.0, duration=3.0)
        plan.install(net, ChaosTrace(), on_disruption=times.append)
        net.run(until=net.sim.now + 10.0)
        assert times == [pytest.approx(7.0), pytest.approx(10.0)]
