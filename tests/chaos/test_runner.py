"""ChaosRunner + scenarios + the ``repro chaos`` CLI.

The scenario sweeps are marked ``chaos`` (run them alone with
``pytest -m chaos``, skip with ``-m 'not chaos'``); the smoke-scale
determinism tests stay in the plain tier-1 set.
"""

from __future__ import annotations

import pytest

from repro.chaos import SCENARIOS, ChaosRunner
from repro.cli import main


class TestScenarioRegistry:
    def test_expected_scenarios_present(self):
        assert set(SCENARIOS) == {
            "smoke", "churn-partition", "loss-storm",
            "zombie-latency", "crash_churn", "recovery-stress",
        }

    def test_acceptance_scenario_shape(self):
        s = SCENARIOS["churn-partition"]
        assert s.default_nodes == 500
        plan = s.build_plan(500, seed=0)
        assert {e.kind for e in plan.events} == {"churn", "partition", "crash_recover"}

    def test_partitions_stay_inside_detection_horizon(self):
        """The pinned protocol behavior for longer cuts is permanent
        mutual eviction; a convergent scenario must keep every partition
        shorter than probe_misses_to_fail * probe_timeout."""
        for s in SCENARIOS.values():
            config = s.make_config()
            horizon = config.probe_misses_to_fail * config.probe_timeout
            for ev in s.build_plan(s.default_nodes, 0).events:
                if ev.kind in ("partition", "zombie"):
                    assert ev.get("duration") < horizon, (s.name, ev.kind)


class TestRunnerSmokeScale:
    def run_smoke(self, seed, n=24):
        return ChaosRunner(SCENARIOS["smoke"], n_nodes=n, seed=seed).run()

    def test_smoke_holds_all_invariants(self):
        result = self.run_smoke(seed=0)
        assert result.ok and result.violations == []
        assert result.faults_injected == 4
        assert result.convergence_checks >= 1
        assert result.mean_error_rate == 0.0
        assert result.trace.splitlines()[-1].lstrip("[ 0123456789.]").startswith("end ")

    def test_same_seed_traces_are_byte_identical(self):
        assert self.run_smoke(seed=5).trace == self.run_smoke(seed=5).trace

    def test_different_seeds_diverge(self):
        assert self.run_smoke(seed=5).trace != self.run_smoke(seed=6).trace

    def test_trace_footer_digests_every_live_node(self):
        result = self.run_smoke(seed=0)
        state_lines = [ln for ln in result.trace.splitlines() if " state key=" in ln]
        assert len(state_lines) == result.live_nodes


@pytest.mark.chaos
class TestScenarioSweep:
    """Scaled-down versions of every non-smoke scenario must hold all
    invariants; the full-size acceptance run is the CLI criterion."""

    @pytest.mark.parametrize("name,n", [
        ("churn-partition", 150),
        ("loss-storm", 60),
        ("zombie-latency", 45),
        ("recovery-stress", 50),
    ])
    def test_scenario_converges_violation_free(self, name, n):
        result = ChaosRunner(SCENARIOS[name], n_nodes=n, seed=0).run()
        assert result.violations == [], result.violations[:5]
        assert result.mean_error_rate == 0.0


class TestCli:
    def test_list_scenarios(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["chaos", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_smoke_run_writes_trace_and_exits_0(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        rc = main(["chaos", "--scenario", "smoke", "-n", "20",
                   "--seed", "1", "--trace", str(trace)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK: all invariants held" in out
        assert trace.read_text().startswith("[")
