"""The byzantine adversary layer (ISSUE 7 tentpole, DESIGN §16).

Four contracts under test:

* builder validation — a misconfigured adversarial plan (and, as a
  regression for the base layer, a misconfigured fault plan) fails
  loudly at build time;
* determinism — a byzantine run replays byte-identically from its seed;
* the acceptance criterion — forged-obituary and sybil-flood breach
  their SLOs with the hardening off and come back healthy with it on;
* the CLI surface — ``repro chaos --byzantine``.

The full scenario runs are marked ``byzantine`` (deselect with
``-m 'not byzantine'``); they are smoke-scale (seconds each).
"""

from __future__ import annotations

import pytest

from repro.chaos import BYZANTINE_SCENARIOS, ByzantinePlan, FaultPlan
from repro.chaos.byzantine import HARDENING, ByzantineRunner
from repro.cli import main
from repro.obs.health import HealthSpec


def run_scenario(name, n=None, seed=0, health=False):
    scenario = BYZANTINE_SCENARIOS[name]
    spec = None
    if health:
        n_eff = scenario.default_nodes if n is None else n
        spec = HealthSpec.byzantine(scenario.make_config(), n_eff)
    return ByzantineRunner(scenario, n_nodes=n, seed=seed, health_spec=spec).run()


def breached(result):
    return {v.slo for v in result.health_verdicts if not v.ok}


class TestBuilderValidation:
    """Satellite: every plan builder rejects nonsense parameters."""

    def test_base_plan_rejects_bad_parameters(self):
        plan = FaultPlan(seed=0)
        with pytest.raises(ValueError):
            plan.crash(-1.0)  # negative time
        with pytest.raises(ValueError):
            plan.crash(5.0, count=0)
        with pytest.raises(ValueError):
            plan.crash_recover(5.0, down_for=0.0)
        with pytest.raises(ValueError):
            plan.churn(5.0, crash=-1, join=2)
        with pytest.raises(ValueError):
            plan.churn(5.0)  # needs crash or join
        with pytest.raises(ValueError):
            plan.duplicate(5.0, rate=1.5)
        with pytest.raises(ValueError):
            plan.duplicate(5.0, rate=-0.1)
        with pytest.raises(ValueError):
            plan.latency_spike(5.0, scale=0.5)
        with pytest.raises(ValueError):
            plan.slow(5.0, extra=-0.1)
        assert plan.events == [], "rejected builders must not half-register"

    def test_population_check_catches_oversized_targets(self):
        plan = FaultPlan(seed=0).crash(5.0, count=99)
        with pytest.raises(ValueError, match="exceeds the population"):
            plan._validate_population(10)
        # Node-creating keys (churn/sybil joins) are exempt by design.
        FaultPlan(seed=0).churn(5.0, join=99)._validate_population(10)
        ByzantinePlan(seed=0).sybil_flood(5.0, count=99)._validate_population(10)

    def test_byzantine_builders_reject_bad_parameters(self):
        plan = ByzantinePlan(seed=0)
        with pytest.raises(ValueError):
            plan.level_inflate(5.0, count=0)
        with pytest.raises(ValueError):
            plan.level_inflate(5.0, claim_level=-1)
        with pytest.raises(ValueError):
            plan.level_inflate(5.0, period=0.0)
        with pytest.raises(ValueError):
            plan.forge_obituaries(5.0, liars=0)
        with pytest.raises(ValueError):
            plan.forge_obituaries(5.0, victims=0)
        with pytest.raises(ValueError):
            plan.forge_obituaries(5.0, duration=-1.0)
        with pytest.raises(ValueError):
            plan.eclipse(5.0, adversaries=0)
        with pytest.raises(ValueError):
            plan.sybil_flood(5.0, spacing=0.0)
        with pytest.raises(ValueError):
            plan.sybil_flood(5.0, threshold=-1.0)
        with pytest.raises(ValueError):
            plan.flash_crowd(5.0, alpha=1.0)  # infinite-mean Pareto
        with pytest.raises(ValueError):
            plan.flash_crowd(5.0, window=0.0)
        assert plan.events == []


class TestScenarioRegistry:
    def test_every_scenario_has_an_unhardened_twin(self):
        names = set(BYZANTINE_SCENARIOS)
        hardened = {n for n in names if not n.endswith("-unhardened")}
        assert hardened
        for name in hardened:
            assert f"{name}-unhardened" in names
            assert BYZANTINE_SCENARIOS[name].hardened
            assert not BYZANTINE_SCENARIOS[f"{name}-unhardened"].hardened

    def test_hardened_config_carries_the_defenses(self):
        cfg = BYZANTINE_SCENARIOS["forged-obituary"].make_config()
        assert cfg.obituary_verify
        assert cfg.quarantine_strikes == HARDENING["quarantine_strikes"]
        stock = BYZANTINE_SCENARIOS["forged-obituary-unhardened"].make_config()
        assert not stock.obituary_verify
        assert stock.join_pow_bits == 0

    def test_plans_record_their_cast(self):
        scenario = BYZANTINE_SCENARIOS["forged-obituary"]
        plan = scenario.build_plan(16, seed=0)
        assert isinstance(plan, ByzantinePlan)
        assert plan.events, "the scenario must schedule adversarial events"


@pytest.mark.byzantine
class TestReplayDeterminism:
    def test_same_seed_replays_bit_for_bit(self):
        a = run_scenario("forged-obituary", n=16, seed=1)
        b = run_scenario("forged-obituary", n=16, seed=1)
        assert a.trace == b.trace
        assert a.trace.strip()

    def test_different_seeds_diverge(self):
        a = run_scenario("eclipse", n=16, seed=1)
        b = run_scenario("eclipse", n=16, seed=2)
        assert a.trace != b.trace


@pytest.mark.byzantine
class TestAcceptanceCriterion:
    """Hardening off -> demonstrable SLO breach; hardening on -> healthy."""

    def test_forged_obituary_breaches_without_hardening(self):
        result = run_scenario("forged-obituary-unhardened", health=True)
        assert not result.ok
        assert "forged-eviction" in {v.invariant for v in result.violations}
        assert not result.healthy
        assert "byz.forged_evictions" in breached(result)

    def test_forged_obituary_passes_with_hardening(self):
        result = run_scenario("forged-obituary", health=True)
        assert result.ok, [v.detail for v in result.violations[:5]]
        assert result.healthy, [v.describe() for v in result.health_verdicts]
        judged = {v.slo for v in result.health_verdicts}
        assert "byz.forged_evictions" in judged

    def test_sybil_flood_breaches_without_hardening(self):
        result = run_scenario("sybil-flood-unhardened", health=True)
        assert "sybil-occupancy" in {v.invariant for v in result.violations}
        assert "byz.sybil_fraction" in breached(result)

    def test_sybil_flood_passes_with_hardening(self):
        result = run_scenario("sybil-flood", health=True)
        assert result.ok, [v.detail for v in result.violations[:5]]
        assert result.healthy, [v.describe() for v in result.health_verdicts]
        # The defenses actually engaged: the throttle refused joins.
        assert result.metrics["counters"].get("join.throttled", 0) > 0

    def test_eclipse_hardening_exercises_the_quarantine(self):
        result = run_scenario("eclipse", health=True)
        assert result.ok and result.healthy
        counters = result.metrics["counters"]
        assert counters.get("obituary.verifications", 0) > 0
        assert counters.get("quarantine.additions", 0) > 0

    def test_flash_crowd_is_legitimate_traffic_either_way(self):
        """Admission control must not break a real surge: the flash
        crowd stays healthy with and without the hardening."""
        hardened = run_scenario("flash-crowd", health=True)
        stock = run_scenario("flash-crowd-unhardened", health=True)
        assert hardened.ok and hardened.healthy
        assert stock.ok and stock.healthy


class TestByzantineCli:
    def test_unknown_scenario_exits_two(self, capsys):
        assert main(["chaos", "--byzantine", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_list_includes_byzantine_scenarios(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "forged-obituary" in out
        assert "eclipse-unhardened" in out

    @pytest.mark.byzantine
    def test_byzantine_health_run_exits_zero(self, capsys):
        rc = main(["chaos", "--byzantine", "eclipse", "-n", "16",
                   "--seed", "0", "--health", "default"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "HEALTHY" in out
