"""Chaos + health: live SLO gating, post-hoc verdicts, the CLI exit code."""

from __future__ import annotations

from repro.chaos import SCENARIOS, ChaosRunner
from repro.cli import main
from repro.obs.health import HealthSpec, Slo


def run_smoke(seed=0, n=24, **kwargs):
    return ChaosRunner(SCENARIOS["smoke"], n_nodes=n, seed=seed, **kwargs).run()


def default_spec(n=24):
    return HealthSpec.default(SCENARIOS["smoke"].make_config(), n)


class TestRunnerHealth:
    def test_no_spec_means_vacuously_healthy(self):
        result = run_smoke()
        assert result.health_verdicts == []
        assert result.healthy is True

    def test_spec_forces_observability_and_judges_posthoc(self):
        result = run_smoke(health_spec=default_spec())
        assert result.spans, "a health spec must force span recording on"
        assert result.metrics
        assert result.health_verdicts, "post-hoc evaluation always appended"
        assert result.healthy, [v.describe() for v in result.health_verdicts]
        judged = {v.slo for v in result.health_verdicts}
        assert "mcast.tree_completeness" in judged
        assert "bandwidth.model_ratio" in judged
        assert "peerlist.error_rate" in judged

    def test_health_run_keeps_the_chaos_trace_deterministic(self):
        """Health monitoring draws no randomness and sends no messages:
        the determinism digest must match an unmonitored same-seed run."""
        plain = run_smoke(seed=5)
        judged = run_smoke(seed=5, health_spec=default_spec())
        assert plain.trace == judged.trace

    def test_impossible_slo_breaches_and_names_the_signal(self):
        spec = HealthSpec(
            name="impossible",
            slos=[Slo("peerlist.error_rate",
                      "no network satisfies a negative bound", hi=-1.0)],
        )
        result = run_smoke(health_spec=spec)
        assert not result.healthy
        breaches = [v for v in result.health_verdicts if not v.ok]
        assert breaches
        assert {v.slo for v in breaches} == {"peerlist.error_rate"}
        # The live monitor's gated breaches carry timestamps from inside
        # the run; the post-hoc verdict is stamped at the end.
        assert any(v.time <= result.duration for v in breaches)


class TestChaosHealthCli:
    def test_chaos_health_default_exits_zero_when_healthy(self, capsys):
        rc = main(["chaos", "--scenario", "smoke", "-n", "24",
                   "--seed", "0", "--health", "default"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "HEALTHY" in out

    def test_chaos_health_breach_exits_one(self, tmp_path, capsys):
        spec_path = str(tmp_path / "impossible.json")
        HealthSpec(
            name="impossible",
            slos=[Slo("peerlist.error_rate", "always breached", hi=-1.0)],
        ).save(spec_path)
        rc = main(["chaos", "--scenario", "smoke", "-n", "24",
                   "--seed", "0", "--health", spec_path])
        out = capsys.readouterr().out
        assert rc == 1
        assert "UNHEALTHY" in out
        assert "peerlist.error_rate" in out
