"""InvariantMonitor: safety vs. quiescence-gated convergence checking."""

from __future__ import annotations

import pytest

from repro.chaos import InvariantMonitor, quiescence_bound
from repro.chaos.scenarios import CHAOS_CONFIG
from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork

CONFIG = ProtocolConfig(
    id_bits=16,
    probe_interval=5.0,
    probe_timeout=1.0,
    probe_misses_to_fail=2,
    multicast_ack_timeout=1.0,
    report_timeout=2.0,
    level_check_interval=1e6,
    multicast_processing_delay=0.1,
)


def make_net(n=12, seed=3):
    net = PeerWindowNetwork(config=CONFIG, master_seed=seed)
    keys = net.seed_nodes([1e9] * n)
    net.run(until=5.0)
    return net, keys


def kinds(violations):
    return {v.invariant for v in violations}


class TestQuiescenceBound:
    def test_chaos_config_bound(self):
        # detect (8 + 3*2) + disseminate (2*4 + 3*2 + 16*0.25) + slack (8)
        assert quiescence_bound(CHAOS_CONFIG) == pytest.approx(40.0)

    def test_bound_scales_with_repair_budget(self):
        from dataclasses import replace

        slower = replace(CHAOS_CONFIG, probe_misses_to_fail=5, report_timeout=8.0)
        assert quiescence_bound(slower) > quiescence_bound(CHAOS_CONFIG)


class TestHealthyNetwork:
    def test_converged_network_is_violation_free(self):
        net, _ = make_net()
        monitor = InvariantMonitor(net, quiescence=0.0)
        assert monitor.check() == []
        assert monitor.safety_checks == 1
        assert monitor.convergence_checks == 1


class TestConvergenceViolations:
    def test_silent_crash_shows_stale_pointers(self):
        net, keys = make_net()
        net.crash(keys[4])
        monitor = InvariantMonitor(net, quiescence=0.0)
        found = monitor.check()  # before detection: everyone is stale
        # Every live node still points at the corpse, and its ring
        # predecessor's expected successor has shifted past it.
        assert kinds(found) == {"stale-pointer", "ring-closed"}
        stale = [v for v in found if v.invariant == "stale-pointer"]
        assert len(stale) == len(net.live_nodes())

    def test_removed_peer_shows_missing_and_ring_break(self):
        net, keys = make_net()
        holder = net.node(keys[0])
        succ = holder.peer_list.ring_successor(holder.node_id)
        holder.peer_list.remove(succ.node_id)
        monitor = InvariantMonitor(net, quiescence=0.0)
        found = monitor.check()
        assert kinds(found) == {"missing-peer", "ring-closed"}
        assert {v.node_key for v in found} == {keys[0]}


class TestQuiescenceGating:
    def test_disruption_holds_convergence_checks(self):
        net, keys = make_net()
        net.crash(keys[4])  # convergence is now (transiently) false
        monitor = InvariantMonitor(net)  # config-derived quiescence
        monitor.note_disruption()
        assert monitor.check() == []  # safety only: no false alarm
        assert monitor.safety_checks == 1
        assert monitor.convergence_checks == 0

    def test_open_faults_hold_convergence_even_when_clock_elapsed(self):
        net, keys = make_net()
        monitor = InvariantMonitor(net, quiescence=0.0)
        net.transport.set_zombie(keys[2], True)
        assert not monitor.quiescent
        monitor.check()
        assert monitor.convergence_checks == 0
        net.transport.set_zombie(keys[2], False)
        assert monitor.quiescent

    def test_quiescence_clock_restarts_on_note(self):
        net, _ = make_net()
        monitor = InvariantMonitor(net, quiescence=10.0)
        monitor.note_disruption()
        assert not monitor.quiescent
        net.run(until=net.sim.now + 11.0)
        assert monitor.quiescent


class TestSafetyViolations:
    def test_out_of_prefix_pointer_flagged(self):
        net, keys = make_net()
        node = net.node(keys[1])
        # A level mismatch makes some held pointers unrecognizable from
        # their (nodeId, level) pair alone.
        node.ctx.level = 4
        monitor = InvariantMonitor(net, quiescence=1e9)
        found = monitor.check()
        assert "audience-recognizable" in kinds(found)
        assert all(v.node_key == keys[1] for v in found)

    def test_violation_cap(self):
        net, keys = make_net()
        net.crash(keys[3])
        monitor = InvariantMonitor(net, quiescence=0.0, max_violations=4)
        monitor.check()
        monitor.check()
        assert len(monitor.violations) == 4


class TestPeriodicTask:
    def test_start_checks_on_interval(self):
        net, _ = make_net()
        monitor = InvariantMonitor(net, interval=2.0, quiescence=0.0)
        monitor.start()
        net.run(until=net.sim.now + 9.0)
        monitor.stop()
        assert monitor.safety_checks == 4
        assert monitor.violations == []
