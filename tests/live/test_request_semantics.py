"""Request/response semantics are a kernel contract, not a backend
detail: first reply wins, exactly one of on_reply/on_timeout fires, late
and duplicate replies fall through to the endpoint handler, and
unregister cancels only the pendings the departing endpoint originated.

Every scenario here runs twice — once on the simulated Transport, once
on the UDP RealtimeRuntime — through a tiny backend-neutral env, so a
semantic drift between backends fails the same named test.
"""

import asyncio

import pytest

from repro.core.runtime import SimRuntime
from repro.live.runtime import RealtimeRuntime
from repro.net.latency import PairwiseLatencyModel
from repro.net.message import Message
from repro.net.transport import Transport
from repro.sim.engine import Simulator


class BaseEnv:
    """Two endpoints, a and b; a issues requests, b's behavior is set
    per-scenario via ``respond``."""

    timeout = 1.0

    def __init__(self):
        self.a_inbox = []
        self.b_inbox = []
        self.replies = []
        self.timeouts = 0
        self.respond = None

    def _a_handler(self, msg):
        self.a_inbox.append(msg)

    def _b_handler(self, msg):
        self.b_inbox.append(msg)
        if self.respond is not None:
            self.respond(msg)

    def _on_timeout(self):
        self.timeouts += 1

    def reply_to(self, msg):
        self.responder.send(
            Message(src=self.b, dst=self.a, kind="probe-ack", reply_to=msg.msg_id)
        )

    def request(self, timeout=None):
        msg = Message(src=self.a, dst=self.b, kind="probe")
        self.requester.request(
            msg,
            self.timeout if timeout is None else timeout,
            on_reply=self.replies.append,
            on_timeout=self._on_timeout,
        )
        return msg


class SimEnv(BaseEnv):
    async def start(self):
        self.sim = Simulator()
        transport = Transport(self.sim, PairwiseLatencyModel(spread=0.0))
        self.requester = self.responder = SimRuntime(self.sim, transport)
        self.a, self.b = "addr-a", "addr-b"
        self.requester.register(self.a, self._a_handler)
        self.requester.register(self.b, self._b_handler)

    async def wait(self, seconds):
        self.sim.run(until=self.sim.now + seconds)

    def later(self, delay, fn, *args):
        self.requester.schedule(delay, fn, *args)

    async def stop(self):
        pass


class LiveEnv(BaseEnv):
    async def start(self):
        self.requester = await RealtimeRuntime.create(port=0)
        self.responder = await RealtimeRuntime.create(port=0)
        self.a = self.requester.address
        self.b = self.responder.address
        self.requester.register(self.a, self._a_handler)
        self.responder.register(self.b, self._b_handler)

    async def wait(self, seconds):
        await asyncio.sleep(seconds)

    def later(self, delay, fn, *args):
        self.responder.schedule(delay, fn, *args)

    async def stop(self):
        await self.requester.close()
        await self.responder.close()


def run_scenario(env_cls, scenario):
    async def main():
        env = env_cls()
        await env.start()
        try:
            await scenario(env)
        finally:
            await env.stop()

    asyncio.run(main())


BACKENDS = [SimEnv, LiveEnv]


# -- the shared contract ----------------------------------------------------

async def reply_in_time(env):
    env.respond = env.reply_to
    env.request()
    await env.wait(env.timeout * 2)
    assert len(env.replies) == 1
    assert env.replies[0].kind == "probe-ack"
    assert env.timeouts == 0
    # A correlated reply is consumed by on_reply, not the handler.
    assert env.a_inbox == []


async def no_reply_times_out(env):
    env.respond = None
    env.request()
    await env.wait(env.timeout * 2)
    assert env.replies == []
    assert env.timeouts == 1
    await env.wait(env.timeout)
    assert env.timeouts == 1  # fires exactly once


async def duplicate_reply_falls_through(env):
    def respond_twice(msg):
        env.reply_to(msg)
        env.reply_to(msg)

    env.respond = respond_twice
    env.request()
    await env.wait(env.timeout * 2)
    # First reply resolves the pending; the duplicate is an ordinary
    # message for the endpoint handler (the protocol's stale-ack path).
    assert len(env.replies) == 1
    assert env.timeouts == 0
    assert len(env.a_inbox) == 1
    assert env.a_inbox[0].reply_to == env.replies[0].reply_to


async def late_reply_falls_through(env):
    env.respond = lambda msg: env.later(env.timeout * 2, env.reply_to, msg)
    env.request()
    await env.wait(env.timeout * 4)
    assert env.timeouts == 1
    assert env.replies == []
    assert len(env.a_inbox) == 1
    assert env.a_inbox[0].kind == "probe-ack"


async def unregister_cancels_own_pendings(env):
    env.respond = env.reply_to
    env.request()
    env.requester.unregister(env.a)
    await env.wait(env.timeout * 3)
    # Neither callback fires: the requester is gone, and its pending
    # went with it.
    assert env.replies == []
    assert env.timeouts == 0
    assert env.a_inbox == []


async def request_validates_timeout(env):
    with pytest.raises(ValueError):
        env.request(timeout=0.0)
    with pytest.raises(ValueError):
        env.request(timeout=-1.0)


@pytest.mark.parametrize("env_cls", BACKENDS)
def test_reply_in_time(env_cls):
    run_scenario(env_cls, reply_in_time)


@pytest.mark.parametrize("env_cls", BACKENDS)
def test_no_reply_times_out(env_cls):
    run_scenario(env_cls, no_reply_times_out)


@pytest.mark.parametrize("env_cls", BACKENDS)
def test_duplicate_reply_falls_through(env_cls):
    run_scenario(env_cls, duplicate_reply_falls_through)


@pytest.mark.parametrize("env_cls", BACKENDS)
def test_late_reply_falls_through(env_cls):
    run_scenario(env_cls, late_reply_falls_through)


@pytest.mark.parametrize("env_cls", BACKENDS)
def test_unregister_cancels_own_pendings(env_cls):
    run_scenario(env_cls, unregister_cancels_own_pendings)


@pytest.mark.parametrize("env_cls", BACKENDS)
def test_request_validates_timeout(env_cls):
    run_scenario(env_cls, request_validates_timeout)


# -- live-only: datagram retransmits within the timeout window --------------

def test_live_retransmit_recovers_a_lost_request():
    async def scenario():
        requester = await RealtimeRuntime.create(port=0, request_retries=1)
        responder = await RealtimeRuntime.create(port=0)
        a, b = requester.address, responder.address
        replies, b_seen = [], []
        requester.register(a, lambda msg: None)

        def b_handler(msg):
            b_seen.append(msg.msg_id)
            # Simulate a lost first datagram: only the retransmitted
            # copy (same msg_id) gets a reply.
            if b_seen.count(msg.msg_id) == 2:
                responder.send(
                    Message(src=b, dst=a, kind="probe-ack", reply_to=msg.msg_id)
                )

        responder.register(b, b_handler)
        try:
            msg = Message(src=a, dst=b, kind="probe")
            requester.request(
                msg, 2.0, on_reply=replies.append, on_timeout=lambda: None
            )
            await asyncio.sleep(3.0)
            assert b_seen.count(msg.msg_id) == 2
            assert requester.retransmits == 1
            assert len(replies) == 1
        finally:
            await requester.close()
            await responder.close()

    asyncio.run(scenario())
