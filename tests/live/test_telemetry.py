"""Live telemetry sidecars: argv plumbing + the swarm-side merge.

Exercises the merge path with synthetic per-node sidecar files —
the real UDP swarm is covered by the (slower) mini-swarm test — so the
ordering and tolerance rules are pinned without spawning processes.
"""

import os

import pytest

from repro.live.swarm import (
    _node_argv,
    _settled_frames,
    launch_swarm,
    merge_telemetry,
    swarm_specs,
)
from repro.obs.stream import (
    WindowAggregator,
    WindowBucket,
    frame_line,
    load_frames_file,
    telemetry_header_line,
)
from repro.obs.trace import Span


def _span(name, node, status="ok"):
    span = Span(f"t-{name}", f"{node}.s", None, name, node, 0.0)
    span.end = 1.0
    span.status = status
    return span


def _specs(n=2, telemetry_window=2.0):
    return swarm_specs(
        n, 47000, master_seed=0, epoch=0.0, duration=10.0,
        telemetry_window=telemetry_window,
    )


def _write_sidecar(outdir, spec, probes_per_window, truncate=False):
    agg = WindowAggregator()
    path = os.path.join(outdir, f"telemetry_{spec.port}.jsonl")
    with open(path, "w") as fh:
        fh.write(telemetry_header_line() + "\n")
        for i, probes in enumerate(probes_per_window):
            bucket = WindowBucket()
            bucket.add_node(
                [_span("probe", spec.address)] * probes, {"x": float(probes)}
            )
            fh.write(frame_line(
                agg.close_window(i, i * 2.0, (i + 1) * 2.0, bucket)
            ) + "\n")
        if truncate:
            fh.write('{"window": 99, "t0"')  # killed mid-flush
    return path


def test_node_argv_carries_telemetry_window():
    with_flag, without = _specs(telemetry_window=2.0), _specs(telemetry_window=0.0)
    argv = _node_argv(with_flag[0], "/tmp/out")
    assert argv[argv.index("--telemetry-window") + 1] == "2.0"
    assert "--telemetry-window" not in _node_argv(without[0], "/tmp/out")


def test_watch_requires_a_telemetry_window(tmp_path):
    with pytest.raises(ValueError, match="telemetry_window"):
        launch_swarm(2, 5.0, str(tmp_path), watch=True, telemetry_window=0.0)


def test_merge_telemetry_folds_windows_across_nodes(tmp_path):
    specs = _specs()
    _write_sidecar(str(tmp_path), specs[0], [2, 1])
    _write_sidecar(str(tmp_path), specs[1], [1, 0, 3], truncate=True)
    out = merge_telemetry(str(tmp_path), specs)
    frames, version, skipped = load_frames_file(out)
    assert (version, skipped) == (1, 0)  # merged file itself is clean
    assert [f["window"] for f in frames] == [0, 1, 2, 3]
    assert [f.get("final", False) for f in frames] == [
        False, False, False, True,
    ]
    assert [f["probe"]["count"] for f in frames] == [3, 1, 3, 7]
    assert frames[0]["counters"] == {"x": 3.0}
    assert frames[-1]["counters"] == {"x": 7.0}  # cumulative final


def test_merge_telemetry_is_node_order_invariant(tmp_path):
    specs = _specs()
    _write_sidecar(str(tmp_path), specs[0], [1, 2])
    _write_sidecar(str(tmp_path), specs[1], [2, 1])
    one = open(merge_telemetry(str(tmp_path), specs)).read()
    two = open(merge_telemetry(str(tmp_path), list(reversed(specs)))).read()
    assert one == two


def test_settled_frames_waits_for_every_node(tmp_path):
    """The live watcher only renders windows every sidecar has closed —
    otherwise a slow node's contribution would be silently dropped from
    an already-painted window."""
    specs = _specs()
    _write_sidecar(str(tmp_path), specs[0], [1, 1, 1])
    _write_sidecar(str(tmp_path), specs[1], [1, 1])
    frames = _settled_frames(str(tmp_path), specs)
    assert [f["window"] for f in frames] == [0, 1]
    assert all(f["taps"] == 2 for f in frames)


def test_settled_frames_empty_until_all_sidecars_exist(tmp_path):
    specs = _specs()
    _write_sidecar(str(tmp_path), specs[0], [1])
    assert _settled_frames(str(tmp_path), specs) == []
