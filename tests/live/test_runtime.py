"""RealtimeRuntime specifics: binding, addressing, malformed-datagram
hygiene, the RealtimeClock, and Transport-compatible stats."""

import asyncio

import pytest

from repro.kernel.clock import Clock
from repro.live.clock import RealtimeClock
from repro.live.runtime import RealtimeRuntime, format_address, parse_address
from repro.net.message import Message
from repro.net.transport import Transport
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def test_parse_address_round_trip_and_rejection():
    assert parse_address("127.0.0.1:4700") == ("127.0.0.1", 4700)
    assert format_address("127.0.0.1", 4700) == "127.0.0.1:4700"
    for bad in (4700, "no-port", None):
        with pytest.raises(ValueError):
            parse_address(bad)


def test_ephemeral_bind_and_register_contract():
    async def scenario():
        rt = await RealtimeRuntime.create(port=0)
        try:
            host, port = parse_address(rt.address)
            assert host == "127.0.0.1" and port > 0
            rt.register(rt.address, lambda msg: None)
            assert rt.is_alive(rt.address)
            assert not rt.is_alive("127.0.0.1:1")
            with pytest.raises(ValueError):
                rt.register(rt.address, lambda msg: None)  # duplicate
            with pytest.raises(ValueError):
                rt.register("not-an-address", lambda msg: None)
            rt.unregister(rt.address)
            assert not rt.is_alive(rt.address)
        finally:
            await rt.close()

    asyncio.run(scenario())


def test_malformed_datagrams_are_counted_and_dropped():
    async def scenario():
        rt = await RealtimeRuntime.create(port=0)
        inbox = []
        rt.register(rt.address, inbox.append)
        loop = asyncio.get_running_loop()
        sock, _ = await loop.create_datagram_endpoint(
            asyncio.DatagramProtocol, local_addr=("127.0.0.1", 0)
        )
        try:
            dest = parse_address(rt.address)
            sock.sendto(b"junk bytes", dest)
            sock.sendto(b'{"v": 99}', dest)
            await asyncio.sleep(0.3)
            assert rt.malformed == 2
            assert inbox == []  # a wire error never reaches a handler
            assert rt.stats()["malformed"] == 2
        finally:
            sock.close()
            await rt.close()

    asyncio.run(scenario())


def test_message_to_unknown_endpoint_counts_dropped_dead():
    async def scenario():
        rt = await RealtimeRuntime.create(port=0)
        try:
            rt.register(rt.address, lambda msg: None)
            rt.send(Message(src=rt.address, dst=rt.address, kind="probe"))
            await asyncio.sleep(0.2)
            assert rt.delivered == 1
            # Same socket, no such endpoint key -> dead-letter.
            other = format_address("127.0.0.1", parse_address(rt.address)[1])
            rt.unregister(rt.address)
            rt.send(Message(src=other, dst=other, kind="probe"))
            await asyncio.sleep(0.2)
            assert rt.dropped_dead == 1
        finally:
            await rt.close()

    asyncio.run(scenario())


def test_stats_shape_matches_the_simulated_transport():
    async def scenario():
        rt = await RealtimeRuntime.create(port=0)
        try:
            sim_stats = Transport(Simulator(), None).stats()
            assert set(rt.stats()) >= set(sim_stats)
        finally:
            await rt.close()

    asyncio.run(scenario())


def test_close_cancels_pending_timers():
    async def scenario():
        rt = await RealtimeRuntime.create(port=0)
        fired = []
        rt.register(rt.address, lambda msg: None)
        rt.request(
            Message(src=rt.address, dst="127.0.0.1:1", kind="probe"),
            0.3,
            on_reply=fired.append,
            on_timeout=lambda: fired.append("timeout"),
        )
        await rt.close()
        await asyncio.sleep(0.6)
        assert fired == []  # close() means no callbacks, not on_timeout

    asyncio.run(scenario())


# -- the clock itself -------------------------------------------------------

def test_realtime_clock_shares_an_epoch():
    async def scenario():
        epoch_clock = RealtimeClock(epoch=None)
        assert isinstance(epoch_clock, Clock)
        # A clock created "an hour after" the epoch reads an hour in.
        import time  # noqa: F401  (test process; prod reads live in repro.live.clock)

        shifted = RealtimeClock(epoch=time.time() - 3600.0)
        assert shifted.now == pytest.approx(3600.0, abs=5.0)
        assert epoch_clock.now == pytest.approx(0.0, abs=5.0)

    asyncio.run(scenario())


def test_realtime_timers_fire_and_cancel():
    async def scenario():
        clock = RealtimeClock()
        fired = []
        clock.schedule(0.05, fired.append, "a")
        handle = clock.schedule(0.05, fired.append, "b")
        handle.cancel()
        assert not handle.active
        handle.cancel()  # idempotent
        ticker = clock.every(0.05, fired.append, "tick")
        await asyncio.sleep(0.28)
        ticker.cancel()
        count = fired.count("tick")
        assert fired[0] == "a" and "b" not in fired
        assert count >= 2
        await asyncio.sleep(0.15)
        assert fired.count("tick") == count  # cancelled means stopped

    asyncio.run(scenario())


def test_realtime_every_validations_match_the_kernel_contract():
    async def scenario():
        clock = RealtimeClock()
        with pytest.raises(ValueError):
            clock.every(0.0, lambda: None)
        with pytest.raises(ValueError):
            clock.every(1.0, lambda: None, jitter=1.0)
        with pytest.raises(ValueError):
            clock.every(1.0, lambda: None, jitter=0.1)  # jitter needs an rng
        with pytest.raises(ValueError):
            clock.schedule(-0.1, lambda: None)
        # Jittered periodics draw from the supplied stream only.
        rng = RandomStreams(7).spawn("jitter", 0)
        ticker = clock.every(0.05, lambda: None, jitter=0.2, rng=rng)
        await asyncio.sleep(0.12)
        ticker.cancel()
        assert ticker.fired >= 1

    asyncio.run(scenario())


# -- retransmit cap and give-up accounting (ISSUE 7 satellite) --------------

def test_request_retries_has_a_hard_cap():
    from repro.live.runtime import MAX_REQUEST_RETRIES

    async def scenario():
        clock = RealtimeClock(epoch=None)
        RealtimeRuntime(clock, "127.0.0.1", request_retries=MAX_REQUEST_RETRIES)
        with pytest.raises(ValueError, match="request_retries"):
            RealtimeRuntime(clock, "127.0.0.1",
                            request_retries=MAX_REQUEST_RETRIES + 1)
        with pytest.raises(ValueError, match="request_retries"):
            RealtimeRuntime(clock, "127.0.0.1", request_retries=-1)

    asyncio.run(scenario())


def test_exhausted_retransmits_count_one_giveup():
    async def scenario():
        rt = await RealtimeRuntime.create(port=0, request_retries=2)
        timeouts = []
        try:
            rt.register(rt.address, lambda msg: None)
            # Nobody listens on port 1: every retransmit is futile and
            # the request times out -> exactly one give-up.
            rt.request(
                Message(src=rt.address, dst="127.0.0.1:1", kind="probe"),
                0.3,
                on_reply=lambda msg: timeouts.append("reply"),
                on_timeout=lambda: timeouts.append("timeout"),
            )
            await asyncio.sleep(0.6)
            assert timeouts == ["timeout"]
            assert rt.retransmits == 2
            assert rt.retransmit_giveups == 1
            assert rt.stats()["retransmit_giveups"] == 1
        finally:
            await rt.close()

    asyncio.run(scenario())


def test_timeout_without_retries_is_not_a_giveup():
    async def scenario():
        rt = await RealtimeRuntime.create(port=0, request_retries=0)
        timeouts = []
        try:
            rt.register(rt.address, lambda msg: None)
            rt.request(
                Message(src=rt.address, dst="127.0.0.1:1", kind="probe"),
                0.3,
                on_reply=lambda msg: timeouts.append("reply"),
                on_timeout=lambda: timeouts.append("timeout"),
            )
            await asyncio.sleep(0.6)
            assert timeouts == ["timeout"]
            # The metric means "retransmitted and still gave up", not
            # "timed out": a retry-less timeout is the protocol's normal
            # signal and must not inflate it.
            assert rt.retransmit_giveups == 0
        finally:
            await rt.close()

    asyncio.run(scenario())


def test_answered_request_is_not_a_giveup():
    async def scenario():
        rt = await RealtimeRuntime.create(port=0, request_retries=2)
        got = []
        try:
            responder = format_address("127.0.0.1", rt.port)
            caller = responder  # same socket hosts both endpoints

            def respond(msg):
                rt.send(msg.make_reply("probe-ack"))

            rt.register(caller, lambda msg: respond(msg))
            rt.request(
                Message(src=caller, dst=caller, kind="probe"),
                1.0,
                on_reply=got.append,
                on_timeout=lambda: got.append("timeout"),
            )
            await asyncio.sleep(0.5)
            assert len(got) == 1 and got[0] != "timeout"
            assert rt.retransmit_giveups == 0
        finally:
            await rt.close()

    asyncio.run(scenario())
