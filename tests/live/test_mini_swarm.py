"""An in-process mini swarm: real PeerWindowNodes over real UDP sockets
on one event loop, exporting the same schema-valid span artifact the
simulator exports.  This is the single-process end-to-end check behind
``repro live swarm`` (which runs the multi-process version)."""

import asyncio
import json

from repro.core.node import PeerWindowNode
from repro.live.node import live_config, node_id_for, LiveNodeSpec
from repro.live.runtime import RealtimeRuntime
from repro.obs.export import validate_span_file, write_spans_jsonl
from repro.obs.trace import NodeObs
from repro.sim.rng import RandomStreams


N = 4
DURATION = 6.0


def test_mini_swarm_joins_and_exports_valid_spans(tmp_path):
    async def scenario():
        config = live_config()
        epoch = None
        runtimes, nodes, obses, specs = [], [], [], []
        streams = RandomStreams(0)
        for i in range(N):
            rt = await RealtimeRuntime.create(port=0, epoch=epoch, request_retries=1)
            if epoch is None:
                epoch = rt.clock.epoch  # all later runtimes share it
            runtimes.append(rt)
        seed_addr = runtimes[0].address
        for i, rt in enumerate(runtimes):
            host, port = rt.host, rt.port
            spec = LiveNodeSpec(
                host=host, port=port, index=i, n_nodes=N,
                master_seed=0, epoch=epoch, duration=DURATION,
            )
            obs = NodeObs(rt.address, enabled=True)
            node = PeerWindowNode(
                runtime=rt,
                config=config,
                node_id=node_id_for(spec, config),
                address=rt.address,
                threshold_bps=4000.0,
                rng=streams.spawn("node", i),
                obs=obs,
            )
            specs.append(spec)
            obses.append(obs)
            nodes.append(node)
        try:
            nodes[0].bootstrap_first(level=0)
            joined = []
            for i in range(1, N):
                done = asyncio.get_running_loop().create_future()
                nodes[i].join_via(seed_addr, on_done=done.set_result)
                joined.append(await done)
            assert joined == [True] * (N - 1)
            # Let probes / level checks / multicast trees run for a bit.
            await asyncio.sleep(DURATION - 2.0)
            for node in nodes:
                if node.ctx.alive:
                    node._stop_loops()
            await asyncio.sleep(1.0)
        finally:
            for rt in runtimes:
                await rt.close()

        # Every joiner knows the seed; levels are assigned.
        assert all(node.level is not None for node in nodes)
        total_delivered = sum(rt.delivered for rt in runtimes)
        assert total_delivered > 0
        assert all(rt.malformed == 0 for rt in runtimes)

        # Merge spans the way Observability.spans does (sorted node
        # order, stable by start) and validate the artifact.
        per_node = sorted(zip(runtimes, obses), key=lambda p: str(p[0].address))
        merged = [span for _, obs in per_node for span in obs.spans]
        merged.sort(key=lambda s: s.start)
        path = tmp_path / "spans.jsonl"
        write_spans_jsonl(str(path), merged)
        problems = validate_span_file(str(path))
        assert problems == [], problems
        with open(path) as fh:
            header = json.loads(fh.readline())
        assert header["schema"] == "repro.span"

    asyncio.run(scenario())
