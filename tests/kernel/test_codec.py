"""Wire-codec round-trip guarantees, property-tested per message kind."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import EventKind, EventRecord
from repro.core.nodeid import NodeId
from repro.core.pointer import Pointer
from repro.kernel.codec import (
    MESSAGE_KINDS,
    WIRE_SCHEMA_VERSION,
    CodecError,
    decode_message,
    encode_message,
)
from repro.net.message import Message
from repro.obs.trace import SpanRef

# -- strategies -------------------------------------------------------------

addresses = st.one_of(
    st.integers(min_value=0, max_value=2**32),
    st.from_regex(r"127\.0\.0\.1:[0-9]{2,5}", fullmatch=True),
)
levels = st.integers(min_value=0, max_value=16)
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
json_scalars = st.one_of(st.none(), st.booleans(), st.integers(), finite, st.text())
json_trees = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=8), children, max_size=3),
    ),
    max_leaves=8,
)


@st.composite
def node_ids(draw):
    bits = draw(st.integers(min_value=16, max_value=128))
    return NodeId(draw(st.integers(min_value=0, max_value=2**bits - 1)), bits)


@st.composite
def pointers(draw):
    nid = draw(node_ids())
    return Pointer(
        node_id=nid,
        address=draw(addresses),
        level=draw(st.integers(min_value=0, max_value=min(16, nid.bits))),
        attached_info=draw(json_trees),
        seen_join_time=draw(st.none() | finite),
        last_refresh=draw(finite),
        last_event_seq=draw(st.integers(min_value=-1, max_value=2**31)),
    )


@st.composite
def events(draw):
    return EventRecord(
        kind=draw(st.sampled_from(list(EventKind))),
        subject_id=draw(node_ids()),
        subject_level=draw(levels),
        subject_address=draw(addresses),
        seq=draw(st.integers(min_value=0, max_value=2**31)),
        origin_time=draw(finite),
        attached_info=draw(json_trees),
    )


def payloads_for(kind):
    """A strategy producing schema-valid payloads for ``kind`` — every
    kind in MESSAGE_KINDS must have an entry here, so adding a codec
    schema without extending the property test fails loudly."""
    ptr_lists = st.lists(pointers(), max_size=3)
    by_kind = {
        "probe": st.none(),
        "probe-ack": st.none(),
        "mcast-ack": st.none(),
        "bridge-ack": st.none(),
        "get-topnodes": st.none(),
        "get-top": node_ids(),
        "level-query": node_ids(),
        "top-ptr": st.none() | pointers(),
        "level-info": st.tuples(levels, finite, ptr_lists),
        "download": st.tuples(node_ids(), levels),
        "download-data": st.tuples(ptr_lists, ptr_lists),
        "mcast": st.tuples(events(), st.integers(min_value=0, max_value=128)),
        "event-copy": events(),
        "report": events(),
        "report-ack": ptr_lists,
        "topnodes": ptr_lists,
        "bridge-subscribe": st.tuples(pointers(), st.booleans()),
    }
    assert set(by_kind) == set(MESSAGE_KINDS)
    return by_kind[kind]


@st.composite
def messages(draw):
    kind = draw(st.sampled_from(MESSAGE_KINDS))
    reply_to = draw(st.none() | st.integers(min_value=0, max_value=2**31))
    trace = draw(
        st.none()
        | st.builds(
            SpanRef, st.text(max_size=12), st.text(max_size=12),
            st.integers(min_value=0, max_value=64),
        )
    )
    return Message(
        src=draw(addresses),
        dst=draw(addresses),
        kind=kind,
        payload=draw(payloads_for(kind)),
        size_bits=draw(st.integers(min_value=0, max_value=10_000)),
        reply_to=reply_to,
        trace=trace,
    )


# -- round-trip -------------------------------------------------------------

@settings(max_examples=300, deadline=None)
@given(messages())
def test_encode_decode_identity(msg):
    wire = encode_message(msg)
    assert isinstance(wire, bytes)
    back = decode_message(wire)
    assert back == msg
    # msg_id survives the wire: reply correlation works across processes.
    assert back.msg_id == msg.msg_id
    # Re-encoding is stable (canonical form).
    assert encode_message(back) == wire


def test_every_kind_has_a_deterministic_example():
    """One concrete round-trip per kind, so a schema regression names
    the kind even if hypothesis shrinks elsewhere."""
    ptr = Pointer(NodeId(0b1011, 4), "127.0.0.1:9001", 2,
                  attached_info={"cpu": 0.5}, seen_join_time=1.0,
                  last_refresh=2.0, last_event_seq=3)
    ev = EventRecord(EventKind.JOIN, NodeId(5, 4), 1, "127.0.0.1:9002", 7, 8.5)
    samples = {
        "probe": None, "probe-ack": None, "mcast-ack": None,
        "bridge-ack": None, "get-topnodes": None,
        "get-top": NodeId(3, 4), "level-query": NodeId(3, 4),
        "top-ptr": ptr, "level-info": (2, 123.5, [ptr]),
        "download": (NodeId(9, 4), 2), "download-data": ([ptr], []),
        "mcast": (ev, 3), "event-copy": ev, "report": ev,
        "report-ack": [ptr], "topnodes": [ptr, ptr.copy()],
        "bridge-subscribe": (ptr, True),
    }
    assert set(samples) == set(MESSAGE_KINDS)
    for kind, payload in samples.items():
        msg = Message(src="127.0.0.1:1", dst="127.0.0.1:2", kind=kind,
                      payload=payload, trace=SpanRef("t", "s", 1))
        assert decode_message(encode_message(msg)) == msg, kind


def test_trace_decodes_to_spanref():
    msg = Message(src=1, dst=2, kind="probe", trace=("trace", "span", 4))
    back = decode_message(encode_message(msg))
    assert isinstance(back.trace, SpanRef)
    assert back.trace.span_id == "span" and back.trace.depth == 4


# -- schema rejection -------------------------------------------------------

def test_unknown_kind_rejected_both_ways():
    with pytest.raises(CodecError):
        encode_message(Message(src=1, dst=2, kind="no-such-kind"))
    wire = json.loads(encode_message(Message(src=1, dst=2, kind="probe")))
    wire["kind"] = "no-such-kind"
    with pytest.raises(CodecError):
        decode_message(json.dumps(wire).encode())


def test_unknown_version_rejected():
    wire = json.loads(encode_message(Message(src=1, dst=2, kind="probe")))
    wire["v"] = WIRE_SCHEMA_VERSION + 1
    with pytest.raises(CodecError):
        decode_message(json.dumps(wire).encode())


def test_envelope_field_set_is_exact():
    wire = json.loads(encode_message(Message(src=1, dst=2, kind="probe")))
    extra = dict(wire, surprise=1)
    with pytest.raises(CodecError):
        decode_message(json.dumps(extra).encode())
    missing = {k: v for k, v in wire.items() if k != "bits"}
    with pytest.raises(CodecError):
        decode_message(json.dumps(missing).encode())


def test_body_schema_enforced_on_decode():
    wire = json.loads(encode_message(Message(src=1, dst=2, kind="probe")))
    wire["body"] = {"not": "null"}
    with pytest.raises(CodecError):
        decode_message(json.dumps(wire).encode())


def test_payload_shape_enforced_on_encode():
    with pytest.raises(CodecError):
        encode_message(Message(src=1, dst=2, kind="mcast", payload=("x",)))
    with pytest.raises(CodecError):
        encode_message(Message(src=1, dst=2, kind="get-top", payload=7))


def test_non_json_attached_info_rejected():
    ptr = Pointer(NodeId(1, 4), 1, 0, attached_info=object())
    with pytest.raises(CodecError):
        encode_message(Message(src=1, dst=2, kind="top-ptr", payload=ptr))


def test_malformed_datagrams_rejected():
    with pytest.raises(CodecError):
        decode_message(b"\xff\xfe not json")
    with pytest.raises(CodecError):
        decode_message(b"[1,2,3]")


def test_get_top_dual_form_round_trip():
    """The §4.3 get-top accepts both wire shapes (additive, DESIGN §16):
    the bare joiner id, and ``(joiner_id, nonce)`` carrying the
    admission proof-of-work token."""
    bare = Message(src="127.0.0.1:1", dst="127.0.0.1:2", kind="get-top",
                   payload=NodeId(3, 4))
    assert decode_message(encode_message(bare)) == bare
    with_token = Message(src="127.0.0.1:1", dst="127.0.0.1:2", kind="get-top",
                         payload=(NodeId(3, 4), 1234))
    back = decode_message(encode_message(with_token))
    assert back == with_token
    assert back.payload == (NodeId(3, 4), 1234)


def test_get_top_token_shape_enforced():
    for payload in ((NodeId(3, 4), -1),        # negative nonce
                    (NodeId(3, 4), True),      # bool is not a nonce
                    (NodeId(3, 4), 1, 2)):     # wrong arity
        msg = Message(src="127.0.0.1:1", dst="127.0.0.1:2", kind="get-top",
                      payload=payload)
        with pytest.raises(CodecError):
            encode_message(msg)
    # Decode side: a token object with a negative nonce is rejected.
    good = encode_message(
        Message(src="127.0.0.1:1", dst="127.0.0.1:2", kind="get-top",
                payload=(NodeId(3, 4), 7))
    )
    tampered = good.replace(b'"nonce":7', b'"nonce":-7')
    assert tampered != good
    with pytest.raises(CodecError):
        decode_message(tampered)
