"""The backend-neutral kernel surface: SimClock delegation, the shared
NodeRuntime ABC, and the slotted wire types."""

import pytest

from repro.core.nodeid import NodeId
from repro.core.pointer import Pointer
from repro.kernel import Clock, NodeRuntime, SimClock
from repro.net.message import Message
from repro.sim.engine import Simulator


def test_sim_clock_delegates_now_and_schedule():
    sim = Simulator()
    clock = SimClock(sim)
    assert isinstance(clock, Clock)
    fired = []
    clock.schedule(3.0, fired.append, "a")
    handle = clock.schedule(5.0, fired.append, "b")
    handle.cancel()
    assert not handle.active
    sim.run(until=10.0)
    assert fired == ["a"]
    assert clock.now == pytest.approx(10.0)


def test_sim_clock_every_matches_simulator_periodic():
    sim = Simulator()
    clock = SimClock(sim)
    ticks = []
    task = clock.every(2.0, lambda: ticks.append(clock.now), start_delay=1.0)
    sim.run(until=7.5)
    assert ticks == [1.0, 3.0, 5.0, 7.0]
    task.cancel()
    sim.run(until=20.0)
    assert len(ticks) == 4


def test_sim_clock_every_validations_mirror_the_kernel_contract():
    from repro.sim.engine import SimulationError

    clock = SimClock(Simulator())
    with pytest.raises(SimulationError):
        clock.every(0.0, lambda: None)
    with pytest.raises(SimulationError):
        clock.every(1.0, lambda: None, jitter=1.0)
    with pytest.raises(SimulationError):
        clock.every(1.0, lambda: None, jitter=0.1)  # jitter needs an rng


def test_core_runtime_reexports_the_kernel_abc():
    # Pre-refactor importers of repro.core.runtime.NodeRuntime must keep
    # getting the one true ABC, not a diverging copy.
    from repro.core import runtime as core_runtime
    from repro.kernel import runtime as kernel_runtime

    assert core_runtime.NodeRuntime is kernel_runtime.NodeRuntime
    assert core_runtime.NodeRuntime is NodeRuntime
    assert issubclass(NodeRuntime, Clock)


def test_all_backends_implement_the_kernel_abc():
    from repro.core.runtime import PartitionedRuntime, SimRuntime
    from repro.live.runtime import RealtimeRuntime
    from repro.net.latency import PairwiseLatencyModel

    assert issubclass(SimRuntime, NodeRuntime)
    assert issubclass(RealtimeRuntime, NodeRuntime)
    # The partitioned coordinator hands each node a NodeRuntime view of
    # its LP — the node-facing surface is the kernel ABC there too.
    part = PartitionedRuntime(nranks=2, topology=PairwiseLatencyModel())
    view = part.runtime_for(7, "addr-7")
    assert isinstance(view, NodeRuntime)


def test_pointer_and_message_are_slotted():
    ptr = Pointer(NodeId(1, 4), "127.0.0.1:9000", 0)
    msg = Message(src=1, dst=2, kind="probe")
    for obj in (ptr, msg):
        assert not hasattr(obj, "__dict__")
        with pytest.raises(AttributeError):
            obj.stuffed_attribute = 1


def test_pointer_copy_still_round_trips_with_slots():
    ptr = Pointer(NodeId(1, 4), 9, 2, attached_info={"x": 1},
                  seen_join_time=1.0, last_refresh=2.0, last_event_seq=5)
    dup = ptr.copy()
    assert dup == ptr and dup is not ptr
    assert dup.attached_info == {"x": 1}
