"""The wire body-schema registry: kind lockstep with the codec,
per-category invariants, and the describe/arity helpers WIRE001 leans
on."""

import pytest

from repro.kernel import codec
from repro.kernel.schema import (
    BODY_SCHEMAS,
    CATEGORIES,
    BodySchema,
    MESSAGE_KINDS,
    payload_schema,
)


def test_schema_and_codec_list_exactly_the_same_kinds():
    assert set(BODY_SCHEMAS) == set(codec.MESSAGE_KINDS)
    assert MESSAGE_KINDS == codec.MESSAGE_KINDS


def test_all_17_kinds_are_described():
    assert len(MESSAGE_KINDS) == 17
    for kind, schema in BODY_SCHEMAS.items():
        assert schema.kind == kind
        assert schema.category in CATEGORIES
        assert schema.doc  # every kind carries prose


def test_tuple_schemas_have_matching_fields_and_types():
    for schema in BODY_SCHEMAS.values():
        if schema.category == "tuple":
            assert schema.arity == len(schema.fields) > 0
            assert len(schema.types) == schema.arity
        else:
            assert schema.arity is None
            assert schema.fields == ()


def test_payload_requirements_per_category():
    assert not BODY_SCHEMAS["probe"].requires_payload
    assert BODY_SCHEMAS["probe"].allows_none
    assert not BODY_SCHEMAS["top-ptr"].requires_payload  # opt_pointer
    assert BODY_SCHEMAS["report"].requires_payload
    assert BODY_SCHEMAS["download"].requires_payload


def test_describe_is_human_readable():
    assert BODY_SCHEMAS["probe"].describe() == "None"
    assert BODY_SCHEMAS["download"].describe() == (
        "(requester_id: NodeId, prefix_len: int)"
    )
    assert "Pointer" in BODY_SCHEMAS["topnodes"].describe()


def test_payload_schema_lookup():
    assert payload_schema("mcast").arity == 2
    with pytest.raises(KeyError):
        payload_schema("no-such-kind")


def test_schema_validation_rejects_malformed_definitions():
    with pytest.raises(ValueError, match="category"):
        BodySchema("x", "blob")
    with pytest.raises(ValueError, match="field names"):
        BodySchema("x", "tuple")
    with pytest.raises(ValueError, match="length mismatch"):
        BodySchema("x", "tuple", fields=("a", "b"), types=("int",))
