"""Shared fixtures for the PeerWindow test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_config() -> ProtocolConfig:
    """A config with short timers so tests converge fast, and narrow ids
    so worked examples stay readable."""
    return ProtocolConfig(
        id_bits=16,
        probe_interval=5.0,
        probe_timeout=1.0,
        multicast_ack_timeout=1.0,
        report_timeout=2.0,
        level_check_interval=10.0,
        multicast_processing_delay=0.1,
    )


def build_network(
    n: int,
    threshold: float = 100_000.0,
    seed: int = 1,
    config: ProtocolConfig | None = None,
    loss_rate: float = 0.0,
    settle: float = 30.0,
) -> tuple[PeerWindowNetwork, list]:
    """Seed an n-node network and let it settle briefly."""
    config = config or ProtocolConfig(
        id_bits=16,
        probe_interval=5.0,
        probe_timeout=1.0,
        multicast_ack_timeout=1.0,
        report_timeout=2.0,
        level_check_interval=10.0,
        multicast_processing_delay=0.1,
    )
    net = PeerWindowNetwork(config=config, master_seed=seed, loss_rate=loss_rate)
    keys = net.seed_nodes([threshold] * n)
    if settle > 0:
        net.run(until=settle)
    return net, keys


@pytest.fixture
def small_network():
    return build_network(24)
