"""Unit tests for the discrete-event core."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_start_time(self):
        assert Simulator().now == 0.0
        assert Simulator(start_time=5.0).now == 5.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_into_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2.0]

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        ran = []
        handle = sim.schedule(1.0, ran.append, 1)
        handle.cancel()
        sim.run()
        assert ran == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert not handle.active

    def test_cancel_after_execution_is_noop(self):
        sim = Simulator()
        ran = []
        handle = sim.schedule(1.0, ran.append, 1)
        sim.run()
        handle.cancel()
        assert ran == [1]
        assert handle.done

    def test_active_property_lifecycle(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.active
        sim.run()
        assert not handle.active


class TestRunBounds:
    def test_run_until_stops_clock_at_until(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run(until=4.0)
        assert sim.now == 4.0
        assert len(sim) == 1  # event still pending

    def test_run_until_executes_events_at_until(self):
        sim = Simulator()
        ran = []
        sim.schedule(4.0, ran.append, 1)
        sim.run(until=4.0)
        assert ran == [1]

    def test_run_resumes_after_until(self):
        sim = Simulator()
        ran = []
        sim.schedule(10.0, ran.append, 1)
        sim.run(until=5.0)
        sim.run(until=15.0)
        assert ran == [1]
        assert sim.now == 15.0

    def test_max_events(self):
        sim = Simulator()
        ran = []
        for i in range(10):
            sim.schedule(float(i + 1), ran.append, i)
        sim.run(max_events=3)
        assert ran == [0, 1, 2]

    def test_empty_run_with_until_advances_clock(self):
        sim = Simulator()
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_cancelled_head_does_not_leak_past_until(self):
        """Regression: with a cancelled entry at the queue head inside the
        window and a live event beyond ``until``, run(until) must NOT
        execute the live event."""
        sim = Simulator()
        ran = []
        dead = sim.schedule(5.0, ran.append, "dead")
        sim.schedule(50.0, ran.append, "far")
        dead.cancel()
        sim.run(until=10.0)
        assert ran == []
        assert sim.now == 10.0
        sim.run(until=60.0)
        assert ran == ["far"]

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()


class TestProcesses:
    def test_process_sleeps(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(sim.now)
            yield 2.0
            trace.append(sim.now)
            yield 3.0
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [0.0, 2.0, 5.0]

    def test_process_waits_on_event(self):
        sim = Simulator()
        evt = sim.event()
        results = []

        def waiter():
            value = yield evt
            results.append((sim.now, value))

        sim.process(waiter())
        sim.schedule(4.0, evt.trigger, "payload")
        sim.run()
        assert results == [(4.0, "payload")]

    def test_multiple_waiters_all_resume(self):
        sim = Simulator()
        evt = sim.event()
        results = []

        def waiter(tag):
            value = yield evt
            results.append((tag, value))

        for tag in range(3):
            sim.process(waiter(tag))
        sim.schedule(1.0, evt.trigger, 42)
        sim.run()
        assert sorted(results) == [(0, 42), (1, 42), (2, 42)]

    def test_wait_on_triggered_event_resumes_immediately(self):
        sim = Simulator()
        evt = sim.event()
        evt.trigger("x")
        results = []

        def waiter():
            value = yield evt
            results.append(value)

        sim.process(waiter())
        sim.run()
        assert results == ["x"]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        evt = sim.event()
        evt.trigger()
        with pytest.raises(SimulationError):
            evt.trigger()

    def test_process_bad_yield_raises(self):
        sim = Simulator()

        def proc():
            yield "not a delay"

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_process_negative_delay_raises(self):
        sim = Simulator()

        def proc():
            yield -1.0

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestCalendarBackend:
    def test_same_results_as_heap(self):
        import numpy as np

        rng = np.random.default_rng(0)
        delays = rng.exponential(1.0, size=200)
        results = {}
        for queue in ("heap", "calendar"):
            sim = Simulator(queue=queue)
            order = []
            for i, d in enumerate(delays):
                sim.schedule(float(d), order.append, i)
            sim.run()
            results[queue] = order
        assert results["heap"] == results["calendar"]

    def test_unknown_queue_rejected(self):
        with pytest.raises(ValueError):
            Simulator(queue="skiplist")
