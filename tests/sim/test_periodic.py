"""PeriodicTask (Simulator.every) tests."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestPeriodicTask:
    def test_fires_on_interval(self):
        sim = Simulator()
        times = []
        sim.every(10.0, lambda: times.append(sim.now))
        sim.run(until=35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_start_delay(self):
        sim = Simulator()
        times = []
        sim.every(10.0, lambda: times.append(sim.now), start_delay=1.0)
        sim.run(until=25.0)
        assert times == [1.0, 11.0, 21.0]

    def test_cancel_stops_firing(self):
        sim = Simulator()
        task = sim.every(5.0, lambda: None)
        sim.run(until=12.0)
        assert task.fired == 2
        task.cancel()
        assert not task.active
        sim.run(until=50.0)
        assert task.fired == 2

    def test_cancel_from_within_callback(self):
        sim = Simulator()
        task = None

        def cb():
            if task.fired >= 3:
                task.cancel()

        task = sim.every(1.0, cb)
        sim.run(until=100.0)
        assert task.fired == 3

    def test_args_passed(self):
        sim = Simulator()
        out = []
        sim.every(1.0, out.append, "tick")
        sim.run(until=2.5)
        assert out == ["tick", "tick"]

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda: None)


class TestNetworkMonitoring:
    def test_series_fill_during_run(self):
        from tests.conftest import build_network

        net, keys = build_network(12, settle=0.0)
        series = net.enable_monitoring(interval=10.0)
        net.run(until=35.0)
        assert len(series["population"]) == 4  # t=0,10,20,30
        assert series["population"].last() == 12.0
        assert series["mean_error_rate"].last() == 0.0
        assert series["n_levels"].last() >= 1.0

    def test_series_track_churn(self):
        from tests.conftest import build_network

        net, keys = build_network(12, settle=0.0)
        series = net.enable_monitoring(interval=5.0)
        net.run(until=10.0)
        net.crash(keys[0])
        net.leave(keys[1])
        net.run(until=60.0)
        pops = series["population"].values
        assert pops[0] == 12.0
        assert pops[-1] == 10.0


class TestJitteredPeriod:
    def test_zero_jitter_fires_on_exact_grid(self):
        sim = Simulator()
        times = []
        sim.every(10.0, lambda: times.append(sim.now))
        sim.run(until=50.0)
        assert times == [pytest.approx(10.0 * k) for k in range(1, 6)]

    def test_jitter_spreads_the_gaps(self):
        import numpy as np

        sim = Simulator()
        times = []
        sim.every(10.0, lambda: times.append(sim.now), jitter=0.3,
                  rng=np.random.default_rng(42))
        sim.run(until=500.0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(7.0 <= g <= 13.0 for g in gaps)
        assert len(set(round(g, 9) for g in gaps)) > 1  # not a fixed grid

    def test_jitter_is_reproducible(self):
        import numpy as np

        def fire_times(seed):
            sim = Simulator()
            times = []
            sim.every(10.0, lambda: times.append(sim.now), jitter=0.3,
                      rng=np.random.default_rng(seed))
            sim.run(until=200.0)
            return times

        assert fire_times(7) == fire_times(7)
        assert fire_times(7) != fire_times(8)

    def test_jitter_validation(self):
        import numpy as np

        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.every(10.0, lambda: None, jitter=1.0, rng=np.random.default_rng(0))
        with pytest.raises(SimulationError):
            sim.every(10.0, lambda: None, jitter=-0.1, rng=np.random.default_rng(0))
        with pytest.raises(SimulationError):
            sim.every(10.0, lambda: None, jitter=0.2)  # rng required
