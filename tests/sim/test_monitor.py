"""Instrumentation primitive tests."""

import math

import pytest

from repro.sim.monitor import Counter, Histogram, TimeSeries, TimeWeightedStat, summarize


class TestCounter:
    def test_add_and_rate(self):
        c = Counter("msgs", t0=0.0)
        c.add(10)
        c.add(20)
        assert c.value == 30
        assert c.rate(now=10.0) == 3.0

    def test_rate_before_any_time_elapsed(self):
        assert Counter(t0=5.0).rate(now=5.0) == 0.0

    def test_rate_with_clock_before_t0(self):
        """now < t0 (e.g. a reset timestamped in the future of a stale
        query) must yield 0.0, never a negative or divide-by-zero rate."""
        c = Counter(t0=10.0)
        c.add(5)
        assert c.rate(now=7.5) == 0.0

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Counter().add(-1)

    def test_reset(self):
        c = Counter(t0=0.0)
        c.add(5)
        c.reset(now=10.0)
        assert c.value == 0
        assert c.rate(now=20.0) == 0.0


class TestTimeWeightedStat:
    def test_piecewise_constant_mean(self):
        s = TimeWeightedStat(t0=0.0, v0=0.0)
        s.update(10.0, 100.0)  # 0 for 10s
        s.update(20.0, 0.0)  # 100 for 10s
        assert s.mean() == pytest.approx(50.0)

    def test_mean_extends_to_now(self):
        s = TimeWeightedStat(t0=0.0, v0=10.0)
        assert s.mean(now=5.0) == pytest.approx(10.0)

    def test_min_max_track_values(self):
        s = TimeWeightedStat(v0=5.0)
        s.update(1.0, 20.0)
        s.update(2.0, -3.0)
        assert s.min == -3.0
        assert s.max == 20.0

    def test_time_backwards_rejected(self):
        s = TimeWeightedStat(t0=10.0)
        with pytest.raises(ValueError):
            s.update(5.0, 1.0)

    def test_advance_keeps_value(self):
        s = TimeWeightedStat(t0=0.0, v0=7.0)
        s.advance(4.0)
        assert s.current == 7.0
        assert s.mean() == pytest.approx(7.0)


class TestTimeSeries:
    def test_record_and_export(self):
        ts = TimeSeries("x")
        ts.record(0.0, 1.0)
        ts.record(1.0, 3.0)
        times, values = ts.as_arrays()
        assert list(times) == [0.0, 1.0]
        assert ts.mean() == 2.0
        assert ts.last() == 3.0
        assert len(ts) == 2

    def test_non_monotone_time_rejected(self):
        ts = TimeSeries()
        ts.record(5.0, 0.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 0.0)

    def test_empty_series(self):
        ts = TimeSeries()
        assert math.isnan(ts.mean())
        with pytest.raises(IndexError):
            ts.last()


class TestHistogram:
    def test_counts_and_overflow(self):
        h = Histogram(0.0, 10.0, nbins=10)
        h.add(-1.0)
        h.add(5.5)
        h.add(100.0)
        assert h.counts[0] == 1  # underflow
        assert h.counts[-1] == 1  # overflow
        assert h.n == 3

    def test_mean_std(self):
        h = Histogram(0.0, 10.0, 10)
        for v in (2.0, 4.0, 6.0):
            h.add(v)
        assert h.mean() == pytest.approx(4.0)
        assert h.std() == pytest.approx(math.sqrt(8.0 / 3.0))

    def test_quantile_midline(self):
        h = Histogram(0.0, 100.0, 100)
        for v in range(100):
            h.add(v + 0.5)
        assert h.quantile(0.5) == pytest.approx(50.0, abs=2.0)

    def test_quantile_bounds(self):
        h = Histogram(0.0, 1.0, 4)
        h.add(0.5)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Histogram(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, 0)


def test_summarize():
    s = summarize([1.0, 2.0, 3.0])
    assert s["n"] == 3
    assert s["mean"] == 2.0
    assert s["p50"] == 2.0
    empty = summarize([])
    assert empty["n"] == 0
    assert math.isnan(empty["mean"])
