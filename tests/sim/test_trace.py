"""SimTracer tests."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.trace import SimTracer


def named_callback():
    pass


class TestSimTracer:
    def test_records_executed_events(self):
        sim = Simulator()
        tracer = SimTracer(sim)
        sim.schedule(1.0, named_callback)
        sim.schedule(2.0, named_callback)
        sim.run()
        assert len(tracer) == 2
        assert tracer.records[0].time == 1.0
        assert "named_callback" in tracer.records[0].name

    def test_args_in_detail(self):
        sim = Simulator()
        tracer = SimTracer(sim)
        sim.schedule(1.0, print, "hello", 42)
        sim.run()
        assert "'hello'" in tracer.records[0].detail
        assert "42" in tracer.records[0].detail

    def test_match_filter(self):
        sim = Simulator()
        tracer = SimTracer(sim, match="named")
        sim.schedule(1.0, named_callback)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert len(tracer) == 1
        assert tracer.dropped == 1

    def test_ring_buffer_bounds(self):
        sim = Simulator()
        tracer = SimTracer(sim, keep=3)
        for i in range(10):
            sim.schedule(float(i + 1), named_callback)
        sim.run()
        assert len(tracer) == 3
        assert tracer.records[0].time == 8.0  # oldest retained

    def test_close_detaches(self):
        sim = Simulator()
        tracer = SimTracer(sim)
        sim.schedule(1.0, named_callback)
        sim.run()
        tracer.close()
        sim.schedule(1.0, named_callback)
        sim.run()
        assert len(tracer) == 1  # nothing recorded after close
        assert sim.events_executed == 2  # but the sim kept working

    def test_context_manager(self):
        sim = Simulator()
        with SimTracer(sim) as tracer:
            sim.schedule(1.0, named_callback)
            sim.run()
        sim.schedule(1.0, named_callback)
        sim.run()
        assert len(tracer) == 1

    def test_cancelled_events_not_recorded(self):
        sim = Simulator()
        tracer = SimTracer(sim)
        handle = sim.schedule(1.0, named_callback)
        handle.cancel()
        sim.schedule(2.0, named_callback)
        sim.run()
        assert len(tracer) == 1
        assert sim.events_executed == 1

    def test_filter_and_format(self):
        sim = Simulator()
        tracer = SimTracer(sim)
        sim.schedule(1.0, named_callback)
        sim.schedule(2.0, print, "x")
        sim.run()
        assert len(tracer.filter("print")) == 1
        text = tracer.format(limit=1)
        assert "print" in text
        assert "t=" in text

    def test_traces_protocol_run(self):
        """Attach to a real PeerWindow run and capture probe traffic."""
        from tests.conftest import build_network

        net, keys = build_network(6, settle=0.0)
        tracer = SimTracer(net.sim, keep=5000, match="_probe_tick")
        net.run(until=12.0)
        tracer.close()
        assert len(tracer) >= 6  # each node's probe loop fired

    def test_validation(self):
        with pytest.raises(ValueError):
            SimTracer(Simulator(), keep=0)
