"""Conservative parallel-LP engine tests.

The key correctness property of conservative parallel DES: partitioned
execution produces results identical to an equivalent sequential order.
"""

import pytest

from repro.sim.engine import SimulationError
from repro.sim.parallel import ParallelSimulator


def _ping_pong(psim: ParallelSimulator, rounds: int, latency: float):
    """Two LPs bounce a counter; returns the trace list."""
    trace = []

    def receive(rank, value):
        trace.append((psim.lps[rank].now, rank, value))
        if value < rounds:
            dest = 1 - rank
            psim.lps[rank].send(dest, latency, receive, dest, value + 1)

    psim.lps[0].schedule_local(0.0, receive, 0, 0)
    return trace


class TestParallelSimulator:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            ParallelSimulator(0, 1.0)
        with pytest.raises(ValueError):
            ParallelSimulator(2, 0.0)

    def test_lookahead_violation_rejected(self):
        psim = ParallelSimulator(2, lookahead=1.0)
        with pytest.raises(SimulationError):
            psim.lps[0].send(1, 0.5, lambda: None)

    def test_local_send_ignores_lookahead(self):
        psim = ParallelSimulator(2, lookahead=1.0)
        ran = []
        psim.lps[0].send(0, 0.1, ran.append, 1)
        psim.run(until=1.0)
        assert ran == [1]

    def test_ping_pong_delivery_times(self):
        psim = ParallelSimulator(2, lookahead=1.0)
        trace = _ping_pong(psim, rounds=4, latency=1.0)
        psim.run(until=10.0)
        times = [t for t, _, _ in trace]
        assert times == [0.0, 1.0, 2.0, 3.0, 4.0]
        ranks = [r for _, r, _ in trace]
        assert ranks == [0, 1, 0, 1, 0]

    def test_threads_match_sequential(self):
        results = {}
        for threads in (False, True):
            psim = ParallelSimulator(4, lookahead=0.5, threads=threads)
            trace = []

            def make_handler(psim=psim, trace=trace):
                def receive(rank, value):
                    trace.append((round(psim.lps[rank].now, 6), rank, value))
                    if value < 12:
                        dest = (rank + 1) % psim.nranks
                        psim.lps[rank].send(dest, 0.5, receive, dest, value + 1)

                return receive

            handler = make_handler()
            psim.lps[0].schedule_local(0.0, handler, 0, 0)
            psim.run(until=20.0)
            results[threads] = trace
        assert results[False] == results[True]

    def test_message_counters(self):
        psim = ParallelSimulator(2, lookahead=1.0)
        _ping_pong(psim, rounds=3, latency=1.0)
        psim.run(until=10.0)
        totals = psim.total_messages()
        assert totals["sent"] == totals["received"] == 3

    def test_lp_for_partitioning(self):
        psim = ParallelSimulator(4, lookahead=1.0)
        assert psim.lp_for(0).rank == 0
        assert psim.lp_for(5).rank == 1
        assert psim.lp_for(7).rank == 3

    def test_run_backwards_rejected(self):
        psim = ParallelSimulator(1, lookahead=1.0)
        psim.run(until=5.0)
        with pytest.raises(SimulationError):
            psim.run(until=1.0)

    def test_epoch_count(self):
        psim = ParallelSimulator(2, lookahead=1.0)
        psim.run(until=10.0)
        assert psim.epochs_run == 10

    def test_cross_lp_message_not_earlier_than_epoch_boundary(self):
        """A message sent mid-epoch is delivered no earlier than its
        nominal latency allows (conservative safety)."""
        psim = ParallelSimulator(2, lookahead=2.0)
        deliveries = []

        def on_recv():
            deliveries.append(psim.lps[1].now)

        def sender():
            psim.lps[0].send(1, 2.0, on_recv)

        psim.lps[0].schedule_local(0.5, sender)
        psim.run(until=6.0)
        assert len(deliveries) == 1
        assert deliveries[0] >= 2.5
