"""Simulator.peek() semantics (live-head inspection with lazy deletion)."""

from repro.sim.engine import Simulator


class TestPeek:
    def test_peek_empty(self):
        assert Simulator().peek() is None

    def test_peek_returns_next_live_time(self):
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        assert sim.peek() == 1.0

    def test_peek_skips_cancelled_head(self):
        sim = Simulator()
        dead = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        dead.cancel()
        assert sim.peek() == 2.0

    def test_peek_all_cancelled(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(3)]
        for h in handles:
            h.cancel()
        assert sim.peek() is None

    def test_peek_preserves_fifo_ties(self):
        """peek() reinserts the inspected head; same-time events must
        still run in schedule order afterwards."""
        sim = Simulator()
        order = []
        dead = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, order.append, "first")
        sim.schedule(2.0, order.append, "second")
        dead.cancel()
        assert sim.peek() == 2.0
        sim.run()
        assert order == ["first", "second"]

    def test_peek_does_not_execute(self):
        sim = Simulator()
        ran = []
        sim.schedule(1.0, ran.append, 1)
        sim.peek()
        assert ran == []
        assert sim.events_executed == 0
