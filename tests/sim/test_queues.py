"""Pending-event set tests: heap and calendar queue must agree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.queues import CalendarQueue, HeapQueue


class TestHeapQueue:
    def test_push_pop_order(self):
        q = HeapQueue()
        q.push(3.0, 0, "c")
        q.push(1.0, 1, "a")
        q.push(2.0, 2, "b")
        assert [q.pop()[2] for _ in range(3)] == ["a", "b", "c"]

    def test_tie_break_by_seq(self):
        q = HeapQueue()
        q.push(1.0, 5, "later")
        q.push(1.0, 1, "earlier")
        assert q.pop()[2] == "earlier"

    def test_peek_time(self):
        q = HeapQueue()
        assert q.peek_time() is None
        q.push(7.0, 0, None)
        assert q.peek_time() == 7.0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            HeapQueue().pop()

    def test_len_and_clear(self):
        q = HeapQueue()
        for i in range(4):
            q.push(float(i), i, i)
        assert len(q) == 4
        q.clear()
        assert len(q) == 0


class TestCalendarQueue:
    def test_basic_order(self):
        q = CalendarQueue()
        q.push(3.0, 0, "c")
        q.push(1.0, 1, "a")
        q.push(2.0, 2, "b")
        assert [q.pop()[2] for _ in range(3)] == ["a", "b", "c"]

    def test_push_into_past_rejected(self):
        q = CalendarQueue()
        q.push(5.0, 0, None)
        q.pop()
        with pytest.raises(ValueError):
            q.push(1.0, 1, None)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            CalendarQueue().pop()

    def test_resize_preserves_order(self):
        q = CalendarQueue(nbuckets=2, bucket_width=0.5)
        rng = np.random.default_rng(1)
        times = np.cumsum(rng.exponential(0.3, size=500))
        for i, t in enumerate(times):
            q.push(float(t), i, i)
        out = [q.pop()[1] for _ in range(len(times))]
        assert out == sorted(out)

    def test_sparse_far_future_events(self):
        q = CalendarQueue(nbuckets=4, bucket_width=1.0)
        q.push(1e6, 0, "far")
        q.push(2.0, 1, "near")
        assert q.pop()[2] == "near"
        assert q.pop()[2] == "far"

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CalendarQueue(nbuckets=0)
        with pytest.raises(ValueError):
            CalendarQueue(bucket_width=0.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    def test_agrees_with_heap(self, times):
        heap = HeapQueue()
        cal = CalendarQueue()
        for i, t in enumerate(sorted(times)):
            # Push monotonically so the calendar's no-past rule holds even
            # while interleaving pops would not be monotone.
            heap.push(t, i, i)
            cal.push(t, i, i)
        heap_out = [heap.pop()[:2] for _ in range(len(times))]
        cal_out = [cal.pop()[:2] for _ in range(len(times))]
        assert heap_out == cal_out

    def test_interleaved_push_pop(self):
        q = CalendarQueue()
        rng = np.random.default_rng(2)
        now = 0.0
        seq = 0
        pending = []
        popped = []
        for _ in range(300):
            if pending and rng.random() < 0.4:
                t, s, _ = q.pop()
                now = t
                popped.append((t, s))
                pending.remove((t, s))
            else:
                t = now + float(rng.exponential(1.0))
                q.push(t, seq, None)
                pending.append((t, seq))
                seq += 1
        assert popped == sorted(popped)
