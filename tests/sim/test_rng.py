"""Random-stream reproducibility tests."""

import numpy as np
import pytest

from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).get("churn").random(10)
        b = RandomStreams(7).get("churn").random(10)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        streams = RandomStreams(7)
        a = streams.get("churn").random(10)
        b = streams.get("topology").random(10)
        assert not np.array_equal(a, b)

    def test_different_master_seeds_differ(self):
        a = RandomStreams(1).get("x").random(10)
        b = RandomStreams(2).get("x").random(10)
        assert not np.array_equal(a, b)

    def test_get_returns_same_generator_object(self):
        streams = RandomStreams(0)
        assert streams.get("a") is streams.get("a")

    def test_adding_stream_does_not_perturb_existing(self):
        """The whole point of stream separation."""
        s1 = RandomStreams(3)
        _ = s1.get("a").random(5)
        tail1 = s1.get("a").random(5)

        s2 = RandomStreams(3)
        _ = s2.get("a").random(5)
        _ = s2.get("brand-new-component").random(100)
        tail2 = s2.get("a").random(5)
        assert np.array_equal(tail1, tail2)

    def test_fresh_resets_state(self):
        streams = RandomStreams(9)
        first = streams.get("x").random(4)
        streams.get("x").random(100)  # advance
        again = streams.fresh("x").random(4)
        assert np.array_equal(first, again)

    def test_spawn_indexed_substreams(self):
        streams = RandomStreams(5)
        a0 = streams.spawn("node", 0).random(5)
        a1 = streams.spawn("node", 1).random(5)
        a0_again = streams.spawn("node", 0).random(5)
        assert np.array_equal(a0, a0_again)
        assert not np.array_equal(a0, a1)

    def test_contains(self):
        streams = RandomStreams(0)
        assert "x" not in streams
        streams.get("x")
        assert "x" in streams

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(-1)
