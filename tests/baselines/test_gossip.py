"""Gossip baseline tests."""

import numpy as np
import pytest

from repro.baselines.gossip import GossipMulticastScheme, GossipSim
from repro.sim.engine import Simulator


class TestScheme:
    def test_redundancy_divides_efficiency(self):
        tree = GossipMulticastScheme(redundancy=1.0)
        gossip = GossipMulticastScheme(redundancy=4.0)
        assert gossip.pointers_for_bandwidth(5000.0) == pytest.approx(
            tree.pointers_for_bandwidth(5000.0) / 4.0
        )

    def test_useful_fraction(self):
        assert GossipMulticastScheme(redundancy=4.0).useful_message_fraction() == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            GossipMulticastScheme(redundancy=0.0)


class TestGossipSim:
    def _run(self, n=500, fanout=3, seed=0):
        sim = Simulator()
        g = GossipSim(sim, n=n, fanout=fanout, rng=np.random.default_rng(seed))
        g.start(origin=0)
        sim.run()
        return g

    def test_high_coverage_with_fanout_3(self):
        g = self._run()
        assert g.coverage() > 0.9

    def test_redundancy_above_one(self):
        g = self._run()
        assert g.redundancy() > 1.5  # gossip wastes messages by design

    def test_rounds_to_coverage_logarithmic(self):
        g = self._run(n=2000)
        rounds = g.rounds_to_coverage(0.9)
        assert rounds is not None
        assert rounds <= 3 * np.log(2000)

    def test_ttl_limits_spread(self):
        sim = Simulator()
        g = GossipSim(sim, n=10_000, fanout=2, rounds_ttl=3, rng=np.random.default_rng(1))
        g.start()
        sim.run()
        assert g.reach() <= 1 + 2 + 4 + 8

    def test_messages_counted(self):
        g = self._run(n=100)
        assert g.messages_sent >= g.reach() - 1

    def test_validation(self):
        with pytest.raises(ValueError):
            GossipSim(Simulator(), n=0)
        with pytest.raises(ValueError):
            self._run().rounds_to_coverage(0.0)
