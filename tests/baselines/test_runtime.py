"""Executable baseline runtimes: determinism, telemetry frames, spans.

Every baseline network must honor the same contract the PeerWindow
network does: seeded runs are byte-identical, spans validate against
the export schema, and a :class:`~repro.obs.stream.StreamWindower`
folds them into schema-valid ``repro.telemetry`` v1 frames.
"""

import json

import pytest

from repro.baselines.pushpull import PushPullGossipNetwork
from repro.baselines.runtime import (
    ExplicitProbeNetwork,
    GossipNetwork,
    OneHopNetwork,
    RandomWalkNetwork,
)
from repro.obs.export import spans_to_jsonl, validate_span_lines
from repro.obs.stream import StreamWindower, frame_line, load_frames

NETWORKS = [
    GossipNetwork,
    PushPullGossipNetwork,
    OneHopNetwork,
    RandomWalkNetwork,
    ExplicitProbeNetwork,
]

FRAME_KEYS = (
    "window", "t0", "t1", "final", "taps", "spans", "span_counts",
    "status_counts", "counters", "mcast", "join", "probe", "obituaries",
    "signals", "breaches", "verdicts", "healthy", "state",
)


def _run(cls, n=16, seed=3, until=120.0, churn=True):
    net = cls(n, master_seed=seed, observability=True)
    if churn:
        net.run(until=until / 3)
        net.crash(net.live_keys()[0])
        net.run(until=2 * until / 3)
        net.join()
    net.run(until=until)
    return net


class TestDeterminism:
    @pytest.mark.parametrize("cls", NETWORKS)
    def test_same_seed_byte_identical(self, cls):
        a = _run(cls)
        b = _run(cls)
        assert spans_to_jsonl(a.spans()) == spans_to_jsonl(b.spans())
        assert json.dumps(a.metrics_snapshot(), sort_keys=True) == \
            json.dumps(b.metrics_snapshot(), sort_keys=True)

    @pytest.mark.parametrize("cls", [GossipNetwork, RandomWalkNetwork])
    def test_different_seed_differs(self, cls):
        a = _run(cls, seed=3)
        b = _run(cls, seed=4)
        assert spans_to_jsonl(a.spans()) != spans_to_jsonl(b.spans())


class TestSpans:
    @pytest.mark.parametrize("cls", NETWORKS)
    def test_span_export_validates(self, cls):
        net = _run(cls)
        lines = spans_to_jsonl(net.spans()).splitlines()
        assert validate_span_lines(lines) == []


class TestFrames:
    @pytest.mark.parametrize("cls", NETWORKS)
    def test_windower_folds_schema_valid_frames(self, cls):
        net = cls(16, master_seed=3, observability=True)
        windower = StreamWindower(net, window=30.0)
        windower.run(90.0)
        final = windower.finish()
        assert final["final"] is True
        lines = [frame_line(final)]
        frames, _, skipped = load_frames(lines)
        assert skipped == 0
        for key in FRAME_KEYS:
            assert key in frames[0], f"{cls.__name__} frame missing {key}"
        assert frames[0]["state"]["live_nodes"] == 16


class TestBehavior:
    def test_gossip_disseminates_death(self):
        net = _run(GossipNetwork, n=20, until=180.0)
        # every survivor eventually learns of the crash; the peer-list
        # error rate stays small once gossip has flooded the obituary
        assert net.mean_error_rate() < 0.2
        snap = net.metrics_snapshot()
        assert snap["counters"].get("mcast.received", 0) > 0

    def test_explicit_probe_costs_dominate(self):
        gossip = _run(GossipNetwork, churn=False)
        probing = _run(ExplicitProbeNetwork, churn=False)
        assert probing.total_bits() > 3 * gossip.total_bits()

    def test_random_walk_is_stale(self):
        lazy = _run(RandomWalkNetwork, n=20, until=180.0)
        eager = _run(GossipNetwork, n=20, until=180.0)
        assert lazy.mean_error_rate() >= eager.mean_error_rate()

    def test_onehop_leader_serves_events(self):
        net = _run(OneHopNetwork, n=16, until=180.0)
        snap = net.metrics_snapshot()
        assert snap["counters"].get("report.served", 0) >= 1
        assert net.mean_error_rate() < 0.2

    def test_pushpull_pull_path_runs(self):
        net = _run(PushPullGossipNetwork, n=16, until=180.0)
        snap = net.metrics_snapshot()
        assert snap["counters"].get("pull.exchanges", 0) > 0
        # anti-entropy repairs what fanout-1 push misses
        assert net.mean_error_rate() < 0.2

    def test_join_downloads_membership(self):
        net = GossipNetwork(12, master_seed=7, observability=True)
        net.run(until=30.0)
        key = net.join()
        net.run(until=40.0)
        member = net.nodes[key]
        assert member.alive
        assert len(member.known) >= 11
