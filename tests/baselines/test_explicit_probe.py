"""Explicit-probing baseline tests — the intro's arithmetic, reproduced."""

import numpy as np
import pytest

from repro.baselines.explicit_probe import ExplicitProbeScheme, ExplicitProbeSim
from repro.sim.engine import Simulator


class TestClosedForm:
    def test_intro_600_pointers_at_10kbps(self):
        """Intro: 10 kbps with 500-bit heartbeats every 30 s → 600
        pointers."""
        s = ExplicitProbeScheme(probe_period_s=30.0, heartbeat_bits=500.0)
        assert s.pointers_for_bandwidth(10_000.0) == pytest.approx(600.0)

    def test_intro_9958_percent_wasted(self):
        """Intro: with 2-hour lifetimes and 30 s probes, 239/240 of probes
        return positively."""
        s = ExplicitProbeScheme(
            probe_period_s=30.0, mean_lifetime_s=7200.0
        )
        assert 1.0 - s.useful_message_fraction() == pytest.approx(239.0 / 240.0)

    def test_inverse_functions(self):
        s = ExplicitProbeScheme()
        assert s.bandwidth_for_pointers(s.pointers_for_bandwidth(5000.0)) == pytest.approx(5000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExplicitProbeScheme(probe_period_s=0.0)
        with pytest.raises(ValueError):
            ExplicitProbeScheme().bandwidth_for_pointers(-1.0)


class TestSimulation:
    def test_detection_latency_about_half_period(self):
        sim = Simulator()
        detections = []
        probe = ExplicitProbeSim(
            sim,
            neighbors=list(range(200)),
            probe_period_s=30.0,
            rng=np.random.default_rng(0),
            on_detect=lambda nb, lat: detections.append(lat),
        )
        # Kill everyone at t=100 (between probe rounds).
        sim.schedule(100.0, lambda: [probe.kill(nb) for nb in range(200)])
        sim.run(until=200.0)
        assert len(detections) == 200
        assert np.mean(detections) == pytest.approx(15.0, abs=3.0)

    def test_traffic_accounting(self):
        sim = Simulator()
        probe = ExplicitProbeSim(
            sim, neighbors=list(range(10)), probe_period_s=10.0, heartbeat_bits=500.0
        )
        sim.run(until=100.0)
        # 10 neighbors, one probe each per 10s over 100s ≈ 100 probes.
        assert probe.probes_sent == pytest.approx(100, abs=12)
        assert probe.bits_sent == probe.probes_sent * 500.0

    def test_wasted_fraction_with_no_deaths(self):
        sim = Simulator()
        probe = ExplicitProbeSim(sim, neighbors=list(range(5)))
        sim.run(until=300.0)
        assert probe.wasted_fraction() == 1.0

    def test_dead_neighbor_not_probed_further(self):
        sim = Simulator()
        probe = ExplicitProbeSim(sim, neighbors=[0], probe_period_s=10.0)
        probe.kill(0)
        sim.run(until=100.0)
        assert probe.probes_sent == 1  # first probe detects, then stops

    def test_stop(self):
        sim = Simulator()
        probe = ExplicitProbeSim(sim, neighbors=list(range(5)), probe_period_s=5.0)
        sim.run(until=20.0)
        count = probe.probes_sent
        probe.stop()
        sim.run(until=100.0)
        assert probe.probes_sent == count
