"""Cross-scheme comparison tests: the paper's positioning claims."""

import pytest

from repro.baselines.common import SchemeReport
from repro.baselines.explicit_probe import ExplicitProbeScheme
from repro.baselines.gossip import GossipMulticastScheme
from repro.baselines.onehop import OneHopDHTScheme
from repro.baselines.random_walk import RandomWalkScheme
from repro.core.analytic import CostModel

COMMON = dict(mean_lifetime_s=3600.0)


class TestEfficiencyOrdering:
    def test_peerwindow_beats_all_baselines_at_modem_budget(self):
        """At a 5 kbps modem budget in the §2 environment, tree-multicast
        PeerWindow collects the most pointers."""
        budget = 5000.0
        pw = CostModel(mean_lifetime_s=3600.0).pointers_for_bandwidth(budget)
        probing = ExplicitProbeScheme(mean_lifetime_s=3600.0).pointers_for_bandwidth(budget)
        gossip = GossipMulticastScheme(redundancy=4.0, **COMMON).pointers_for_bandwidth(budget)
        onehop = OneHopDHTScheme(n_nodes=100_000, **COMMON).pointers_for_bandwidth(budget)
        walk = RandomWalkScheme(mean_lifetime_s=3600.0).pointers_for_bandwidth(budget)
        assert pw > probing
        assert pw > gossip
        assert pw > onehop
        assert pw > walk

    def test_gossip_is_peerwindow_divided_by_r(self):
        budget = 10_000.0
        pw = CostModel().pointers_for_bandwidth(budget)
        gossip = GossipMulticastScheme(redundancy=4.0).pointers_for_bandwidth(budget)
        assert gossip == pytest.approx(pw / 4.0)

    def test_onehop_wins_only_for_strong_nodes_in_small_systems(self):
        """One-hop DHT gives the full membership when affordable — its
        advantage regime is small N + big budget; PeerWindow matches it
        there (level 0) and degrades gracefully elsewhere."""
        small = OneHopDHTScheme(n_nodes=5_000, mean_lifetime_s=8100.0)
        assert small.pointers_for_bandwidth(10_000.0) == 5_000.0
        big = OneHopDHTScheme(n_nodes=100_000, mean_lifetime_s=8100.0)
        assert big.pointers_for_bandwidth(10_000.0) == 0.0

    def test_probing_waste_dominates(self):
        """Probing's useful-message fraction is orders of magnitude below
        the tree multicast's."""
        probing = ExplicitProbeScheme(probe_period_s=30.0, mean_lifetime_s=7200.0)
        assert probing.useful_message_fraction() < 0.005
        # Tree multicast: every received message updates state.
        assert GossipMulticastScheme(redundancy=1.0).useful_message_fraction() == 1.0


class TestReports:
    def test_report_row_shape(self):
        row = ExplicitProbeScheme().report(10_000.0)
        assert isinstance(row, SchemeReport)
        d = row.as_dict()
        assert d["scheme"] == "explicit-probe"
        assert d["pointers"] == 600.0
        assert not d["autonomic"]
