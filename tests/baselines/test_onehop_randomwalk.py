"""One-hop DHT and random-walk baseline tests."""

import numpy as np
import pytest

from repro.baselines.onehop import OneHopDHTScheme
from repro.baselines.random_walk import RandomWalkScheme, small_world_graph


class TestOneHop:
    def test_cost_scales_with_n(self):
        small = OneHopDHTScheme(n_nodes=10_000)
        large = OneHopDHTScheme(n_nodes=100_000)
        assert large.per_node_cost_bps() == pytest.approx(
            10 * small.per_node_cost_bps()
        )

    def test_weak_node_gets_nothing_when_unaffordable(self):
        """§6: one-hop costs too much for weak nodes at scale."""
        scheme = OneHopDHTScheme(n_nodes=100_000, mean_lifetime_s=8100.0)
        # 100k nodes: ~2 changes/lifetime... default 3: cost = 100000*3/8100*1000 ≈ 37kbps
        assert scheme.pointers_for_bandwidth(500.0) == 0.0
        assert scheme.pointers_for_bandwidth(1e6) == 100_000.0

    def test_all_or_nothing_crossover(self):
        scheme = OneHopDHTScheme(n_nodes=50_000)
        cost = scheme.per_node_cost_bps()
        assert scheme.pointers_for_bandwidth(cost * 0.99) == 0.0
        assert scheme.pointers_for_bandwidth(cost * 1.01) == 50_000.0

    def test_homogeneous_flag(self):
        assert not OneHopDHTScheme(1000).heterogeneous

    def test_validation(self):
        with pytest.raises(ValueError):
            OneHopDHTScheme(n_nodes=0)
        with pytest.raises(ValueError):
            OneHopDHTScheme(1000, dissemination_overhead=0.5)


class TestRandomWalk:
    def test_small_world_graph_connected(self):
        import networkx as nx

        g = small_world_graph(200, k=6, seed=1)
        assert nx.is_connected(g)
        assert g.number_of_nodes() == 200

    def test_walk_collects_distinct_nodes(self):
        g = small_world_graph(300, seed=2)
        scheme = RandomWalkScheme()
        found = scheme.collect(g, start=0, steps=200, rng=np.random.default_rng(0))
        assert len(found) > 50
        assert 0 not in found
        assert len(found) == len(set(found))

    def test_duplicate_overhead_measured(self):
        g = small_world_graph(300, seed=2)
        scheme = RandomWalkScheme()
        overhead = scheme.measured_steps_per_pointer(
            g, start=0, steps=400, rng=np.random.default_rng(3)
        )
        assert overhead > 1.0  # revisits are inevitable

    def test_cost_model_linear_in_pointers(self):
        scheme = RandomWalkScheme(mean_lifetime_s=3600.0, steps_per_pointer=1.5)
        assert scheme.bandwidth_for_pointers(2000.0) == pytest.approx(
            2 * scheme.bandwidth_for_pointers(1000.0)
        )

    def test_less_efficient_than_peerwindow(self):
        """The §2 model (multicast, m=3 events per lifetime) beats active
        walking per pointer maintained."""
        from repro.core.analytic import CostModel

        pw = CostModel(mean_lifetime_s=3600.0)
        rw = RandomWalkScheme(mean_lifetime_s=3600.0)
        budget = 5000.0
        assert pw.pointers_for_bandwidth(budget) > rw.pointers_for_bandwidth(budget)

    def test_zero_steps(self):
        g = small_world_graph(10)
        assert RandomWalkScheme().collect(g, 0, 0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            small_world_graph(2)
        with pytest.raises(ValueError):
            RandomWalkScheme(steps_per_pointer=0.0)
