"""Churn generation tests."""

import pytest

from repro.sim.engine import Simulator
from repro.workloads.churn import ChurnProcess, Session, generate_sessions
from repro.workloads.lifetime import ExponentialLifetime


class TestSession:
    def test_leave_time(self):
        s = Session(join_time=10.0, lifetime=5.0, bandwidth_bps=1e6, threshold_bps=1e4)
        assert s.leave_time == 15.0


class TestGenerateSessions:
    def test_warm_population_count(self, rng):
        sessions = generate_sessions(rng, n_target=100, duration=0.0)
        assert len(sessions) == 100
        assert all(s.join_time == 0.0 for s in sessions)

    def test_arrival_rate_balances_departures(self, rng):
        lifetime = ExponentialLifetime(mean=100.0)
        sessions = generate_sessions(
            rng, n_target=200, duration=1000.0, lifetime_dist=lifetime
        )
        arrivals = [s for s in sessions if s.join_time > 0]
        # Expected arrivals = rate * duration = 200/100 * 1000 = 2000
        assert len(arrivals) == pytest.approx(2000, rel=0.15)

    def test_arrivals_sorted(self, rng):
        sessions = generate_sessions(rng, n_target=50, duration=500.0)
        arrivals = [s.join_time for s in sessions if s.join_time > 0]
        assert arrivals == sorted(arrivals)

    def test_thresholds_floor(self, rng):
        sessions = generate_sessions(rng, n_target=500, duration=0.0)
        assert all(s.threshold_bps >= 500.0 for s in sessions)

    def test_population_roughly_stationary(self, rng):
        """Count the live population at several instants."""
        lifetime = ExponentialLifetime(mean=50.0)
        sessions = generate_sessions(
            rng, n_target=300, duration=500.0, lifetime_dist=lifetime
        )
        for t in (100.0, 250.0, 400.0):
            live = sum(1 for s in sessions if s.join_time <= t < s.leave_time)
            assert live == pytest.approx(300, rel=0.25)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_sessions(rng, n_target=0, duration=10.0)
        with pytest.raises(ValueError):
            generate_sessions(rng, n_target=10, duration=-1.0)


class TestChurnProcess:
    def test_joins_and_leaves_fire(self, rng):
        sim = Simulator()
        live = set()
        joined = []

        def on_join(session):
            key = len(joined)
            joined.append(session)
            live.add(key)
            return key

        def on_leave(key):
            live.discard(key)

        churn = ChurnProcess(
            sim,
            rng,
            n_target=50,
            on_join=on_join,
            on_leave=on_leave,
            lifetime_dist=ExponentialLifetime(mean=20.0),
        )
        churn.start()
        sim.run(until=200.0)
        assert churn.joins > 100  # rate 2.5/s over 200s
        assert churn.leaves > 50
        assert churn.joins == len(joined)

    def test_stop_halts_new_joins(self, rng):
        sim = Simulator()
        churn = ChurnProcess(
            sim,
            rng,
            n_target=50,
            on_join=lambda s: 1,
            on_leave=lambda k: None,
            lifetime_dist=ExponentialLifetime(mean=20.0),
        )
        churn.start()
        sim.run(until=50.0)
        count = churn.joins
        churn.stop()
        sim.run(until=100.0)
        assert churn.joins == count

    def test_none_key_skips_leave_scheduling(self, rng):
        sim = Simulator()
        leaves = []
        churn = ChurnProcess(
            sim,
            rng,
            n_target=10,
            on_join=lambda s: None,
            on_leave=leaves.append,
            lifetime_dist=ExponentialLifetime(mean=1.0),
        )
        churn.start()
        sim.run(until=50.0)
        assert churn.joins > 0
        assert leaves == []

    def test_sessions_carry_threshold(self, rng):
        sim = Simulator()
        sessions = []
        churn = ChurnProcess(
            sim,
            rng,
            n_target=20,
            on_join=lambda s: sessions.append(s),
            on_leave=lambda k: None,
        )
        churn.start()
        sim.run(until=3000.0)
        assert sessions
        assert all(s.threshold_bps >= 500.0 for s in sessions)
        assert all(s.threshold_bps >= 0.01 * s.bandwidth_bps - 1e-9 for s in sessions)

    def test_invalid_target(self, rng):
        with pytest.raises(ValueError):
            ChurnProcess(Simulator(), rng, 0, lambda s: None, lambda k: None)
