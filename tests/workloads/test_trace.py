"""Trace record/replay tests."""

import pytest

from repro.sim.engine import Simulator
from repro.workloads.churn import Session, generate_sessions
from repro.workloads.trace import TraceReplayer, load_trace, save_trace


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path, rng):
        sessions = generate_sessions(rng, n_target=30, duration=200.0)
        path = tmp_path / "trace.csv"
        save_trace(path, sessions)
        loaded = load_trace(path)
        assert len(loaded) == len(sessions)
        original = sorted(sessions, key=lambda s: s.join_time)
        for a, b in zip(original, loaded):
            assert a.join_time == pytest.approx(b.join_time)
            assert a.lifetime == pytest.approx(b.lifetime)
            assert a.threshold_bps == pytest.approx(b.threshold_bps)

    def test_load_rejects_foreign_csv(self, tmp_path):
        path = tmp_path / "other.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_trace(path)


class TestReplayer:
    def _trace(self):
        return [
            Session(0.0, 50.0, 1e6, 1e4),
            Session(0.0, 200.0, 1e6, 1e4),
            Session(10.0, 30.0, 1e6, 1e4),
            Session(25.0, 100.0, 1e6, 1e4),
        ]

    def test_event_schedule(self):
        sim = Simulator()
        events = []
        replayer = TraceReplayer(
            sim,
            self._trace(),
            on_join=lambda s: events.append(("join", sim.now)) or len(events),
            on_leave=lambda k: events.append(("leave", sim.now)),
        )
        replayer.start()
        sim.run(until=300.0)
        joins = [t for kind, t in events if kind == "join"]
        leaves = [t for kind, t in events if kind == "leave"]
        assert joins == [0.0, 0.0, 10.0, 25.0]
        assert sorted(leaves) == [40.0, 50.0, 125.0, 200.0]
        assert replayer.joins == 4
        assert replayer.leaves == 4

    def test_seed_sessions_identified(self):
        replayer = TraceReplayer(Simulator(), self._trace(), lambda s: 1, lambda k: None)
        assert len(replayer.seed_sessions()) == 2

    def test_none_key_skips_leave(self):
        sim = Simulator()
        leaves = []
        replayer = TraceReplayer(
            sim, self._trace(), on_join=lambda s: None, on_leave=leaves.append
        )
        replayer.start()
        sim.run(until=300.0)
        assert leaves == []

    def test_same_trace_same_replay(self, tmp_path, rng):
        """Determinism: two replays of one trace produce identical event
        sequences (the point of recording)."""
        sessions = generate_sessions(rng, n_target=20, duration=100.0)
        path = tmp_path / "t.csv"
        save_trace(path, sessions)
        runs = []
        for _ in range(2):
            sim = Simulator()
            log = []
            replayer = TraceReplayer(
                sim,
                load_trace(path),
                on_join=lambda s: log.append(("j", round(sim.now, 6))) or len(log),
                on_leave=lambda k: log.append(("l", round(sim.now, 6))),
            )
            replayer.start()
            sim.run(until=1e6)
            runs.append(log)
        assert runs[0] == runs[1]
