"""Lifetime distribution tests — anchored to the paper's quoted values."""

import numpy as np
import pytest

from repro.workloads.lifetime import (
    COMMON_MEAN_LIFETIME_S,
    ExponentialLifetime,
    GnutellaLifetimeDistribution,
    WeibullLifetime,
)


class TestGnutellaLifetime:
    def test_mean_anchor_is_135_minutes(self):
        d = GnutellaLifetimeDistribution()
        assert d.mean == pytest.approx(135 * 60.0)

    def test_sample_mean_converges(self, rng):
        d = GnutellaLifetimeDistribution()
        samples = d.sample(rng, 200_000)
        assert np.mean(samples) == pytest.approx(d.mean, rel=0.05)

    def test_median_anchor_is_60_minutes(self, rng):
        d = GnutellaLifetimeDistribution()
        samples = d.sample(rng, 100_000)
        assert np.median(samples) == pytest.approx(3600.0, rel=0.05)
        assert d.median() == pytest.approx(3600.0)

    def test_heavy_tail(self, rng):
        """Lognormal heavy tail: a nontrivial share of sessions outlive
        four times the mean (what makes refresh multicasts rare but real)."""
        d = GnutellaLifetimeDistribution()
        samples = d.sample(rng, 100_000)
        frac = np.mean(samples > 4 * d.mean)
        assert 0.005 < frac < 0.10

    def test_lifetime_rate_scales_mean(self, rng):
        d = GnutellaLifetimeDistribution(lifetime_rate=0.1)
        assert d.mean == pytest.approx(13.5 * 60.0)
        samples = d.sample(rng, 50_000)
        assert np.mean(samples) == pytest.approx(d.mean, rel=0.1)

    def test_scaled_returns_copy(self):
        d = GnutellaLifetimeDistribution()
        d2 = d.scaled(2.0)
        assert d.lifetime_rate == 1.0
        assert d2.mean == pytest.approx(2 * d.mean)

    def test_scalar_sample(self, rng):
        value = GnutellaLifetimeDistribution().sample(rng)
        assert isinstance(value, float) and value > 0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            GnutellaLifetimeDistribution(lifetime_rate=0.0)


class TestResidualSampling:
    def test_residual_mean_exceeds_naive_mean(self, rng):
        """Inspection paradox: residuals of a heavy-tailed lifetime are
        longer on average than fresh lifetimes divided by two."""
        d = GnutellaLifetimeDistribution()
        residuals = d.sample_residual(rng, 100_000)
        # E[residual] = E[X^2] / (2 E[X]) for stationary renewal processes.
        import math

        ex2 = math.exp(2 * d.mu + 2 * d.sigma**2)
        expected = ex2 / (2 * d.mean)
        assert np.mean(residuals) == pytest.approx(expected, rel=0.1)

    def test_exponential_residual_memoryless(self, rng):
        d = ExponentialLifetime(mean=100.0)
        residuals = d.sample_residual(rng, 100_000)
        assert np.mean(residuals) == pytest.approx(100.0, rel=0.05)

    def test_generic_residual_fallback(self, rng):
        d = WeibullLifetime(mean=100.0, shape=0.7)
        residuals = d.sample_residual(rng, 20_000)
        # Heavy-ish tail: residual mean above half the fresh mean.
        assert np.mean(residuals) > 50.0

    def test_residual_empty(self, rng):
        assert GnutellaLifetimeDistribution().sample_residual(rng, 0).size == 0


class TestAlternatives:
    def test_exponential_mean(self, rng):
        d = ExponentialLifetime(mean=500.0)
        assert d.mean == 500.0
        assert np.mean(d.sample(rng, 100_000)) == pytest.approx(500.0, rel=0.05)

    def test_weibull_mean_solved_from_scale(self, rng):
        d = WeibullLifetime(mean=COMMON_MEAN_LIFETIME_S, shape=0.6)
        assert d.mean == pytest.approx(COMMON_MEAN_LIFETIME_S)
        samples = d.sample(rng, 200_000)
        assert np.mean(samples) == pytest.approx(d.mean, rel=0.1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ExponentialLifetime(mean=0.0)
        with pytest.raises(ValueError):
            WeibullLifetime(shape=0.0)

    def test_negative_sample_count_rejected(self, rng):
        with pytest.raises(ValueError):
            ExponentialLifetime().sample(rng, -1)
