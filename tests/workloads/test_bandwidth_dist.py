"""Bandwidth distribution tests — the paper's anchors enforced."""

import numpy as np
import pytest

from repro.workloads.bandwidth_dist import (
    BandwidthCategory,
    GnutellaBandwidthDistribution,
    threshold_from_bandwidth,
)


class TestAnchors:
    def test_20_percent_below_1mbps(self):
        """§5.1 discussion of figure 5: *"only 20% nodes' available
        bandwidth is less than 1Mbps"*."""
        d = GnutellaBandwidthDistribution()
        assert d.fraction_below(1_000_000) == pytest.approx(0.20, abs=0.005)

    def test_sampled_fraction_matches_model(self, rng):
        d = GnutellaBandwidthDistribution()
        samples = d.sample(rng, 100_000)
        assert np.mean(samples < 1_000_000) == pytest.approx(0.20, abs=0.01)

    def test_modems_exist(self, rng):
        d = GnutellaBandwidthDistribution()
        samples = d.sample(rng, 100_000)
        assert np.mean(samples < 56_000) == pytest.approx(0.05, abs=0.01)


class TestSampling:
    def test_samples_within_category_bounds(self, rng):
        d = GnutellaBandwidthDistribution()
        samples = d.sample(rng, 10_000)
        assert samples.min() >= 33_600
        assert samples.max() <= 1_000_000_000

    def test_scalar_sample(self, rng):
        value = GnutellaBandwidthDistribution().sample(rng)
        assert isinstance(value, float)

    def test_fraction_below_interpolates_within_category(self):
        d = GnutellaBandwidthDistribution(
            [BandwidthCategory("only", 1.0, 1000.0, 10_000.0)]
        )
        assert d.fraction_below(1000.0) == 0.0
        assert d.fraction_below(10_000.0) == pytest.approx(1.0)
        # Log-uniform midpoint: sqrt(1000*10000) ≈ 3162
        assert d.fraction_below(3162.0) == pytest.approx(0.5, abs=0.01)

    def test_custom_categories_weighting(self, rng):
        d = GnutellaBandwidthDistribution(
            [
                BandwidthCategory("slow", 3.0, 100.0, 200.0),
                BandwidthCategory("fast", 1.0, 1000.0, 2000.0),
            ]
        )
        samples = d.sample(rng, 40_000)
        assert np.mean(samples < 500) == pytest.approx(0.75, abs=0.02)

    def test_empty_categories_rejected(self):
        with pytest.raises(ValueError):
            GnutellaBandwidthDistribution([])

    def test_invalid_category(self):
        with pytest.raises(ValueError):
            BandwidthCategory("bad", 0.5, 100.0, 50.0)


class TestThreshold:
    def test_one_percent_rule(self):
        assert threshold_from_bandwidth(10_000_000) == pytest.approx(100_000.0)

    def test_floor_for_modems(self):
        """§5.1: the threshold *"cannot be less than 500bps"*."""
        assert threshold_from_bandwidth(33_600) == pytest.approx(500.0)

    def test_vectorized(self):
        out = threshold_from_bandwidth(np.array([33_600.0, 10_000_000.0]))
        assert out.tolist() == [500.0, 100_000.0]

    def test_custom_fraction_and_floor(self):
        assert threshold_from_bandwidth(1_000_000, fraction=0.1) == pytest.approx(100_000.0)
        assert threshold_from_bandwidth(33_600, floor_bps=250.0) == pytest.approx(336.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            threshold_from_bandwidth(1000, fraction=0.0)
