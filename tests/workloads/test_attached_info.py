"""Attached-info generator tests."""

import numpy as np
import pytest

from repro.workloads.attached_info import (
    BidInfo,
    backup_attached_info,
    bid_attached_info,
    guess_attached_info,
    load_attached_info,
    sample_load,
    sample_os_versions,
    sample_shared_files,
)


class TestOsVersions:
    def test_all_known_versions(self, rng):
        from repro.workloads.attached_info import OS_VERSIONS

        names = sample_os_versions(rng, 500)
        assert set(names) <= set(OS_VERSIONS)

    def test_windows_majority(self, rng):
        names = sample_os_versions(rng, 20_000)
        windows = sum(1 for n in names if n.startswith("windows"))
        assert 0.55 < windows / len(names) < 0.80


class TestSharedFiles:
    def test_free_riders_fraction(self, rng):
        files = sample_shared_files(rng, 50_000)
        assert np.mean(files == 0) == pytest.approx(0.25, abs=0.02)

    def test_heavy_tail(self, rng):
        files = sample_shared_files(rng, 50_000)
        assert files.max() > 100 * max(np.median(files), 1)

    def test_capped(self, rng):
        files = sample_shared_files(rng, 50_000)
        assert files.max() <= 100_000


class TestLoad:
    def test_some_overloaded(self, rng):
        loads = sample_load(rng, 20_000)
        frac_over = np.mean(loads > 1.0)
        assert 0.02 < frac_over < 0.35
        assert (loads > 0).all()


class TestBidInfo:
    def test_fields_valid(self, rng):
        bids = bid_attached_info(rng, 200)
        for entry in bids:
            bid = entry["bid"]
            assert isinstance(bid, BidInfo)
            assert bid.storage_gb >= 0
            assert 0 <= bid.availability <= 1
            assert bid.price_per_gb >= 0

    def test_invalid_bid_rejected(self):
        with pytest.raises(ValueError):
            BidInfo(storage_gb=-1.0, availability=0.5, price_per_gb=1.0)
        with pytest.raises(ValueError):
            BidInfo(storage_gb=1.0, availability=1.5, price_per_gb=1.0)


class TestDictShapes:
    def test_guess_info(self, rng):
        infos = guess_attached_info(rng, 10)
        assert all("shared_files" in d for d in infos)

    def test_backup_info(self, rng):
        infos = backup_attached_info(rng, 10)
        assert all(isinstance(d["os"], str) for d in infos)

    def test_load_info(self, rng):
        infos = load_attached_info(rng, 10)
        assert all(d["load"] > 0 for d in infos)
