"""Report-path edge cases (§4.5): dead tops, fallbacks, piggyback healing."""


from tests.conftest import build_network


def poison_top_list(node, net):
    """Replace a node's top-node list with pointers to dead addresses."""
    from repro.core.nodeid import NodeId
    from repro.core.pointer import Pointer

    node.top_list.clear()
    node.top_list.merge(
        [
            Pointer(NodeId(60_000 + i, 16), f"ghost-{i}", 0, last_refresh=net.sim.now)
            for i in range(3)
        ]
    )


class TestReportFallback:
    def test_report_heals_via_peer_topnode_query(self):
        """All top-node pointers stale → §4.5: ask a peer for its
        top-node list as a substitution, then the report goes through."""
        net, keys = build_network(16)
        # Pick a non-top node; everyone is level 0 = top here, so force
        # one node into thinking it is not a top and poison its list.
        node = net.node(keys[3])
        node.is_top = False
        poison_top_list(node, net)
        node.update_attached_info({"healed": True})
        net.run(until=net.sim.now + 40.0)
        # The info change made it out despite the dead top list.
        informed = [
            net.node(k).peer_list.get(node.node_id).attached_info
            for k in keys
            if k != keys[3] and k in net.nodes
        ]
        assert all(info == {"healed": True} for info in informed)
        # And the top list got repopulated with live entries.
        assert len(node.top_list) > 0
        live = [p for p in node.top_list.pointers() if net.transport.is_alive(p.address)]
        assert live

    def test_piggyback_refreshes_top_list(self):
        """A successful report's ack carries t-1 fresh top pointers."""
        net, keys = build_network(16)
        node = net.node(keys[5])
        node.is_top = False
        node.top_list.clear()
        # Leave exactly one valid top pointer.
        top = net.node(keys[0])
        node.top_list.merge([top.self_pointer()])
        before = len(node.top_list)
        node.update_attached_info({"x": 1})
        net.run(until=net.sim.now + 10.0)
        assert len(node.top_list) > before

    def test_report_gives_up_after_bounded_attempts(self):
        """With no peers and no tops, the report fails gracefully."""
        net, keys = build_network(4)
        node = net.node(keys[0])
        node.is_top = False
        poison_top_list(node, net)
        # Remove all peers so the fallback has nobody to ask.
        for p in list(node.peer_list):
            if p.node_id.value != node.node_id.value:
                node.peer_list.remove(p.node_id)
        node.update_attached_info({"y": 2})
        net.run(until=net.sim.now + 120.0)
        assert node.stats.reports_failed >= 1

    def test_nontop_receiving_report_relays(self):
        """A report landing on a stale 'top' is relayed to a real top and
        still gets multicast."""
        net, keys = build_network(16)
        stale_top = net.node(keys[2])
        stale_top.is_top = False  # it will have to relay
        reporter = net.node(keys[7])
        reporter.is_top = False
        reporter.top_list.clear()
        reporter.top_list.merge([stale_top.self_pointer()])
        reporter.update_attached_info({"via-relay": 1})
        net.run(until=net.sim.now + 30.0)
        informed = sum(
            1
            for k in keys
            if k in net.nodes
            and k != keys[7]
            and (p := net.node(k).peer_list.get(reporter.node_id)) is not None
            and p.attached_info == {"via-relay": 1}
        )
        assert informed == len(keys) - 1
