"""Verify-before-believe obituaries (DESIGN §16, satellite of ISSUE 7).

A hardened node probes a reported-dead subject before evicting it:
silence confirms the obituary, a probe ack refutes it.  These tests
drive the report path directly with forged and genuine obituaries and
assert the unit contracts the byzantine scenarios rely on:

* a refuted obituary leaves the victim in place and earns the accuser a
  strike;
* *duplicated* obituaries about one subject coalesce onto a single
  probe chain (one verification, every accusation judged);
* *conflicting* accounts resolve by probing reality — an obituary for a
  genuinely dead node is believed (and costs the reporter nothing),
  one for a live node is refuted no matter how often it is retold;
* repeat false accusers cross ``quarantine_strikes`` and their later
  obituaries are dropped unheard.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.events import EventKind, EventRecord
from repro.core.protocol import PeerWindowNetwork
from repro.net.message import Message


def hardened_config(**overrides) -> ProtocolConfig:
    base = dict(
        id_bits=16,
        probe_interval=8.0,
        probe_timeout=2.0,
        probe_misses_to_fail=3,
        multicast_ack_timeout=2.0,
        report_timeout=4.0,
        level_check_interval=1e6,
        multicast_processing_delay=0.25,
        join_retry_attempts=2,
        join_retry_backoff=2.0,
        obituary_verify=True,
        quarantine_strikes=2,
    )
    base.update(overrides)
    return ProtocolConfig(**base)


def hardened_network(n=16, seed=3, **overrides):
    """A settled network seeded at a forced level so every node is a top
    of its own eigenstring part (4 groups at level 2 with 16 id bits)."""
    net = PeerWindowNetwork(
        config=hardened_config(**overrides), master_seed=seed, observability=True
    )
    keys = net.seed_nodes([1e9] * n, forced_level=2)
    net.run(until=12.0)
    return net, keys


def group_mates(net, anchor_key):
    """Keys of the anchor's eigenstring group, anchor first."""
    anchor = net.nodes[anchor_key]
    mates = [
        k for k in sorted(net.nodes)
        if net.nodes[k].alive
        and net.nodes[k].node_id.shares_prefix(anchor.node_id, anchor.level)
    ]
    mates.remove(anchor_key)
    return [anchor_key] + mates


def forged_leave(net, victim_key, bump=1) -> EventRecord:
    victim = net.nodes[victim_key]
    held_seq = victim.ctx.seq
    return EventRecord(
        kind=EventKind.LEAVE,
        subject_id=victim.node_id,
        subject_address=victim.address,
        subject_level=victim.level,
        seq=held_seq + bump,
        origin_time=net.sim.now,
        attached_info=victim.ctx.attached_info,
    )


def send_report(net, src_key, dst_key, event) -> None:
    """Deliver a §4.5 report carrying ``event`` from src to dst, exactly
    as a (possibly lying) reporter would."""
    src = net.nodes[src_key]
    src.runtime.send(
        Message(src.address, net.nodes[dst_key].address, "report", payload=event)
    )


def counters(net):
    return net.metrics_snapshot()["counters"]


def holds(net, holder_key, victim_key):
    victim_id = net.nodes[victim_key].node_id
    return net.nodes[holder_key].ctx.peer_list.get(victim_id) is not None


class TestRefutedObituary:
    def test_live_victim_survives_and_accuser_is_struck(self):
        net, keys = hardened_network()
        target, liar, victim = group_mates(net, keys[0])[:3]
        assert holds(net, target, victim)
        send_report(net, liar, target, forged_leave(net, victim))
        net.run(until=net.sim.now + 20.0)
        assert holds(net, target, victim), "refuted obituary must not evict"
        tnode = net.nodes[target]
        assert tnode.ctx.obit_strikes.get(net.nodes[liar].address) == 1
        assert tnode.ctx.obit_quarantine == set()
        snap = counters(net)
        assert snap.get("obituary.verifications", 0) == 1
        assert snap.get("obituary.refuted", 0) == 1
        assert snap.get("obituary.confirmed", 0) == 0

    def test_foreign_subject_needs_no_verification(self):
        """An obituary about a node the receiver does not hold is a
        no-op; probing it would be wasted work, so none happens."""
        net, keys = hardened_network()
        group = group_mates(net, keys[0])
        target = group[0]
        outsider = next(k for k in keys if k not in group)
        send_report(net, group[1], target, forged_leave(net, outsider))
        net.run(until=net.sim.now + 20.0)
        assert counters(net).get("obituary.verifications", 0) == 0


class TestDuplicatedObituaries:
    def test_duplicates_coalesce_onto_one_probe_chain(self):
        net, keys = hardened_network()
        target, liar, victim = group_mates(net, keys[0])[:3]
        event = forged_leave(net, victim)
        send_report(net, liar, target, event)
        send_report(net, liar, target, event)  # duplicate, probes in flight
        net.run(until=net.sim.now + 20.0)
        snap = counters(net)
        assert snap.get("obituary.verifications", 0) == 1, "waiters must coalesce"
        assert snap.get("obituary.refuted", 0) == 1
        assert holds(net, target, victim)
        # Every coalesced accusation is judged: the accuser who retold
        # the lie twice crossed quarantine_strikes=2 in one refutation.
        tnode = net.nodes[target]
        liar_addr = net.nodes[liar].address
        assert tnode.ctx.obit_strikes.get(liar_addr) == 2
        assert liar_addr in tnode.ctx.obit_quarantine
        assert snap.get("quarantine.additions", 0) == 1

    def test_conflicting_accusers_each_earn_one_strike(self):
        """Two different reporters accuse the same live subject (at
        different sequence numbers) while one probe chain is pending:
        both wait on it, both are struck once, neither is quarantined."""
        net, keys = hardened_network()
        target, liar_a, liar_b, victim = group_mates(net, keys[0])[:4]
        send_report(net, liar_a, target, forged_leave(net, victim, bump=1))
        send_report(net, liar_b, target, forged_leave(net, victim, bump=2))
        net.run(until=net.sim.now + 20.0)
        snap = counters(net)
        assert snap.get("obituary.verifications", 0) == 1
        tnode = net.nodes[target]
        assert tnode.ctx.obit_strikes.get(net.nodes[liar_a].address) == 1
        assert tnode.ctx.obit_strikes.get(net.nodes[liar_b].address) == 1
        assert tnode.ctx.obit_quarantine == set()
        assert holds(net, target, victim)


class TestConfirmedObituary:
    def test_true_obituary_is_believed_and_costs_nothing(self):
        net, keys = hardened_network()
        target, reporter, victim = group_mates(net, keys[0])[:3]
        event = forged_leave(net, victim)  # true once the victim dies
        victim_id = net.nodes[victim].node_id
        net.crash(victim)  # removes the node from net.nodes
        send_report(net, reporter, target, event)
        net.run(until=net.sim.now + 30.0)
        assert net.nodes[target].ctx.peer_list.get(victim_id) is None, (
            "silence confirms the obituary"
        )
        snap = counters(net)
        assert snap.get("obituary.confirmed", 0) >= 1
        tnode = net.nodes[target]
        assert tnode.ctx.obit_strikes.get(net.nodes[reporter].address, 0) == 0


class TestQuarantine:
    def test_repeat_false_accuser_is_silenced(self):
        net, keys = hardened_network()
        target, liar, victim = group_mates(net, keys[0])[:3]
        # Two refuted accusations (sequentially, each fully settled)
        # cross quarantine_strikes=2 ...
        for bump in (1, 2):
            send_report(net, liar, target, forged_leave(net, victim, bump=bump))
            net.run(until=net.sim.now + 20.0)
        tnode = net.nodes[target]
        liar_addr = net.nodes[liar].address
        assert liar_addr in tnode.ctx.obit_quarantine
        before = counters(net)
        # ... so a third obituary is dropped unheard: no new probe chain,
        # no strike bookkeeping, victim untouched.
        send_report(net, liar, target, forged_leave(net, victim, bump=3))
        net.run(until=net.sim.now + 20.0)
        snap = counters(net)
        assert snap.get("obituary.quarantine_drops", 0) >= 1
        assert snap.get("obituary.verifications", 0) == before.get(
            "obituary.verifications", 0
        )
        assert holds(net, target, victim)

    def test_stock_config_never_verifies(self):
        net, keys = hardened_network(obituary_verify=False)
        target, liar, victim = group_mates(net, keys[0])[:3]
        send_report(net, liar, target, forged_leave(net, victim))
        # The stock protocol believes the forgery on receipt: the live
        # victim is evicted the moment the report lands ...
        evicted = False
        for _ in range(80):
            net.run(until=net.sim.now + 0.25)
            if not holds(net, target, victim):
                evicted = True
                break
        assert evicted, (
            "the stock protocol trusts the forgery — the behavior the "
            "byzantine scenarios demonstrate as a breach"
        )
        assert counters(net).get("obituary.verifications", 0) == 0
        # ... and only heals later, when the victim hears its own
        # obituary in the multicast and refutes with a fresher REFRESH.
        net.run(until=net.sim.now + 20.0)
        assert holds(net, target, victim)
