"""Protocol configuration validation tests."""

import pytest

from repro.core.config import PAPER_COMMON_CONFIG, ProtocolConfig
from repro.core.errors import ConfigError


class TestDefaults:
    def test_paper_values(self):
        c = PAPER_COMMON_CONFIG
        assert c.id_bits == 128  # §2
        assert c.top_list_size == 8  # §2: "commonly we set t = 8"
        assert c.event_message_bits == 1000  # §5.1
        assert c.multicast_processing_delay == 1.0  # §5.1
        assert c.multicast_attempts == 3  # §4.2
        assert c.refresh_multiple == 2.0  # §4.6
        assert c.expiry_multiple == 3.0  # §4.6

    def test_with_returns_modified_copy(self):
        c = ProtocolConfig()
        c2 = c.with_(id_bits=16)
        assert c2.id_bits == 16
        assert c.id_bits == 128

    def test_describe_is_complete(self):
        d = ProtocolConfig().describe()
        assert d["top_list_size"] == 8
        assert "probe_interval" in d


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"id_bits": 0},
            {"id_bits": 257},
            {"top_list_size": 0},
            {"probe_interval": 0.0},
            {"probe_timeout": -1.0},
            {"probe_misses_to_fail": 0},
            {"event_message_bits": 0},
            {"multicast_processing_delay": -0.1},
            {"multicast_attempts": 0},
            {"multicast_ack_timeout": 0.0},
            {"refresh_multiple": 0.0},
            {"refresh_multiple": 3.0, "expiry_multiple": 2.0},
            {"level_check_interval": 0.0},
            {"raise_fraction": 0.0},
            {"raise_fraction": 1.0},
            {"report_timeout": 0.0},
            {"warmup_extra_levels": -1},
            {"timer_jitter": -0.1},
            {"timer_jitter": 1.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ProtocolConfig(**kwargs)


class TestTimerJitter:
    def _context(self, jitter):
        import numpy as np

        from repro.core.context import NodeContext
        from repro.core.nodeid import NodeId
        from repro.core.runtime import SimRuntime
        from repro.net.latency import UniformLatencyModel
        from repro.net.transport import Transport
        from repro.sim.engine import Simulator

        sim = Simulator()
        transport = Transport(sim, UniformLatencyModel())
        return NodeContext(
            SimRuntime(sim, transport),
            ProtocolConfig(id_bits=16, timer_jitter=jitter),
            NodeId(0x1234, 16),
            "n0",
            1e6,
            np.random.default_rng(3),
        )

    def test_zero_jitter_is_identity_and_draws_nothing(self):
        ctx = self._context(0.0)
        before = ctx.rng.bit_generator.state
        assert ctx.jittered(30.0) == 30.0
        assert ctx.rng.bit_generator.state == before  # stream untouched

    def test_jitter_bounded_and_seeded(self):
        draws = [self._context(0.25).jittered(30.0) for _ in range(2)]
        assert draws[0] == draws[1]  # same seed, same draw
        assert 22.5 <= draws[0] <= 37.5
        assert draws[0] != 30.0
