"""Tree-multicast planner tests: the §4.2 properties, property-based.

Property 1: messages flow from stronger to weaker nodes.
Property 2: different nodes have different out-degrees; the root has ~log2 N.
Property 3: the event reaches ALL audience members in ~log2 N steps.
Property 4 (r=1): each member receives exactly once.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multicast import plan_tree, tree_stats
from repro.core.nodeid import NodeId


def build_members(rng, n, bits=12, max_level=4):
    """Random membership with a guaranteed level-0 node."""
    members = {}
    while len(members) < n:
        value = int(rng.integers(0, 1 << bits))
        if value in members:
            continue
        level = int(rng.integers(0, max_level + 1))
        members[value] = (NodeId(value, bits), level)
    # Force one top node so every audience has a root.
    first = next(iter(members))
    members[first] = (members[first][0], 0)
    return members


def audience_of(subject, members):
    return {
        v for v, (nid, lvl) in members.items() if nid.shares_prefix(subject, lvl)
    }


def root_of(subject, members):
    aud = [
        (lvl, nid.value)
        for v, (nid, lvl) in members.items()
        if nid.shares_prefix(subject, lvl)
    ]
    lvl, value = min(aud)
    return members[value]


class TestCoverage:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=5, max_value=120))
    def test_reaches_every_audience_member_exactly_once(self, seed, n):
        rng = np.random.default_rng(seed)
        members = build_members(rng, n)
        subject_value = int(rng.choice(list(members)))
        subject = members[subject_value][0]
        root_id, root_level = root_of(subject, members)
        tree = plan_tree(root_id, root_level, subject, members)
        delivered = [node.node_id.value for node in tree.walk()]
        expected = audience_of(subject, members) - {subject.value}
        expected.add(root_id.value)  # root always in its own tree
        assert sorted(delivered) == sorted(expected)
        # Exactly once (property 4, r = 1):
        assert len(delivered) == len(set(delivered))

    def test_non_audience_members_never_receive(self, rng):
        members = build_members(rng, 80)
        subject_value = int(rng.choice(list(members)))
        subject = members[subject_value][0]
        root_id, root_level = root_of(subject, members)
        tree = plan_tree(root_id, root_level, subject, members)
        aud = audience_of(subject, members)
        for node in tree.walk():
            assert node.node_id.value in aud


class TestStructure:
    def _tree(self, seed=0, n=200, bits=14):
        rng = np.random.default_rng(seed)
        members = build_members(rng, n, bits=bits)
        subject_value = int(rng.choice(list(members)))
        subject = members[subject_value][0]
        root_id, root_level = root_of(subject, members)
        return plan_tree(root_id, root_level, subject, members), members, subject

    def test_depth_about_log2(self):
        tree, _, _ = self._tree(n=250)
        stats = tree_stats(tree)
        log2n = np.log2(stats["reach"])
        assert stats["max_depth"] <= 2.5 * log2n

    def test_root_out_degree_about_log2(self):
        tree, _, _ = self._tree(n=250)
        stats = tree_stats(tree)
        log2n = np.log2(stats["reach"])
        assert 0.4 * log2n <= stats["root_out_degree"] <= 2.0 * log2n

    def test_messages_flow_stronger_to_weaker_on_path(self):
        """§4.2 property 1: each relay's target is never *stronger in the
        containment sense* than necessary — concretely, a child's
        eigenstring can never be a proper prefix of its parent's (the
        child is never strictly stronger than the parent)."""
        tree, members, subject = self._tree(n=300)

        def check(node):
            for child in node.children:
                parent_id, parent_level = node.node_id, node.level
                child_id, child_level = child.node_id, child.level
                strictly_stronger = child_level < parent_level and child_id.shares_prefix(
                    parent_id, child_level
                )
                assert not strictly_stronger
                check(child)

        check(tree)

    def test_start_bit_respected(self):
        """A relay starting at bit s only contacts ids sharing its first
        s bits."""
        tree, _, _ = self._tree(n=200)

        def check(node):
            for child in node.children:
                shared = node.node_id.common_prefix_len(child.node_id)
                assert shared >= node.start_bit
                check(child)

        check(tree)

    def test_children_bit_positions_increase(self):
        """The bit positions a node forwards at strictly increase (the
        figure-4 loop)."""
        tree, _, _ = self._tree(n=200)

        def check(node):
            starts = [c.start_bit for c in node.children]
            assert starts == sorted(starts)
            assert len(set(starts)) == len(starts)
            for child in node.children:
                check(child)

        check(tree)


class TestSmallCases:
    def test_single_member_tree(self):
        root = NodeId.from_bitstring("0000")
        members = {root.value: (root, 0)}
        subject = NodeId.from_bitstring("0101")
        tree = plan_tree(root, 0, subject, members)
        assert tree_stats(tree) == {"reach": 1, "max_depth": 0, "root_out_degree": 0}

    def test_two_members(self):
        a = NodeId.from_bitstring("0000")
        b = NodeId.from_bitstring("1000")
        members = {a.value: (a, 0), b.value: (b, 0)}
        subject = NodeId.from_bitstring("0101")
        tree = plan_tree(a, 0, subject, members)
        stats = tree_stats(tree)
        assert stats["reach"] == 2
        assert stats["max_depth"] == 1

    def test_subject_not_delivered(self):
        a = NodeId.from_bitstring("0000")
        subject = NodeId.from_bitstring("1000")
        members = {a.value: (a, 0), subject.value: (subject, 0)}
        tree = plan_tree(a, 0, subject, members)
        assert [n.node_id.value for n in tree.walk()] == [a.value]
