"""The paper's worked example, live: figure 1's 10-node PeerWindow.

We build the figure's configuration as a running network (4-bit ids,
levels 0-2, ids chosen to match the text's statements: eigenstring "11"
empty; node E's audience = {A, B, D, E, H}) and verify, on live state:

* §2 peer-list properties 1-5;
* figure 2's audience composition for node E;
* figure 3's ring-successor probing inside one eigenstring group;
* the §2 multicast feasibility claim (an event reported by any node
  reaches exactly the audience).
"""

import pytest

from repro.core.audience import audience_set
from repro.core.config import ProtocolConfig
from repro.core.nodeid import NodeId
from repro.core.protocol import PeerWindowNetwork

#: Figure-1-consistent assignment (see tests/core/test_audience.py).
FIGURE1 = {
    "A": ("0100", 0),
    "B": ("1100", 0),
    "C": ("0010", 1),
    "D": ("1110", 1),
    "E": ("1011", 1),
    "F": ("0001", 2),
    "G": ("0111", 2),
    "H": ("1001", 2),
    "I": ("0110", 2),
    "J": ("0101", 2),
}


@pytest.fixture(scope="module")
def figure1_net():
    config = ProtocolConfig(
        id_bits=4,
        probe_interval=5.0,
        probe_timeout=1.0,
        multicast_ack_timeout=1.0,
        report_timeout=2.0,
        level_check_interval=1e6,  # freeze levels: this is a static example
        multicast_processing_delay=0.1,
    )
    net = PeerWindowNetwork(config=config, master_seed=1)
    specs = [
        {
            "threshold_bps": 1e6,
            "node_id": NodeId.from_bitstring(bits),
            "level": level,
        }
        for bits, level in FIGURE1.values()
    ]
    keys = net.seed_nodes(specs)
    net.run(until=10.0)
    by_name = {name: net.node(k) for name, k in zip(FIGURE1, keys)}
    return net, by_name


class TestPeerListProperties:
    def test_property1_same_eigenstring_same_list(self, figure1_net):
        """Nodes D and E (eigenstring '1') have the same peer list."""
        _, nodes = figure1_net
        assert nodes["D"].eigenstring == nodes["E"].eigenstring == "1"
        assert nodes["D"].peer_list.ids() == nodes["E"].peer_list.ids()

    def test_property2_stronger_covers_weaker(self, figure1_net):
        """E's eigenstring '1' is a prefix of H's '10': E's list covers
        H's completely."""
        _, nodes = figure1_net
        assert set(nodes["H"].peer_list.ids()) <= set(nodes["E"].peer_list.ids())

    def test_property3_top_node_covers_system(self, figure1_net):
        net, nodes = figure1_net
        assert len(nodes["A"].peer_list) == 10
        assert nodes["A"].is_top

    def test_property4_same_level_different_eigenstring_disjoint(self, figure1_net):
        """C ('0') and E ('1') at level 1 have entirely different lists."""
        _, nodes = figure1_net
        assert not (set(nodes["C"].peer_list.ids()) & set(nodes["E"].peer_list.ids()))

    def test_property5_group_fully_connected(self, figure1_net):
        """All nodes with eigenstring '1' (D, E) point at each other."""
        _, nodes = figure1_net
        assert nodes["E"].node_id in nodes["D"].peer_list
        assert nodes["D"].node_id in nodes["E"].peer_list

    def test_figure1_list_sizes(self, figure1_net):
        """Level-0 nodes see all 10; '0'-group sees 6; '1'-group sees 4."""
        _, nodes = figure1_net
        assert len(nodes["B"].peer_list) == 10
        assert len(nodes["C"].peer_list) == 6  # ids starting '0': A,C,F,G,I,J
        assert len(nodes["E"].peer_list) == 4  # ids starting '1': B,D,E,H


class TestFigure2Audience:
    def test_audience_of_e(self, figure1_net):
        """§2: E's audience = A, B (level 0), D, E ('1'), H ('10')."""
        net, nodes = figure1_net
        members = [(n.node_id, n.level) for n in net.live_nodes()]
        audience = audience_set(nodes["E"].node_id, members)
        expected = {nodes[x].node_id.value for x in "ABDEH"}
        assert {nid.value for nid, _ in audience} == expected

    def test_info_change_reaches_exactly_the_audience(self, figure1_net):
        net, nodes = figure1_net
        nodes["E"].update_attached_info({"tag": "changed"})
        net.run(until=net.sim.now + 10.0)
        for name, node in nodes.items():
            p = node.peer_list.get(nodes["E"].node_id)
            if name in set("ABDEH") - {"E"}:
                assert p is not None and p.attached_info == {"tag": "changed"}
            elif name != "E":
                assert p is None  # not in the audience: never held a pointer


class TestFigure3Ring:
    def test_ring_successors_in_zero_group(self, figure1_net):
        """The '0'-prefix members of C's level-1... C is alone at level 1
        with eigenstring '0', so its group ring is a singleton; the
        level-2 '01' group {G(0111), I(0110), J(0101)} forms a real ring.
        """
        _, nodes = figure1_net
        succ_j = nodes["J"].peer_list.ring_successor(nodes["J"].node_id)
        assert succ_j.node_id == nodes["I"].node_id  # 0101 -> 0110
        succ_i = nodes["I"].peer_list.ring_successor(nodes["I"].node_id)
        assert succ_i.node_id == nodes["G"].node_id  # 0110 -> 0111
        succ_g = nodes["G"].peer_list.ring_successor(nodes["G"].node_id)
        assert succ_g.node_id == nodes["J"].node_id  # wrap: 0111 -> 0101

    def test_failure_detected_in_group(self, figure1_net):
        net, nodes = figure1_net
        victim = nodes["I"]
        victim_id = victim.node_id
        victim.crash()
        net.run(until=net.sim.now + 40.0)
        for name in "ACGJ":  # the '0' side that held a pointer to I
            assert victim_id not in nodes[name].peer_list
        assert net.mean_error_rate() == 0.0
