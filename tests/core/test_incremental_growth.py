"""Build a PeerWindow from nothing, using only the wire protocol.

No seeding: the first node bootstraps itself (§4.3's degenerate case),
every other node joins through the real handshake.  This exercises the
bootstrap path, join-level estimation against a live top node, download
correctness as the system grows, and the multicast keeping earlier
members' lists complete.
"""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork


@pytest.fixture()
def grown_net():
    config = ProtocolConfig(
        id_bits=16,
        probe_interval=5.0,
        probe_timeout=1.0,
        multicast_ack_timeout=1.0,
        report_timeout=2.0,
        level_check_interval=30.0,
        multicast_processing_delay=0.1,
    )
    net = PeerWindowNetwork(config=config, master_seed=77)
    first = net.add_first_node(1e9)
    net.run(until=5.0)
    keys = [first]
    outcomes = []
    for i in range(15):
        bootstrap = keys[i % len(keys)]
        keys.append(
            net.add_node(1e9, bootstrap=bootstrap,
                         on_done=lambda ok: outcomes.append(ok))
        )
        net.run(until=net.sim.now + 10.0)
    return net, keys, outcomes


class TestIncrementalGrowth:
    def test_all_joins_succeed(self, grown_net):
        net, keys, outcomes = grown_net
        assert outcomes == [True] * 15
        assert len(net.live_nodes()) == 16

    def test_every_list_complete(self, grown_net):
        net, keys, _ = grown_net
        net.run(until=net.sim.now + 20.0)
        for node in net.live_nodes():
            assert net.node_error_rate(node) == 0.0
            assert len(node.peer_list) == 16

    def test_first_node_is_top(self, grown_net):
        net, keys, _ = grown_net
        assert net.node(keys[0]).is_top
        assert net.node(keys[0]).level == 0

    def test_all_homogeneous_joiners_level_zero(self, grown_net):
        net, keys, _ = grown_net
        assert {n.level for n in net.live_nodes()} == {0}

    def test_top_lists_populated(self, grown_net):
        net, keys, _ = grown_net
        for node in net.live_nodes():
            if not node.is_top:
                assert len(node.top_list) > 0

    def test_grown_network_survives_founder_death(self, grown_net):
        """The bootstrap node is not special: kill it, the rest converge."""
        net, keys, _ = grown_net
        founder_id = net.node(keys[0]).node_id
        net.crash(keys[0])
        net.run(until=net.sim.now + 60.0)
        assert len(net.live_nodes()) == 15
        for node in net.live_nodes():
            assert founder_id not in node.peer_list
        assert net.mean_error_rate() == 0.0
