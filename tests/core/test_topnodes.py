"""Top-node list maintenance tests (§4.5)."""

import numpy as np
import pytest

from repro.core.nodeid import NodeId
from repro.core.pointer import Pointer
from repro.core.topnodes import CrossPartTopList, TopNodeList


def ptr(s, level=0, refresh=0.0):
    return Pointer(
        node_id=NodeId.from_bitstring(s),
        address=s,
        level=level,
        last_refresh=refresh,
    )


class TestTopNodeList:
    def test_merge_adds_new(self):
        t = TopNodeList(capacity=4)
        added = t.merge([ptr("0001"), ptr("0010")])
        assert added == 2
        assert len(t) == 2

    def test_merge_prefers_fresher(self):
        t = TopNodeList(4)
        t.merge([ptr("0001", level=0, refresh=1.0)])
        t.merge([ptr("0001", level=1, refresh=5.0)])
        assert t.pointers()[0].level == 1
        t.merge([ptr("0001", level=2, refresh=2.0)])  # staler: ignored
        assert t.pointers()[0].level == 1

    def test_capacity_evicts_oldest_refresh(self):
        t = TopNodeList(2)
        t.merge([ptr("0001", refresh=1.0), ptr("0010", refresh=5.0), ptr("0011", refresh=3.0)])
        kept = {p.node_id.bitstring() for p in t.pointers()}
        assert kept == {"0010", "0011"}

    def test_choose_uniform(self):
        t = TopNodeList(8)
        t.merge([ptr("0001"), ptr("0010"), ptr("0100")])
        rng = np.random.default_rng(0)
        picks = {t.choose(rng).node_id.bitstring() for _ in range(50)}
        assert picks == {"0001", "0010", "0100"}

    def test_choose_empty(self):
        assert TopNodeList(4).choose(np.random.default_rng(0)) is None

    def test_remove(self):
        t = TopNodeList(4)
        t.merge([ptr("0001")])
        assert t.remove(NodeId.from_bitstring("0001")) is not None
        assert t.remove(NodeId.from_bitstring("0001")) is None
        assert len(t) == 0

    def test_min_level(self):
        t = TopNodeList(4)
        assert t.min_level() is None
        t.merge([ptr("0001", level=2), ptr("0010", level=1)])
        assert t.min_level() == 1

    def test_contains(self):
        t = TopNodeList(4)
        t.merge([ptr("0001")])
        assert NodeId.from_bitstring("0001") in t
        assert NodeId.from_bitstring("0010") not in t

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TopNodeList(0)


class TestCrossPartTopList:
    def test_merge_and_lookup_by_part(self):
        c = CrossPartTopList(per_part=4)
        c.merge("1", [ptr("1001", level=1), ptr("1100", level=1)])
        assert len(c.for_part("1")) == 2
        assert c.for_part("0") == []
        assert c.parts() == ["1"]

    def test_find_for_id_matches_prefix(self):
        c = CrossPartTopList(4)
        c.merge("10", [ptr("1001", level=2)])
        c.merge("11", [ptr("1101", level=2)])
        found = c.find_for_id(NodeId.from_bitstring("1011"))
        assert [p.node_id.bitstring() for p in found] == ["1001"]

    def test_find_prefers_shortest_prefix(self):
        c = CrossPartTopList(4)
        c.merge("1", [ptr("1000", level=1)])
        c.merge("10", [ptr("1001", level=2)])
        found = c.find_for_id(NodeId.from_bitstring("1011"))
        assert found[0].node_id.bitstring() == "1000"

    def test_find_none(self):
        c = CrossPartTopList(4)
        c.merge("11", [ptr("1101", level=2)])
        assert c.find_for_id(NodeId.from_bitstring("0011")) == []

    def test_remove_prunes_empty_parts(self):
        c = CrossPartTopList(4)
        c.merge("1", [ptr("1001", level=1)])
        c.remove(NodeId.from_bitstring("1001"))
        assert c.parts() == []
