"""Crash recovery: the §4.3 rejoin with stale-cache reconciliation.

A recovered node does not discard its pre-crash peer list.  The
downloaded snapshot refreshes what it confirms; cached entries it does
*not* confirm are kept and actively verified — live ones survive (state
a discard-based rejoin would lose), dead ones are probed out and
announced.  The handshake itself retries with exponential backoff and
fails a download over to alternate top nodes.
"""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig
from repro.core.errors import NotAliveError
from repro.core.protocol import PeerWindowNetwork


def recovery_config(**overrides) -> ProtocolConfig:
    base = dict(
        id_bits=16,
        probe_interval=5.0,
        probe_timeout=1.0,
        probe_misses_to_fail=2,
        multicast_ack_timeout=1.0,
        report_timeout=2.0,
        level_check_interval=1e6,
        multicast_processing_delay=0.1,
        join_retry_attempts=2,
        join_retry_backoff=2.0,
    )
    base.update(overrides)
    return ProtocolConfig(**base)


def recovery_network(n=16, seed=7, **config_overrides):
    net = PeerWindowNetwork(config=recovery_config(**config_overrides), master_seed=seed)
    keys = net.seed_nodes([1e9] * n)
    net.run(until=10.0)
    return net, keys


def holders_of(net, node_id):
    return {n.address for n in net.live_nodes()
            if node_id.value in set(n.peer_list.ids())}


class TestRejoin:
    def test_recover_after_full_eviction(self):
        net, keys = recovery_network()
        victim = keys[3]
        node = net.crash(victim)
        vid = node.node_id
        net.run(until=net.sim.now + 40.0)
        assert holders_of(net, vid) == set(), "obituary should evict the crash"

        results = []
        net.recover_node(node, keys[0], on_done=results.append)
        net.run(until=net.sim.now + 30.0)
        assert results == [True]
        assert node.alive
        # The JOIN multicast re-announced the node to its whole audience.
        live = {n.address for n in net.live_nodes()}
        assert holders_of(net, vid) == live
        assert net.node_error_rate(node) == 0.0

    def test_recover_while_alive_rejected(self):
        net, keys = recovery_network(n=8)
        node = net.node(keys[2])
        with pytest.raises(NotAliveError):
            node.recover_via(keys[0])

    def test_recover_registered_key_rejected(self):
        net, keys = recovery_network(n=8)
        node = net.node(keys[2])
        with pytest.raises(ValueError):
            net.recover_node(node, keys[0])


class TestReconciliation:
    def test_unconfirmed_live_cached_pointer_survives(self):
        """A cached pointer the snapshot does not confirm but whose node
        is alive must be kept: verification probes it, it answers.  A
        discard-based rejoin would lose it."""
        net, keys = recovery_network()
        victim, kept = keys[3], keys[5]
        kept_id = net.node(kept).node_id
        node = net.crash(victim)
        assert kept_id.value in set(node.peer_list.ids())  # cached across the crash
        net.run(until=net.sim.now + 40.0)
        # Erase `kept` from every live peer list (so no download snapshot
        # can confirm it) without killing it.
        for other in net.live_nodes():
            if other.address != kept:
                other.peer_list.remove(kept_id)

        results = []
        net.recover_node(node, keys[0], on_done=results.append)
        net.run(until=net.sim.now + 30.0)
        assert results == [True]
        assert kept_id.value in set(node.peer_list.ids()), (
            "reconciliation dropped a cached pointer to a live node"
        )

    def test_unconfirmed_dead_cached_pointer_probed_out(self):
        """A cached pointer to a node that died during the downtime is
        kept only until verification: the probes go unanswered and it is
        removed with an obituary, bounding its staleness."""
        net, keys = recovery_network()
        victim, casualty = keys[3], keys[5]
        node = net.crash(victim)
        dead_id = net.node(casualty).node_id
        assert dead_id.value in set(node.peer_list.ids())
        net.crash(casualty)  # stays down
        net.run(until=net.sim.now + 40.0)

        results = []
        net.recover_node(node, keys[0], on_done=results.append)
        net.run(until=net.sim.now + 30.0)
        assert results == [True]
        assert dead_id.value not in set(node.peer_list.ids()), (
            "verification failed to evict a dead cached pointer"
        )
        assert net.node_error_rate(node) == 0.0


class TestHandshakeResilience:
    def test_retry_backoff_through_dead_bootstrap(self):
        """Every handshake step through a dead bootstrap times out; the
        join retries with exponential backoff and finally reports
        failure (attempts = 1 + join_retry_attempts)."""
        net, keys = recovery_network()
        node = net.crash(keys[3])
        dead_bootstrap = keys[5]
        net.crash(dead_bootstrap)
        net.run(until=net.sim.now + 40.0)

        results = []
        start = net.sim.now
        net.recover_node(node, dead_bootstrap, on_done=results.append)
        # Attempt timeline (report_timeout=2, backoff=2): timeout at +2,
        # retry at +4, timeout +6, retry +10, timeout +12 -> failure.
        net.run(until=start + 8.0)
        assert results == [], "gave up before exhausting backoff retries"
        net.run(until=start + 20.0)
        assert results == [False]
        assert not node.alive

    def test_download_fails_over_to_alternate_top(self):
        """A silent download server does not burn a handshake retry: the
        joiner falls back to an alternate top node learned during steps
        1-2 (here with retries disabled, so success proves failover)."""
        net, keys = recovery_network(join_retry_attempts=0)
        node = net.crash(keys[3])
        net.run(until=net.sim.now + 40.0)

        bootstrap = keys[0]
        server = net.node(bootstrap)
        swallowed = []
        server.join.on_download = swallowed.append  # drop, never reply
        results = []
        net.recover_node(node, bootstrap, on_done=results.append)
        net.run(until=net.sim.now + 30.0)
        assert swallowed, "primary download server was never asked"
        assert results == [True], "failover to an alternate top did not happen"
        assert node.alive
        assert net.node_error_rate(node) == 0.0
