"""Audience-set / peer-list predicate tests (§2), incl. hypothesis."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.audience import (
    audience_set,
    correct_peer_list,
    covers,
    in_peer_list,
    same_eigenstring,
    stronger,
)
from repro.core.errors import NodeIdError
from repro.core.nodeid import NodeId

ids_12 = st.integers(min_value=0, max_value=(1 << 12) - 1)
levels = st.integers(min_value=0, max_value=12)


def nid(s: str) -> NodeId:
    return NodeId.from_bitstring(s)


class TestCovers:
    def test_level_zero_covers_everything(self):
        holder = nid("0000")
        for v in range(16):
            assert covers(holder, 0, NodeId(v, 4))

    def test_covers_requires_prefix_match(self):
        holder = nid("1010")
        assert covers(holder, 2, nid("1001"))
        assert not covers(holder, 2, nid("1101"))

    def test_bad_level_rejected(self):
        with pytest.raises(NodeIdError):
            covers(nid("1010"), 5, nid("0000"))

    @given(ids_12, levels, ids_12)
    def test_duality_with_peer_list(self, holder_val, level, other_val):
        """covers(A, lA, B) == B belongs in A's peer list == A is in B's
        audience set — the §2 identity."""
        holder, other = NodeId(holder_val, 12), NodeId(other_val, 12)
        assert covers(holder, level, other) == in_peer_list(holder, level, other)

    @given(ids_12, levels)
    def test_self_coverage(self, value, level):
        holder = NodeId(value, 12)
        assert covers(holder, level, holder)


class TestRelations:
    def test_same_eigenstring_figure1(self):
        """Nodes D and E share eigenstring '1' (figure 1)."""
        d, e = nid("1110"), nid("1011")
        assert same_eigenstring(d, 1, e, 1)
        assert not same_eigenstring(d, 1, e, 2)

    def test_stronger_is_proper_prefix(self):
        """Node E (level 1, '1') is stronger than node H (level 2, '10')."""
        e, h = nid("1011"), nid("1011")
        assert stronger(e, 1, h, 2)
        assert not stronger(h, 2, e, 1)
        assert not stronger(e, 1, e, 1)  # same eigenstring, not stronger

    @given(ids_12, levels, ids_12, levels, ids_12, levels)
    def test_stronger_transitive(self, av, al, bv, bl, cv, cl):
        a, b, c = NodeId(av, 12), NodeId(bv, 12), NodeId(cv, 12)
        if stronger(a, al, b, bl) and stronger(b, bl, c, cl):
            assert stronger(a, al, c, cl)

    @given(ids_12, levels, ids_12, levels)
    def test_stronger_peer_list_containment(self, av, al, bv, bl):
        """Peer-list property 2: a stronger node's list covers the weaker's.
        Checked against a fixed universe of members."""
        a, b = NodeId(av, 12), NodeId(bv, 12)
        if not stronger(a, al, b, bl):
            return
        universe = [(NodeId(v * 37 % 4096, 12), 0) for v in range(64)]
        list_a = {x.value for x, _ in correct_peer_list(a, al, universe)}
        list_b = {x.value for x, _ in correct_peer_list(b, bl, universe)}
        assert list_b <= list_a


class TestSetComputations:
    def test_audience_of_figure1_node_e(self):
        """§2's worked audience: for node E (nodeId 1011), the audience is
        A, B (level 0), D, E (level 1, '1'), H (level 2, '10')."""
        members = {
            "A": (nid("0100"), 0),  # top node
            "B": (nid("1100"), 0),  # top node
            "C": (nid("0010"), 1),  # eigenstring "0"
            "D": (nid("1110"), 1),  # eigenstring "1"
            "E": (nid("1011"), 1),  # eigenstring "1" (the subject)
            "F": (nid("0001"), 2),  # eigenstring "00"
            "G": (nid("0111"), 2),  # eigenstring "01"
            "H": (nid("1001"), 2),  # eigenstring "10" — prefix of E's id
            "I": (nid("0110"), 2),  # eigenstring "01"
            "J": (nid("0101"), 2),  # eigenstring "01"
        }
        subject = members["E"][0]
        aud = audience_set(subject, members.values())
        aud_vals = sorted((n.value, l) for n, l in aud)
        expected = sorted(
            (members[k][0].value, members[k][1]) for k in ("A", "B", "D", "E", "H")
        )
        assert aud_vals == expected

    def test_correct_peer_list_prefix_rule(self):
        members = [(NodeId(v, 4), 0) for v in range(16)]
        owner = nid("1010")
        lst = correct_peer_list(owner, 2, members)
        assert sorted(n.value for n, _ in lst) == [8, 9, 10, 11]

    @given(ids_12, levels)
    def test_peer_list_size_halves_per_level(self, owner_val, level):
        """Expected size N/2^l over the full id universe."""
        if level > 6:
            return
        owner = NodeId(owner_val, 12)
        members = [(NodeId(v, 12), 0) for v in range(0, 4096, 64)]  # 64 spread
        lst = correct_peer_list(owner, level, members)
        # 64 members uniform; expected 64 / 2^level, allow wide slack for
        # the regular spacing.
        expected = 64 / (2**level)
        assert 0 <= len(lst) <= 64
        if level == 0:
            assert len(lst) == 64
