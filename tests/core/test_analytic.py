"""Analytic model tests (§2's formulas and worked numbers)."""


import pytest

from repro.core.analytic import (
    CostModel,
    estimate_join_level,
    expected_error_rate,
    expected_multicast_steps,
)
from repro.core.errors import ConfigError


class TestPaperNumbers:
    def test_modem_example_6000_pointers(self):
        """§2: L=3600, m=3, i=1000, r=1 → a 5 kbps node collects ~6000."""
        m = CostModel(
            mean_lifetime_s=3600.0,
            changes_per_lifetime=3.0,
            redundancy=1.0,
            message_bits=1000.0,
        )
        assert m.pointers_for_bandwidth(5000.0) == pytest.approx(6000.0)

    def test_abstract_headline_under_1kbps_per_1000(self):
        """Abstract: collecting 1,000 pointers costs less than 1 kbps."""
        m = CostModel()
        assert m.bandwidth_per_1000_pointers() < 1000.0

    def test_level_shift_doubles_pointers(self):
        """§2 autonomy example: raising one level doubles the list and
        returns the bandwidth cost to the threshold."""
        m = CostModel()
        n = 100_000
        for level in range(1, 6):
            assert m.peer_list_size(n, level - 1) == pytest.approx(
                2 * m.peer_list_size(n, level)
            )
            assert m.level_cost(n, level - 1) == pytest.approx(
                2 * m.level_cost(n, level)
            )

    def test_intro_probing_comparison(self):
        """The probing strawman maintains 600 pointers at 10 kbps; the
        multicast model maintains ~12000 at the same budget (L=2h)."""
        peer_window = CostModel(mean_lifetime_s=7200.0, changes_per_lifetime=3.0)
        assert peer_window.pointers_for_bandwidth(10_000) == pytest.approx(24_000.0)


class TestCostModel:
    def test_inverse_functions(self):
        m = CostModel()
        for w in (500.0, 5000.0, 1e6):
            assert m.bandwidth_for_pointers(m.pointers_for_bandwidth(w)) == pytest.approx(w)

    def test_min_affordable_level(self):
        m = CostModel()
        n = 100_000
        for threshold in (500.0, 5_000.0, 50_000.0, 1e9):
            level = m.min_affordable_level(n, threshold)
            assert m.level_cost(n, level) <= threshold + 1e-9
            if level > 0:
                assert m.level_cost(n, level - 1) > threshold

    def test_level_zero_when_affordable(self):
        m = CostModel()
        assert m.min_affordable_level(100, 1e9) == 0

    def test_empty_system(self):
        assert CostModel().min_affordable_level(0, 100.0) == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            CostModel(mean_lifetime_s=0.0)
        with pytest.raises(ConfigError):
            CostModel().bandwidth_for_pointers(-1.0)
        with pytest.raises(ConfigError):
            CostModel().min_affordable_level(10, 0.0)


class TestJoinEstimate:
    def test_equal_budgets_same_level(self):
        assert estimate_join_level(2, 1000.0, 1000.0) == 2

    def test_double_budget_one_level_stronger(self):
        assert estimate_join_level(2, 1000.0, 2000.0) == 1

    def test_half_budget_one_level_weaker(self):
        assert estimate_join_level(2, 1000.0, 500.0) == 3

    def test_clamped_at_zero(self):
        assert estimate_join_level(1, 1000.0, 1e9) == 0

    def test_non_power_of_two_ceils(self):
        # W_T/W_X = 3 → log2(3) ≈ 1.58 → ceil → +2 levels
        assert estimate_join_level(0, 3000.0, 1000.0) == 2

    def test_zero_top_cost(self):
        assert estimate_join_level(3, 0.0, 100.0) == 3

    def test_validation(self):
        with pytest.raises(ConfigError):
            estimate_join_level(-1, 100.0, 100.0)
        with pytest.raises(ConfigError):
            estimate_join_level(0, 100.0, 0.0)


class TestErrorAndSteps:
    def test_error_rate_formula(self):
        """§5.1: 25 s staleness over 135-minute lifetimes ≈ 0.0031."""
        assert expected_error_rate(24.9, 135 * 60) == pytest.approx(0.0031, abs=2e-4)

    def test_error_rate_capped(self):
        assert expected_error_rate(1e9, 1.0) == 1.0

    def test_multicast_steps_log2(self):
        """§5.1: log2(100000) ≈ 16.6 steps."""
        assert expected_multicast_steps(100_000) == pytest.approx(16.6, abs=0.05)
        assert expected_multicast_steps(1) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            expected_error_rate(-1.0, 10.0)
