"""Admission control (DESIGN §16): proof-of-work tokens and the
per-server join throttle.

The PoW unit contract: ``solve_pow`` is deterministic and its token
verifies under the same identity; the cost model charges
``attempts / hash_rate`` seconds.  The protocol contract: a joiner
carrying a valid token is admitted, a forged or missing token is dropped
silently, and a bootstrap refuses to serve two get-tops within one
throttle interval (the joiner's §4.3 backoff-and-retry absorbs the
refusal).
"""

from __future__ import annotations

import pytest

from repro.core.admission import (
    MAX_POW_BITS,
    expected_attempts,
    pow_cost_seconds,
    solve_pow,
    verify_pow,
)
from repro.core.config import ProtocolConfig
from repro.core.nodeid import NodeId
from repro.core.protocol import PeerWindowNetwork
from repro.net.message import Message


class TestPowPrimitives:
    def test_solve_then_verify_round_trip(self):
        for identity in (0x1234, 0xBEEF, 0x0001):
            nonce, attempts = solve_pow(identity, 8)
            assert attempts == nonce + 1
            assert verify_pow(identity, nonce, 8)

    def test_solve_is_deterministic(self):
        assert solve_pow(0xCAFE, 10) == solve_pow(0xCAFE, 10)

    def test_token_is_bound_to_the_identity(self):
        nonce, _ = solve_pow(0x1234, 12)
        assert verify_pow(0x1234, nonce, 12)
        assert not verify_pow(0x1235, nonce, 12)

    def test_zero_bits_admits_anything(self):
        assert verify_pow(0x1234, 0, 0)
        assert solve_pow(0x1234, 0) == (0, 0)

    def test_garbage_nonces_fail_closed(self):
        assert not verify_pow(0x1234, -1, 8)
        assert not verify_pow(0x1234, True, 8)
        assert not verify_pow(0x1234, "0", 8)  # type: ignore[arg-type]

    def test_bits_ceiling_enforced(self):
        with pytest.raises(ValueError):
            verify_pow(0x1234, 0, MAX_POW_BITS + 1)
        with pytest.raises(ValueError):
            solve_pow(0x1234, MAX_POW_BITS + 1)

    def test_cost_model(self):
        assert pow_cost_seconds(500, 1000.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            pow_cost_seconds(500, 0.0)
        assert expected_attempts(10) == 1024.0
        assert expected_attempts(0) == 0.0


def admission_config(**overrides) -> ProtocolConfig:
    base = dict(
        id_bits=16,
        probe_interval=8.0,
        probe_timeout=2.0,
        probe_misses_to_fail=3,
        multicast_ack_timeout=2.0,
        report_timeout=4.0,
        level_check_interval=1e6,
        multicast_processing_delay=0.25,
        join_retry_attempts=2,
        join_retry_backoff=2.0,
    )
    base.update(overrides)
    return ProtocolConfig(**base)


def admission_network(n=12, seed=5, **overrides):
    net = PeerWindowNetwork(
        config=admission_config(**overrides), master_seed=seed, observability=True
    )
    keys = net.seed_nodes([1e9] * n)
    net.run(until=10.0)
    return net, keys


def counters(net):
    return net.metrics_snapshot()["counters"]


class TestJoinAdmission:
    def test_honest_joiner_pays_pow_and_is_admitted(self):
        net, keys = admission_network(join_pow_bits=6, join_pow_hash_rate=1000.0)
        results = []
        key = net.add_node(1e9, keys[0], on_done=results.append)
        net.run(until=net.sim.now + 30.0)
        assert results == [True]
        assert net.nodes[key].alive
        snap = counters(net)
        assert snap.get("join.pow_rejected", 0) == 0
        # The grind delay was observed into the cost distribution.
        dists = net.metrics_snapshot()["dists"]
        assert dists["join.pow_cost"]["count"] >= 1

    def test_forged_token_is_dropped_silently(self):
        net, keys = admission_network(join_pow_bits=12)
        server = net.nodes[keys[0]]
        joiner_id = NodeId(0xABCD, server.node_id.bits)
        nonce, _ = solve_pow(joiner_id.value, 12)
        bad_nonce = nonce + 1 if not verify_pow(joiner_id.value, nonce + 1, 12) else 0
        before = counters(net).get("join.assists", 0)
        server.join.on_get_top(
            Message("10.0.0.1:1", server.address, "get-top",
                    payload=(joiner_id, bad_nonce))
        )
        server.join.on_get_top(
            Message("10.0.0.1:1", server.address, "get-top", payload=joiner_id)
        )
        snap = counters(net)
        assert snap.get("join.pow_rejected", 0) == 2
        assert snap.get("join.assists", 0) == before

    def test_throttle_defers_the_second_joiner(self):
        net, keys = admission_network(join_throttle_interval=20.0)
        results = []
        net.add_node(1e9, keys[0], on_done=lambda ok: results.append(("a", ok)))
        net.add_node(1e9, keys[0], on_done=lambda ok: results.append(("b", ok)))
        net.run(until=net.sim.now + 60.0)
        snap = counters(net)
        assert snap.get("join.throttled", 0) >= 1
        # At least the first joiner through the gate must be admitted.
        assert ("a", True) in results or ("b", True) in results

    def test_admission_disabled_is_the_stock_protocol(self):
        net, keys = admission_network()
        results = []
        net.add_node(1e9, keys[0], on_done=results.append)
        net.run(until=net.sim.now + 20.0)
        assert results == [True]
        snap = counters(net)
        assert snap.get("join.pow_rejected", 0) == 0
        assert snap.get("join.throttled", 0) == 0
