"""Pointer dataclass tests."""

import pytest

from repro.core.errors import NodeIdError
from repro.core.nodeid import NodeId
from repro.core.pointer import Pointer


def make(level=1, info=None):
    return Pointer(
        node_id=NodeId.from_bitstring("1011"),
        address="addr",
        level=level,
        attached_info=info,
        seen_join_time=5.0,
        last_refresh=10.0,
        last_event_seq=3,
    )


class TestPointer:
    def test_eigenstring_follows_level(self):
        assert make(level=0).eigenstring == ""
        assert make(level=2).eigenstring == "10"

    def test_level_validation(self):
        with pytest.raises(NodeIdError):
            make(level=-1)
        with pytest.raises(NodeIdError):
            make(level=5)  # exceeds 4-bit id

    def test_copy_is_independent(self):
        original = make(info={"k": 1})
        clone = original.copy()
        clone.level = 3
        clone.last_refresh = 99.0
        assert original.level == 1
        assert original.last_refresh == 10.0

    def test_copy_with_overrides(self):
        clone = make().copy(level=2, last_refresh=42.0)
        assert clone.level == 2
        assert clone.last_refresh == 42.0
        assert clone.node_id == make().node_id
        assert clone.seen_join_time == 5.0

    def test_copy_shares_attached_info_reference(self):
        """copy() is shallow — attached info objects are shared, which is
        why senders must construct fresh payloads for mutable app data."""
        info = {"k": 1}
        original = make(info=info)
        clone = original.copy()
        assert clone.attached_info is info
