"""Part merging (§4.4 + DESIGN.md §8): a top node raising above its part.

The paper specifies splitting but leaves merging informal.  Our
completion: the raising top downloads the sibling part's membership from
a cross-part top and bridge-subscribes to its event stream.  These tests
drive the whole path.
"""


from repro.core.config import ProtocolConfig
from repro.core.nodeid import NodeId
from repro.core.protocol import PeerWindowNetwork


def build_two_parts(per_part=8, seed=6, level_check=1e6):
    config = ProtocolConfig(
        id_bits=12,
        probe_interval=5.0,
        probe_timeout=1.0,
        multicast_ack_timeout=1.0,
        report_timeout=2.0,
        level_check_interval=level_check,
        multicast_processing_delay=0.1,
    )
    net = PeerWindowNetwork(config=config, master_seed=seed)
    rng = net.streams.get("ids")
    specs = []
    used = set()
    for part_bit in (0, 1):
        while sum(1 for s in specs if s["node_id"].bit(0) == part_bit) < per_part:
            value = (part_bit << 11) | int(rng.integers(0, 1 << 11))
            if value in used:
                continue
            used.add(value)
            specs.append(
                {"threshold_bps": 1e6, "node_id": NodeId(value, 12), "level": 1}
            )
    keys = net.seed_nodes(specs)
    net.run(until=15.0)
    return net, keys


class TestPartMerge:
    def _merge_one(self, net, keys):
        """Force one part-0 top to raise to level 0."""
        merger = next(
            net.node(k) for k in keys if net.node(k).node_id.bit(0) == 0
        )
        merger._initiate_raise(0)
        net.run(until=net.sim.now + 20.0)
        return merger

    def test_merger_reaches_level_zero_with_full_list(self):
        net, keys = build_two_parts()
        merger = self._merge_one(net, keys)
        assert merger.level == 0
        assert merger.is_top
        # Its peer list now spans BOTH parts.
        assert len(merger.peer_list) == len(net.live_nodes())
        bits_seen = {p.node_id.bit(0) for p in merger.peer_list}
        assert bits_seen == {0, 1}

    def test_merger_bridge_subscribed_at_sibling_top(self):
        net, keys = build_two_parts()
        merger = self._merge_one(net, keys)
        subscribed = [
            n for n in net.live_nodes()
            if merger.node_id.value in n.bridge_subscribers
        ]
        assert subscribed
        assert all(n.node_id.bit(0) == 1 for n in subscribed)

    def test_sibling_part_events_reach_merger(self):
        """A leave in part 1 must update the merger's (merged) list via
        the bridge."""
        net, keys = build_two_parts()
        merger = self._merge_one(net, keys)
        victim_key = next(
            k for k in keys
            if k in net.nodes and net.node(k).node_id.bit(0) == 1
        )
        # The subscription propagated across the sibling top group, so any
        # sibling top's own leave is bridged too.
        assert merger.node_id.value in net.node(victim_key).bridge_subscribers
        victim_id = net.node(victim_key).node_id
        assert victim_id in merger.peer_list
        net.leave(victim_key)
        net.run(until=net.sim.now + 30.0)
        assert victim_id not in merger.peer_list

    def test_own_part_unaffected_by_merge(self):
        net, keys = build_two_parts()
        merger = self._merge_one(net, keys)
        # Part-0 members still hold correct intra-part lists.
        for k in keys:
            if k in net.nodes and net.node(k).node_id.bit(0) == 0:
                node = net.node(k)
                if node is merger:
                    continue
                assert net.node_error_rate(node) == 0.0

    def test_merge_then_lower_splits_again(self):
        """The merger lowering back to 1 re-splits: the sibling entries
        are evicted and land in its cross-part list."""
        net, keys = build_two_parts()
        merger = self._merge_one(net, keys)
        merger._commit_lower()
        net.run(until=net.sim.now + 10.0)
        assert merger.level == 1
        assert all(p.node_id.bit(0) == 0 for p in merger.peer_list)
        sibling_parts = merger.cross_parts.parts()
        assert any(p.startswith("1") for p in sibling_parts)
