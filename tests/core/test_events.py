"""Event application tests (§2 state changes, §4.6 ordering guards)."""

import pytest

from repro.core.events import EventKind, EventRecord, apply_event
from repro.core.nodeid import NodeId
from repro.core.peerlist import PeerList


def nid(s):
    return NodeId.from_bitstring(s)


def event(kind, subject, level=0, seq=0, t=0.0, info=None):
    return EventRecord(
        kind=kind,
        subject_id=nid(subject),
        subject_level=level,
        subject_address=subject,
        seq=seq,
        origin_time=t,
        attached_info=info,
    )


@pytest.fixture
def pl():
    return PeerList(nid("0000"), 0)


class TestJoin:
    def test_join_adds_pointer(self, pl):
        assert apply_event(pl, event(EventKind.JOIN, "1010", level=1), now=5.0)
        p = pl.get(nid("1010"))
        assert p.level == 1
        assert p.seen_join_time == 5.0
        assert p.last_refresh == 5.0

    def test_join_outside_prefix_ignored(self):
        pl = PeerList(nid("0000"), 2)
        assert not apply_event(pl, event(EventKind.JOIN, "1010"), now=0.0)
        assert len(pl) == 0

    def test_own_event_ignored(self, pl):
        assert not apply_event(
            pl, event(EventKind.JOIN, "0000"), now=0.0, owner_id=nid("0000")
        )


class TestLeave:
    def test_leave_removes(self, pl):
        apply_event(pl, event(EventKind.JOIN, "1010", seq=0), now=0.0)
        assert apply_event(pl, event(EventKind.LEAVE, "1010", seq=1), now=1.0)
        assert nid("1010") not in pl

    def test_leave_of_unknown_is_noop(self, pl):
        assert not apply_event(pl, event(EventKind.LEAVE, "1010"), now=0.0)


class TestOrdering:
    def test_stale_event_ignored(self, pl):
        apply_event(pl, event(EventKind.JOIN, "1010", level=2, seq=5), now=0.0)
        assert not apply_event(
            pl, event(EventKind.LEVEL_CHANGE, "1010", level=1, seq=3), now=1.0
        )
        assert pl.get(nid("1010")).level == 2

    def test_equal_seq_ignored(self, pl):
        apply_event(pl, event(EventKind.JOIN, "1010", seq=5), now=0.0)
        assert not apply_event(pl, event(EventKind.LEAVE, "1010", seq=5), now=1.0)
        assert nid("1010") in pl

    def test_newer_seq_applies(self, pl):
        apply_event(pl, event(EventKind.JOIN, "1010", level=1, seq=0), now=0.0)
        assert apply_event(
            pl, event(EventKind.LEVEL_CHANGE, "1010", level=3, seq=1), now=1.0
        )
        assert pl.get(nid("1010")).level == 3


class TestLevelChangeAndInfo:
    def test_level_change_creates_if_absent(self, pl):
        """A level change about a node we missed the join of: upsert."""
        assert apply_event(
            pl, event(EventKind.LEVEL_CHANGE, "1010", level=2, seq=1), now=3.0
        )
        p = pl.get(nid("1010"))
        assert p.level == 2
        assert p.seen_join_time is None  # join was never observed

    def test_info_change_updates_attached(self, pl):
        apply_event(pl, event(EventKind.JOIN, "1010", seq=0, info={"f": 1}), now=0.0)
        apply_event(
            pl, event(EventKind.INFO_CHANGE, "1010", seq=1, info={"f": 9}), now=1.0
        )
        assert pl.get(nid("1010")).attached_info == {"f": 9}


class TestRefresh:
    def test_refresh_bumps_last_refresh(self, pl):
        apply_event(pl, event(EventKind.JOIN, "1010", seq=0), now=0.0)
        apply_event(pl, event(EventKind.REFRESH, "1010", seq=1), now=100.0)
        assert pl.get(nid("1010")).last_refresh == 100.0

    def test_refresh_revives_absent_pointer(self, pl):
        """§4.6: an absent pointer is automatically revised when any event
        about the node arrives — including a refresh."""
        assert apply_event(pl, event(EventKind.REFRESH, "1010", level=1, seq=4), now=9.0)
        assert nid("1010") in pl


class TestValidation:
    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError):
            event(EventKind.JOIN, "1010", seq=-1)

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            EventRecord(
                kind=EventKind.JOIN,
                subject_id=nid("1010"),
                subject_level=9,
                subject_address="x",
                seq=0,
                origin_time=0.0,
            )
