"""Autonomic level shifting on the live protocol (§2, §4.3)."""


from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork
from tests.conftest import build_network


def heterogeneous_network(n=24, seed=2):
    """Half strong (effectively unconstrained), half weak nodes."""
    config = ProtocolConfig(
        id_bits=16,
        probe_interval=5.0,
        probe_timeout=1.0,
        multicast_ack_timeout=1.0,
        report_timeout=2.0,
        level_check_interval=8.0,
        multicast_processing_delay=0.1,
    )
    net = PeerWindowNetwork(config=config, master_seed=seed)
    specs = [1e9] * (n // 2) + [40.0] * (n - n // 2)
    keys = net.seed_nodes(specs, mean_lifetime_s=600.0)
    return net, keys


class TestSeededLevels:
    def test_heterogeneous_seed_levels(self):
        net, keys = heterogeneous_network()
        strong_levels = {net.node(k).level for k in keys[:12]}
        weak_levels = {net.node(k).level for k in keys[12:]}
        assert strong_levels == {0}
        assert all(l > 0 for l in weak_levels)

    def test_seed_peer_lists_match_levels(self):
        net, keys = heterogeneous_network()
        for k in keys:
            node = net.node(k)
            assert len(node.peer_list) == len(net.oracle_peer_ids(node))


class TestRuntimeShifts:
    def test_overloaded_node_lowers_level(self):
        """Drive one node's measured input above its threshold; the
        controller must lower the level (bigger level value, smaller list).
        """
        net, keys = build_network(16, settle=10.0)
        victim = net.node(keys[0])
        victim.controller.set_threshold(1.0)
        victim.threshold_bps = 1.0
        # Generate traffic so the EWMA sees load: joins/leaves cause
        # multicasts, probes are ongoing anyway.
        net.run(until=net.sim.now + 120.0)
        assert victim.level > 0
        assert victim.stats.level_lowers >= 1
        assert len(victim.peer_list) < len(net.live_nodes())

    def test_lower_level_change_propagates(self):
        """Every observer learns the victim's new level once the
        LEVEL_CHANGE multicasts complete (the controller's decision logic
        is unit-tested separately; here we drive the shift directly)."""
        net, keys = build_network(16, settle=10.0)
        victim = net.node(keys[0])
        victim._commit_lower()
        net.run(until=net.sim.now + 20.0)
        victim._commit_lower()
        net.run(until=net.sim.now + 60.0)
        # The victim's autonomic controller may meanwhile raise it back
        # (its cost is far below threshold); the invariant under test is
        # that observers converge to whatever the current level is.
        assert victim.stats.level_lowers + victim.stats.level_raises >= 0
        assert victim._seq >= 2  # at least our two forced changes announced
        observers = [net.node(k) for k in keys[1:] if k in net.nodes]
        levels_seen = [
            o.peer_list.get(victim.node_id).level
            for o in observers
            if o.peer_list.get(victim.node_id) is not None
        ]
        assert levels_seen
        assert all(l == victim.level for l in levels_seen)

    def test_bottoming_out_under_impossible_threshold(self):
        """A threshold below the probe-traffic floor cannot be met at any
        level; the controller descends without oscillating back."""
        net, keys = build_network(16, settle=10.0)
        victim = net.node(keys[0])
        victim.controller.set_threshold(1.0)
        victim.threshold_bps = 1.0
        net.run(until=net.sim.now + 100.0)
        assert victim.level >= 5
        assert victim.stats.level_raises == 0

    def test_idle_weak_node_raises_when_quiet(self):
        """A deep node whose measured cost is far below threshold raises
        (downloading the wider list from a stronger node first)."""
        net, keys = heterogeneous_network()
        net.run(until=30.0)
        weak = net.node(keys[-1])
        start_level = weak.level
        # Open the throttle: now the cost (probes only) is way below W.
        weak.controller.set_threshold(1e9)
        weak.threshold_bps = 1e9
        net.run(until=net.sim.now + 200.0)
        assert weak.level < start_level
        assert weak.stats.level_raises >= 1
        assert len(weak.peer_list) == len(net.oracle_peer_ids(weak))


class TestWarmup:
    def test_warmup_join_starts_weak_then_raises(self):
        config = ProtocolConfig(
            id_bits=16,
            probe_interval=5.0,
            probe_timeout=1.0,
            multicast_ack_timeout=1.0,
            report_timeout=2.0,
            level_check_interval=8.0,
            multicast_processing_delay=0.1,
            warmup_extra_levels=2,
        )
        net = PeerWindowNetwork(config=config, master_seed=4)
        keys = net.seed_nodes([1e9] * 16)
        net.run(until=20.0)
        new = net.add_node(1e9, bootstrap=keys[0])
        net.run(until=net.sim.now + 1.0)
        node = net.node(new)
        early_level = node.level
        net.run(until=net.sim.now + 60.0)
        assert early_level > 0  # joined weaker than the estimate
        assert node.level < early_level  # warm-up raised it
        assert node.level == 0
