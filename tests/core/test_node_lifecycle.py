"""End-to-end node lifecycle over the detailed engine: joins, leaves,
crashes, failure detection, level shifts."""

import pytest

from tests.conftest import build_network


class TestJoin:
    def test_join_completes_and_downloads_full_list(self):
        net, keys = build_network(16)
        outcome = {}
        new = net.add_node(
            100_000.0, bootstrap=keys[0], on_done=lambda ok: outcome.setdefault("ok", ok)
        )
        net.run(until=net.sim.now + 30.0)
        assert outcome.get("ok") is True
        node = net.node(new)
        assert node.alive
        # All seeds are homogeneous level-0 here, so the list covers all.
        assert len(node.peer_list) == len(net.live_nodes())

    def test_join_multicast_informs_existing_nodes(self):
        net, keys = build_network(16)
        new = net.add_node(100_000.0, bootstrap=keys[0])
        net.run(until=net.sim.now + 30.0)
        new_id = net.node(new).node_id
        informed = sum(1 for k in keys if new_id in net.node(k).peer_list)
        assert informed == len(keys)

    def test_join_via_dead_bootstrap_fails(self):
        net, keys = build_network(8)
        net.crash(keys[3])
        outcome = {}
        net.add_node(
            100_000.0, bootstrap=keys[3], on_done=lambda ok: outcome.setdefault("ok", ok)
        )
        net.run(until=net.sim.now + 30.0)
        assert outcome.get("ok") is False

    def test_weak_node_joins_at_deeper_level(self):
        """§4.3 level estimation: a joiner with a fraction of the top
        node's measured budget lands at a deeper level."""
        net, keys = build_network(32, threshold=100_000.0, settle=60.0)
        # Give the top node a measurable cost history, then join weak.
        top_cost = net.node(keys[0]).endpoint.ewma_in.rate(net.sim.now)
        new = net.add_node(max(top_cost / 16.0, 1.0), bootstrap=keys[0])
        net.run(until=net.sim.now + 30.0)
        node = net.node(new)
        if top_cost > 0:
            assert node.level >= 3
            assert len(node.peer_list) < len(net.live_nodes())


class TestLeave:
    def test_graceful_leave_removes_everywhere(self):
        net, keys = build_network(20)
        victim_id = net.node(keys[5]).node_id
        net.leave(keys[5])
        net.run(until=net.sim.now + 30.0)
        for k in keys:
            if k == keys[5] or k not in net.nodes:
                continue
            assert victim_id not in net.node(k).peer_list

    def test_left_node_is_unregistered(self):
        net, keys = build_network(8)
        net.leave(keys[2])
        net.run(until=net.sim.now + 60.0)
        assert keys[2] not in net.nodes
        assert not net.transport.is_alive(keys[2])

    def test_double_leave_rejected(self):
        from repro.core.errors import NotAliveError

        net, keys = build_network(8)
        net.leave(keys[1])
        with pytest.raises(NotAliveError):
            net.node(keys[1]).leave()


class TestFailureDetection:
    def test_crash_detected_and_multicast(self):
        net, keys = build_network(20)
        victim_id = net.node(keys[7]).node_id
        net.crash(keys[7])
        # Probe interval 5s, timeout 1s: detection within ~10s, then the
        # report+multicast propagates.
        net.run(until=net.sim.now + 40.0)
        for k, node in net.nodes.items():
            assert victim_id not in node.peer_list
        detections = sum(n.stats.failures_detected for n in net.nodes.values())
        assert detections >= 1

    def test_concurrent_failures_figure3(self):
        """Figure 3: the prober walks past consecutive dead successors."""
        net, keys = build_network(20)
        # Crash three nodes at once.
        for k in keys[3:6]:
            net.crash(k)
        net.run(until=net.sim.now + 80.0)
        live_ids = {n.node_id.value for n in net.live_nodes()}
        for node in net.live_nodes():
            stale = set(node.peer_list.ids()) - live_ids
            assert not stale

    def test_error_rate_converges_after_churn(self):
        """After concurrent churn the error rate drops to (near) zero.

        A joiner whose download snapshot raced a concurrent crash may keep
        one stale pointer until §4.6 expiry or first use removes it, so the
        bound is small-but-nonzero; established nodes must be exact.
        """
        net, keys = build_network(24)
        net.crash(keys[0])
        net.leave(keys[1])
        new = net.add_node(100_000.0, bootstrap=keys[5])
        net.run(until=net.sim.now + 90.0)
        assert net.mean_error_rate() < 0.01
        for k in keys[2:]:
            if k in net.nodes:
                assert net.node_error_rate(net.node(k)) == 0.0


class TestEventCounters:
    def test_probes_are_sent_continuously(self):
        net, keys = build_network(8, settle=60.0)
        probes = sum(n.stats.probes_sent for n in net.live_nodes())
        # 8 nodes, probe every 5s over ~60s: >= ~80 probes.
        assert probes >= 50

    def test_seeded_network_starts_consistent(self):
        net, keys = build_network(30, settle=0.0)
        assert net.mean_error_rate() == 0.0
        hist = net.level_histogram()
        assert sum(hist.values()) == 30
