"""Refresh/expiry machinery tests (§4.6)."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.nodeid import NodeId
from repro.core.peerlist import PeerList
from repro.core.pointer import Pointer
from repro.core.refresh import LifetimeEstimator, RefreshManager


def ptr(s, level=0, refresh=0.0, join=None):
    return Pointer(
        node_id=NodeId.from_bitstring(s),
        address=s,
        level=level,
        last_refresh=refresh,
        seen_join_time=join,
    )


class TestLifetimeEstimator:
    def test_prior_before_samples(self):
        est = LifetimeEstimator(prior_mean=3600.0)
        assert est.mean(0) == pytest.approx(3600.0)
        assert est.samples(0) == 0

    def test_samples_pull_mean(self):
        est = LifetimeEstimator(prior_mean=3600.0, prior_weight=1.0)
        for _ in range(99):
            est.observe(0, 100.0)
        # (3600 + 99*100) / 100 = 135
        assert est.mean(0) == pytest.approx(135.0)
        assert est.samples(0) == 99

    def test_levels_tracked_separately(self):
        est = LifetimeEstimator(prior_mean=100.0)
        est.observe(1, 1000.0)
        assert est.mean(1) > est.mean(2)

    def test_observe_departure_requires_known_join(self):
        est = LifetimeEstimator()
        est.observe_departure(ptr("0001", join=None), now=50.0)
        assert est.samples(0) == 0
        est.observe_departure(ptr("0001", join=10.0), now=50.0)
        assert est.samples(0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            LifetimeEstimator(prior_mean=0.0)
        with pytest.raises(ValueError):
            LifetimeEstimator().observe(0, -1.0)


class TestRefreshManager:
    def _mgr(self, prior=100.0):
        config = ProtocolConfig(refresh_multiple=2.0, expiry_multiple=3.0)
        return RefreshManager(config, LifetimeEstimator(prior_mean=prior))

    def test_refresh_interval_is_twice_lt(self):
        mgr = self._mgr(prior=100.0)
        assert mgr.refresh_due_interval(0) == pytest.approx(200.0)

    def test_expiry_age_is_three_lt(self):
        mgr = self._mgr(prior=100.0)
        assert mgr.expiry_age(2) == pytest.approx(300.0)

    def test_sweep_removes_only_expired(self):
        mgr = self._mgr(prior=100.0)
        pl = PeerList(NodeId.from_bitstring("0000"), 0)
        pl.add(ptr("0001", refresh=0.0))  # expired at t=400 (age > 300)
        pl.add(ptr("0010", refresh=350.0))  # fresh
        expired = mgr.sweep(pl, now=400.0)
        assert [p.node_id.bitstring() for p in expired] == ["0001"]
        assert NodeId.from_bitstring("0010") in pl
        assert mgr.expired_removed == 1

    def test_sweep_uses_pointer_level_lt(self):
        """An m-level pointer expires after 3*LT_m — per-level clocks."""
        mgr = self._mgr(prior=100.0)
        mgr.estimator.observe(1, 1000.0)  # LT_1 now (100+1000)/2 = 550
        pl = PeerList(NodeId.from_bitstring("0000"), 0)
        pl.add(ptr("0001", level=0, refresh=0.0))
        pl.add(ptr("0010", level=1, refresh=0.0))
        expired = mgr.sweep(pl, now=400.0)
        # level-0 pointer expired (age 400 > 300); level-1 still fresh
        # (age 400 < 3*550).
        assert [p.level for p in expired] == [0]

    def test_config_rejects_expiry_not_after_refresh(self):
        with pytest.raises(Exception):
            ProtocolConfig(refresh_multiple=3.0, expiry_multiple=2.0)
