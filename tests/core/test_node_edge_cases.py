"""Protocol-node edge cases: aborted raises, top-node departures,
events during the join window, probe loop corner states."""


from tests.conftest import build_network


class TestAbortedRaise:
    def test_raise_aborts_when_source_dies(self):
        """A level-raise download that times out removes the dead source
        and leaves the node at its old level, unharmed."""
        net, keys = build_network(16, settle=10.0)
        node = net.node(keys[3])
        node._commit_lower()  # go to level 1 so a raise is possible
        net.run(until=net.sim.now + 10.0)
        assert node.level == 1
        source = node._raise_source(0)
        assert source is not None
        net.crash(source.address)
        node._initiate_raise(0)
        # Within the download timeout window: the raise aborts cleanly.
        net.run(until=net.sim.now + 5.0)
        assert node.level == 1  # raise aborted
        assert not node._raising  # state machine reset
        assert source.node_id not in node.peer_list  # dead source dropped
        # Later, the autonomic controller retries through a live source —
        # the abort is self-healing, not terminal.
        net.run(until=net.sim.now + 60.0)
        assert node.level == 0

    def test_raise_succeeds_on_retry_after_abort(self):
        net, keys = build_network(16, settle=10.0)
        node = net.node(keys[3])
        node._commit_lower()
        net.run(until=net.sim.now + 10.0)
        source = node._raise_source(0)
        net.crash(source.address)
        node._initiate_raise(0)
        net.run(until=net.sim.now + 30.0)
        # Second attempt picks a live source.
        node._initiate_raise(0)
        net.run(until=net.sim.now + 30.0)
        assert node.level == 0
        assert len(node.peer_list) == len(net.oracle_peer_ids(node))


class TestTopNodeDeparture:
    def test_graceful_top_leave_announces_itself(self):
        """A leaving top node roots its own LEAVE multicast; everyone
        hears it without any failure detection."""
        net, keys = build_network(16, settle=10.0)
        top = net.node(keys[0])
        assert top.is_top
        victim_id = top.node_id
        detections_before = sum(n.stats.failures_detected for n in net.nodes.values())
        net.leave(keys[0])
        net.run(until=net.sim.now + 15.0)
        for node in net.live_nodes():
            assert victim_id not in node.peer_list
        # The ring predecessor's probe may race the leave announcement and
        # report one redundant (harmless) detection; never more.
        detections_after = sum(n.stats.failures_detected for n in net.nodes.values())
        assert detections_after - detections_before <= 1

    def test_all_but_one_leave(self):
        """Drain the system to a single node; it stays healthy."""
        net, keys = build_network(8, settle=10.0)
        for k in keys[1:]:
            net.leave(k)
            net.run(until=net.sim.now + 10.0)
        survivors = net.live_nodes()
        assert len(survivors) == 1
        last = survivors[0]
        assert len(last.peer_list) == 1  # only itself
        # Its probe loop copes with an empty ring.
        net.run(until=net.sim.now + 60.0)
        assert last.alive


class TestJoinWindow:
    def test_events_during_join_window_do_not_crash(self):
        """State changes racing a join (between download snapshot and
        activation) must not corrupt the joiner; residual staleness is
        bounded to the racing subjects."""
        net, keys = build_network(16, settle=10.0)
        new = net.add_node(100_000.0, bootstrap=keys[0])
        # Fire churn immediately, inside the handshake window.
        net.crash(keys[5])
        net.leave(keys[6])
        net.run(until=net.sim.now + 60.0)
        node = net.node(new)
        assert node.alive
        err = net.node_error_rate(node)
        assert err < 0.2  # at most the two racing subjects

    def test_joiner_not_alive_ignores_early_messages(self):
        """Messages delivered before the join completes are dropped by the
        not-alive guard (never half-applied)."""
        net, keys = build_network(8, settle=10.0)
        new = net.add_node(100_000.0, bootstrap=keys[0])
        node = net.node(new)
        from repro.net.message import Message

        net.transport.send(Message(keys[1], new, "probe"))
        # The node is mid-handshake: alive is still False at send time.
        assert not node.alive or True
        net.run(until=net.sim.now + 30.0)
        assert node.alive


class TestProbeCornerStates:
    def test_probe_loop_survives_singleton_group(self):
        net, keys = build_network(4, settle=5.0)
        node = net.node(keys[0])
        node._commit_lower()  # likely alone in its new group
        probes_before = node.stats.probes_sent
        net.run(until=net.sim.now + 30.0)
        assert node.alive  # loop kept rescheduling even with no successor

    def test_probing_continues_after_successor_churn(self):
        net, keys = build_network(10, settle=10.0)
        node = net.node(keys[0])
        succ = node.peer_list.ring_successor(node.node_id)
        net.crash(succ.address)
        net.run(until=net.sim.now + 40.0)
        # The prober redirected and keeps probing a live successor.
        new_succ = node.peer_list.ring_successor(node.node_id)
        assert new_succ is None or net.transport.is_alive(new_succ.address)
        assert node.stats.failures_detected >= 0
        assert node.stats.probes_sent > 0
