"""Cross-cutting property-based tests on core data structures.

These complement the per-module hypothesis tests with whole-structure
invariants: peer-list/retarget consistency, event-application
commutativity-where-expected, and audience/multicast agreement between
the two engines' predicate implementations.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.audience import covers
from repro.core.events import EventKind, EventRecord, apply_event
from repro.core.nodeid import NodeId
from repro.core.peerlist import PeerList
from repro.core.pointer import Pointer

BITS = 10
ids = st.integers(min_value=0, max_value=(1 << BITS) - 1)
levels = st.integers(min_value=0, max_value=BITS)


def ptr(value, level=0):
    return Pointer(NodeId(value, BITS), value, level)


class TestPeerListInvariants:
    @settings(max_examples=60)
    @given(
        st.lists(st.tuples(ids, levels), min_size=1, max_size=40, unique_by=lambda t: t[0]),
        ids,
        levels,
    )
    def test_membership_matches_covers_predicate(self, members, owner_value, owner_level):
        owner = NodeId(owner_value, BITS)
        pl = PeerList(owner, owner_level)
        for value, level in members:
            if covers(owner, owner_level, NodeId(value, BITS)):
                pl.add(ptr(value, level))
        # Every stored id satisfies the predicate; every satisfying member
        # was stored.
        stored = set(pl.ids())
        expected = {
            v for v, _ in members if covers(owner, owner_level, NodeId(v, BITS))
        }
        assert stored == expected

    @settings(max_examples=60)
    @given(
        st.lists(ids, min_size=1, max_size=40, unique=True),
        ids,
        st.integers(min_value=0, max_value=BITS - 1),
    )
    def test_retarget_equals_fresh_build(self, values, owner_value, new_level):
        """Lowering a list must leave exactly what a fresh list at the new
        level would contain."""
        owner = NodeId(owner_value, BITS)
        pl = PeerList(owner, 0)
        for v in values:
            pl.add(ptr(v))
        pl.retarget(new_level)
        fresh = PeerList(owner, new_level)
        for v in values:
            if covers(owner, new_level, NodeId(v, BITS)):
                fresh.add(ptr(v))
        assert pl.ids() == fresh.ids()

    @settings(max_examples=60)
    @given(st.lists(ids, min_size=2, max_size=30, unique=True))
    def test_ring_successors_form_one_cycle(self, values):
        """Following ring_successor from any member visits every member
        exactly once before wrapping (the §4.1 ring is a single cycle)."""
        owner = NodeId(values[0], BITS)
        pl = PeerList(owner, 0)
        for v in values:
            pl.add(ptr(v, level=0))
        start = NodeId(values[0], BITS)
        seen = []
        current = start
        for _ in range(len(values)):
            succ = pl.ring_successor(current)
            assert succ is not None
            seen.append(succ.node_id.value)
            current = succ.node_id
        assert sorted(seen) == sorted(values)  # full cycle, back to start
        assert seen[-1] == start.value


class TestEventApplication:
    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([EventKind.JOIN, EventKind.LEAVE, EventKind.REFRESH]),
                st.integers(min_value=0, max_value=5),  # seq
            ),
            min_size=1,
            max_size=12,
        ),
        ids,
    )
    def test_final_state_determined_by_max_applied_seq(self, script, subject_value):
        """With the node's per-subject max-seq filter in front (the
        ``_seen_events`` guard every PeerWindowNode applies before
        ``apply_event``), the surviving state corresponds to the highest
        sequence number delivered — regardless of delivery order.

        (Without the guard, a stale JOIN delivered after a LEAVE would
        resurrect the tombstoned entry; see the apply_event docstring.)
        """
        owner = NodeId(0, BITS)
        subject = NodeId(subject_value if subject_value else 1, BITS)
        pl = PeerList(owner, 0)
        seen = -1  # the node-level guard under test
        applied_max = -1
        final_kind = None
        for kind, seq in script:
            if seq <= seen:
                continue
            seen = seq
            event = EventRecord(
                kind=kind,
                subject_id=subject,
                subject_level=0,
                subject_address="s",
                seq=seq,
                origin_time=0.0,
            )
            if apply_event(pl, event, now=0.0, owner_id=owner):
                assert seq > applied_max
                applied_max = seq
                final_kind = kind
        present = subject in pl
        if final_kind is None:
            assert not present
        elif final_kind is EventKind.LEAVE:
            assert not present
        else:
            assert present

    def test_stale_join_after_leave_resurrects_without_guard(self):
        """Pin the documented hazard: apply_event alone resurrects."""
        owner = NodeId(0, BITS)
        subject = NodeId(5, BITS)
        pl = PeerList(owner, 0)
        join0 = EventRecord(EventKind.JOIN, subject, 0, "s", 0, 0.0)
        leave1 = EventRecord(EventKind.LEAVE, subject, 0, "s", 1, 1.0)
        apply_event(pl, join0, 0.0, owner_id=owner)
        apply_event(pl, leave1, 1.0, owner_id=owner)
        assert subject not in pl
        # Duplicate/stale join delivered late:
        apply_event(pl, join0, 2.0, owner_id=owner)
        assert subject in pl  # the hazard the node-level guard prevents

    @settings(max_examples=40)
    @given(ids, levels)
    def test_join_then_leave_is_noop(self, subject_value, level):
        owner = NodeId(0, BITS)
        subject = NodeId(subject_value, BITS)
        if subject.value == owner.value:
            return
        pl = PeerList(owner, 0)
        join = EventRecord(EventKind.JOIN, subject, min(level, BITS), "s", 1, 0.0)
        leave = EventRecord(EventKind.LEAVE, subject, min(level, BITS), "s", 2, 1.0)
        apply_event(pl, join, 0.0, owner_id=owner)
        apply_event(pl, leave, 1.0, owner_id=owner)
        assert len(pl) == 0


class TestEngineAgreement:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=5000))
    def test_python_and_vectorized_audience_agree(self, seed):
        """The detailed engine's covers() and the scalable engine's
        vectorized prefix mask select the same audience."""
        rng = np.random.default_rng(seed)
        n = 200
        bits = 16
        values = rng.choice(1 << bits, size=n, replace=False).astype(np.uint64)
        lvls = rng.integers(0, 6, size=n)
        subject = np.uint64(rng.integers(0, 1 << bits))
        # Vectorized (scalable engine's formula):
        shifts = np.uint64(bits) - lvls.astype(np.uint64)
        mask = ((values ^ subject) >> shifts) == 0
        # Predicate (core):
        subject_id = NodeId(int(subject), bits)
        expected = np.array(
            [
                covers(NodeId(int(v), bits), int(l), subject_id)
                for v, l in zip(values, lvls)
            ]
        )
        assert np.array_equal(mask, expected)
