"""Multicast redundancy (the §2 ``r`` knob) and info-change events."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.errors import ConfigError, NotAliveError
from repro.core.protocol import PeerWindowNetwork
from tests.conftest import build_network


def redundant_config(r):
    return ProtocolConfig(
        id_bits=16,
        probe_interval=5.0,
        probe_timeout=1.0,
        multicast_ack_timeout=1.0,
        report_timeout=2.0,
        level_check_interval=10.0,
        multicast_processing_delay=0.1,
        multicast_redundancy=r,
    )


class TestRedundancy:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(multicast_redundancy=0)

    def test_r2_still_converges(self):
        net = PeerWindowNetwork(config=redundant_config(2), master_seed=2)
        keys = net.seed_nodes([100_000.0] * 20)
        net.run(until=20.0)
        net.crash(keys[4])
        net.run(until=net.sim.now + 40.0)
        assert net.mean_error_rate() == 0.0

    def test_r2_duplicates_are_deduplicated(self):
        net = PeerWindowNetwork(config=redundant_config(2), master_seed=2)
        keys = net.seed_nodes([100_000.0] * 20)
        net.run(until=20.0)
        net.add_node(100_000.0, bootstrap=keys[0])
        net.run(until=net.sim.now + 20.0)
        dupes = sum(n.stats.mcast_duplicates for n in net.live_nodes())
        applied_twice = 0  # peer lists must not double-apply
        assert dupes > 0  # redundancy really produced extra copies
        assert net.mean_error_rate() < 0.01

    def test_r2_costs_more_messages_than_r1(self):
        counts = {}
        for r in (1, 2):
            net = PeerWindowNetwork(config=redundant_config(r), master_seed=3)
            keys = net.seed_nodes([100_000.0] * 24)
            net.run(until=10.0)
            net.add_node(100_000.0, bootstrap=keys[0])
            net.run(until=net.sim.now + 20.0)
            counts[r] = net.transport.by_kind.get("mcast", 0)
        assert counts[2] > counts[1]

    def test_r2_converges_through_concurrent_relay_crash(self):
        """Crash a node and, mid-dissemination, one of the relays that
        would forward its obituary: with r=2 the sibling copies keep the
        dissemination alive and the system still converges."""
        net = PeerWindowNetwork(config=redundant_config(2), master_seed=4)
        keys = net.seed_nodes([100_000.0] * 24)
        net.run(until=10.0)
        victim_id = net.node(keys[5]).node_id
        net.crash(keys[5])
        # Half a second later (inside the detection+multicast window),
        # kill two more nodes — almost certainly tree relays.
        net.sim.schedule(6.0, lambda: keys[6] in net.nodes and net.nodes[keys[6]].crash())
        net.sim.schedule(6.0, lambda: keys[7] in net.nodes and net.nodes[keys[7]].crash())
        net.run(until=net.sim.now + 60.0)
        for node in net.live_nodes():
            assert victim_id not in node.peer_list
        assert net.mean_error_rate() == 0.0


class TestInfoChange:
    def test_update_attached_info_propagates(self):
        net, keys = build_network(16)
        node = net.node(keys[0])
        node.update_attached_info({"shared_files": 123})
        net.run(until=net.sim.now + 20.0)
        for k in keys[1:]:
            p = net.node(k).peer_list.get(node.node_id)
            assert p is not None
            assert p.attached_info == {"shared_files": 123}

    def test_repeated_updates_latest_wins(self):
        net, keys = build_network(16)
        node = net.node(keys[0])
        node.update_attached_info({"v": 1})
        net.run(until=net.sim.now + 5.0)
        node.update_attached_info({"v": 2})
        net.run(until=net.sim.now + 20.0)
        for k in keys[1:]:
            p = net.node(k).peer_list.get(node.node_id)
            assert p.attached_info == {"v": 2}

    def test_own_pointer_updated_immediately(self):
        net, keys = build_network(8)
        node = net.node(keys[0])
        node.update_attached_info("new")
        assert node.peer_list.get(node.node_id).attached_info == "new"

    def test_dead_node_cannot_update(self):
        net, keys = build_network(8)
        net.leave(keys[0])
        with pytest.raises(NotAliveError):
            net.nodes.get(keys[0]) and net.nodes[keys[0]].update_attached_info("x")
            raise NotAliveError  # if already gone from dict, same outcome
