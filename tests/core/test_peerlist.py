"""PeerList container tests."""

import pytest

from repro.core.errors import MembershipError
from repro.core.nodeid import NodeId
from repro.core.peerlist import PeerList
from repro.core.pointer import Pointer


def nid(s):
    return NodeId.from_bitstring(s)


def ptr(s, level=0, addr=None):
    node_id = nid(s)
    return Pointer(node_id=node_id, address=addr or s, level=level)


@pytest.fixture
def owner_list():
    """Owner 1010 at level 2: prefix '10'."""
    return PeerList(nid("1010"), 2)


class TestBasicContainer:
    def test_add_and_get(self, owner_list):
        p = ptr("1001", level=2)
        assert owner_list.add(p)
        assert owner_list.get(nid("1001")) is p
        assert nid("1001") in owner_list
        assert len(owner_list) == 1

    def test_add_existing_updates(self, owner_list):
        owner_list.add(ptr("1001", level=2))
        newer = ptr("1001", level=3)
        assert not owner_list.add(newer)  # not new
        assert owner_list.get(nid("1001")).level == 3
        assert len(owner_list) == 1

    def test_strict_prefix_enforcement(self, owner_list):
        with pytest.raises(MembershipError):
            owner_list.add(ptr("0101"))

    def test_non_strict_allows_anything(self, owner_list):
        owner_list.add(ptr("0101"), strict=False)
        assert nid("0101") in owner_list

    def test_remove(self, owner_list):
        owner_list.add(ptr("1001"))
        removed = owner_list.remove(nid("1001"))
        assert removed is not None
        assert nid("1001") not in owner_list
        assert owner_list.remove(nid("1001")) is None

    def test_iteration_sorted_by_id(self, owner_list):
        for s in ("1011", "1000", "1101"):
            owner_list.add(ptr(s), strict=False)
        values = [p.node_id.value for p in owner_list]
        assert values == sorted(values)

    def test_ids_snapshot(self, owner_list):
        owner_list.add(ptr("1001"))
        ids = owner_list.ids()
        ids.append(999)
        assert owner_list.ids() == [0b1001]

    def test_clear(self, owner_list):
        owner_list.add(ptr("1001"))
        owner_list.clear()
        assert len(owner_list) == 0


class TestRetarget:
    def test_lowering_evicts_out_of_prefix(self):
        pl = PeerList(nid("1010"), 1)
        pl.add(ptr("1001"))
        pl.add(ptr("1110"))
        evicted = pl.retarget(2)  # prefix now '10'
        assert [p.node_id.bitstring() for p in evicted] == ["1110"]
        assert nid("1001") in pl
        assert pl.owner_level == 2

    def test_raising_keeps_everything(self):
        pl = PeerList(nid("1010"), 2)
        pl.add(ptr("1001"))
        assert pl.retarget(1) == []
        assert len(pl) == 1

    def test_invalid_level(self):
        pl = PeerList(nid("1010"), 2)
        with pytest.raises(MembershipError):
            pl.retarget(5)


class TestRing:
    def _populated(self):
        """Figure 3's five-node '0'-eigenstring ring."""
        pl = PeerList(nid("00010"), 1)
        for s in ("00010", "00101", "01001", "01100", "01111"):
            pl.add(ptr(s, level=1))
        return pl

    def test_successor_is_next_larger(self):
        pl = self._populated()
        succ = pl.ring_successor(nid("00010"))
        assert succ.node_id.bitstring() == "00101"

    def test_successor_wraps(self):
        pl = self._populated()
        succ = pl.ring_successor(nid("01111"))
        assert succ.node_id.bitstring() == "00010"

    def test_successor_skips_other_levels(self):
        pl = self._populated()
        pl.add(ptr("00100", level=3))  # deeper node, not in the ring
        succ = pl.ring_successor(nid("00010"))
        assert succ.node_id.bitstring() == "00101"

    def test_concurrent_failure_redirect(self):
        """Figure 3: when B and C leave, A's successor becomes the next
        live node."""
        pl = self._populated()
        pl.remove(nid("00101"))
        succ = pl.ring_successor(nid("00010"))
        assert succ.node_id.bitstring() == "01001"

    def test_singleton_group_has_no_successor(self):
        pl = PeerList(nid("00010"), 1)
        pl.add(ptr("00010", level=1))
        assert pl.ring_successor(nid("00010")) is None

    def test_group_members_filters_level(self):
        pl = self._populated()
        pl.add(ptr("00111", level=2))
        members = pl.group_members()
        assert all(p.level == 1 for p in members)
        assert len(members) == 5


class TestMulticastCandidates:
    def test_candidates_differ_at_bit(self):
        pl = PeerList(nid("0000"), 0)
        for s in ("0000", "0100", "1000", "1100"):
            pl.add(ptr(s, level=0))
        subject = nid("0011")
        cands = pl.multicast_candidates(nid("0000"), subject, 0)
        # Must share first 0 bits (vacuous) and differ at bit 0.
        assert sorted(p.node_id.bitstring() for p in cands) == ["1000", "1100"]

    def test_candidates_exclude_self_and_subject(self):
        pl = PeerList(nid("0000"), 0)
        for s in ("0000", "1000"):
            pl.add(ptr(s, level=0))
        cands = pl.multicast_candidates(nid("0000"), nid("1000"), 0)
        assert cands == []  # only differing node IS the subject

    def test_candidates_must_be_in_audience(self):
        pl = PeerList(nid("0000"), 0)
        # Level-2 node whose eigenstring '11' is NOT a prefix of subject.
        pl.add(ptr("1100", level=2))
        pl.add(ptr("1000", level=1))  # eigenstring '1' IS a prefix
        subject = nid("1011")
        cands = pl.multicast_candidates(nid("0000"), subject, 0)
        assert [p.node_id.bitstring() for p in cands] == ["1000"]

    def test_strongest_tie_break(self):
        pl = PeerList(nid("0000"), 0)
        a = ptr("1000", level=1)
        b = ptr("1100", level=1)
        c = ptr("1010", level=2)
        assert pl.strongest([b, c, a]) is a  # min level, then min id
        assert pl.strongest([]) is None
