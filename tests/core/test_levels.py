"""Autonomic level controller tests (§2, §4.3)."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.levels import LevelController, LevelDecision


def make_controller(threshold=5000.0, raise_fraction=0.5):
    config = ProtocolConfig(raise_fraction=raise_fraction)
    return LevelController(config, threshold)


class TestDecisions:
    def test_hold_inside_dead_zone(self):
        ctl = make_controller(threshold=5000.0)
        assert ctl.decide(3, 4000.0) is LevelDecision.HOLD

    def test_lower_when_over_threshold(self):
        ctl = make_controller(threshold=5000.0)
        assert ctl.decide(3, 6000.0) is LevelDecision.LOWER

    def test_raise_when_under_half(self):
        """§2's worked example: 5 kbps threshold, cost drops below
        2.5 kbps → shift to level l-1."""
        ctl = make_controller(threshold=5000.0)
        assert ctl.decide(3, 2400.0) is LevelDecision.RAISE

    def test_never_raise_past_level_zero(self):
        ctl = make_controller()
        assert ctl.decide(0, 0.0) is LevelDecision.HOLD

    def test_boundary_exact_threshold_holds(self):
        ctl = make_controller(threshold=5000.0)
        assert ctl.decide(2, 5000.0) is LevelDecision.HOLD

    def test_counters(self):
        ctl = make_controller(threshold=1000.0)
        ctl.decide(3, 2000.0)
        ctl.decide(4, 2000.0)
        ctl.decide(5, 100.0)  # blocked by anti-flap (just lowered)
        ctl.decide(5, 100.0)
        assert ctl.lowers == 2
        assert ctl.raises == 1


class TestAntiFlap:
    def test_no_immediate_reversal_after_lower(self):
        ctl = make_controller(threshold=1000.0)
        assert ctl.decide(3, 2000.0) is LevelDecision.LOWER
        # Next tick the measured cost halves and undershoots: a naive
        # controller would raise right back.
        assert ctl.decide(4, 400.0) is LevelDecision.HOLD
        # The tick after that, a persistent undershoot may act.
        assert ctl.decide(4, 400.0) is LevelDecision.RAISE

    def test_no_immediate_reversal_after_raise(self):
        ctl = make_controller(threshold=1000.0)
        assert ctl.decide(3, 400.0) is LevelDecision.RAISE
        assert ctl.decide(2, 1200.0) is LevelDecision.HOLD
        assert ctl.decide(2, 1200.0) is LevelDecision.LOWER

    def test_repeated_same_direction_allowed(self):
        ctl = make_controller(threshold=1000.0)
        assert ctl.decide(3, 8000.0) is LevelDecision.LOWER
        assert ctl.decide(4, 4000.0) is LevelDecision.LOWER
        assert ctl.decide(5, 2000.0) is LevelDecision.LOWER


class TestThresholdUpdates:
    def test_user_retunes_threshold(self):
        ctl = make_controller(threshold=1000.0)
        assert ctl.decide(2, 900.0) is LevelDecision.HOLD
        ctl.set_threshold(10_000.0)
        assert ctl.decide(2, 900.0) is LevelDecision.RAISE

    def test_validation(self):
        ctl = make_controller()
        with pytest.raises(ValueError):
            ctl.set_threshold(0.0)
        with pytest.raises(ValueError):
            ctl.decide(0, -1.0)
        with pytest.raises(ValueError):
            LevelController(ProtocolConfig(), 0.0)
