"""Split-PeerWindow tests (§4.4): independent parts, cross-part joins."""


from repro.core.config import ProtocolConfig
from repro.core.nodeid import NodeId
from repro.core.protocol import PeerWindowNetwork


def split_config():
    return ProtocolConfig(
        id_bits=12,
        probe_interval=5.0,
        probe_timeout=1.0,
        multicast_ack_timeout=1.0,
        report_timeout=2.0,
        level_check_interval=1e6,  # freeze the autonomic controller
        multicast_processing_delay=0.1,
    )


def build_split_network(per_part=10, seed=5):
    """Force a split system: every node at level 1, ids assigned so half
    start with '0' and half with '1' (no level-0 node exists)."""
    net = PeerWindowNetwork(config=split_config(), master_seed=seed)
    rng = net.streams.get("test-ids")
    specs = []
    for part_bit in (0, 1):
        for _ in range(per_part):
            value = (part_bit << 11) | int(rng.integers(0, 1 << 11))
            while any(
                isinstance(s, dict) and s["node_id"].value == value for s in specs
            ):
                value = (part_bit << 11) | int(rng.integers(0, 1 << 11))
            specs.append(
                {"threshold_bps": 100_000.0, "node_id": NodeId(value, 12), "level": 1}
            )
    keys = net.seed_nodes(specs)
    net.run(until=20.0)
    return net, keys


class TestSplitStructure:
    def test_two_parts_exist(self):
        net, keys = build_split_network()
        parts = net.parts()
        assert set(parts) == {"0", "1"}
        assert parts["0"] == parts["1"] == 10

    def test_parts_are_independent(self):
        """§4.4: a node in one part keeps no pointer to any node of the
        other part."""
        net, keys = build_split_network()
        for node in net.live_nodes():
            for p in node.peer_list:
                assert p.node_id.bit(0) == node.node_id.bit(0)

    def test_all_nodes_are_tops_of_their_part(self):
        net, keys = build_split_network()
        for node in net.live_nodes():
            assert node.is_top  # level 1 == part prefix length

    def test_cross_part_top_lists_seeded(self):
        net, keys = build_split_network()
        for node in net.live_nodes():
            other = "1" if node.eigenstring == "0" else "0"
            assert len(node.cross_parts.for_part(other)) > 0


class TestSplitOperation:
    def test_leave_propagates_within_part_only(self):
        net, keys = build_split_network()
        victim = net.node(keys[0])
        victim_id = victim.node_id
        part_bit = victim_id.bit(0)
        net.leave(keys[0])
        net.run(until=net.sim.now + 30.0)
        for node in net.live_nodes():
            if node.node_id.bit(0) == part_bit:
                assert victim_id not in node.peer_list
            # Other part never had the pointer (independence).

    def test_crash_detected_within_part(self):
        net, keys = build_split_network()
        victim_id = net.node(keys[3]).node_id
        net.crash(keys[3])
        net.run(until=net.sim.now + 60.0)
        for node in net.live_nodes():
            assert victim_id not in node.peer_list

    def test_cross_part_join(self):
        """§4.4: a joiner whose bootstrap is in the other part finds a top
        node of its own part through the bootstrap's cross-part list."""
        net, keys = build_split_network()
        # Pick a bootstrap from part '1' and force the joiner into part '0'.
        bootstrap = next(
            k for k in keys if net.node(k).node_id.bit(0) == 1
        )
        joiner_id = NodeId(0b000110111010, 12)
        outcome = {}
        new = net.add_node(
            100_000.0,
            bootstrap=bootstrap,
            node_id=joiner_id,
            on_done=lambda ok: outcome.setdefault("ok", ok),
        )
        net.run(until=net.sim.now + 40.0)
        assert outcome.get("ok") is True
        node = net.node(new)
        # The joiner ended up in part '0' with part-0 pointers only.
        assert all(p.node_id.bit(0) == 0 for p in node.peer_list)
        assert len(node.peer_list) > 1

    def test_join_announces_within_part(self):
        net, keys = build_split_network()
        bootstrap = next(k for k in keys if net.node(k).node_id.bit(0) == 0)
        joiner_id = NodeId(0b010101010101, 12)
        new = net.add_node(100_000.0, bootstrap=bootstrap, node_id=joiner_id)
        net.run(until=net.sim.now + 40.0)
        informed = [
            node
            for node in net.live_nodes()
            if node.address != new and joiner_id in node.peer_list
        ]
        part0 = [n for n in net.live_nodes() if n.node_id.bit(0) == 0 and n.address != new]
        assert len(informed) == len(part0)
