"""Runtime multicast forwarder tests: retries, redirects, stale removal."""

from typing import Dict, List

import pytest

from repro.core.config import ProtocolConfig
from repro.core.events import EventKind, EventRecord
from repro.core.multicast import MulticastForwarder
from repro.core.nodeid import NodeId
from repro.core.peerlist import PeerList
from repro.core.pointer import Pointer


def nid(s):
    return NodeId.from_bitstring(s)


def ptr(s, level=0):
    return Pointer(node_id=nid(s), address=s, level=level)


def make_event(subject="0011"):
    return EventRecord(
        kind=EventKind.JOIN,
        subject_id=nid(subject),
        subject_level=2,
        subject_address=subject,
        seq=0,
        origin_time=0.0,
    )


class FakeSender:
    """Captures sends; per-address behaviour: 'ok', 'fail'."""

    def __init__(self, behaviour: Dict[str, str]):
        self.behaviour = behaviour
        self.sent: List[tuple] = []

    def __call__(self, target, event, next_bit, on_result, trace=None):
        self.sent.append((target.address, next_bit))
        on_result(self.behaviour.get(target.address, "ok") == "ok")


@pytest.fixture
def forwarder_setup():
    config = ProtocolConfig(id_bits=4, multicast_attempts=3)
    local = nid("0000")
    pl = PeerList(local, 0)
    for s, lvl in (("0000", 0), ("1000", 0), ("0100", 1), ("0010", 2)):
        pl.add(ptr(s, lvl))

    def build(behaviour=None, on_stale=None):
        sender = FakeSender(behaviour or {})
        fwd = MulticastForwarder(config, local, pl, sender, on_stale)
        return fwd, sender, pl

    return build


class TestForward:
    def test_sends_one_per_bit_position(self, forwarder_setup):
        fwd, sender, _ = forwarder_setup()
        out_degree = fwd.forward(make_event("0011"), 0)
        # Audience of 0011: 0000(L0) 1000(L0) 0100?  eigen "01"≠prefix of
        # 0011... 0100 at level 1 has eigenstring "0": prefix of 0011 ✓;
        # 0010 at level 2 eigen "00": prefix ✓.  Candidates from 0000:
        # bit0→1000, bit1→0100, bit2→0010(=? 0010 shares first 2 bits
        # "00", differs at bit 2).  Subject itself (0011) excluded.
        assert out_degree == 3
        assert [(a, b) for a, b in sender.sent] == [
            ("1000", 1),
            ("0100", 2),
            ("0010", 3),
        ]

    def test_start_bit_skips_earlier_positions(self, forwarder_setup):
        fwd, sender, _ = forwarder_setup()
        fwd.forward(make_event("0011"), 1)
        assert ("1000", 1) not in sender.sent

    def test_retries_then_removes_stale(self, forwarder_setup):
        stale = []
        fwd, sender, pl = forwarder_setup(
            behaviour={"1000": "fail"},
            on_stale=lambda departed, trace=None: stale.append(departed),
        )
        fwd.forward(make_event("0011"), 0)
        attempts_to_1000 = [s for s in sender.sent if s[0] == "1000"]
        assert len(attempts_to_1000) == 3  # multicast_attempts
        assert nid("1000") not in pl
        assert [p.address for p in stale] == ["1000"]
        assert fwd.stale_removed == 1

    def test_redirect_after_removal(self, forwarder_setup):
        """After removing the stale target, a fresh candidate for the same
        bit is tried (§4.2: "turn back to line (3)")."""
        fwd, sender, pl = forwarder_setup(behaviour={"1000": "fail"})
        pl.add(ptr("1100", 1))  # alternative differing at bit 0
        fwd.forward(make_event("0011"), 0)
        # 1100 eigen "1"... wait: 1100 level 1 eigen "1" is not a prefix of
        # subject 0011, so it is NOT an audience member and must NOT be
        # used as the redirect target.
        assert all(addr != "1100" for addr, _ in sender.sent)
        assert fwd.redirects == 0

    def test_redirect_to_valid_audience_member(self, forwarder_setup):
        fwd, sender, pl = forwarder_setup(behaviour={"1000": "fail"})
        pl.add(ptr("1010", 0))  # level-0: always in audience
        fwd.forward(make_event("0011"), 0)
        assert ("1010", 1) in sender.sent
        assert fwd.redirects == 1

    def test_no_candidates_no_sends(self, forwarder_setup):
        config = ProtocolConfig(id_bits=4)
        local = nid("0000")
        pl = PeerList(local, 0)
        pl.add(ptr("0000", 0))
        sender = FakeSender({})
        fwd = MulticastForwarder(config, local, pl, sender)
        assert fwd.forward(make_event("0011"), 0) == 0
        assert sender.sent == []
