"""NodeId and eigenstring tests (including property-based)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import NodeIdError
from repro.core.nodeid import NodeId, eigenstring

ids_16 = st.integers(min_value=0, max_value=(1 << 16) - 1)


class TestConstruction:
    def test_from_bitstring_figure1(self):
        """Figure 1 uses 4-bit ids; node H is 1011."""
        h = NodeId.from_bitstring("1011")
        assert h.bits == 4
        assert h.value == 0b1011
        assert h.bitstring() == "1011"

    def test_out_of_range_rejected(self):
        with pytest.raises(NodeIdError):
            NodeId(16, bits=4)
        with pytest.raises(NodeIdError):
            NodeId(-1, bits=4)

    def test_bad_bits(self):
        with pytest.raises(NodeIdError):
            NodeId(0, bits=0)
        with pytest.raises(NodeIdError):
            NodeId(0, bits=300)

    def test_bad_bitstring(self):
        with pytest.raises(NodeIdError):
            NodeId.from_bitstring("10a1")
        with pytest.raises(NodeIdError):
            NodeId.from_bitstring("")

    def test_random_in_range(self, rng):
        for bits in (1, 4, 64, 128):
            nid = NodeId.random(rng, bits)
            assert 0 <= nid.value < (1 << bits)
            assert nid.bits == bits

    def test_random_uniform_first_bit(self, rng):
        ones = sum(NodeId.random(rng, 16).bit(0) for _ in range(2000))
        assert 850 < ones < 1150

    def test_hash_of_deterministic(self):
        a = NodeId.hash_of(b"10.1.2.3")
        b = NodeId.hash_of(b"10.1.2.3")
        assert a == b
        assert NodeId.hash_of(b"10.1.2.4") != a

    def test_immutability(self):
        nid = NodeId(5, bits=4)
        with pytest.raises(AttributeError):
            nid.value = 7


class TestBitAccess:
    def test_msb_first_indexing(self):
        nid = NodeId.from_bitstring("1000")
        assert nid.bit(0) == 1
        assert nid.bit(1) == 0
        assert nid.bit(3) == 0

    def test_bit_out_of_range(self):
        with pytest.raises(NodeIdError):
            NodeId.from_bitstring("1010").bit(4)

    def test_prefix_int_and_bits(self):
        nid = NodeId.from_bitstring("1011")
        assert nid.prefix_int(0) == 0
        assert nid.prefix_int(2) == 0b10
        assert nid.prefix_bits(3) == "101"
        assert nid.prefix_bits(0) == ""

    def test_flip_bit(self):
        nid = NodeId.from_bitstring("0000")
        assert nid.flip_bit(0).bitstring() == "1000"
        assert nid.flip_bit(3).bitstring() == "0001"

    def test_shares_prefix(self):
        a = NodeId.from_bitstring("1011")
        b = NodeId.from_bitstring("1001")
        assert a.shares_prefix(b, 2)
        assert not a.shares_prefix(b, 3)
        assert a.shares_prefix(b, 0)

    def test_common_prefix_len(self):
        a = NodeId.from_bitstring("1011")
        assert a.common_prefix_len(NodeId.from_bitstring("1011")) == 4
        assert a.common_prefix_len(NodeId.from_bitstring("1010")) == 3
        assert a.common_prefix_len(NodeId.from_bitstring("0011")) == 0

    def test_width_mismatch_rejected(self):
        with pytest.raises(NodeIdError):
            NodeId(0, 4).shares_prefix(NodeId(0, 8), 2)


class TestOrdering:
    def test_lt_by_value(self):
        assert NodeId(3, 4) < NodeId(7, 4)
        assert NodeId(3, 4) <= NodeId(3, 4)

    def test_equality_includes_width(self):
        assert NodeId(3, 4) != NodeId(3, 8)

    def test_hashable(self):
        s = {NodeId(1, 4), NodeId(1, 4), NodeId(2, 4)}
        assert len(s) == 2


class TestEigenstring:
    def test_blank_for_level_zero(self):
        assert eigenstring(NodeId.from_bitstring("1011"), 0) == ""

    def test_figure1_values(self):
        # Node E: 1011... wait, node E id per figure 1 is at level 1 with
        # eigenstring "1"; node H at level 2 has eigenstring "10".
        assert eigenstring(NodeId.from_bitstring("1110"), 1) == "1"
        assert eigenstring(NodeId.from_bitstring("1011"), 2) == "10"

    def test_level_exceeding_width_rejected(self):
        with pytest.raises(NodeIdError):
            eigenstring(NodeId.from_bitstring("1011"), 5)
        with pytest.raises(NodeIdError):
            eigenstring(NodeId.from_bitstring("1011"), -1)


class TestProperties:
    @given(ids_16)
    def test_bitstring_roundtrip(self, value):
        nid = NodeId(value, 16)
        assert NodeId.from_bitstring(nid.bitstring()) == nid

    @given(ids_16, st.integers(min_value=0, max_value=16))
    def test_prefix_is_bitstring_prefix(self, value, length):
        nid = NodeId(value, 16)
        assert nid.prefix_bits(length) == nid.bitstring()[:length]

    @given(ids_16, ids_16)
    def test_common_prefix_consistent_with_shares(self, a_val, b_val):
        a, b = NodeId(a_val, 16), NodeId(b_val, 16)
        k = a.common_prefix_len(b)
        assert a.shares_prefix(b, k)
        if k < 16:
            assert not a.shares_prefix(b, k + 1)

    @given(ids_16, st.integers(min_value=0, max_value=15))
    def test_flip_changes_exactly_one_bit(self, value, i):
        nid = NodeId(value, 16)
        flipped = nid.flip_bit(i)
        diffs = [j for j in range(16) if nid.bit(j) != flipped.bit(j)]
        assert diffs == [i]

    @settings(max_examples=50)
    @given(ids_16, st.integers(min_value=0, max_value=16))
    def test_eigenstring_length_equals_level(self, value, level):
        assert len(eigenstring(NodeId(value, 16), level)) == level
