"""Failure injection: the protocol must converge despite message loss.

§4.2's ack/retry/redirect and §4.6's refresh/expiry exist exactly for
this; these tests run the detailed engine with independent message loss
and assert the peer lists still converge to (near) truth.
"""


from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork


def lossy_network(n=20, loss_rate=0.1, seed=9):
    config = ProtocolConfig(
        id_bits=16,
        probe_interval=4.0,
        probe_timeout=1.0,
        probe_misses_to_fail=3,  # tolerate lost probes/acks
        multicast_ack_timeout=1.0,
        report_timeout=2.0,
        level_check_interval=10.0,
        multicast_processing_delay=0.1,
    )
    net = PeerWindowNetwork(config=config, master_seed=seed, loss_rate=loss_rate)
    keys = net.seed_nodes([100_000.0] * n)
    net.run(until=20.0)
    return net, keys


class TestLossResilience:
    def test_join_completes_under_loss(self):
        net, keys = lossy_network(loss_rate=0.05)
        results = []
        for i in range(3):
            net.add_node(
                100_000.0, bootstrap=keys[i], on_done=lambda ok: results.append(ok)
            )
            net.run(until=net.sim.now + 30.0)
        assert any(results)  # most joins complete despite loss

    def test_leave_eventually_propagates(self):
        net, keys = lossy_network(loss_rate=0.1)
        victim_id = net.node(keys[2]).node_id
        net.crash(keys[2])
        net.run(until=net.sim.now + 120.0)
        holders = [
            n for n in net.live_nodes() if victim_id in n.peer_list
        ]
        # Retries + ring probing clean up; at most a straggler or two.
        assert len(holders) <= 2

    def test_mean_error_stays_bounded(self):
        net, keys = lossy_network(loss_rate=0.1)
        for k in (keys[1], keys[3]):
            net.crash(k)
        net.run(until=net.sim.now + 120.0)
        assert net.mean_error_rate() < 0.05

    def test_no_loss_is_exact(self):
        net, keys = lossy_network(loss_rate=0.0)
        net.crash(keys[2])
        net.run(until=net.sim.now + 120.0)
        assert net.mean_error_rate() == 0.0

    def test_probe_misses_do_not_cause_false_positives(self):
        """With probe_misses_to_fail=2 and 10% loss, live nodes must not
        be declared dead (false failure reports would evict live nodes)."""
        net, keys = lossy_network(loss_rate=0.1)
        net.run(until=net.sim.now + 100.0)
        live_ids = {n.node_id.value for n in net.live_nodes()}
        missing = 0
        for node in net.live_nodes():
            correct = net.oracle_peer_ids(node)
            missing += len(correct - set(node.peer_list.ids()))
        # A false positive would show as a missing live pointer that never
        # heals; allow a transient straggler.
        assert missing <= 2
