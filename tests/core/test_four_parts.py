"""A four-part split system (§4.4 beyond two parts).

The paper's general statement: *"PeerWindow is made up of several parts
that are independent to one another"* — the part structure is a prefix
partition, not a binary split.  Here no node affords level < 2, giving
four parts '00', '01', '10', '11'.
"""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.nodeid import NodeId
from repro.core.protocol import PeerWindowNetwork


@pytest.fixture(scope="module")
def four_part_net():
    config = ProtocolConfig(
        id_bits=12,
        probe_interval=5.0,
        probe_timeout=1.0,
        multicast_ack_timeout=1.0,
        report_timeout=2.0,
        level_check_interval=1e6,
        multicast_processing_delay=0.1,
    )
    net = PeerWindowNetwork(config=config, master_seed=8)
    rng = net.streams.get("ids")
    specs = []
    used = set()
    for prefix in range(4):
        count = 0
        while count < 6:
            value = (prefix << 10) | int(rng.integers(0, 1 << 10))
            if value in used:
                continue
            used.add(value)
            specs.append(
                {"threshold_bps": 1e6, "node_id": NodeId(value, 12), "level": 2}
            )
            count += 1
    keys = net.seed_nodes(specs)
    net.run(until=15.0)
    return net, keys


class TestFourParts:
    def test_part_structure(self, four_part_net):
        net, keys = four_part_net
        parts = net.parts()
        assert set(parts) == {"00", "01", "10", "11"}
        assert all(count == 6 for count in parts.values())

    def test_mutual_independence(self, four_part_net):
        net, keys = four_part_net
        for node in net.live_nodes():
            own_prefix = node.node_id.prefix_bits(2)
            for p in node.peer_list:
                assert p.node_id.prefix_bits(2) == own_prefix

    def test_cross_part_lists_cover_all_other_parts(self, four_part_net):
        """§4.4: a top node's top-node list holds *t pointers for each
        (other) part*."""
        net, keys = four_part_net
        for node in net.live_nodes():
            own_prefix = node.node_id.prefix_bits(2)
            others = {"00", "01", "10", "11"} - {own_prefix}
            assert set(node.cross_parts.parts()) == others
            for part in others:
                assert len(node.cross_parts.for_part(part)) > 0

    def test_cross_part_join_lands_in_right_part(self, four_part_net):
        net, keys = four_part_net
        # Bootstrap from part '11', joiner belongs in part '00'.
        bootstrap = next(
            k for k in keys if net.node(k).node_id.prefix_bits(2) == "11"
        )
        joiner_id = NodeId(0b001010011001, 12)
        outcome = {}
        new = net.add_node(
            1e6, bootstrap=bootstrap, node_id=joiner_id,
            on_done=lambda ok: outcome.setdefault("ok", ok),
        )
        net.run(until=net.sim.now + 40.0)
        assert outcome.get("ok") is True
        node = net.node(new)
        assert node.eigenstring == "00"
        assert all(p.node_id.prefix_bits(2) == "00" for p in node.peer_list)

    def test_each_part_detects_own_failures(self, four_part_net):
        net, keys = four_part_net
        victims = []
        for prefix in ("00", "10"):
            victim = next(
                k for k in keys
                if k in net.nodes and net.node(k).node_id.prefix_bits(2) == prefix
            )
            victims.append(net.node(victim).node_id)
            net.crash(victim)
        net.run(until=net.sim.now + 60.0)
        for node in net.live_nodes():
            for vid in victims:
                assert vid not in node.peer_list

    def test_stats_summary_shape(self, four_part_net):
        net, keys = four_part_net
        summary = net.stats_summary()
        assert summary["live_nodes"] >= 20
        assert summary["probes_sent"] > 0
        assert summary["transport_sent"] > 0
        assert 0.0 <= summary["mean_error_rate"] <= 1.0
