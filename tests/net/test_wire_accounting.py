"""Wire-size accounting: the bandwidth meters must see exactly the bits
the protocol specification says each interaction costs."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork


@pytest.fixture()
def quiet_net():
    """A network with all periodic traffic pushed beyond the horizon, so
    individual interactions can be metered in isolation."""
    config = ProtocolConfig(
        id_bits=16,
        probe_interval=1e6,
        probe_timeout=1.0,
        multicast_ack_timeout=1.0,
        report_timeout=2.0,
        level_check_interval=1e6,
        multicast_processing_delay=0.1,
    )
    net = PeerWindowNetwork(config=config, master_seed=21)
    keys = net.seed_nodes([1e9] * 10)
    net.run(until=1.0)
    return net, keys


class TestWireAccounting:
    def test_event_multicast_bits(self, quiet_net):
        """One info-change: every other node receives exactly one
        1000-bit event and sends one 100-bit ack."""
        net, keys = quiet_net
        before = {
            k: (net.node(k).endpoint.bw_in.total_bits,
                net.node(k).endpoint.bw_out.total_bits)
            for k in keys
        }
        origin = net.node(keys[0])
        origin.update_attached_info({"v": 1})
        net.run(until=net.sim.now + 30.0)
        config = net.config
        for k in keys[1:]:
            node = net.node(k)
            d_in = node.endpoint.bw_in.total_bits - before[k][0]
            # Received: the event itself, plus possibly forwarded acks.
            assert d_in >= config.event_message_bits
            # Every received event was acked.
            d_out = node.endpoint.bw_out.total_bits - before[k][1]
            assert d_out >= config.ack_bits

    def test_total_mcast_messages_equals_audience(self, quiet_net):
        """With r=1 and no failures, the multicast sends exactly
        |audience|-1 event messages (each member receives once)."""
        net, keys = quiet_net
        sent_before = net.transport.by_kind.get("mcast", 0)
        net.node(keys[3]).update_attached_info({"v": 2})
        net.run(until=net.sim.now + 30.0)
        sent_after = net.transport.by_kind.get("mcast", 0)
        assert sent_after - sent_before == len(keys) - 1

    def test_download_reply_billed_per_pointer(self, quiet_net):
        """A join download costs n_pointers x pointer_bits on the wire."""
        net, keys = quiet_net
        new = net.add_node(1e9, bootstrap=keys[0])
        net.run(until=net.sim.now + 10.0)
        node = net.node(new)
        # The joiner downloaded ~10 pointers + top list at 500 bits each;
        # its inbound total must reflect that order of magnitude.
        total_in = node.endpoint.bw_in.total_bits
        config = net.config
        min_download = 10 * config.pointer_bits
        assert total_in >= min_download

    def test_probe_roundtrip_bits(self):
        """One probe costs heartbeat_bits out and ack_bits back."""
        config = ProtocolConfig(
            id_bits=16,
            probe_interval=10.0,
            probe_timeout=1.0,
            level_check_interval=1e6,
            multicast_processing_delay=0.1,
        )
        net = PeerWindowNetwork(config=config, master_seed=3)
        keys = net.seed_nodes([1e9] * 2)
        net.run(until=11.0)  # exactly one probe round each
        for k in keys:
            node = net.node(k)
            assert node.stats.probes_sent == 1
        a = net.node(keys[0]).endpoint
        # a sent one probe (500) and acked one probe (100).
        assert a.bw_out.total_bits == config.heartbeat_bits + config.ack_bits
        assert a.bw_in.total_bits == config.heartbeat_bits + config.ack_bits
