"""Unit tests for the transport's chaos knobs (see ``repro.chaos``):
partition validation, asymmetric pair loss, duplication, latency
scaling, slow endpoints and zombies."""

import numpy as np
import pytest

from repro.net.latency import UniformLatencyModel
from repro.net.message import Message
from repro.net.transport import Transport
from repro.sim.engine import Simulator


def make_transport(latency=0.1, loss_rate=0.0, seed=0):
    sim = Simulator()
    topo = UniformLatencyModel(latency=latency)
    return sim, Transport(
        sim, topo, loss_rate=loss_rate, rng=np.random.default_rng(seed)
    )


def registered(tr, *keys):
    got = {}
    for key in keys:
        got[key] = []
        tr.register(key, lambda m, k=key: got[k].append(m.kind))
    return got


class TestPartitionValidation:
    def test_overlapping_groups_rejected(self):
        sim, tr = make_transport()
        registered(tr, "a", "b", "c")
        with pytest.raises(ValueError) as err:
            tr.partition(["a", "b"], ["b", "c"])
        assert "more than one group" in str(err.value)
        assert "'b'" in str(err.value)
        assert not tr.partitioned  # rejected partitions install nothing

    def test_unregistered_keys_rejected(self):
        sim, tr = make_transport()
        registered(tr, "a", "b")
        with pytest.raises(ValueError) as err:
            tr.partition(["a"], ["b", "ghost"])
        assert "not registered" in str(err.value)
        assert "'ghost'" in str(err.value)
        assert not tr.partitioned

    def test_both_problems_reported_together(self):
        sim, tr = make_transport()
        registered(tr, "a", "b")
        with pytest.raises(ValueError) as err:
            tr.partition(["a", "a2"], ["a", "b"])
        msg = str(err.value)
        assert "more than one group" in msg and "not registered" in msg

    def test_valid_partition_installs(self):
        sim, tr = make_transport()
        registered(tr, "a", "b")
        tr.partition(["a"], ["b"])
        assert tr.partitioned
        tr.heal()
        assert not tr.partitioned


class TestPairLoss:
    def test_loss_is_directional(self):
        sim, tr = make_transport()
        got = registered(tr, "a", "b")
        tr.set_pair_loss("a", "b", 1.0)
        for _ in range(5):
            tr.send(Message("a", "b", "fwd"))
            tr.send(Message("b", "a", "rev"))
        sim.run()
        assert got["b"] == []  # a -> b fully dropped
        assert got["a"] == ["rev"] * 5  # reverse direction untouched

    def test_rate_zero_removes_entry(self):
        sim, tr = make_transport()
        got = registered(tr, "a", "b")
        tr.set_pair_loss("a", "b", 1.0)
        tr.set_pair_loss("a", "b", 0.0)
        tr.send(Message("a", "b", "ping"))
        sim.run()
        assert got["b"] == ["ping"]

    def test_clear_pair_loss(self):
        sim, tr = make_transport()
        got = registered(tr, "a", "b")
        tr.set_pair_loss("a", "b", 1.0)
        tr.clear_pair_loss()
        tr.send(Message("a", "b", "ping"))
        sim.run()
        assert got["b"] == ["ping"]

    def test_invalid_rate_rejected(self):
        sim, tr = make_transport()
        with pytest.raises(ValueError):
            tr.set_pair_loss("a", "b", 1.5)


class TestDuplication:
    def test_duplicates_delivered_and_counted(self):
        sim, tr = make_transport()
        got = registered(tr, "a", "b")
        tr.set_duplication(0.5)
        for _ in range(200):
            tr.send(Message("a", "b", "ping"))
        sim.run()
        assert len(got["b"]) == 200 + tr.duplicated
        assert 40 < tr.duplicated < 160  # ~100 expected

    def test_invalid_rate_rejected(self):
        sim, tr = make_transport()
        with pytest.raises(ValueError):
            tr.set_duplication(1.0)


class TestLatencyKnobs:
    def test_latency_scale_stretches_delivery(self):
        sim, tr = make_transport(latency=0.2)
        arrived = []
        tr.register("a", lambda m: None)
        tr.register("b", lambda m: arrived.append(sim.now))
        tr.set_latency_scale(3.0)
        tr.send(Message("a", "b", "ping"))
        sim.run()
        assert arrived == [pytest.approx(0.6)]

    def test_scale_below_one_rejected(self):
        sim, tr = make_transport()
        with pytest.raises(ValueError):
            tr.set_latency_scale(0.5)

    def test_endpoint_delay_applies_both_directions(self):
        sim, tr = make_transport(latency=0.1)
        arrived = []
        tr.register("slow", lambda m: arrived.append(("to", sim.now)))
        tr.register("b", lambda m: arrived.append(("from", sim.now)))
        tr.set_endpoint_delay("slow", 0.4)
        tr.send(Message("b", "slow", "ping"))
        tr.send(Message("slow", "b", "ping"))
        sim.run()
        assert dict(arrived) == {"to": pytest.approx(0.5),
                                 "from": pytest.approx(0.5)}

    def test_endpoint_delay_zero_removes(self):
        sim, tr = make_transport(latency=0.1)
        arrived = []
        tr.register("a", lambda m: None)
        tr.register("b", lambda m: arrived.append(sim.now))
        tr.set_endpoint_delay("b", 0.4)
        tr.set_endpoint_delay("b", 0.0)
        tr.send(Message("a", "b", "ping"))
        sim.run()
        assert arrived == [pytest.approx(0.1)]

    def test_negative_delay_rejected(self):
        sim, tr = make_transport()
        with pytest.raises(ValueError):
            tr.set_endpoint_delay("a", -0.1)


class TestZombie:
    def test_zombie_receives_nothing_sends_nothing(self):
        sim, tr = make_transport()
        got = registered(tr, "z", "b")
        tr.set_zombie("z")
        tr.send(Message("b", "z", "to-zombie"))
        tr.send(Message("z", "b", "from-zombie"))
        sim.run()
        assert got["z"] == [] and got["b"] == []
        assert tr.dropped_zombie == 2

    def test_zombie_stays_registered(self):
        sim, tr = make_transport()
        registered(tr, "z")
        tr.set_zombie("z")
        assert tr.is_alive("z") and tr.is_zombie("z")

    def test_cure_restores_traffic(self):
        sim, tr = make_transport()
        got = registered(tr, "z", "b")
        tr.set_zombie("z")
        tr.set_zombie("z", False)
        tr.send(Message("b", "z", "ping"))
        sim.run()
        assert got["z"] == ["ping"]
        assert not tr.is_zombie("z")
