"""Uniform latency model tests."""

import numpy as np
import pytest

from repro.net.latency import UniformLatencyModel


class TestUniformLatencyModel:
    def test_constant_latency(self):
        m = UniformLatencyModel(latency=0.05)
        m.attach("a")
        m.attach("b")
        assert m.latency("a", "b") == 0.05

    def test_loopback(self):
        m = UniformLatencyModel(latency=0.05, loopback=0.001)
        m.attach("a")
        assert m.latency("a", "a") == 0.001

    def test_jitter_is_stable_per_pair(self):
        m = UniformLatencyModel(latency=0.1, jitter=0.5, rng=np.random.default_rng(0))
        m.attach("a")
        m.attach("b")
        first = m.latency("a", "b")
        assert m.latency("a", "b") == first
        assert m.latency("b", "a") == first  # symmetric

    def test_jitter_within_bounds(self):
        m = UniformLatencyModel(latency=0.1, jitter=0.3, rng=np.random.default_rng(1))
        for i in range(50):
            m.attach(i)
        for i in range(1, 50):
            lat = m.latency(0, i)
            assert 0.07 - 1e-9 <= lat <= 0.13 + 1e-9

    def test_unattached_raises(self):
        m = UniformLatencyModel()
        m.attach("a")
        with pytest.raises(KeyError):
            m.latency("a", "b")

    def test_detach(self):
        m = UniformLatencyModel()
        m.attach("a")
        m.detach("a")
        assert "a" not in m

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformLatencyModel(latency=-1.0)
        with pytest.raises(ValueError):
            UniformLatencyModel(jitter=1.0)
