"""Structural boundary cases for the topology generators."""

import numpy as np

from repro.net.transit_stub import TransitStubParams, TransitStubTopology


class TestDegenerateTopologies:
    def test_single_domain(self):
        params = TransitStubParams(
            transit_domains=1,
            transit_nodes_per_domain=4,
            stub_domains_per_transit=2,
            stub_nodes_per_stub_domain=2,
            extra_domain_edges=0,
        )
        topo = TransitStubTopology(params, seed=1)
        topo.attach_at("a", 0)
        topo.attach_at("b", topo.n_stub_nodes - 1)
        lat = topo.latency("a", "b")
        assert lat > 0
        assert np.isfinite(topo._transit_hops).all()

    def test_single_transit_node_per_domain(self):
        params = TransitStubParams(
            transit_domains=3,
            transit_nodes_per_domain=1,
            stub_domains_per_transit=1,
            stub_nodes_per_stub_domain=1,
            extra_domain_edges=0,
        )
        topo = TransitStubTopology(params, seed=2)
        assert topo.n_stub_nodes == 3
        topo.attach_at("a", 0)
        topo.attach_at("b", 2)
        assert topo.latency("a", "b") > params.node_to_node

    def test_two_domains_ring(self):
        params = TransitStubParams(
            transit_domains=2,
            transit_nodes_per_domain=2,
            stub_domains_per_transit=1,
            stub_nodes_per_stub_domain=1,
            extra_domain_edges=0,
        )
        topo = TransitStubTopology(params, seed=3)
        assert np.isfinite(topo._transit_hops).all()

    def test_latency_sample_empty(self):
        topo = TransitStubTopology(TransitStubParams.small(), seed=0)
        out = topo.latency_sample(0)
        assert out.shape == (0,)


class TestParallelBoundaries:
    def test_single_rank(self):
        from repro.sim.parallel import ParallelSimulator

        psim = ParallelSimulator(1, lookahead=1.0)
        ran = []
        psim.lps[0].schedule_local(0.5, ran.append, 1)
        psim.lps[0].send(0, 0.1, ran.append, 2)  # self-send, no lookahead
        psim.run(until=2.0)
        assert sorted(ran) == [1, 2]


class TestScalableBoundaries:
    def test_max_level_clamps_deep_nodes(self):
        from repro.experiments.scalable import ScalableParams, ScalableSim

        params = ScalableParams(
            n_target=500, duration_s=60.0, warmup_s=20.0, max_level=3,
            threshold_floor_bps=1.0,  # absurdly weak nodes want level 10+
        )
        result = ScalableSim(params).run()
        assert all(r.level <= 3 for r in result.rows)

    def test_tiny_population(self):
        from repro.experiments.scalable import ScalableParams, ScalableSim

        params = ScalableParams(n_target=2, duration_s=30.0, warmup_s=10.0)
        result = ScalableSim(params).run()
        assert result.final_population >= 1
