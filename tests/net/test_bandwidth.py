"""Bandwidth meter tests."""

import math

import pytest

from repro.net.bandwidth import BandwidthMeter, EwmaRateMeter


class TestBandwidthMeter:
    def test_total_accumulates(self):
        m = BandwidthMeter(window=10.0)
        m.record(0.0, 100)
        m.record(1.0, 200)
        assert m.total_bits == 300

    def test_windowed_rate(self):
        m = BandwidthMeter(window=10.0)
        m.record(0.0, 1000)
        assert m.rate(now=5.0) == pytest.approx(100.0)

    def test_old_events_evicted(self):
        m = BandwidthMeter(window=10.0)
        m.record(0.0, 1000)
        assert m.rate(now=20.0) == 0.0
        assert m.total_bits == 1000  # lifetime total unaffected

    def test_lifetime_rate(self):
        m = BandwidthMeter(window=1.0, t0=0.0)
        m.record(0.0, 500)
        m.record(50.0, 500)
        assert m.lifetime_rate(now=100.0) == pytest.approx(10.0)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            BandwidthMeter().record(0.0, -1)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            BandwidthMeter(window=0.0)


class TestEwmaRateMeter:
    def test_burst_then_decay(self):
        m = EwmaRateMeter(tau=10.0, t0=0.0)
        m.record(0.0, 1000)
        r0 = m.rate(0.0)
        assert r0 == pytest.approx(100.0)
        r1 = m.rate(10.0)
        assert r1 == pytest.approx(100.0 * math.exp(-1.0))

    def test_steady_stream_converges_to_rate(self):
        m = EwmaRateMeter(tau=5.0, t0=0.0)
        # 100 bits every 0.1s = 1000 bps
        t = 0.0
        for _ in range(2000):
            t += 0.1
            m.record(t, 100)
        assert m.rate(t) == pytest.approx(1000.0, rel=0.05)

    def test_zero_rate_initially(self):
        assert EwmaRateMeter().rate(100.0) == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            EwmaRateMeter(tau=0.0)
        with pytest.raises(ValueError):
            EwmaRateMeter().record(0.0, -5)
