"""Simulated transport tests: latency, loss, death, request/response."""

import numpy as np
import pytest

from repro.net.latency import UniformLatencyModel
from repro.net.message import Message
from repro.net.transport import Transport
from repro.sim.engine import Simulator


def make_transport(latency=0.1, loss_rate=0.0, seed=0):
    sim = Simulator()
    topo = UniformLatencyModel(latency=latency)
    return sim, Transport(sim, topo, loss_rate=loss_rate, rng=np.random.default_rng(seed))


class TestDelivery:
    def test_message_arrives_after_latency(self):
        sim, tr = make_transport(latency=0.25)
        arrived = []
        tr.register("a", lambda m: None)
        tr.register("b", lambda m: arrived.append(sim.now))
        tr.send(Message("a", "b", "ping"))
        sim.run()
        assert arrived == [pytest.approx(0.25)]

    def test_handler_gets_message(self):
        sim, tr = make_transport()
        got = []
        tr.register("a", lambda m: None)
        tr.register("b", got.append)
        msg = Message("a", "b", "data", payload={"x": 1})
        tr.send(msg)
        sim.run()
        assert got[0].payload == {"x": 1}
        assert got[0].kind == "data"

    def test_duplicate_registration_rejected(self):
        _, tr = make_transport()
        tr.register("a", lambda m: None)
        with pytest.raises(ValueError):
            tr.register("a", lambda m: None)

    def test_message_to_dead_endpoint_vanishes(self):
        sim, tr = make_transport()
        tr.register("a", lambda m: None)
        tr.send(Message("a", "ghost", "ping"))
        sim.run()
        assert tr.dropped_dead == 1
        assert tr.delivered == 0

    def test_death_mid_flight_drops_message(self):
        sim, tr = make_transport(latency=1.0)
        got = []
        tr.register("a", lambda m: None)
        tr.register("b", got.append)
        tr.send(Message("a", "b", "ping"))
        sim.schedule(0.5, tr.unregister, "b")
        sim.run()
        assert got == []
        assert tr.dropped_dead == 1


class TestBandwidthAccounting:
    def test_sender_and_receiver_billed(self):
        sim, tr = make_transport()
        tr.register("a", lambda m: None)
        tr.register("b", lambda m: None)
        tr.send(Message("a", "b", "x", size_bits=1000))
        sim.run()
        assert tr.endpoint("a").bw_out.total_bits == 1000
        assert tr.endpoint("b").bw_in.total_bits == 1000
        assert tr.endpoint("a").bw_in.total_bits == 0

    def test_kind_statistics(self):
        sim, tr = make_transport()
        tr.register("a", lambda m: None)
        tr.register("b", lambda m: None)
        for _ in range(3):
            tr.send(Message("a", "b", "probe"))
        tr.send(Message("a", "b", "event"))
        sim.run()
        assert tr.stats()["by_kind"] == {"probe": 3, "event": 1}


class TestLoss:
    def test_zero_loss_delivers_all(self):
        sim, tr = make_transport(loss_rate=0.0)
        got = []
        tr.register("a", lambda m: None)
        tr.register("b", got.append)
        for _ in range(50):
            tr.send(Message("a", "b", "x"))
        sim.run()
        assert len(got) == 50

    def test_loss_rate_drops_fraction(self):
        sim, tr = make_transport(loss_rate=0.5, seed=7)
        got = []
        tr.register("a", lambda m: None)
        tr.register("b", got.append)
        for _ in range(400):
            tr.send(Message("a", "b", "x"))
        sim.run()
        assert 120 < len(got) < 280  # ~200 expected
        assert tr.lost == 400 - len(got)

    def test_invalid_loss_rate(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Transport(sim, UniformLatencyModel(), loss_rate=1.0)


class TestRequestResponse:
    def _echo_pair(self, loss_rate=0.0, seed=0):
        sim, tr = make_transport(loss_rate=loss_rate, seed=seed)
        tr.register("client", lambda m: None)

        def server(msg):
            tr.send(msg.make_reply("echo", payload=msg.payload))

        tr.register("server", server)
        return sim, tr

    def test_reply_routed_to_callback(self):
        sim, tr = self._echo_pair()
        replies = []
        tr.request(
            Message("client", "server", "ask", payload=42),
            timeout=5.0,
            on_reply=lambda r: replies.append(r.payload),
            on_timeout=lambda: replies.append("timeout"),
        )
        sim.run()
        assert replies == [42]

    def test_timeout_fires_when_no_reply(self):
        sim, tr = make_transport()
        outcomes = []
        tr.register("client", lambda m: None)
        tr.request(
            Message("client", "ghost", "ask"),
            timeout=2.0,
            on_reply=lambda r: outcomes.append("reply"),
            on_timeout=lambda: outcomes.append("timeout"),
        )
        sim.run()
        assert outcomes == ["timeout"]
        assert sim.now == pytest.approx(2.0)

    def test_exactly_one_of_reply_or_timeout(self):
        sim, tr = self._echo_pair()
        outcomes = []
        tr.request(
            Message("client", "server", "ask"),
            timeout=100.0,
            on_reply=lambda r: outcomes.append("reply"),
            on_timeout=lambda: outcomes.append("timeout"),
        )
        sim.run()
        assert outcomes == ["reply"]
        assert tr.stats()["pending_requests"] == 0

    def test_late_reply_goes_to_handler(self):
        """A reply arriving after the timeout reaches the endpoint handler
        (stale-ack path) instead of vanishing."""
        sim, tr = make_transport(latency=5.0)
        late = []
        tr.register("client", late.append)

        def server(msg):
            tr.send(msg.make_reply("echo"))

        tr.register("server", server)
        tr.request(
            Message("client", "server", "ask"),
            timeout=1.0,  # times out before the 10s round trip
            on_reply=lambda r: late.append("via-callback"),
            on_timeout=lambda: None,
        )
        sim.run()
        assert len(late) == 1
        assert late[0] != "via-callback"
        assert late[0].kind == "echo"

    def test_invalid_timeout(self):
        sim, tr = make_transport()
        tr.register("a", lambda m: None)
        with pytest.raises(ValueError):
            tr.request(Message("a", "a", "x"), timeout=0.0, on_reply=lambda r: None, on_timeout=lambda: None)


class TestMessage:
    def test_reply_links_and_swaps(self):
        msg = Message("a", "b", "ask", payload=1)
        reply = msg.make_reply("ans", payload=2)
        assert reply.src == "b" and reply.dst == "a"
        assert reply.reply_to == msg.msg_id

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message("a", "b", "x", size_bits=-1)


class TestUnregisterCancelsPending:
    def test_unregister_cancels_own_pending_timeouts(self):
        """A departed endpoint's outstanding request timeouts are cancelled:
        its callbacks are dead weight, and the timer events would otherwise
        linger in the queue for the full timeout."""
        sim, tr = make_transport()
        fired = []
        tr.register("a", lambda m: None)
        tr.register("ghost-target", lambda m: None)
        tr.unregister("ghost-target")  # requests below can never be answered
        for i in range(5):
            tr.request(
                Message("a", "ghost-target", "ask", payload=i),
                timeout=1000.0,
                on_reply=lambda r: fired.append("reply"),
                on_timeout=lambda: fired.append("timeout"),
            )
        assert tr.stats()["pending_requests"] == 5
        queued_before = len(sim)
        tr.unregister("a")
        assert tr.stats()["pending_requests"] == 0
        # Cancellation is lazy (entries stay queued until popped), but the
        # queue must drain immediately instead of idling to t=1000.
        assert len(sim) == queued_before
        sim.run()
        assert fired == []
        assert sim.now < 1000.0

    def test_unregister_keeps_timeouts_of_requests_to_it(self):
        """Timeouts of requests sent *to* the departed endpoint must keep
        running — they are exactly how live peers detect the departure."""
        sim, tr = make_transport()
        outcomes = []
        tr.register("prober", lambda m: None)
        tr.register("victim", lambda m: None)
        tr.request(
            Message("prober", "victim", "probe"),
            timeout=2.0,
            on_reply=lambda r: outcomes.append("reply"),
            on_timeout=lambda: outcomes.append("timeout"),
        )
        tr.unregister("victim")
        assert tr.stats()["pending_requests"] == 1
        sim.run()
        assert outcomes == ["timeout"]
