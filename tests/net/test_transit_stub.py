"""GT-ITM transit-stub topology tests."""

import numpy as np
import pytest

from repro.net.transit_stub import TransitStubParams, TransitStubTopology


@pytest.fixture(scope="module")
def paper_topo():
    return TransitStubTopology(TransitStubParams(), seed=0)


@pytest.fixture()
def small_topo():
    return TransitStubTopology(TransitStubParams.small(), seed=1)


class TestStructure:
    def test_paper_scale_counts(self, paper_topo):
        p = paper_topo.params
        assert p.n_transit_nodes == 480
        assert p.n_stub_nodes == 4800
        assert paper_topo.n_stub_nodes == 4800

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            TransitStubParams(transit_domains=0)
        with pytest.raises(ValueError):
            TransitStubParams(transit_to_transit=-1.0)

    def test_transit_graph_connected(self, paper_topo):
        assert np.isfinite(paper_topo._transit_hops).all()

    def test_stub_positions_roundtrip(self, small_topo):
        p = small_topo.params
        seen = set()
        for s in range(small_topo.n_stub_nodes):
            tn, sd, sn = small_topo.stub_position(s)
            assert 0 <= tn < p.n_transit_nodes
            assert 0 <= sd < p.stub_domains_per_transit
            assert 0 <= sn < p.stub_nodes_per_stub_domain
            seen.add((tn, sd, sn))
        assert len(seen) == small_topo.n_stub_nodes


class TestLatencies:
    def test_same_stub_node_is_node_latency(self, small_topo):
        small_topo.attach_at("a", 0)
        small_topo.attach_at("b", 0)
        assert small_topo.latency("a", "b") == pytest.approx(
            small_topo.params.node_to_node
        )

    def test_same_stub_domain(self, small_topo):
        p = small_topo.params
        small_topo.attach_at("a", 0)
        small_topo.attach_at("b", 1)  # same stub domain, different stub node
        assert small_topo.latency("a", "b") == pytest.approx(
            p.stub_to_stub + p.node_to_node
        )

    def test_cross_domain_includes_transit(self, paper_topo):
        p = paper_topo.params
        paper_topo.attach_at("a", 0)
        paper_topo.attach_at("b", paper_topo.n_stub_nodes - 1)
        lat = paper_topo.latency("a", "b")
        # At least two stub-transit hops plus the final node hop.
        assert lat >= 2 * p.transit_to_stub + p.node_to_node
        # And the transit path contributes in whole 100ms hops.
        transit_part = lat - 2 * p.transit_to_stub - p.node_to_node
        assert transit_part % p.transit_to_transit == pytest.approx(0.0, abs=1e-9)

    def test_symmetry(self, paper_topo):
        rng = np.random.default_rng(3)
        for _ in range(20):
            sa, sb = rng.integers(0, paper_topo.n_stub_nodes, size=2)
            paper_topo.attach_at("x", int(sa))
            paper_topo.attach_at("y", int(sb))
            assert paper_topo.latency("x", "y") == pytest.approx(
                paper_topo.latency("y", "x")
            )

    def test_unattached_query_raises(self, small_topo):
        small_topo.attach_at("a", 0)
        with pytest.raises(KeyError):
            small_topo.latency("a", "ghost")

    def test_detach(self, small_topo):
        small_topo.attach("k")
        assert "k" in small_topo
        small_topo.detach("k")
        assert "k" not in small_topo

    def test_attach_is_idempotent(self, small_topo):
        small_topo.attach("k")
        stub = small_topo.stub_of("k")
        small_topo.attach("k")
        assert small_topo.stub_of("k") == stub

    def test_attach_at_range_checked(self, small_topo):
        with pytest.raises(ValueError):
            small_topo.attach_at("k", small_topo.n_stub_nodes)


class TestSampling:
    def test_latency_sample_matches_pointwise(self, paper_topo):
        """The vectorized sampler must agree with the scalar oracle."""
        rng = np.random.default_rng(0)
        for _ in range(30):
            sa, sb = (int(x) for x in rng.integers(0, paper_topo.n_stub_nodes, 2))
            paper_topo.attach_at("p", sa)
            paper_topo.attach_at("q", sb)
            expected = paper_topo.latency("p", "q")
            got = (
                paper_topo.stub_latency(sa, sb) + paper_topo.params.node_to_node
            )
            assert got == pytest.approx(expected)

    def test_latency_sample_distribution_reasonable(self, paper_topo):
        lats = paper_topo.latency_sample(2000)
        assert lats.shape == (2000,)
        assert (lats >= 0).all()
        # The bulk of pairs cross the transit backbone (~hundreds of ms).
        assert 0.1 < float(np.mean(lats)) < 2.0

    def test_deterministic_given_seed(self):
        a = TransitStubTopology(TransitStubParams.small(), seed=42)
        b = TransitStubTopology(TransitStubParams.small(), seed=42)
        assert np.array_equal(a._transit_hops, b._transit_hops)
