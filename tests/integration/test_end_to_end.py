"""End-to-end churn soak on the detailed engine.

Runs a PeerWindow deployment under continuous Gnutella-style churn over
the transit-stub underlay and checks the paper's global health claims:
bounded error, live failure detection, stable population, working app
layer on top.
"""

import pytest

from repro.apps.guess import GuessSearch
from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork
from repro.net.transit_stub import TransitStubParams, TransitStubTopology
from repro.workloads.attached_info import guess_attached_info
from repro.workloads.churn import ChurnProcess
from repro.workloads.lifetime import ExponentialLifetime


@pytest.fixture(scope="module")
def soak():
    config = ProtocolConfig(
        id_bits=16,
        probe_interval=5.0,
        probe_timeout=1.0,
        multicast_ack_timeout=1.0,
        report_timeout=2.0,
        level_check_interval=15.0,
        multicast_processing_delay=0.2,
    )
    topo = TransitStubTopology(TransitStubParams.small(), seed=4)
    net = PeerWindowNetwork(config=config, topology=topo, master_seed=13)
    rng = net.streams.get("app-info")
    infos = guess_attached_info(rng, 400)
    n0 = 40
    keys = net.seed_nodes(
        [{"threshold_bps": 1e6, "attached_info": infos[i]} for i in range(n0)],
        mean_lifetime_s=300.0,
    )
    info_iter = iter(infos[n0:])

    def on_join(session):
        alive = [k for k in net.nodes if net.nodes[k].alive]
        if not alive:
            return None
        bootstrap = alive[int(net.streams.get("boot").integers(0, len(alive)))]
        return net.add_node(
            session.threshold_bps * 1e4,  # keep everyone comfortably level 0
            bootstrap=bootstrap,
            attached_info=next(info_iter, None),
        )

    def on_leave(key):
        node = net.nodes.get(key)
        if node is None or not node.alive:
            return
        # Half leave gracefully, half crash (§4.1 must catch these).
        if node.node_id.value % 2:
            net.leave(key)
        else:
            net.crash(key)

    churn = ChurnProcess(
        net.sim,
        net.streams.get("churn"),
        n_target=n0,
        on_join=on_join,
        on_leave=on_leave,
        lifetime_dist=ExponentialLifetime(mean=300.0),
    )
    churn.start()
    net.run(until=600.0)
    return net, churn


class TestSoak:
    def test_population_stays_near_target(self, soak):
        net, churn = soak
        assert 20 <= len(net.live_nodes()) <= 80

    def test_churn_actually_happened(self, soak):
        net, churn = soak
        assert churn.joins >= 30
        assert churn.leaves >= 30

    def test_mean_error_bounded(self, soak):
        net, _ = soak
        # Continuous churn keeps transient staleness in flight; the
        # detailed engine must hold the line well under 10%.
        assert net.mean_error_rate() < 0.10

    def test_no_dead_pointers_linger_long(self, soak):
        net, _ = soak
        net.run(until=net.sim.now + 60.0)
        live_ids = {n.node_id.value for n in net.live_nodes()}
        stale_total = sum(
            len(set(n.peer_list.ids()) - live_ids - {n.node_id.value})
            for n in net.live_nodes()
        )
        entries_total = sum(len(n.peer_list) for n in net.live_nodes())
        assert stale_total / max(entries_total, 1) < 0.05

    def test_app_layer_works_during_churn(self, soak):
        net, _ = soak
        node = net.live_nodes()[0]
        gs = GuessSearch(node, universe=2000)
        hits = sum(gs.query(k) is not None for k in range(30))
        assert gs.queries == 30  # queries run without errors

    def test_failure_detection_active(self, soak):
        net, _ = soak
        detections = sum(n.stats.failures_detected for n in net.nodes.values())
        assert detections >= 5
