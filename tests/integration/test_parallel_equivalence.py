"""Sequential <-> partitioned equivalence: the conservative-PDES contract.

A fixed-seed :class:`~repro.core.protocol.PeerWindowNetwork` run on the
sequential engine and the same run partitioned across logical processes
(``parallel=N``, threads off and on) must produce *bit-for-bit* identical
results — identical protocol counters, transport totals, and level
histograms.  This is the correctness property conservative parallel DES
must preserve (results cannot depend on the partitioning), and it is the
ONSP paper's own validation methodology.

The topology is :class:`~repro.net.latency.PairwiseLatencyModel`: its
latency is a pure function of the endpoint pair (partition-safe) and its
per-pair spread removes simultaneous-delivery ties whose queue order
would otherwise be partition-dependent.
"""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork
from repro.net.latency import PairwiseLatencyModel, UniformLatencyModel

CONFIG = ProtocolConfig(
    id_bits=16,
    probe_interval=8.0,
    probe_timeout=2.0,
    report_timeout=4.0,
    multicast_ack_timeout=2.0,
    level_check_interval=45.0,
    multicast_processing_delay=1.0,
)


def run_scenario(config=CONFIG, **network_kwargs):
    """Seeded population + deterministic churn, identical in every mode."""
    net = PeerWindowNetwork(
        config=config,
        master_seed=11,
        topology=PairwiseLatencyModel(),
        **network_kwargs,
    )
    keys = list(net.seed_nodes([1e9] * 30))
    net.run(until=20.0)

    def live():
        return [k for k in keys if k in net.nodes and net.nodes[k].alive]

    net.crash(live()[3])
    net.run(until=40.0)
    keys.append(net.add_node(1e9, bootstrap=live()[0]))
    net.run(until=60.0)
    net.leave(live()[5])
    net.run(until=80.0)
    net.crash(live()[7])
    net.run(until=100.0)
    keys.append(net.add_node(1e9, bootstrap=live()[2]))
    net.run(until=200.0)
    return net


class TestEquivalence:
    @pytest.fixture(scope="class")
    def sequential(self):
        return run_scenario()

    def test_partitioned_matches_sequential(self, sequential):
        par = run_scenario(parallel=4)
        assert par.stats_summary() == sequential.stats_summary()
        assert par.level_histogram() == sequential.level_histogram()

    def test_threaded_partitions_match_sequential(self, sequential):
        thr = run_scenario(parallel=4, threads=True)
        assert thr.stats_summary() == sequential.stats_summary()
        assert thr.level_histogram() == sequential.level_histogram()

    def test_rank_count_does_not_matter(self, sequential):
        two = run_scenario(parallel=2)
        assert two.stats_summary() == sequential.stats_summary()

    def test_single_rank_partition(self, sequential):
        one = run_scenario(parallel=1)
        assert one.stats_summary() == sequential.stats_summary()

    def test_timer_jitter_is_partition_safe(self):
        """Jittered probe/refresh timers draw from per-node streams, so
        they too must be identical across execution modes."""
        jittery = CONFIG.with_(timer_jitter=0.2)
        seq = run_scenario(config=jittery)
        par = run_scenario(config=jittery, parallel=4)
        assert par.stats_summary() == seq.stats_summary()
        assert par.level_histogram() == seq.level_histogram()


class TestLossEquivalence:
    """Message loss is hash-derived per message (loss seed + per-source
    sequence), not RNG-drawn, so the bit-for-bit guarantee must hold with
    ``loss_rate > 0`` — in every partitioning, threaded or not."""

    @pytest.fixture(scope="class")
    def lossy_sequential(self):
        return run_scenario(loss_rate=0.05)

    def test_loss_actually_drops(self, lossy_sequential):
        assert lossy_sequential.stats_summary()["transport_lost"] > 0

    def test_partitioned_matches_sequential_under_loss(self, lossy_sequential):
        par = run_scenario(loss_rate=0.05, parallel=4)
        assert par.stats_summary() == lossy_sequential.stats_summary()
        assert par.level_histogram() == lossy_sequential.level_histogram()

    def test_threaded_matches_sequential_under_loss(self, lossy_sequential):
        thr = run_scenario(loss_rate=0.05, parallel=3, threads=True)
        assert thr.stats_summary() == lossy_sequential.stats_summary()

    def test_loss_pattern_tracks_master_seed(self, lossy_sequential):
        """Different master seed -> different hashed drop pattern (the
        decision stream is seeded, not constant)."""
        other = PeerWindowNetwork(
            config=CONFIG,
            master_seed=12,
            topology=PairwiseLatencyModel(),
            loss_rate=0.05,
        )
        other.seed_nodes([1e9] * 30)
        other.run(until=200.0)
        assert (
            other.stats_summary()["transport_lost"]
            != lossy_sequential.stats_summary()["transport_lost"]
            or other.stats_summary() != lossy_sequential.stats_summary()
        )


class TestPartitionedModeGuards:
    def test_invalid_loss_rate_rejected(self):
        with pytest.raises(ValueError, match="loss_rate"):
            PeerWindowNetwork(
                config=CONFIG,
                topology=PairwiseLatencyModel(),
                parallel=2,
                loss_rate=1.0,
            )

    def test_impure_topology_rejected(self):
        jittery = UniformLatencyModel(latency=0.05, jitter=0.2)
        with pytest.raises(NotImplementedError):
            PeerWindowNetwork(config=CONFIG, topology=jittery, parallel=2)

    def test_excessive_lookahead_rejected(self):
        with pytest.raises(ValueError, match="lookahead"):
            PeerWindowNetwork(
                config=CONFIG,
                topology=PairwiseLatencyModel(base=0.05),
                parallel=2,
                lookahead=0.5,
            )

    def test_run_needs_until(self):
        net = PeerWindowNetwork(
            config=CONFIG, topology=PairwiseLatencyModel(), parallel=2
        )
        net.seed_nodes([1e9] * 4)
        with pytest.raises(ValueError, match="until"):
            net.run()

    def test_monitoring_unsupported(self):
        net = PeerWindowNetwork(
            config=CONFIG, topology=PairwiseLatencyModel(), parallel=2
        )
        with pytest.raises(NotImplementedError):
            net.enable_monitoring()

    def test_now_property_tracks_partitioned_clock(self):
        net = PeerWindowNetwork(
            config=CONFIG, topology=PairwiseLatencyModel(), parallel=2
        )
        net.seed_nodes([1e9] * 4)
        net.run(until=12.5)
        assert net.now == pytest.approx(12.5)
