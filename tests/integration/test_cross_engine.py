"""Cross-engine validation: the detailed protocol engine and the scalable
bookkeeping engine must agree where their scales overlap.

This is the license for trusting 100,000-node scalable results: at a few
hundred nodes, the full wire-protocol simulation and the centralized
bookkeeping produce the same level structure and peer-list sizes.
"""

import numpy as np
import pytest

from repro.core.analytic import CostModel
from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork
from repro.experiments.scalable import ScalableParams, ScalableSim
from repro.workloads.bandwidth_dist import (
    GnutellaBandwidthDistribution,
    threshold_from_bandwidth,
)


class TestLevelAgreement:
    def test_seeded_levels_match_cost_model(self):
        """The detailed engine's seeding and the scalable engine's level
        assignment both sit on the §2 stationary point."""
        n = 200
        rng = np.random.default_rng(17)
        bws = GnutellaBandwidthDistribution().sample(rng, n)
        thresholds = threshold_from_bandwidth(bws)
        mean_lifetime = 135 * 60.0

        net = PeerWindowNetwork(
            config=ProtocolConfig(id_bits=16, multicast_processing_delay=0.1),
            master_seed=1,
        )
        net.seed_nodes([float(t) for t in thresholds], mean_lifetime_s=mean_lifetime)
        detailed_hist = net.level_histogram()

        model = CostModel(mean_lifetime_s=mean_lifetime)
        analytic_hist = {}
        for t in thresholds:
            lvl = model.min_affordable_level(n, float(t))
            analytic_hist[lvl] = analytic_hist.get(lvl, 0) + 1
        assert detailed_hist == dict(sorted(analytic_hist.items()))

    def test_scalable_levels_match_analytic_at_seed(self):
        p = ScalableParams(n_target=2000, duration_s=50.0, warmup_s=10.0, seed=2)
        sim = ScalableSim(p)
        sim.seed_population()
        # At seed time the engine uses the analytic rate 2N/L.
        rate = sim._rate_estimate
        cost0 = rate * p.event_bits
        live = sim.alive
        for slot in np.flatnonzero(live)[:200]:
            threshold = sim.thresholds[slot]
            level = int(sim.levels[slot])
            if level > 0:
                assert cost0 / (2.0 ** (level - 1)) > threshold  # can't afford stronger
            assert cost0 / (2.0**level) <= threshold or level == p.max_level


class TestSizeAgreement:
    def test_peer_list_sizes_match_between_engines(self):
        """Same membership → same (implicit vs explicit) peer-list sizes."""
        n = 150
        net = PeerWindowNetwork(
            config=ProtocolConfig(id_bits=16, multicast_processing_delay=0.1),
            master_seed=3,
        )
        keys = net.seed_nodes([1e9] * (n // 2) + [50.0] * (n - n // 2))
        for k in keys:
            node = net.node(k)
            oracle = net.oracle_peer_ids(node)
            assert len(node.peer_list) == len(oracle)
            # The scalable engine's size rule: count of live nodes sharing
            # the first `level` bits.
            count = sum(
                1
                for other in net.live_nodes()
                if other.node_id.shares_prefix(node.node_id, node.level)
            )
            assert len(node.peer_list) == count


class TestHeterogeneousBroadcastAgreement:
    def test_mixed_level_audiences_agree(self):
        """plan_tree (object planner) and binomial_broadcast (vectorized)
        are independent implementations of §4.2; on identical
        heterogeneous audiences they must deliver to the same set with the
        same root out-degree and depth profile."""
        from repro.core.multicast import plan_tree
        from repro.core.nodeid import NodeId
        from repro.experiments.scalable import binomial_broadcast

        rng = np.random.default_rng(23)
        bits = 20
        for trial in range(5):
            subject_val = int(rng.integers(0, 1 << bits))
            subject = NodeId(subject_val, bits)
            # Build an audience: members' eigenstrings prefix the subject.
            ids, levels = [], []
            seen = set()
            for _ in range(150):
                lvl = int(rng.integers(0, 6))
                prefix = (subject_val >> (bits - lvl)) << (bits - lvl) if lvl else 0
                value = prefix | int(rng.integers(0, 1 << (bits - lvl)))
                if value in seen or value == subject_val:
                    continue
                seen.add(value)
                ids.append(value)
                levels.append(lvl)
            ids_arr = np.array(ids, dtype=np.uint64)
            lv_arr = np.array(levels, dtype=np.int32)
            root_pos = int(np.lexsort((ids_arr, lv_arr))[0])

            depths, senders = binomial_broadcast(ids_arr, lv_arr, root_pos, bits)

            members = {
                v: (NodeId(v, bits), l) for v, l in zip(ids, levels)
            }
            root_id, root_level = members[int(ids_arr[root_pos])]
            tree = plan_tree(root_id, root_level, subject, members)

            tree_delivered = {n.node_id.value for n in tree.walk()}
            vec_delivered = {int(v) for v, d in zip(ids_arr, depths) if d >= 0}
            assert tree_delivered == vec_delivered
            tree_by_value = {n.node_id.value: n for n in tree.walk()}
            # Depth profiles agree member-by-member (same deterministic
            # strongest-first tie-breaking in both implementations).
            for v, d in zip(ids_arr, depths):
                if d >= 0:
                    assert tree_by_value[int(v)].depth == int(d)


class TestDelayModelAgreement:
    def test_tree_depths_agree(self):
        """The scalable engine's vectorized broadcast and the core
        planner produce identical depth profiles on the same audience."""
        from repro.core.multicast import plan_tree, tree_stats
        from repro.core.nodeid import NodeId
        from repro.experiments.scalable import binomial_broadcast

        rng = np.random.default_rng(5)
        bits = 16
        n = 300
        values = np.unique(rng.integers(0, 1 << bits, size=n, dtype=np.uint64))
        levels = np.zeros(values.size, dtype=np.int32)  # all top nodes
        subject = NodeId(int(values[7]), bits)

        depths, senders = binomial_broadcast(values, levels, 0, bits)
        members = {
            int(v): (NodeId(int(v), bits), 0) for v in values
        }
        tree = plan_tree(NodeId(int(values[0]), bits), 0, subject, members)
        stats = tree_stats(tree)

        # The planner excludes the subject; the vectorized version
        # includes it as a recipient.  Compare on the common set.
        subj_pos = int(np.flatnonzero(values == values[7])[0])
        mask = np.ones(values.size, dtype=bool)
        mask[subj_pos] = False
        assert stats["reach"] == int(mask.sum())
        assert stats["root_out_degree"] == pytest.approx(int(senders[0]), abs=1)
        assert stats["max_depth"] == pytest.approx(int(depths[mask].max()), abs=2)
