"""Streaming telemetry determinism: frames are partition-invariant.

The acceptance property of the streaming pipeline: driving the same
seeded churn scenario through a :class:`StreamWindower` produces a
byte-identical ``--snapshot-jsonl`` file on the sequential engine and
under any partitioning (``parallel=4``, threads on or off).  Events are
bucketed by the window stride that published them, which is only
deterministic because the parallel engine settles cross-LP deliveries
landing exactly on the stride boundary before ``run`` returns.

Also covers the chaos-runner integration: streaming a chaos run leaves
its determinism digest untouched, and two same-seed streamed runs write
identical frame files.
"""

import pytest

from repro.core.protocol import PeerWindowNetwork
from repro.net.latency import PairwiseLatencyModel
from repro.obs.health import HealthSpec
from repro.obs.stream import SnapshotWriter, StreamConfig, StreamWindower

from .test_parallel_equivalence import CONFIG


def run_streamed(path, **network_kwargs):
    """The churn scenario of test_parallel_equivalence, advanced through
    a windower with a snapshot sink; returns the snapshot file text."""
    net = PeerWindowNetwork(
        config=CONFIG,
        master_seed=11,
        topology=PairwiseLatencyModel(),
        observability=True,
        **network_kwargs,
    )
    windower = StreamWindower(
        net,
        window=15.0,
        spec=HealthSpec.default(CONFIG, 30),
        sinks=[SnapshotWriter(str(path))],
    )
    keys = list(net.seed_nodes([1e9] * 30))
    windower.run(until=20.0)

    def live():
        return [k for k in keys if k in net.nodes and net.nodes[k].alive]

    net.crash(live()[3])
    windower.run(until=40.0)
    keys.append(net.add_node(1e9, bootstrap=live()[0]))
    windower.run(until=60.0)
    net.leave(live()[5])
    windower.run(until=80.0)
    net.crash(live()[7])
    windower.run(until=100.0)
    keys.append(net.add_node(1e9, bootstrap=live()[2]))
    windower.run(until=200.0)
    windower.finish()
    with open(path) as fh:
        return fh.read()


class TestStreamEquivalence:
    @pytest.fixture(scope="class")
    def sequential_frames(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("stream") / "seq.jsonl"
        return run_streamed(path)

    def test_sequential_run_emits_windows(self, sequential_frames):
        lines = sequential_frames.strip().splitlines()
        # header + 13 windows of 15 s over 200 s + the final frame
        assert len(lines) == 15
        assert '"schema":"repro.telemetry"' in lines[0]
        assert '"final":true' in lines[-1]

    def test_partitioned_frames_byte_identical(
        self, sequential_frames, tmp_path
    ):
        par = run_streamed(tmp_path / "par.jsonl", parallel=4)
        assert par == sequential_frames

    def test_threaded_frames_byte_identical(
        self, sequential_frames, tmp_path
    ):
        thr = run_streamed(tmp_path / "thr.jsonl", parallel=3, threads=True)
        assert thr == sequential_frames

    def test_replay_frames_byte_identical(self, sequential_frames, tmp_path):
        again = run_streamed(tmp_path / "again.jsonl")
        assert again == sequential_frames


class TestChaosStream:
    def _streamed_run(self, path, seed=3):
        from repro.chaos import SCENARIOS, ChaosRunner

        runner = ChaosRunner(
            SCENARIOS["smoke"],
            seed=seed,
            stream=StreamConfig(window=15.0, snapshot_path=str(path)),
        )
        result = runner.run()
        with open(path) as fh:
            return result, fh.read()

    def test_same_seed_streams_identical_frames(self, tmp_path):
        one, frames_one = self._streamed_run(tmp_path / "one.jsonl")
        two, frames_two = self._streamed_run(tmp_path / "two.jsonl")
        assert frames_one == frames_two
        assert one.trace == two.trace

    def test_stream_leaves_chaos_digest_unchanged(self, tmp_path):
        from repro.chaos import SCENARIOS, ChaosRunner

        plain = ChaosRunner(SCENARIOS["smoke"], seed=3, observe=True).run()
        streamed, frames = self._streamed_run(tmp_path / "frames.jsonl")
        assert streamed.trace == plain.trace
        assert frames.count('"final":true') == 1
