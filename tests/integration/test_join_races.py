"""Joins racing concurrent event multicasts (the stale-download completion).

A joiner is in nobody's audience until its JOIN multicast lands, so an
event whose dissemination completes inside the join window never reaches
it through the tree.  The download server closes the race by copying
events it first sees within ``download_grace`` of serving a snapshot to
the requester (DESIGN.md §8, ``event-copy`` messages).

Both scenarios here are minimized hypothesis counterexamples from the
stateful fuzzer (`test_stateful_fuzz.py`), pinned as deterministic
regressions:

* seed 468: a join concurrent with a crash obituary left the joiner
  holding the dead node's pointer forever — the joiner is not the dead
  node's ring predecessor in its own view, so §4.1 probing never touches
  it, and §4.6 expiry is hours away;
* seed 1: an early broken fix sent the copies as ``mcast`` messages,
  which marked the event seen — the joiner then acked a later real tree
  delivery as a duplicate *without forwarding*, black-holing its subtree
  (members ended up missing pointers after nothing but joins).
"""

from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork

CONFIG = ProtocolConfig(
    id_bits=16,
    probe_interval=4.0,
    probe_timeout=1.0,
    multicast_ack_timeout=1.0,
    report_timeout=2.0,
    level_check_interval=1e6,  # no autonomic shifts: isolate the join race
    multicast_processing_delay=0.1,
)


def _live_keys(net, keys):
    return [k for k in keys if k in net.nodes and net.nodes[k].alive]


def _assert_converged(net):
    live = net.live_nodes()
    live_ids = {n.node_id.value for n in live}
    for node in live:
        actual = set(node.peer_list.ids())
        assert actual <= live_ids, (
            f"stale pointers at {node.address}: {actual - live_ids}"
        )
        oracle = net.oracle_peer_ids(node)
        assert len(oracle - actual) <= 1, (
            f"absent pointers at {node.address}: {oracle - actual}"
        )


def test_join_during_obituary_dissemination():
    """Seed 468: crash, then a join whose download races the obituary."""
    net = PeerWindowNetwork(config=CONFIG, master_seed=468)
    keys = list(net.seed_nodes([1e9] * 10))
    net.run(until=20.0)
    for _ in range(2):  # crash -> join, twice (the minimized sequence)
        net.crash(_live_keys(net, keys)[0])
        net.run(until=net.sim.now + 5.0)
        keys.append(net.add_node(1e9, bootstrap=_live_keys(net, keys)[0]))
        net.run(until=net.sim.now + 8.0)
    net.run(until=net.sim.now + 60.0)
    _assert_converged(net)


def test_join_chain_does_not_black_hole_multicasts():
    """Seed 1: nine back-to-back joins; every JOIN multicast must still
    reach every member even though most members recently served or
    received download-grace copies."""
    net = PeerWindowNetwork(config=CONFIG, master_seed=1)
    keys = list(net.seed_nodes([1e9] * 10))
    net.run(until=5.0)
    for _ in range(9):
        keys.append(net.add_node(1e9, bootstrap=_live_keys(net, keys)[0]))
        net.run(until=net.sim.now + 8.0)
    net.run(until=net.sim.now + 60.0)
    _assert_converged(net)
