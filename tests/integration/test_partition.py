"""Network-partition failure injection.

A transient partition is the harshest test of the accuracy machinery.
Two regimes, both pinned here:

* a **short** cut (shorter than the failure-detection horizon) rides out
  transparently — retries and redundant probing absorb it and the error
  rate returns to zero;
* a **long** cut makes each side declare the other dead and evict it;
  after that, *no pointer crosses the former cut*, so no multicast can —
  recovery requires out-of-band rendezvous (a bootstrap contact), exactly
  like every membership protocol without external anchors.  The paper
  does not claim partition recovery; we pin the honest behavior.
"""


from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork
from repro.net.message import Message


def partition_network(n=16, seed=31, refresh_multiple=2.0):
    config = ProtocolConfig(
        id_bits=16,
        probe_interval=4.0,
        probe_timeout=1.0,
        multicast_ack_timeout=1.0,
        report_timeout=2.0,
        level_check_interval=1e6,
        multicast_processing_delay=0.1,
        refresh_multiple=refresh_multiple,
        expiry_multiple=refresh_multiple * 1.5,
    )
    net = PeerWindowNetwork(config=config, master_seed=seed)
    keys = net.seed_nodes([1e9] * n)
    # Short refresh clocks so healing happens within test time: prime the
    # lifetime estimators with small observed lifetimes.
    for node in net.live_nodes():
        node.estimator.observe(0, 30.0)
        for _ in range(20):
            node.estimator.observe(0, 30.0)
    net.run(until=10.0)
    return net, keys


class TestPartitionMechanics:
    def test_cross_partition_messages_dropped(self):
        net, keys = partition_network(4)
        side_a, side_b = keys[:2], keys[2:]
        net.transport.partition(side_a, side_b)
        before = net.transport.dropped_partition
        net.transport.send(Message(keys[0], keys[3], "probe"))
        net.run(until=net.sim.now + 1.0)
        assert net.transport.dropped_partition == before + 1

    def test_same_side_messages_flow(self):
        net, keys = partition_network(4)
        net.transport.partition(keys[:2], keys[2:])
        got = []
        endpoint = net.transport.endpoint(keys[1])
        original = endpoint.handler
        endpoint.handler = lambda m: (got.append(m.kind), original(m))
        net.transport.send(Message(keys[0], keys[1], "probe"))
        net.run(until=net.sim.now + 1.0)
        assert "probe" in got

    def test_in_flight_messages_cut(self):
        net, keys = partition_network(4)
        net.transport.send(Message(keys[0], keys[3], "probe"))
        net.transport.partition(keys[:2], keys[2:])  # before delivery
        before = net.transport.dropped_partition
        net.run(until=net.sim.now + 1.0)
        assert net.transport.dropped_partition == before + 1

    def test_heal_restores_traffic(self):
        net, keys = partition_network(4)
        net.transport.partition(keys[:2], keys[2:])
        net.transport.heal()
        assert not net.transport.partitioned
        before = net.transport.delivered
        net.transport.send(Message(keys[0], keys[3], "probe"))
        net.run(until=net.sim.now + 1.0)
        assert net.transport.delivered > before


class TestPartitionAndHeal:
    def test_sides_declare_each_other_dead(self):
        net, keys = partition_network()
        side_a, side_b = keys[:8], keys[8:]
        net.transport.partition(side_a, side_b)
        net.run(until=net.sim.now + 60.0)
        # Each side's ring probing walked past the unreachable members.
        ids_b = {net.node(k).node_id.value for k in side_b if k in net.nodes}
        for k in side_a:
            node = net.node(k)
            assert not (set(node.peer_list.ids()) & ids_b), (
                f"{k} still holds cross-partition pointers"
            )

    def test_short_partition_rides_out(self):
        """A cut shorter than the detection horizon causes no evictions;
        after healing, the error rate returns to zero without any
        recovery machinery."""
        config = ProtocolConfig(
            id_bits=16,
            probe_interval=10.0,
            probe_timeout=2.0,
            # Retries are back-to-back, so the detection horizon is
            # misses x timeout = 6 s from the first probe into the cut.
            probe_misses_to_fail=3,
            multicast_ack_timeout=2.0,
            report_timeout=3.0,
            level_check_interval=1e6,
            multicast_processing_delay=0.1,
        )
        net = PeerWindowNetwork(config=config, master_seed=5)
        keys = net.seed_nodes([1e9] * 12)
        net.run(until=10.0)
        net.transport.partition(keys[:6], keys[6:])
        net.run(until=net.sim.now + 3.5)  # inside the 6 s horizon
        net.transport.heal()
        net.run(until=net.sim.now + 120.0)
        assert len(net.live_nodes()) == 12
        assert net.mean_error_rate() == 0.0
        detections = sum(n.stats.failures_detected for n in net.live_nodes())
        assert detections == 0

    def test_long_partition_is_permanent_without_rendezvous(self):
        """After mutual eviction, healing the network layer alone cannot
        restore the lists: no pointer crosses the former cut, so no
        multicast can.  (The honest negative result; recovery needs an
        out-of-band bootstrap, as in every anchor-free membership
        protocol.)"""
        net, keys = partition_network()
        side_a, side_b = keys[:8], keys[8:]
        net.transport.partition(side_a, side_b)
        net.run(until=net.sim.now + 60.0)
        net.transport.heal()
        net.run(until=net.sim.now + 300.0)
        ids_b = {net.node(k).node_id.value for k in side_b if k in net.nodes}
        for k in side_a:
            if k in net.nodes:
                assert not (set(net.node(k).peer_list.ids()) & ids_b)

    def test_new_join_bridges_only_its_own_view(self):
        """A node joining after the heal (via a side-B bootstrap) sees
        side B's membership — demonstrating that recovery is a rendezvous
        problem, not a protocol defect: whichever side the newcomer
        bootstraps from defines its world."""
        net, keys = partition_network()
        side_a, side_b = keys[:8], keys[8:]
        net.transport.partition(side_a, side_b)
        net.run(until=net.sim.now + 60.0)
        net.transport.heal()
        new = net.add_node(1e9, bootstrap=side_b[0])
        net.run(until=net.sim.now + 30.0)
        node = net.node(new)
        ids_b = {net.node(k).node_id.value for k in side_b if k in net.nodes}
        joined_view = set(node.peer_list.ids()) - {node.node_id.value}
        assert joined_view <= ids_b
        assert len(joined_view) == len(ids_b)


class TestPartitionRacesInFlightMulticast:
    def test_join_multicast_survives_mid_tree_cut(self):
        """A short partition dropped onto a JOIN multicast *while its
        tree is still forwarding* must not black-hole any subtree: the
        unacked cross-cut edges are retried after the heal (and redirect
        repairs any child declared unreachable), so every audience
        member still learns the joiner."""
        config = ProtocolConfig(
            id_bits=16,
            probe_interval=10.0,
            probe_timeout=1.0,
            probe_misses_to_fail=2,  # detection horizon 2 s > the cut
            multicast_ack_timeout=1.0,
            multicast_attempts=4,
            report_timeout=2.0,
            level_check_interval=1e6,
            # Slow tree hops so the cut reliably lands mid-multicast.
            multicast_processing_delay=0.3,
        )
        net = PeerWindowNetwork(config=config, master_seed=17)
        keys = net.seed_nodes([1e9] * 24)
        net.run(until=10.0)

        done = []
        new_key = net.add_node(1e9, bootstrap=keys[0], on_done=done.append)
        start = net.sim.now
        side_a = keys[:12] + [new_key]
        side_b = keys[12:]
        # Handshake takes a few tenths; the tree then forwards for
        # ~depth * 0.3 s.  Cut at +0.8 for 1.2 s: inside the multicast,
        # inside the detection horizon.
        net.sim.schedule_at(start + 0.8, lambda: net.transport.partition(side_a, side_b))
        net.sim.schedule_at(start + 2.0, net.transport.heal)
        before_drop = net.transport.dropped_partition
        net.run(until=start + 2.0)
        cut_mcasts = net.transport.dropped_partition - before_drop
        assert cut_mcasts > 0, "the cut never raced any traffic - retune the window"

        net.run(until=start + 30.0)
        assert done == [True]
        joiner = net.node(new_key)
        assert joiner.alive
        jid = joiner.node_id.value
        missing = [n.address for n in net.live_nodes()
                   if jid not in set(n.peer_list.ids())]
        assert missing == [], f"black-holed subtree: {missing} never saw the JOIN"
        assert net.mean_error_rate() == 0.0
