"""Observability determinism: the no-perturbation and byte-identity contracts.

Three properties, each load-bearing for the tentpole design:

* **non-perturbation** — enabling observability changes no protocol
  behaviour: identical stats/levels with tracing on vs off;
* **seq <-> parallel byte identity** — with the registry and tracer
  enabled, the exported span JSONL and the aggregated metrics snapshot
  are byte-for-byte identical between the sequential engine and any
  partitioning (the spans' per-node ids and sim-clock timestamps are
  partition-invariant by construction);
* **chaos replay** — two same-seed instrumented chaos runs emit
  identical span logs, and instrumentation leaves the chaos determinism
  digest untouched.
"""

import json

import pytest

from repro.obs.export import spans_to_jsonl, validate_span_lines

from .test_parallel_equivalence import run_scenario


def snapshot_json(net):
    return json.dumps(net.metrics_snapshot(), sort_keys=True)


class TestObservedEquivalence:
    @pytest.fixture(scope="class")
    def observed_sequential(self):
        return run_scenario(observability=True)

    def test_observability_does_not_perturb_protocol(self, observed_sequential):
        plain = run_scenario()
        assert plain.stats_summary() == observed_sequential.stats_summary()
        assert plain.level_histogram() == observed_sequential.level_histogram()

    def test_spans_were_recorded(self, observed_sequential):
        spans = observed_sequential.spans()
        assert spans
        names = {s.name for s in spans}
        # The churn scenario exercises probing, dissemination, and joins.
        assert {"probe", "mcast.root", "mcast.hop", "join"} <= names

    def test_span_export_passes_schema(self, observed_sequential):
        lines = spans_to_jsonl(observed_sequential.spans()).splitlines()
        assert validate_span_lines(lines) == []

    def test_partitioned_spans_byte_identical(self, observed_sequential):
        par = run_scenario(parallel=4, observability=True)
        assert spans_to_jsonl(par.spans()) == spans_to_jsonl(
            observed_sequential.spans()
        )

    def test_threaded_spans_byte_identical(self, observed_sequential):
        thr = run_scenario(parallel=3, threads=True, observability=True)
        assert spans_to_jsonl(thr.spans()) == spans_to_jsonl(
            observed_sequential.spans()
        )

    def test_partitioned_metrics_byte_identical(self, observed_sequential):
        par = run_scenario(parallel=4, observability=True)
        assert snapshot_json(par) == snapshot_json(observed_sequential)

    def test_mcast_hops_link_to_parents(self, observed_sequential):
        by_id = {s.span_id: s for s in observed_sequential.spans()}
        hops = [s for s in by_id.values() if s.name == "mcast.hop"]
        assert hops
        for hop in hops:
            assert hop.parent_id in by_id
            assert by_id[hop.parent_id].trace_id == hop.trace_id


class TestChaosReplay:
    @pytest.fixture(scope="class")
    def observed_result(self):
        from repro.chaos import SCENARIOS, ChaosRunner

        return ChaosRunner(SCENARIOS["smoke"], seed=3, observe=True).run()

    def test_replay_emits_identical_span_log(self, observed_result):
        from repro.chaos import SCENARIOS, ChaosRunner

        again = ChaosRunner(SCENARIOS["smoke"], seed=3, observe=True).run()
        assert spans_to_jsonl(again.spans) == spans_to_jsonl(observed_result.spans)
        assert again.trace == observed_result.trace
        assert json.dumps(again.metrics, sort_keys=True) == json.dumps(
            observed_result.metrics, sort_keys=True
        )

    def test_observation_leaves_chaos_digest_unchanged(self, observed_result):
        from repro.chaos import SCENARIOS, ChaosRunner

        plain = ChaosRunner(SCENARIOS["smoke"], seed=3).run()
        assert plain.trace == observed_result.trace
        assert plain.spans == []
        assert plain.metrics == {}

    def test_chaos_spans_validate(self, observed_result):
        assert observed_result.spans
        lines = spans_to_jsonl(observed_result.spans).splitlines()
        assert validate_span_lines(lines) == []
