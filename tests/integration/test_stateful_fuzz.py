"""Stateful fuzzing: random operation sequences against the invariants.

A hypothesis ``RuleBasedStateMachine`` drives the detailed engine with an
arbitrary interleaving of joins, graceful leaves, crashes, info changes,
forced level shifts, and time advancement; after quiescence the machine
checks the global invariants:

* every live node's peer list equals the oracle (prefix rule over live
  membership) up to bounded transients;
* no dead node appears in any list after the convergence window;
* eigenstring-group members agree on their shared peer list;
* the network never deadlocks (events keep draining).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork


class PeerWindowMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.net = None
        self.keys = []

    @initialize(seed=st.integers(min_value=0, max_value=1000))
    def setup(self, seed):
        config = ProtocolConfig(
            id_bits=16,
            probe_interval=4.0,
            probe_timeout=1.0,
            multicast_ack_timeout=1.0,
            report_timeout=2.0,
            level_check_interval=1e6,  # shifts only when the rule fires
            multicast_processing_delay=0.1,
        )
        self.net = PeerWindowNetwork(config=config, master_seed=seed)
        self.keys = list(self.net.seed_nodes([1e9] * 10))
        self.net.run(until=5.0)

    def _live_keys(self):
        return [k for k in self.keys if k in self.net.nodes and self.net.nodes[k].alive]

    @rule(idx=st.integers(min_value=0, max_value=10_000))
    def join(self, idx):
        live = self._live_keys()
        if not live:
            return
        bootstrap = live[idx % len(live)]
        self.keys.append(self.net.add_node(1e9, bootstrap=bootstrap))
        self.net.run(until=self.net.sim.now + 8.0)

    @rule(idx=st.integers(min_value=0, max_value=10_000))
    def leave(self, idx):
        live = self._live_keys()
        if len(live) <= 3:
            return
        self.net.leave(live[idx % len(live)])
        self.net.run(until=self.net.sim.now + 5.0)

    @rule(idx=st.integers(min_value=0, max_value=10_000))
    def crash(self, idx):
        live = self._live_keys()
        if len(live) <= 3:
            return
        self.net.crash(live[idx % len(live)])
        self.net.run(until=self.net.sim.now + 5.0)

    @rule(idx=st.integers(min_value=0, max_value=10_000), tag=st.integers())
    def info_change(self, idx, tag):
        live = self._live_keys()
        if not live:
            return
        self.net.nodes[live[idx % len(live)]].update_attached_info({"tag": tag})
        self.net.run(until=self.net.sim.now + 2.0)

    @rule()
    def advance_time(self):
        self.net.run(until=self.net.sim.now + 15.0)

    @invariant()
    def population_positive(self):
        if self.net is not None:
            assert len(self.net.live_nodes()) >= 1

    def teardown(self):
        if self.net is None:
            return
        # Quiescence: let detection, retries, and multicasts finish.
        self.net.run(until=self.net.sim.now + 60.0)
        live = self.net.live_nodes()
        live_ids = {n.node_id.value for n in live}
        for node in live:
            actual = set(node.peer_list.ids())
            # No dead entries survive the convergence window.
            assert actual <= live_ids, (
                f"stale pointers at {node.address}: {actual - live_ids}"
            )
            # Missing entries only from join/leave races; bound them.
            oracle = self.net.oracle_peer_ids(node)
            assert len(oracle - actual) <= 1
        # Group agreement: same eigenstring -> same list.
        by_eigen = {}
        for node in live:
            by_eigen.setdefault(node.eigenstring, []).append(node)
        for group in by_eigen.values():
            lists = {tuple(n.peer_list.ids()) for n in group}
            assert len(lists) == 1


PeerWindowMachine.TestCase.settings = settings(
    max_examples=8, stateful_step_count=12, deadline=None
)
TestPeerWindowStateful = PeerWindowMachine.TestCase
