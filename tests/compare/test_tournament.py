"""Tournament scorecards: determinism across runs and engines.

The scorecard is a committed artifact, so it must be a pure function of
``(contestants, n_nodes, duration, window, seeds)`` — byte-identical on
rerun and byte-identical whether the champion runs its sequential or
its parallel engine.
"""

import json

import pytest

from repro.compare import (
    CONTESTANTS,
    TournamentConfig,
    build_contestant,
    contestant_names,
    render_json,
    render_markdown,
    run_tournament,
)
from repro.compare.scorecard import champion_healthy

SMALL = dict(
    contestants=("peerwindow", "gossip"),
    n_nodes=24,
    duration=90.0,
    window=30.0,
    seeds=(0,),
)


@pytest.fixture(scope="module")
def small_doc():
    return run_tournament(TournamentConfig(**SMALL))


class TestRegistry:
    def test_contestant_names_are_sorted_registry_keys(self):
        assert contestant_names() == list(CONTESTANTS)
        assert "peerwindow" in CONTESTANTS
        assert "push-pull-gossip" in CONTESTANTS

    def test_build_contestant_rejects_unknown(self):
        with pytest.raises(ValueError, match="carrier-pigeon"):
            build_contestant("carrier-pigeon", seed=0, n_nodes=10)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TournamentConfig(contestants=(), n_nodes=24)
        with pytest.raises(ValueError):
            TournamentConfig(contestants=("peerwindow",), n_nodes=24,
                             duration=-1.0)
        with pytest.raises(ValueError):
            TournamentConfig(contestants=("no-such-protocol",), n_nodes=24)


class TestScorecard:
    def test_doc_shape(self, small_doc):
        assert small_doc["schema"] == "repro.compare"
        assert small_doc["schema_version"] == 1
        assert "parallel" not in small_doc["config"]
        names = sorted({row["contestant"] for row in small_doc["rows"]})
        assert names == ["gossip", "peerwindow"]
        assert len(small_doc["rows"]) == 2
        assert len(small_doc["aggregates"]) == 2
        assert isinstance(small_doc["champion_healthy"], bool)
        for row in small_doc["rows"]:
            for key in ("bandwidth_bps_per_node", "error_rate",
                        "completeness", "windows", "final_breaches",
                        "healthy"):
                assert key in row

    def test_rerun_is_byte_identical(self, small_doc):
        again = run_tournament(TournamentConfig(**SMALL))
        assert render_json(again) == render_json(small_doc)
        assert render_markdown(again) == render_markdown(small_doc)

    def test_sequential_and_parallel_engines_agree(self, small_doc):
        par = run_tournament(TournamentConfig(**SMALL, parallel=4))
        assert render_json(par) == render_json(small_doc)

    def test_multi_seed_rows_and_aggregates(self):
        doc = run_tournament(TournamentConfig(
            contestants=("gossip",), n_nodes=16, duration=60.0,
            window=30.0, seeds=(0, 1),
        ))
        assert [r["seed"] for r in doc["rows"]] == [0, 1]
        agg = doc["aggregates"][0]
        assert agg["seeds"] == 2
        assert agg["contestant"] == "gossip"

    def test_markdown_mentions_the_champion_verdict(self, small_doc):
        text = render_markdown(small_doc)
        assert "| peerwindow |" in text
        assert "Champion (peerwindow):" in text

    def test_champion_healthy_helper(self):
        rows = [
            {"contestant": "peerwindow", "healthy": True},
            {"contestant": "gossip", "healthy": False},
        ]
        assert champion_healthy("peerwindow", rows) is True
        assert champion_healthy("gossip", rows) is False
        assert champion_healthy("absent", rows) is True  # vacuous


class TestWatchCallback:
    def test_on_window_sees_every_contestant_each_boundary(self):
        calls = []

        def spy(seed, t, frames_by_name):
            calls.append((seed, t, sorted(frames_by_name)))

        run_tournament(
            TournamentConfig(contestants=("gossip", "onehop"), n_nodes=16,
                             duration=60.0, window=30.0, seeds=(0,)),
            on_window=spy,
        )
        assert calls, "watch callback never fired"
        for seed, t, names in calls:
            assert seed == 0
            assert names == ["gossip", "onehop"]
        # final callback carries the final frames at the run's end
        assert calls[-1][1] == pytest.approx(60.0)


class TestFramesDir:
    def test_per_contestant_frame_files(self, tmp_path):
        run_tournament(
            TournamentConfig(contestants=("gossip",), n_nodes=16,
                             duration=60.0, window=30.0, seeds=(0,)),
            frames_dir=str(tmp_path),
        )
        path = tmp_path / "gossip-seed0.jsonl"
        assert path.exists()
        lines = path.read_text().splitlines()
        frames = [json.loads(line) for line in lines[1:]]  # skip header
        assert frames and frames[-1]["final"] is True
        for frame in frames:
            assert "signals" in frame and "state" in frame
