"""Tournament workload: seeded churn scripts, applied identically."""

import pytest

from repro.compare.workload import MIN_SURVIVORS, ChurnOp, CompareWorkload


class FakeContestant:
    def __init__(self, n):
        self._live = list(range(n))
        self.log = []

    def live_keys(self):
        return list(self._live)

    def crash(self, key):
        self._live.remove(key)
        self.log.append(("crash", key))

    def join(self):
        key = max(self._live) + 1
        self._live.append(key)
        self.log.append(("join", key))


class TestChurnOp:
    def test_resolve_is_pure_index_math(self):
        op = ChurnOp(time=10.0, kind="crash", pick=0.5)
        assert op.resolve([1, 3, 5, 7]) == 5
        assert op.resolve([1, 3, 5, 7]) == 5  # no hidden state

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnOp(time=1.0, kind="reboot", pick=0.0)
        with pytest.raises(ValueError):
            ChurnOp(time=1.0, kind="crash", pick=1.0)


class TestCompareWorkload:
    def test_same_seed_same_script(self):
        a = CompareWorkload(seed=4, n_nodes=40, duration=240.0)
        b = CompareWorkload(seed=4, n_nodes=40, duration=240.0)
        assert a.to_dict() == b.to_dict()

    def test_different_seed_different_script(self):
        a = CompareWorkload(seed=4, n_nodes=40, duration=240.0)
        b = CompareWorkload(seed=5, n_nodes=40, duration=240.0)
        assert a.to_dict() != b.to_dict()

    def test_ops_sorted_and_inside_the_run(self):
        wl = CompareWorkload(seed=0, n_nodes=40, duration=240.0)
        times = [op.time for op in wl.ops]
        assert times == sorted(times)
        assert all(0.0 < t < 240.0 for t in times)

    def test_apply_drives_identical_churn_on_every_contestant(self):
        wl = CompareWorkload(seed=1, n_nodes=20, duration=200.0)
        a, b = FakeContestant(20), FakeContestant(20)
        for op in wl.ops:
            wl.apply(op, a)
            wl.apply(op, b)
        assert a.log == b.log
        assert a.log  # the script actually did something

    def test_survivor_floor_blocks_crashes(self):
        wl = CompareWorkload(seed=1, n_nodes=20, duration=200.0)
        tiny = FakeContestant(MIN_SURVIVORS)
        op = ChurnOp(time=1.0, kind="crash", pick=0.0)
        assert wl.apply(op, tiny) is False
        assert tiny.log == []
