"""Good/bad fixture pairs for OBS001 (span lifecycle)."""

from repro.analysis import lint_source

SRC = "src/repro/core/fixture.py"


def rules_fired(src, rel_path=SRC):
    return sorted({f.rule for f in lint_source(src, rel_path=rel_path)})


def test_obs001_flags_discarded_open():
    src = (
        "def handle(self, obs):\n"
        "    obs.start('join.serve', self.runtime.now)\n"
    )
    assert rules_fired(src) == ["OBS001"]


def test_obs001_flags_span_never_ended():
    src = (
        "def handle(self, obs):\n"
        "    span = obs.start('probe', self.runtime.now)\n"
        "    self.counter += 1\n"
    )
    assert rules_fired(src) == ["OBS001"]


def test_obs001_flags_early_return_before_end():
    src = (
        "def handle(self, obs, ok):\n"
        "    span = obs.start('probe', self.runtime.now)\n"
        "    if not ok:\n"
        "        return None\n"
        "    obs.end(span, self.runtime.now)\n"
    )
    assert rules_fired(src) == ["OBS001"]


def test_obs001_accepts_end_on_both_branches():
    src = (
        "def handle(self, obs, ok):\n"
        "    span = obs.start('probe', self.runtime.now)\n"
        "    if not ok:\n"
        "        obs.end(span, self.runtime.now, 'timeout')\n"
        "        return None\n"
        "    obs.end(span, self.runtime.now)\n"
    )
    assert rules_fired(src) == []


def test_obs001_understands_enabled_guard_idiom():
    src = (
        "def handle(self, ctx):\n"
        "    obs = ctx.obs\n"
        "    span = None\n"
        "    if obs.enabled:\n"
        "        span = obs.start('refresh', self.runtime.now)\n"
        "    self.do_work()\n"
        "    if span is not None:\n"
        "        obs.end(span, self.runtime.now)\n"
    )
    assert rules_fired(src) == []


def test_obs001_accepts_escape_into_scheduled_continuation():
    # The repo's continuation-passing idiom: the span rides to the
    # callback that ends it (statically untrackable, so accepted).
    src = (
        "def on_mcast(self, obs):\n"
        "    span = obs.start('mcast.hop', self.runtime.now)\n"
        "    self.runtime.schedule(1.0, self._forward_and_ack, span)\n"
    )
    assert rules_fired(src) == []


def test_obs001_accepts_closure_that_ends_the_span():
    src = (
        "def request(self, obs):\n"
        "    span = obs.start('report', self.runtime.now)\n"
        "    self.runtime.request(\n"
        "        self.msg,\n"
        "        on_reply=lambda r: obs.end(span, self.runtime.now),\n"
        "    )\n"
    )
    assert rules_fired(src) == []


def test_obs001_raise_paths_are_exempt():
    # An exception is the "run stopped mid-operation" case end=None
    # exists to represent.
    src = (
        "def handle(self, obs, ok):\n"
        "    span = obs.start('probe', self.runtime.now)\n"
        "    if not ok:\n"
        "        raise RuntimeError('nope')\n"
        "    obs.end(span, self.runtime.now)\n"
    )
    assert rules_fired(src) == []


def test_obs001_self_attr_span_must_be_ended_somewhere_in_module():
    leaked = (
        "class JoinService:\n"
        "    def begin(self, obs):\n"
        "        self._join_span = obs.start('join', self.runtime.now)\n"
    )
    assert rules_fired(leaked) == ["OBS001"]
    closed = (
        "class JoinService:\n"
        "    def begin(self, obs):\n"
        "        self._join_span = obs.start('join', self.runtime.now)\n"
        "    def done(self, obs):\n"
        "        obs.end(self._join_span, self.runtime.now)\n"
    )
    assert rules_fired(closed) == []


def test_obs001_instant_needs_no_end():
    src = (
        "def note(self, obs):\n"
        "    obs.instant('mcast.redirect', self.runtime.now)\n"
    )
    assert rules_fired(src) == []


# -- OBS002: metric-name hygiene -------------------------------------------


def test_obs002_flags_literal_metric_name():
    src = (
        "def record(self, obs):\n"
        "    obs.registry.inc('probe.timeouts')\n"
    )
    assert rules_fired(src) == ["OBS002"]


def test_obs002_flags_literal_on_bare_registry_names():
    for recv in ("registry", "reg", "self.registry"):
        src = f"def record(self):\n    {recv}.observe('probe.rtt', 0.5)\n"
        assert rules_fired(src) == ["OBS002"], recv


def test_obs002_flags_fstring_with_literal_prefix():
    src = (
        "def record(self, node, reg):\n"
        "    reg.set_gauge(f'peers.size.level.{node.level}', 7)\n"
    )
    assert rules_fired(src) == ["OBS002"]


def test_obs002_accepts_catalog_constant():
    src = (
        "from repro.obs import metrics as m\n"
        "def record(self, obs):\n"
        "    obs.registry.inc(m.PROBE_TIMEOUTS)\n"
    )
    assert rules_fired(src) == []


def test_obs002_accepts_per_key_constant_interpolation():
    src = (
        "from repro.obs import metrics as m\n"
        "def record(self, node, reg):\n"
        "    reg.set_gauge(f'{m.PEERS_SIZE_LEVEL}.{node.level}', 7)\n"
    )
    assert rules_fired(src) == []


def test_obs002_ignores_non_registry_observe():
    src = (
        "def note(self):\n"
        "    self.estimator.observe('whatever')\n"
        "    dist.observe(0.5)\n"
        "    self.observe('departure')\n"
    )
    assert rules_fired(src) == []


def test_obs002_exempts_the_catalog_module():
    src = "PROBE_RTT = declare_metric('probe.rtt', 'dist', 'x')\n"
    assert rules_fired(src, rel_path="src/repro/obs/metrics.py") == []
