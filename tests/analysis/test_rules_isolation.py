"""Good/bad fixture pairs for ISO001/ISO002, including a reconstruction
of the PR 2 shared-Pointer covert channel that ISO001 exists to catch."""

from repro.analysis import lint_source

SRC = "src/repro/core/fixture.py"


def rules_fired(src, rel_path=SRC):
    return sorted({f.rule for f in lint_source(src, rel_path=rel_path)})


# -- ISO001: payload aliasing ----------------------------------------------

#: The PR 2 bug, reconstructed: a bridge-subscribe handler stores the
#: *received Pointer object* in long-lived node state.  With the
#: in-memory transport that object is the subscriber's live pointer, so
#: event application on one node silently mutates the other — a covert
#: channel across the LP boundary that broke seq/partitioned equivalence.
PR2_SHARED_POINTER_BUG = (
    "def on_bridge_subscribe(self, msg):\n"
    "    ctx = self.ctx\n"
    "    ptr, propagate = msg.payload\n"
    "    ctx.bridge_subscribers[ptr.node_id.value] = ptr\n"
)

PR2_SHARED_POINTER_FIXED = (
    "def on_bridge_subscribe(self, msg):\n"
    "    ctx = self.ctx\n"
    "    ptr, propagate = msg.payload\n"
    "    ctx.bridge_subscribers[ptr.node_id.value] = ptr.copy()\n"
)


def test_iso001_catches_the_pr2_shared_pointer_bug():
    assert rules_fired(PR2_SHARED_POINTER_BUG) == ["ISO001"]


def test_iso001_accepts_the_copy_fix():
    assert rules_fired(PR2_SHARED_POINTER_FIXED) == []


def test_iso001_flags_install_of_raw_payload_elements():
    src = (
        "def on_download(self, msg):\n"
        "    ctx = self.ctx\n"
        "    for p in msg.payload:\n"
        "        ctx.peer_list.add(p)\n"
    )
    assert rules_fired(src) == ["ISO001"]


def test_iso001_accepts_copied_payload_elements():
    src = (
        "def on_download(self, msg):\n"
        "    ctx = self.ctx\n"
        "    for p in msg.payload:\n"
        "        ctx.peer_list.add(p.copy())\n"
    )
    assert rules_fired(src) == []


def test_iso001_flags_listcomp_aliasing_into_state():
    src = (
        "def on_tops(self, reply):\n"
        "    ctx = self.ctx\n"
        "    ctx.pending_tops = [p for p in reply.payload]\n"
    )
    assert rules_fired(src) == ["ISO001"]


def test_iso001_tracks_payload_params_directly():
    # Continuation handlers often receive the already-extracted payload.
    src = (
        "def got_download(self, payload, done):\n"
        "    pointers, tops = payload\n"
        "    self.cached = pointers\n"
    )
    assert rules_fired(src) == ["ISO001"]


def test_iso001_allows_scalar_field_reads():
    src = (
        "def on_mcast(self, msg):\n"
        "    ctx = self.ctx\n"
        "    event = msg.payload\n"
        "    ctx.seen_events[event.subject_id.value] = event.seq\n"
    )
    assert rules_fired(src) == []


def test_iso001_treats_merge_as_a_copying_installer():
    # TopNodeList.merge stores copies internally (its documented contract).
    src = (
        "def on_tops(self, reply):\n"
        "    ctx = self.ctx\n"
        "    ctx.top_list.merge(list(reply.payload))\n"
    )
    assert rules_fired(src) == []


def test_iso001_constructor_calls_sanitize():
    src = (
        "def on_join(self, msg):\n"
        "    ctx = self.ctx\n"
        "    info = msg.payload\n"
        "    ctx.record = EventRecord(info.kind, info.seq)\n"
    )
    assert rules_fired(src) == []


# -- ISO002: service boundary ----------------------------------------------

def test_iso002_flags_reaching_another_nodes_ctx():
    src = (
        "class FailureDetectorService:\n"
        "    def probe(self, peer):\n"
        "        return peer.ctx.peer_list\n"
    )
    assert rules_fired(src) == ["ISO002"]


def test_iso002_flags_indexing_the_node_table():
    src = (
        "class MaintenanceService:\n"
        "    def refresh(self, net, addr):\n"
        "        target = net.nodes[addr]\n"
        "        return target.level\n"
    )
    assert rules_fired(src) == ["ISO002"]


def test_iso002_allows_own_ctx_and_non_service_classes():
    good_service = (
        "class JoinService:\n"
        "    def start(self):\n"
        "        return self.ctx.peer_list\n"
    )
    assert rules_fired(good_service) == []
    # Harness classes legitimately index the node table.
    harness = (
        "class PeerWindowNetwork:\n"
        "    def node(self, key):\n"
        "        return self.nodes[key]\n"
    )
    assert rules_fired(harness) == []
