"""Good/bad fixture pairs for ISO001/ISO002, including a reconstruction
of the PR 2 shared-Pointer covert channel that ISO001 exists to catch."""

from repro.analysis import lint_source

SRC = "src/repro/core/fixture.py"


def rules_fired(src, rel_path=SRC):
    return sorted({f.rule for f in lint_source(src, rel_path=rel_path)})


# -- ISO001: payload aliasing ----------------------------------------------

#: The PR 2 bug, reconstructed: a bridge-subscribe handler stores the
#: *received Pointer object* in long-lived node state.  With the
#: in-memory transport that object is the subscriber's live pointer, so
#: event application on one node silently mutates the other — a covert
#: channel across the LP boundary that broke seq/partitioned equivalence.
PR2_SHARED_POINTER_BUG = (
    "def on_bridge_subscribe(self, msg):\n"
    "    ctx = self.ctx\n"
    "    ptr, propagate = msg.payload\n"
    "    ctx.bridge_subscribers[ptr.node_id.value] = ptr\n"
)

PR2_SHARED_POINTER_FIXED = (
    "def on_bridge_subscribe(self, msg):\n"
    "    ctx = self.ctx\n"
    "    ptr, propagate = msg.payload\n"
    "    ctx.bridge_subscribers[ptr.node_id.value] = ptr.copy()\n"
)


def test_iso001_catches_the_pr2_shared_pointer_bug():
    assert rules_fired(PR2_SHARED_POINTER_BUG) == ["ISO001"]


def test_iso001_accepts_the_copy_fix():
    assert rules_fired(PR2_SHARED_POINTER_FIXED) == []


def test_iso001_flags_install_of_raw_payload_elements():
    src = (
        "def on_download(self, msg):\n"
        "    ctx = self.ctx\n"
        "    for p in msg.payload:\n"
        "        ctx.peer_list.add(p)\n"
    )
    assert rules_fired(src) == ["ISO001"]


def test_iso001_accepts_copied_payload_elements():
    src = (
        "def on_download(self, msg):\n"
        "    ctx = self.ctx\n"
        "    for p in msg.payload:\n"
        "        ctx.peer_list.add(p.copy())\n"
    )
    assert rules_fired(src) == []


def test_iso001_flags_listcomp_aliasing_into_state():
    src = (
        "def on_tops(self, reply):\n"
        "    ctx = self.ctx\n"
        "    ctx.pending_tops = [p for p in reply.payload]\n"
    )
    assert rules_fired(src) == ["ISO001"]


def test_iso001_tracks_payload_params_directly():
    # Continuation handlers often receive the already-extracted payload.
    src = (
        "def got_download(self, payload, done):\n"
        "    pointers, tops = payload\n"
        "    self.cached = pointers\n"
    )
    assert rules_fired(src) == ["ISO001"]


def test_iso001_allows_scalar_field_reads():
    src = (
        "def on_mcast(self, msg):\n"
        "    ctx = self.ctx\n"
        "    event = msg.payload\n"
        "    ctx.seen_events[event.subject_id.value] = event.seq\n"
    )
    assert rules_fired(src) == []


def test_iso001_treats_merge_as_a_copying_installer():
    # TopNodeList.merge stores copies internally (its documented contract).
    src = (
        "def on_tops(self, reply):\n"
        "    ctx = self.ctx\n"
        "    ctx.top_list.merge(list(reply.payload))\n"
    )
    assert rules_fired(src) == []


def test_iso001_constructor_calls_sanitize():
    src = (
        "def on_join(self, msg):\n"
        "    ctx = self.ctx\n"
        "    info = msg.payload\n"
        "    ctx.record = EventRecord(info.kind, info.seq)\n"
    )
    assert rules_fired(src) == []


# -- ISO002: service boundary ----------------------------------------------

def test_iso002_flags_reaching_another_nodes_ctx():
    src = (
        "class FailureDetectorService:\n"
        "    def probe(self, peer):\n"
        "        return peer.ctx.peer_list\n"
    )
    assert rules_fired(src) == ["ISO002"]


def test_iso002_flags_indexing_the_node_table():
    src = (
        "class MaintenanceService:\n"
        "    def refresh(self, net, addr):\n"
        "        target = net.nodes[addr]\n"
        "        return target.level\n"
    )
    assert rules_fired(src) == ["ISO002"]


def test_iso002_allows_own_ctx_and_non_service_classes():
    good_service = (
        "class JoinService:\n"
        "    def start(self):\n"
        "        return self.ctx.peer_list\n"
    )
    assert rules_fired(good_service) == []
    # Harness classes legitimately index the node table.
    harness = (
        "class PeerWindowNetwork:\n"
        "    def node(self, key):\n"
        "        return self.nodes[key]\n"
    )
    assert rules_fired(harness) == []


# -- ISO003: cross-LP shared mutable state ---------------------------------


def test_iso003_flags_mutation_of_module_level_dict():
    src = (
        "_CACHE = {}\n"
        "\n"
        "def handle(self, msg):\n"
        "    _CACHE[msg.src] = msg.payload\n"
    )
    assert "ISO003" in rules_fired(src)


def test_iso003_flags_mutating_method_on_module_level_list():
    src = (
        "PENDING = []\n"
        "\n"
        "def enqueue(self, msg):\n"
        "    PENDING.append(msg)\n"
    )
    assert "ISO003" in rules_fired(src)


def test_iso003_flags_shared_counter_next():
    src = (
        "import itertools\n"
        "_ids = itertools.count()\n"
        "\n"
        "def fresh_id(self):\n"
        "    return next(_ids)\n"
    )
    assert rules_fired(src) == ["ISO003"]


def test_iso003_flags_shared_counter_in_lambda_default_factory():
    src = (
        "import itertools\n"
        "from dataclasses import dataclass, field\n"
        "_ids = itertools.count()\n"
        "\n"
        "@dataclass\n"
        "class Record:\n"
        "    rid: int = field(default_factory=lambda: next(_ids))\n"
    )
    assert rules_fired(src) == ["ISO003"]


def test_iso003_flags_class_body_mutable_default():
    src = (
        "class JoinService:\n"
        "    pending = []\n"
        "\n"
        "    def start(self):\n"
        "        return None\n"
    )
    assert rules_fired(src) == ["ISO003"]


def test_iso003_allows_per_instance_state():
    src = (
        "class JoinService:\n"
        "    def __init__(self):\n"
        "        self.pending = []\n"
        "\n"
        "    def enqueue(self, msg):\n"
        "        self.pending.append(msg)\n"
    )
    assert rules_fired(src) == []


def test_iso003_allows_locally_shadowed_names():
    src = (
        "_CACHE = {}\n"
        "\n"
        "def handle(self, msg):\n"
        "    _CACHE = {}\n"
        "    _CACHE[msg.src] = 1\n"
        "    return _CACHE\n"
    )
    assert rules_fired(src) == []


def test_iso003_allows_module_constants_read_only():
    src = (
        "_DEFAULTS = {'probe_interval': 8.0}\n"
        "\n"
        "def probe_interval(self):\n"
        "    return _DEFAULTS['probe_interval']\n"
    )
    assert rules_fired(src) == []


def test_iso003_exempts_host_side_modules():
    src = (
        "_REGISTRY = {}\n"
        "\n"
        "def register(rule):\n"
        "    _REGISTRY[rule.id] = rule\n"
    )
    assert rules_fired(src, rel_path="src/repro/analysis/core.py") == []
    assert "ISO003" in rules_fired(src, rel_path="src/repro/net/svc.py")


def test_iso003_suppression_with_justification():
    src = (
        "import itertools\n"
        "_msg_ids = itertools.count()\n"
        "\n"
        "def fresh_id(self):\n"
        "    return next(_msg_ids)  # detlint: ignore[ISO003]\n"
    )
    assert rules_fired(src) == []
