"""Good/bad fixture pairs for WIRE001, generated programmatically over
all 17 wire kinds from the schema registry so a new kind is covered the
day it is added."""

import pytest

from repro.analysis import lint_source
from repro.kernel.schema import BODY_SCHEMAS, MESSAGE_KINDS

SRC = "src/repro/net/fixture_wire.py"


def wire_findings(src):
    return [f for f in lint_source(src, rel_path=SRC) if f.rule == "WIRE001"]


#: A construction-site payload expression that satisfies each category.
GOOD_PAYLOAD = {
    "none": "None",
    "node_id": "peer_id",
    "node_id_or_nonce": "(peer_id, nonce)",
    "opt_pointer": "ptr",
    "event": "event",
    "pointer_list": "[p.copy() for p in tops]",
    "tuple": None,  # built per-schema from its arity below
}


def good_payload(schema):
    if schema.category == "tuple":
        return "(" + ", ".join(f"f{i}" for i in range(schema.arity)) + ")"
    return GOOD_PAYLOAD[schema.category]


def message_site(kind, payload_expr):
    return (
        "def send(self, msg, peer_id, nonce, ptr, event, tops, f0, f1, f2):\n"
        f"    return Message(src=1, dst=2, kind={kind!r}, "
        f"payload={payload_expr})\n"
    )


def reply_site(kind, payload_expr):
    return (
        "def answer(self, msg, peer_id, nonce, ptr, event, tops, f0, f1, f2):\n"
        f"    return msg.make_reply({kind!r}, payload={payload_expr})\n"
    )


def test_the_registry_covers_all_17_kinds():
    assert len(MESSAGE_KINDS) == 17


@pytest.mark.parametrize("kind", MESSAGE_KINDS)
def test_schema_conformant_message_sites_are_clean(kind):
    schema = BODY_SCHEMAS[kind]
    assert wire_findings(message_site(kind, good_payload(schema))) == []
    assert wire_findings(reply_site(kind, good_payload(schema))) == []


@pytest.mark.parametrize("kind", MESSAGE_KINDS)
def test_extra_payload_on_bodyless_kinds_is_flagged(kind):
    schema = BODY_SCHEMAS[kind]
    if schema.category != "none":
        pytest.skip("kind carries a body")
    findings = wire_findings(message_site(kind, "ptr"))
    assert len(findings) == 1
    assert "extra field" in findings[0].message


@pytest.mark.parametrize("kind", MESSAGE_KINDS)
def test_missing_payload_on_required_kinds_is_flagged(kind):
    schema = BODY_SCHEMAS[kind]
    if not schema.requires_payload:
        pytest.skip("payload optional for this kind")
    findings = wire_findings(message_site(kind, "None"))
    assert len(findings) == 1
    assert "missing field" in findings[0].message


@pytest.mark.parametrize("kind", MESSAGE_KINDS)
def test_wrong_tuple_arity_is_flagged(kind):
    schema = BODY_SCHEMAS[kind]
    if schema.category != "tuple":
        pytest.skip("not a tuple payload")
    too_many = "(" + ", ".join(f"f{i}" for i in range(schema.arity + 1)) + ")"
    findings = wire_findings(message_site(kind, too_many))
    assert len(findings) == 1
    assert f"{schema.arity} fields" in findings[0].message


@pytest.mark.parametrize("kind", MESSAGE_KINDS)
def test_tuple_where_scalar_expected_is_flagged(kind):
    schema = BODY_SCHEMAS[kind]
    if schema.category not in ("node_id", "opt_pointer", "event",
                               "pointer_list"):
        pytest.skip("tuple or bodyless kind")
    findings = wire_findings(message_site(kind, "(ptr, event, f0)"))
    assert len(findings) == 1


def test_misnamed_keyword_is_flagged():
    src = (
        "def send(self, event):\n"
        "    return Message(src=1, dst=2, kind='report', pay_load=event)\n"
    )
    findings = wire_findings(src)
    # One for the misnamed kwarg, one for the now-missing payload.
    assert len(findings) == 2
    assert any("misnamed" in f.message for f in findings)


def test_unknown_kind_is_flagged():
    findings = wire_findings(message_site("evnt-copy", "event"))
    assert len(findings) == 1
    assert "unknown message kind" in findings[0].message


def test_get_top_accepts_bare_node_id_and_nonce_pair():
    assert wire_findings(message_site("get-top", "peer_id")) == []
    assert wire_findings(message_site("get-top", "(peer_id, nonce)")) == []


def test_get_top_rejects_a_three_tuple():
    findings = wire_findings(message_site("get-top", "(peer_id, nonce, f0)"))
    assert len(findings) == 1
    assert "(NodeId, nonce)" in findings[0].message


def test_dynamic_kind_is_left_to_the_codec():
    src = (
        "def forward(self, msg, kind, body):\n"
        "    return Message(src=1, dst=2, kind=kind, payload=body)\n"
    )
    assert wire_findings(src) == []


def test_every_construction_site_in_the_tree_conforms():
    # The real services must already satisfy the rule (the CI gate
    # demands zero new findings over src/repro).
    import os

    from repro.analysis import run_lint

    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    findings = run_lint([os.path.join(root, "src", "repro")], root=root)
    assert [f for f in findings if f.rule == "WIRE001"] == []
