"""Meta-tests: the analyzer holds over the repo's own source tree.

The acceptance gate is ``repro lint src/repro`` exiting 0 — i.e. zero
findings that are not grandfathered in ``detlint-baseline.json``.  These
tests pin that property so a regression (new wall-clock read, new
payload alias, ...) fails CI here even before check.sh runs.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import Baseline, run_lint

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")
BASELINE = os.path.join(REPO_ROOT, "detlint-baseline.json")


def test_src_repro_has_zero_non_baselined_findings():
    findings = run_lint([SRC_REPRO], root=REPO_ROOT)
    baseline = (
        Baseline.load(BASELINE) if os.path.exists(BASELINE) else Baseline()
    )
    new, _grandfathered = baseline.split(findings)
    assert new == [], "new detlint findings:\n" + "\n".join(
        f.describe() for f in new
    )


def test_committed_baseline_parses_and_is_versioned():
    if not os.path.exists(BASELINE):
        pytest.skip("no committed baseline")
    with open(BASELINE, encoding="utf-8") as fh:
        data = json.load(fh)
    assert data["version"] == 1
    Baseline.from_dict(data)  # must round-trip


def test_cli_lint_json_exit_zero():
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "lint",
            "src/repro",
            "--format",
            "json",
            "--baseline",
            "detlint-baseline.json",
        ],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(proc.stdout)
    assert report["findings"] == []
    assert "DET001" in report["checked_rules"]
    assert len(report["checked_rules"]) >= 6
