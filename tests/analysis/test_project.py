"""Whole-project interprocedural analysis: call-graph construction,
cross-module payload taint, and suppression-at-source semantics.

The acceptance fixture reconstructs the PR 2 shared-Pointer bug split
across a >= 2-call chain: the handler that receives the message and the
helper that ultimately stores the object live in *different functions*
(and in one variant, different modules), so only the project pass can
connect the taint source to the aliasing sink.
"""

from repro.analysis import lint_project_sources, lint_source
from repro.analysis.project import ProjectContext
from repro.analysis.core import FileContext

SVC = "src/repro/net/fixture_service.py"
HELP = "src/repro/net/fixture_helpers.py"


def fired(findings):
    return sorted({f.rule for f in findings})


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# -- the PR 2 bug through a 2-call chain -----------------------------------

#: The handler hands the received Pointer to a helper; the helper stores
#: it into long-lived ctx state.  Neither function is wrong in
#: isolation — only the chain is.
CHAIN_BUG = {
    SVC: (
        "from repro.net.fixture_helpers import install_pointer\n"
        "\n"
        "def on_bridge_subscribe(self, msg):\n"
        "    ptr, propagate = msg.payload\n"
        "    install_pointer(self.ctx, ptr)\n"
    ),
    HELP: (
        "def install_pointer(ctx, ptr):\n"
        "    ctx.bridge_subscribers[ptr.node_id.value] = ptr\n"
    ),
}

#: The sanitized twin: identical shape, but the source call site copies.
CHAIN_FIXED = {
    SVC: CHAIN_BUG[SVC].replace(
        "install_pointer(self.ctx, ptr)",
        "install_pointer(self.ctx, ptr.copy())",
    ),
    HELP: CHAIN_BUG[HELP],
}


def test_iso001_catches_the_pr2_bug_through_a_two_call_chain():
    findings = lint_project_sources(CHAIN_BUG)
    iso = by_rule(findings, "ISO001")
    assert len(iso) == 1
    # Reported at the SOURCE call site (the handler), naming the callee
    # and the ultimate store location inside it.
    assert iso[0].path == SVC
    assert iso[0].line == 5
    assert "install_pointer" in iso[0].message
    assert "fixture_helpers" in iso[0].message


def test_iso001_sanitized_twin_is_clean():
    assert fired(lint_project_sources(CHAIN_FIXED)) == []


def test_iso001_three_call_chain():
    # handler -> relay -> installer: taint must survive two hops.
    sources = {
        SVC: (
            "from repro.net.fixture_helpers import relay\n"
            "\n"
            "def on_download(self, msg):\n"
            "    relay(self.ctx, msg.payload)\n"
        ),
        HELP: (
            "def relay(ctx, ptr):\n"
            "    installer(ctx, ptr)\n"
            "\n"
            "def installer(ctx, ptr):\n"
            "    ctx.peer_list.add(ptr)\n"
        ),
    }
    iso = by_rule(lint_project_sources(sources), "ISO001")
    assert [(f.path, f.line) for f in iso] == [(SVC, 4)]


def test_iso001_return_value_taint_crosses_functions():
    # A helper that returns the raw payload keeps the result tainted in
    # the caller; storing it un-copied is the same bug.
    sources = {
        SVC: (
            "from repro.net.fixture_helpers import unwrap\n"
            "\n"
            "def on_top_ptr(self, msg):\n"
            "    ptr = unwrap(msg)\n"
            "    self.ctx.top_list.add(ptr)\n"
        ),
        HELP: (
            "def unwrap(msg):\n"
            "    return msg.payload\n"
        ),
    }
    iso = by_rule(lint_project_sources(sources), "ISO001")
    assert [(f.path, f.line) for f in iso] == [(SVC, 5)]


def test_iso001_sanitizing_helper_clears_return_taint():
    sources = {
        SVC: (
            "from repro.net.fixture_helpers import unwrap\n"
            "\n"
            "def on_top_ptr(self, msg):\n"
            "    ptr = unwrap(msg)\n"
            "    self.ctx.top_list.add(ptr)\n"
        ),
        HELP: (
            "def unwrap(msg):\n"
            "    return msg.payload.copy()\n"
        ),
    }
    assert fired(lint_project_sources(sources)) == []


def test_iso001_same_module_chain_needs_no_import():
    src = (
        "def on_bridge_subscribe(self, msg):\n"
        "    ptr, propagate = msg.payload\n"
        "    stash(self.ctx, ptr)\n"
        "\n"
        "def stash(ctx, ptr):\n"
        "    ctx.bridge_subscribers[ptr.node_id.value] = ptr\n"
    )
    findings = lint_source(src, rel_path=SVC)
    iso = by_rule(findings, "ISO001")
    assert [(f.path, f.line) for f in iso] == [(SVC, 3)]


def test_iso001_method_chain_via_self():
    src = (
        "class Service:\n"
        "    def on_download(self, msg):\n"
        "        for p in msg.payload:\n"
        "            self._install(p)\n"
        "\n"
        "    def _install(self, ptr):\n"
        "        self.ctx.peer_list.add(ptr)\n"
    )
    iso = by_rule(lint_source(src, rel_path=SVC), "ISO001")
    assert [f.line for f in iso] == [4]


# -- suppression semantics: at the source, not the sink --------------------


def test_chain_suppression_works_at_the_source_call_site():
    sources = {
        SVC: CHAIN_BUG[SVC].replace(
            "install_pointer(self.ctx, ptr)",
            "install_pointer(self.ctx, ptr)  # detlint: ignore[ISO001]",
        ),
        HELP: CHAIN_BUG[HELP],
    }
    assert fired(lint_project_sources(sources)) == []


def test_chain_suppression_at_the_sink_does_not_silence_the_source():
    # Suppressing inside the helper must NOT absolve the caller: the
    # decision to pass an un-copied payload object happened at the
    # source site, and that is where the waiver must be written.
    sources = {
        SVC: CHAIN_BUG[SVC],
        HELP: CHAIN_BUG[HELP].replace(
            "] = ptr\n",
            "] = ptr  # detlint: ignore[ISO001]\n",
        ),
    }
    iso = by_rule(lint_project_sources(sources), "ISO001")
    assert [(f.path, f.line) for f in iso] == [(SVC, 5)]


def test_per_file_and_project_findings_are_not_double_counted():
    # A direct (same-function) aliasing bug is found by the per-file
    # pass; the project pass must not report it a second time.
    src = (
        "def on_bridge_subscribe(self, msg):\n"
        "    ptr, propagate = msg.payload\n"
        "    self.ctx.bridge_subscribers[ptr.node_id.value] = ptr\n"
    )
    iso = by_rule(lint_source(src, rel_path=SVC), "ISO001")
    assert len(iso) == 1


# -- call-graph construction -----------------------------------------------


def make_project(sources):
    contexts = [
        FileContext(path=p, source=s, rel_path=p)
        for p, s in sorted(sources.items())
    ]
    return ProjectContext(contexts)


def test_project_indexes_functions_by_qualname():
    proj = make_project({
        SVC: "class Svc:\n    def handle(self, msg):\n        pass\n",
        HELP: "def helper(x):\n    return x\n",
    })
    names = set(proj.functions)
    assert "repro.net.fixture_service:Svc.handle" in names
    assert "repro.net.fixture_helpers:helper" in names


def test_resolution_is_conservative_on_ambiguous_names():
    # Two unrelated classes define .install(); an unqualified obj.install()
    # call must resolve to neither (no guessing), so no chain finding.
    sources = {
        SVC: (
            "def on_download(self, msg, sink):\n"
            "    for p in msg.payload:\n"
            "        sink.install(p)\n"
        ),
        HELP: (
            "class A:\n"
            "    def install(self, p):\n"
            "        self.ctx.peer_list.add(p)\n"
            "\n\n"
            "class B:\n"
            "    def install(self, p):\n"
            "        return list(p)\n"
        ),
    }
    assert by_rule(lint_project_sources(sources), "ISO001") == []


def test_recursive_helpers_do_not_hang():
    sources = {
        HELP: (
            "def ping(ctx, ptr):\n"
            "    return pong(ctx, ptr)\n"
            "\n"
            "def pong(ctx, ptr):\n"
            "    return ping(ctx, ptr)\n"
        ),
        SVC: (
            "from repro.net.fixture_helpers import ping\n"
            "\n"
            "def on_msg(self, msg):\n"
            "    ping(self.ctx, msg.payload)\n"
        ),
    }
    # Cycle guard returns the empty summary: no crash, no finding.
    assert by_rule(lint_project_sources(sources), "ISO001") == []
