"""Framework behavior: suppressions, baseline, finding JSON schema."""

import json

import pytest

from repro.analysis import Baseline, Finding, all_rules, lint_source, run_lint
from repro.analysis.core import parse_suppressions, wants_skip_file

BAD_CLOCK = "import time\nt = time.time()\n"


def rule_ids():
    return [r.id for r in all_rules()]


def test_registry_has_the_full_rule_pack():
    assert rule_ids() == [
        "DET001", "DET002", "DET003", "DET004", "ISO001", "ISO002",
        "ISO003", "OBS001", "OBS002", "WIRE001",
    ]


def test_lint_source_reports_rule_and_location():
    findings = lint_source(BAD_CLOCK, rel_path="src/repro/core/x.py")
    assert [f.rule for f in findings] == ["DET001"]
    assert findings[0].line == 2
    assert findings[0].snippet == "t = time.time()"


def test_suppression_comment_silences_one_rule():
    src = "import time\nt = time.time()  # detlint: ignore[DET001]\n"
    assert lint_source(src, rel_path="src/repro/core/x.py") == []


def test_suppression_is_per_rule_not_blanket():
    src = "import time\nt = time.time()  # detlint: ignore[DET002]\n"
    findings = lint_source(src, rel_path="src/repro/core/x.py")
    assert [f.rule for f in findings] == ["DET001"]


def test_suppression_accepts_multiple_rules():
    sup = parse_suppressions("x = 1  # detlint: ignore[DET001, ISO001]\n")
    assert sup == {1: {"DET001", "ISO001"}}


def test_skip_file_marker():
    assert wants_skip_file("# detlint: skip-file\nimport time\n")
    findings = lint_source(
        "# detlint: skip-file\nimport time\nt = time.time()\n",
        rel_path="src/repro/core/x.py",
    )
    assert findings == []


def test_tests_and_benchmarks_are_exempt():
    assert lint_source(BAD_CLOCK, rel_path="tests/core/test_x.py") == []
    assert lint_source(BAD_CLOCK, rel_path="benchmarks/bench_x.py") == []


def test_finding_json_round_trip():
    f = lint_source(BAD_CLOCK, rel_path="src/repro/core/x.py")[0]
    obj = json.loads(json.dumps(f.to_dict()))
    assert Finding.from_dict(obj) == f
    assert obj["fingerprint"] == f.fingerprint


def test_fingerprint_survives_line_shifts():
    shifted = "import time\n\n\n\nt = time.time()\n"
    a = lint_source(BAD_CLOCK, rel_path="src/repro/core/x.py")[0]
    b = lint_source(shifted, rel_path="src/repro/core/x.py")[0]
    assert a.line != b.line
    assert a.fingerprint == b.fingerprint


def test_baseline_round_trip_and_split():
    findings = lint_source(
        "import time\na = time.time()\nb = time.time()\n",
        rel_path="src/repro/core/x.py",
    )
    assert len(findings) == 2
    baseline = Baseline.from_findings(findings[:1])
    reloaded = Baseline.loads(baseline.dumps())
    assert reloaded.counts == baseline.counts
    new, grandfathered = reloaded.split(findings)
    # Identical snippets share a fingerprint; the count-1 budget absorbs
    # exactly one of the two occurrences.
    assert len(grandfathered) == 1 and len(new) == 1


def test_baseline_rejects_unknown_version():
    with pytest.raises(ValueError):
        Baseline.from_dict({"version": 99, "findings": []})


def test_baseline_save_creates_parent_dirs(tmp_path):
    target = tmp_path / "sub" / "dir" / "baseline.json"
    Baseline().save(str(target))
    assert json.loads(target.read_text())["version"] == 1


def test_run_lint_reports_unparsable_files(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    findings = run_lint([str(tmp_path)], root=str(tmp_path))
    assert [f.rule for f in findings] == ["PARSE"]


def test_run_lint_walks_directories_sorted(tmp_path):
    (tmp_path / "b.py").write_text("import time\nt = time.time()\n")
    (tmp_path / "a.py").write_text("import time\nt = time.time()\n")
    findings = run_lint([str(tmp_path)], root=str(tmp_path))
    assert [f.path for f in findings] == ["a.py", "b.py"]


def test_baseline_survives_a_file_rename():
    old = lint_source(BAD_CLOCK, rel_path="src/repro/core/old_name.py")
    baseline = Baseline.from_findings(old)
    renamed = lint_source(BAD_CLOCK, rel_path="src/repro/core/new_name.py")
    assert renamed[0].fingerprint != old[0].fingerprint  # path moved
    new, grandfathered = baseline.split(renamed)
    # The (rule, snippet) content key carries the budget across.
    assert new == [] and len(grandfathered) == 1


def test_baseline_survives_rename_plus_line_shift_combined():
    old = lint_source(BAD_CLOCK, rel_path="src/repro/core/old_name.py")
    baseline = Baseline.loads(Baseline.from_findings(old).dumps())
    shifted = "import time\n\n\n\nt = time.time()\n"
    moved = lint_source(shifted, rel_path="src/repro/core/new_name.py")
    assert moved[0].line != old[0].line
    new, grandfathered = baseline.split(moved)
    assert new == [] and len(grandfathered) == 1


def test_rename_fallback_shares_one_budget_pool():
    # One grandfathered occurrence cannot absorb both the finding at the
    # recorded path AND a same-snippet finding in a renamed file.
    old = lint_source(BAD_CLOCK, rel_path="src/repro/core/old_name.py")
    baseline = Baseline.from_findings(old)
    both = old + lint_source(BAD_CLOCK, rel_path="src/repro/core/copy.py")
    new, grandfathered = baseline.split(both)
    assert len(grandfathered) == 1 and len(new) == 1
    # The exact-fingerprint match wins the budget even when the renamed
    # finding comes first in input order.
    new, grandfathered = baseline.split(list(reversed(both)))
    assert [f.path for f in grandfathered] == ["src/repro/core/old_name.py"]


def test_rename_fallback_requires_matching_rule_and_snippet():
    old = lint_source(BAD_CLOCK, rel_path="src/repro/core/old_name.py")
    baseline = Baseline.from_findings(old)
    other = lint_source(
        "import random\nr = random.random()\n",
        rel_path="src/repro/core/new_name.py",
    )
    new, grandfathered = baseline.split(other)
    assert grandfathered == []  # DET002 cannot ride a DET001 budget
    assert new == other


def test_rename_fallback_never_matches_blank_snippets():
    f = Finding(rule="PARSE", path="a.py", line=1, col=0,
                message="syntax error", snippet="")
    baseline = Baseline.from_findings([f])
    g = Finding(rule="PARSE", path="b.py", line=9, col=0,
                message="syntax error", snippet="")
    new, _ = baseline.split([g])
    assert new == [g]
