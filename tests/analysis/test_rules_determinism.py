"""Good/bad fixture pairs for the determinism rules."""

from repro.analysis import lint_source

SRC = "src/repro/core/fixture.py"


def rules_fired(src, rel_path=SRC):
    return sorted({f.rule for f in lint_source(src, rel_path=rel_path)})


# -- DET001: wall clock ----------------------------------------------------

def test_det001_flags_time_time():
    assert "DET001" in rules_fired("import time\nt = time.time()\n")


def test_det001_flags_aliased_and_from_imports():
    assert "DET001" in rules_fired(
        "import time as walltime\nt = walltime.perf_counter()\n"
    )
    assert "DET001" in rules_fired(
        "from time import monotonic\nt = monotonic()\n"
    )


def test_det001_flags_datetime_now():
    assert "DET001" in rules_fired(
        "from datetime import datetime\nstamp = datetime.now()\n"
    )


def test_det001_allows_sim_clock_and_profile_module():
    assert rules_fired("def f(runtime):\n    return runtime.now\n") == []
    # The profiler module is the one place wall clock is the point.
    assert rules_fired(
        "import time\nt = time.perf_counter()\n",
        rel_path="src/repro/obs/profile.py",
    ) == []


def test_det001_allowlists_the_live_clock_module():
    # repro.live.clock is the realtime backend's one sanctioned time
    # source; reading the host clock there is the module's whole job.
    good = "import time\n\ndef wall_epoch():\n    return time.time()\n"
    assert rules_fired(good, rel_path="src/repro/live/clock.py") == []


def test_det001_still_flags_the_rest_of_repro_live():
    # The allowlist is the clock module, not the package: every other
    # live module must take time from the RealtimeClock.
    bad = "import time\nt = time.time()\n"
    for rel in (
        "src/repro/live/runtime.py",
        "src/repro/live/node.py",
        "src/repro/live/swarm.py",
    ):
        assert "DET001" in rules_fired(bad, rel_path=rel)


# -- DET002: global / unseeded RNG -----------------------------------------

def test_det002_flags_stdlib_random_import():
    assert "DET002" in rules_fired("import random\n")
    assert "DET002" in rules_fired("from random import shuffle\n")


def test_det002_flags_numpy_global_draws():
    assert "DET002" in rules_fired(
        "import numpy as np\nx = np.random.randint(4)\n"
    )
    assert "DET002" in rules_fired(
        "import numpy as np\nnp.random.seed(0)\n"
    )


def test_det002_flags_unseeded_default_rng():
    assert "DET002" in rules_fired(
        "import numpy as np\nrng = np.random.default_rng()\n"
    )


def test_det002_allows_seeded_generators_and_streams():
    assert rules_fired(
        "import numpy as np\nrng = np.random.default_rng(42)\n"
    ) == []
    assert rules_fired(
        "from repro.sim.rng import RandomStreams\n"
        "rng = RandomStreams(7).get('churn')\n"
    ) == []


def test_det002_exempts_the_rng_module_itself():
    assert rules_fired(
        "import numpy as np\ngen = np.random.default_rng()\n",
        rel_path="src/repro/sim/rng.py",
    ) == []


# -- DET003: unordered iteration feeding decisions -------------------------

BAD_SET_SEND = (
    "def broadcast(self, peers):\n"
    "    for p in set(peers):\n"
    "        self.runtime.send(p)\n"
)

GOOD_SORTED_SEND = (
    "def broadcast(self, peers):\n"
    "    for p in sorted(set(peers)):\n"
    "        self.runtime.send(p)\n"
)


def test_det003_flags_set_iteration_into_send():
    assert rules_fired(BAD_SET_SEND) == ["DET003"]


def test_det003_accepts_sorted_wrapper():
    assert rules_fired(GOOD_SORTED_SEND) == []


def test_det003_flags_dict_keys_feeding_removal():
    src = (
        "def sweep(self, table):\n"
        "    for k in table.keys():\n"
        "        self.peer_list.remove(k)\n"
    )
    assert rules_fired(src) == ["DET003"]


def test_det003_flags_named_set_variable():
    src = (
        "def relay(self, targets):\n"
        "    chosen = set(targets)\n"
        "    for t in chosen:\n"
        "        self.transport.send(t)\n"
    )
    assert rules_fired(src) == ["DET003"]


def test_det003_flags_first_match_return_from_set():
    # Returning the "first" element of a set picks a hash-order winner.
    src = (
        "def pick(self, pool):\n"
        "    for t in set(pool):\n"
        "        return t\n"
    )
    assert rules_fired(src) == ["DET003"]


def test_det003_flags_comprehension_feeding_sink():
    src = (
        "def fanout(self, peers):\n"
        "    self.transport.send([p for p in set(peers)])\n"
    )
    assert rules_fired(src) == ["DET003"]


def test_det003_allows_membership_and_pure_accounting():
    src = (
        "def count(self, peers, seen):\n"
        "    excluded = set(seen)\n"
        "    total = 0\n"
        "    for p in peers:\n"
        "        if p in excluded:\n"
        "            total += 1\n"
        "    return total\n"
    )
    assert rules_fired(src) == []


# -- DET004: float accumulation over unordered collections -----------------


def test_det004_flags_sum_over_set_feeding_state():
    src = (
        "def rebalance(self, peers):\n"
        "    self.ctx.total_rate = sum(p.rate for p in set(peers))\n"
    )
    assert rules_fired(src) == ["DET004"]


def test_det004_flags_sum_over_set_bound_name_returned():
    src = (
        "def total_rate(self, peers):\n"
        "    live = set(peers)\n"
        "    return sum(p.rate for p in live)\n"
    )
    assert rules_fired(src) == ["DET004"]


def test_det004_flags_loop_accumulator_feeding_metric():
    src = (
        "def publish(self, peers):\n"
        "    acc = 0.0\n"
        "    for p in set(peers):\n"
        "        acc += p.rate\n"
        "    self.ctx.obs.set_gauge('rate', acc)\n"
    )
    assert rules_fired(src) == ["DET004"]


def test_det004_allows_sorted_sum():
    src = (
        "def total_rate(self, peers):\n"
        "    return sum(p.rate for p in sorted(set(peers)))\n"
    )
    assert rules_fired(src) == []


def test_det004_allows_local_only_totals():
    # The total never reaches state, a metric, or a return.
    src = (
        "def debug(self, peers):\n"
        "    t = sum(p.rate for p in set(peers))\n"
        "    print(t)\n"
    )
    assert rules_fired(src) == []


def test_det004_allows_ordered_iterables():
    src = (
        "def total_rate(self, peers):\n"
        "    return sum(p.rate for p in peers)\n"
    )
    assert rules_fired(src) == []


def test_det004_suppression_for_int_sums():
    src = (
        "def live_count(self, peers):\n"
        "    return sum(1 for p in set(peers))  # detlint: ignore[DET004]\n"
    )
    assert rules_fired(src) == []
