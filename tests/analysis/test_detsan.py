"""DetSan, the runtime cross-validator: a clean protocol run reports
nothing, a planted payload-aliasing bug is caught, the clock/RNG
tripwires fire only from simulator code, and detach restores every
patched global."""

import random
import time
import types

import pytest

from repro.analysis.detsan import (
    DetSan,
    _is_mutable_payload,
    _payload_objects,
    detsan_requested,
)
from repro.chaos.runner import ChaosRunner
from repro.chaos.scenarios import SCENARIOS
from repro.core.events import EventKind, EventRecord
from repro.core.nodeid import NodeId
from repro.core.pointer import Pointer


# -- tagging discriminator -------------------------------------------------


def make_pointer(value=0b1010, bits=4):
    return Pointer(node_id=NodeId(value, bits), address=value, level=1)


def make_event():
    return EventRecord(
        kind=EventKind.JOIN,
        subject_id=NodeId(3, 4),
        subject_level=1,
        subject_address=3,
        seq=0,
        origin_time=0.0,
    )


def test_mutable_payload_discrimination():
    ptr = make_pointer()
    # Mutable protocol objects and containers are tagged ...
    assert _is_mutable_payload(ptr)
    assert _is_mutable_payload([ptr])
    assert _is_mutable_payload({})
    # ... immutable value types and scalars are not.
    assert not _is_mutable_payload(NodeId(3, 4))
    assert not _is_mutable_payload(make_event())
    assert not _is_mutable_payload(None)
    assert not _is_mutable_payload("download")
    assert not _is_mutable_payload(7)


def test_payload_objects_unpacks_wire_shapes():
    a, b = make_pointer(0b0001), make_pointer(0b0010)
    # download-data: ([matching], [tops]) — both lists and their
    # elements are identity-tracked.
    objs = _payload_objects(([a], [b]))
    assert a in objs and b in objs
    # level-info: (level, rate, piggyback)
    objs = _payload_objects((2, 0.5, [a]))
    assert a in objs
    # bodyless payloads tag nothing.
    assert _payload_objects(None) == []
    assert _payload_objects(NodeId(3, 4)) == []


def test_detsan_requested_parses_env():
    assert detsan_requested({"REPRO_DETSAN": "1"})
    assert detsan_requested({"REPRO_DETSAN": "true"})
    assert not detsan_requested({"REPRO_DETSAN": "0"})
    assert not detsan_requested({})


# -- end-to-end: chaos under the sanitizer ---------------------------------


def run_crash_churn(n_nodes=40, seed=0):
    return ChaosRunner(
        SCENARIOS["crash_churn"], n_nodes=n_nodes, seed=seed, detsan=True
    ).run()


def test_clean_protocol_run_has_no_detsan_findings():
    result = run_crash_churn()
    assert result.ok
    assert result.detsan_ok, result.detsan_violations


def test_planted_aliasing_bug_is_caught():
    # Re-introduce the PR 2 bug at runtime: every "copy" silently hands
    # back the shared object, so receivers retain senders' live
    # Pointers.  The final scan must light up.
    orig_copy = Pointer.copy

    def aliasing_copy(self, **overrides):
        return self

    Pointer.copy = aliasing_copy
    try:
        result = run_crash_churn()
    finally:
        Pointer.copy = orig_copy
    assert not result.detsan_ok
    assert any("payload-retained" in v for v in result.detsan_violations)


def test_detsan_does_not_change_the_chaos_trace():
    # The sanitizer only observes: same seed with and without it must
    # produce byte-identical traces.
    plain = ChaosRunner(
        SCENARIOS["crash_churn"], n_nodes=40, seed=0, detsan=False
    ).run()
    sanitized = run_crash_churn()
    assert sanitized.trace == plain.trace


# -- tripwires and lifecycle -----------------------------------------------


class FakeTransport:
    def __init__(self):
        self.delivered = []

    def _deliver(self, msg):
        self.delivered.append(msg)


class FakeNet:
    def __init__(self):
        self.transport = FakeTransport()
        self.nodes = {}


def call_from_module(module_name, fn):
    """Run ``fn`` with the caller's ``__name__`` spoofed to
    ``module_name``, the way the tripwires attribute calls."""
    code = compile("result = fn()", "<fixture>", "exec")
    globs = {"__name__": module_name, "fn": fn}
    exec(code, globs)
    return globs["result"]


def test_tripwires_flag_simulator_callers_only():
    san = DetSan()
    net = FakeNet()
    san.attach(net)
    try:
        # Host-side caller (this test module): silent.
        time.time()
        random.random()
        assert san.ok
        # Simulator caller: both tripwires fire.
        call_from_module("repro.net.fixture_service", time.time)
        call_from_module("repro.net.fixture_service", random.random)
    finally:
        san.detach()
    checks = {v.check for v in san.violations}
    assert checks == {"wall-clock", "global-rng"}
    # Exempt simulator modules stay silent.
    san2 = DetSan()
    san2.attach(FakeNet())
    try:
        call_from_module("repro.live.clock", time.time)
    finally:
        san2.detach()
    assert san2.ok


def test_tripwires_still_return_real_values():
    san = DetSan()
    san.attach(FakeNet())
    try:
        assert isinstance(time.time(), float)
        assert 0.0 <= random.random() < 1.0
    finally:
        san.detach()


def test_detach_restores_all_patched_globals():
    orig_time = time.time
    orig_random = random.random
    net = FakeNet()
    orig_deliver = net.transport._deliver
    san = DetSan()
    san.attach(net)
    assert time.time is not orig_time  # patched while attached
    san.detach()
    assert time.time is orig_time
    assert random.random is orig_random
    assert net.transport._deliver == orig_deliver


def test_attach_rejects_partitioned_networks():
    parallel_net = types.SimpleNamespace(transport=None, nodes={})
    with pytest.raises(ValueError, match="sequential"):
        DetSan().attach(parallel_net)


def test_attach_twice_is_an_error():
    san = DetSan()
    san.attach(FakeNet())
    try:
        with pytest.raises(RuntimeError, match="already attached"):
            san.attach(FakeNet())
    finally:
        san.detach()


def test_delivery_tap_tags_only_mutable_cross_node_payloads():
    san = DetSan(scan_stride=1000)  # no sampled scans in this test
    net = FakeNet()
    san.attach(net)
    try:
        ptr = make_pointer()
        msgs = [
            types.SimpleNamespace(src=1, dst=2, kind="top-ptr", payload=ptr),
            # Immutable payloads and self-sends are not tracked.
            types.SimpleNamespace(
                src=1, dst=2, kind="level-query", payload=NodeId(3, 4)
            ),
            types.SimpleNamespace(src=2, dst=2, kind="top-ptr", payload=ptr),
            types.SimpleNamespace(src=1, dst=2, kind="probe", payload=None),
        ]
        for msg in msgs:
            net.transport._deliver(msg)
        assert len(net.transport.delivered) == 4  # pass-through intact
        assert san.deliveries_seen == 1
    finally:
        san.detach()
