"""Health engine: SLO bands, spec round-trips, EWMA, live monitoring."""

import json

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork
from repro.obs.health import (
    EwmaHealthMonitor,
    HealthSpec,
    LiveHealthMonitor,
    Slo,
    evaluate,
    metrics_signals,
)


def test_slo_band_semantics():
    band = Slo("x", lo=0.2, hi=0.8)
    assert band.ok(0.2) and band.ok(0.5) and band.ok(0.8)
    assert not band.ok(0.19) and not band.ok(0.81)
    assert Slo("x", hi=1.0).ok(-100.0)      # unbounded below
    assert Slo("x", lo=0.0).ok(1e9)         # unbounded above
    assert Slo("x").ok(float("nan")) is True  # no bounds, nothing to breach


def test_default_spec_derives_from_config_and_scale():
    config = ProtocolConfig(id_bits=16)
    spec = HealthSpec.default(config, n_nodes=1000)
    names = [slo.name for slo in spec]
    assert "mcast.tree_completeness" in names
    assert "bandwidth.model_ratio" in names
    assert "peerlist.error_rate" in names
    completeness = spec.get("mcast.tree_completeness")
    assert completeness is not None and completeness.lo == 0.99
    depth = spec.get("mcast.max_depth")
    # ceil(log2 1000) + 2 = 12, capped by id_bits.
    assert depth is not None and depth.hi == 12
    # Scale moves the depth bound; the cap is the address width.
    assert HealthSpec.default(config, 2 ** 20).get("mcast.max_depth").hi == 16


def test_spec_round_trips_through_dict_and_disk(tmp_path):
    spec = HealthSpec.default(ProtocolConfig(id_bits=16), n_nodes=500)
    clone = HealthSpec.from_dict(spec.to_dict())
    assert clone.name == spec.name
    assert clone.slos == spec.slos

    path = str(tmp_path / "spec.json")
    spec.save(path)
    loaded = HealthSpec.load(path)
    assert loaded.slos == spec.slos
    # The on-disk form is plain versioned JSON.
    doc = json.loads(open(path).read())
    assert doc["schema_version"] == 1


def test_spec_rejects_future_schema_version():
    with pytest.raises(ValueError, match="schema_version"):
        HealthSpec.from_dict({"schema_version": 99, "slos": []})


def test_evaluate_skips_missing_signals_and_keeps_spec_order():
    spec = HealthSpec(slos=[
        Slo("b.second", hi=1.0),
        Slo("a.first", lo=0.5, description="too low"),
        Slo("c.absent", hi=0.0),
    ])
    traces = {"a.first": ("t-1", "t-2")}
    verdicts = evaluate(spec, {"a.first": 0.1, "b.second": 0.2},
                        now=42.0, traces=traces)
    assert [v.slo for v in verdicts] == ["b.second", "a.first"]
    assert verdicts[0].ok and verdicts[0].traces == ()
    breach = verdicts[1]
    assert not breach.ok
    assert breach.time == 42.0
    assert breach.detail == "too low"
    assert breach.traces == ("t-1", "t-2")
    assert "BREACH" in breach.describe()


def test_ewma_warmup_suppresses_startup_transients():
    spec = HealthSpec(slos=[Slo("err", hi=0.1)])
    mon = EwmaHealthMonitor(spec, alpha=1.0, warmup=2)
    # Two terrible warm-up samples: folded in, never judged.
    assert mon.observe({"err": 9.0}) == []
    assert mon.observe({"err": 9.0}) == []
    third = mon.observe({"err": 0.05})
    assert [v.ok for v in third] == [True]  # alpha=1: no memory of warm-up


def test_ewma_warmup_is_counted_per_signal():
    """Warm-up is a per-signal sample count, not a global tick: a
    signal that first appears late (rates only exist once their
    denominator is non-zero) still gets its own full warm-up."""
    spec = HealthSpec(slos=[Slo("early", hi=0.1), Slo("late", hi=0.1)])
    mon = EwmaHealthMonitor(spec, alpha=1.0, warmup=1)
    assert mon.observe({"early": 9.0}) == []           # early warm-up
    judged = mon.observe({"early": 9.0, "late": 9.0})  # late's first sample
    assert [(v.slo, v.ok) for v in judged] == [("early", False)]
    judged = mon.observe({"early": 0.0, "late": 0.05})
    assert [(v.slo, v.ok) for v in judged] == [
        ("early", True), ("late", True),
    ]


def test_ewma_warmup_zero_judges_immediately():
    spec = HealthSpec(slos=[Slo("err", hi=0.1)])
    mon = EwmaHealthMonitor(spec, alpha=1.0, warmup=0)
    first = mon.observe({"err": 9.0})
    assert [v.ok for v in first] == [False]


def test_ewma_warmup_samples_still_shape_the_average():
    """Warm-up suppresses *verdicts*, not the fold: with alpha < 1 the
    first judged value carries the warm-up history, so a network that
    never recovers breaches as soon as judging starts."""
    spec = HealthSpec(slos=[Slo("err", hi=0.5)])
    mon = EwmaHealthMonitor(spec, alpha=0.5, warmup=2)
    assert mon.observe({"err": 1.0}) == []
    assert mon.observe({"err": 1.0}) == []
    third = mon.observe({"err": 1.0})  # ewma stayed at 1.0 throughout
    assert [v.ok for v in third] == [False]
    assert mon.smoothed("err") == pytest.approx(1.0)


def test_ewma_smoothing_converges_to_breach():
    spec = HealthSpec(slos=[Slo("err", hi=0.5)])
    mon = EwmaHealthMonitor(spec, alpha=0.5, warmup=0)
    assert mon.observe({"err": 0.0})[0].ok          # ewma 0
    assert mon.observe({"err": 1.0})[0].ok          # ewma 0.5, on the line
    assert not mon.observe({"err": 1.0})[0].ok      # ewma 0.75
    assert mon.smoothed("err") == pytest.approx(0.75)


def test_ewma_validates_parameters():
    spec = HealthSpec()
    with pytest.raises(ValueError):
        EwmaHealthMonitor(spec, alpha=0.0)
    with pytest.raises(ValueError):
        EwmaHealthMonitor(spec, alpha=1.5)
    with pytest.raises(ValueError):
        EwmaHealthMonitor(spec, warmup=-1)


def test_metrics_signals_arithmetic():
    config = ProtocolConfig(id_bits=16)
    snapshot = {
        "nodes": 4,
        "counters": {
            "transport.msgs.mcast": 200,
            "mcast.ack_timeouts": 10,
            "mcast.originated": 5,
            "transport.bits.mcast": 5 * 10.0 * config.event_message_bits,
        },
        "gauges": {
            "peers.size.level.1": 16.0,
            "peers.size.level.2": 24.0,
            "other.gauge": 1e9,
        },
    }
    signals = metrics_signals(snapshot, config,
                              meta={"mean_error_rate": 0.01})
    assert signals["mcast.ack_retry_rate"] == pytest.approx(0.05)
    # mean list size = (16 + 24) / 4 = 10 pointers/node => ratio 1.
    assert signals["bandwidth.model_ratio"] == pytest.approx(1.0)
    assert signals["peerlist.error_rate"] == pytest.approx(0.01)
    # No traffic => no signals, rather than zero-division or zeros.
    assert metrics_signals({"nodes": 0, "counters": {}, "gauges": {}},
                           config) == {}


def _small_net(**kwargs):
    net = PeerWindowNetwork(
        config=ProtocolConfig(id_bits=16), master_seed=3,
        observability=True, **kwargs,
    )
    net.seed_nodes([4000.0] * 16)
    return net


def test_live_monitor_records_gated_breaches():
    net = _small_net()
    # An impossible band: every sample past warm-up breaches.
    spec = HealthSpec(slos=[Slo("peerlist.error_rate", hi=-1.0)])
    mon = LiveHealthMonitor(net, spec, interval=10.0, warmup=1)
    mon.start()
    net.run(until=100.0)
    mon.stop()
    assert mon.samples >= 9
    assert mon.breaches and all(not v.ok for v in mon.breaches)
    assert mon.breaches[0].slo == "peerlist.error_rate"


def test_live_monitor_gate_suppresses_recording():
    net = _small_net()
    spec = HealthSpec(slos=[Slo("peerlist.error_rate", hi=-1.0)])
    mon = LiveHealthMonitor(net, spec, interval=10.0, warmup=0,
                            gate=lambda: False)
    mon.start()
    net.run(until=60.0)
    mon.stop()
    assert mon.samples >= 5
    assert mon.verdicts == []  # EWMA fed, breaches never recorded
    assert mon.ewma.smoothed("peerlist.error_rate") is not None


def test_live_monitor_halt_on_breach_stops_simulator():
    net = _small_net()
    spec = HealthSpec(slos=[Slo("peerlist.error_rate", hi=-1.0)])
    mon = LiveHealthMonitor(net, spec, interval=10.0, warmup=0,
                            halt_on_breach=True)
    mon.start()
    net.run(until=500.0)
    assert net.sim.now < 500.0  # stopped at the first judged sample
    assert mon.breaches
    # stop() is cooperative and one-shot: a fresh run() proceeds.
    net.run(until=net.sim.now + 5.0)


def test_live_monitor_rejects_partitioned_networks():
    net = PeerWindowNetwork(
        config=ProtocolConfig(id_bits=16), master_seed=3,
        observability=True, parallel=2,
    )
    with pytest.raises(NotImplementedError):
        LiveHealthMonitor(net, HealthSpec())
