"""Static HTML renderer: self-contained, escaped, deterministic."""

from repro.obs.render_html import build_html
from tests.obs.test_dashboard import _frame, _mcast_spans


def _frames():
    return [
        _frame(window=0, t0=0.0, t1=30.0),
        _frame(window=1, t0=30.0, t1=60.0,
               breaches=[{"slo": "probe.timeout_rate", "value": 0.9}],
               healthy=False),
        _frame(window=2, t0=60.0, t1=62.5, final=True, healthy=True,
               verdicts=[
                   {"slo": "peerlist.error_rate", "value": 0.01,
                    "lo": None, "hi": 0.05, "ok": True},
                   {"slo": "probe.timeout_rate", "value": 0.4,
                    "lo": None, "hi": 0.2, "ok": False},
               ]),
    ]


def test_page_is_self_contained():
    page = build_html(_frames(), spans=_mcast_spans())
    assert page.startswith("<!DOCTYPE html>")
    assert page.rstrip().endswith("</html>")
    # no external assets, no scripts
    for needle in ("<script", "http://", "https://", "src=", "@import"):
        assert needle not in page
    assert "<style>" in page


def test_page_has_timeline_levels_and_verdicts():
    page = build_html(_frames())
    assert "<svg" in page  # timeline + level histogram
    assert "level 1" in page
    assert "peerlist.error_rate" in page
    assert ">BREACH<" in page and ">ok<" in page
    assert "HEALTHY" in page


def test_page_embeds_multicast_tree():
    page = build_html(_frames(), spans=_mcast_spans())
    assert "Multicast tree shapes" in page
    assert "mcast.root LEAVE subject=5 root=n0" in page
    assert "├─ n1 d1 ok" in page
    # without spans the section is absent
    assert "Multicast tree shapes" not in build_html(_frames())


def test_rendering_is_deterministic():
    a = build_html(_frames(), spans=_mcast_spans(), title="run 7")
    b = build_html(_frames(), spans=_mcast_spans(), title="run 7")
    assert a == b


def test_skipped_lines_warning():
    page = build_html(_frames(), lines_skipped=3)
    assert "WARNING: 3 unreadable line(s)" in page
    assert 'class="warn"' in page
    assert "WARNING" not in build_html(_frames())


def test_user_content_is_escaped():
    frames = _frames()
    frames[-1]["verdicts"][0]["slo"] = "<img src=x onerror=alert(1)>"
    page = build_html(frames, title="<script>alert(1)</script>")
    assert "<script>" not in page
    assert "&lt;script&gt;" in page
    assert "<img" not in page


def test_empty_frames_still_render_a_page():
    page = build_html([])
    assert page.startswith("<!DOCTYPE html>")
    assert "no closed windows recorded" in page
