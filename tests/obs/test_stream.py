"""Streaming telemetry: bus taps, window folding, frame IO, windower."""

import json

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import PeerWindowNetwork
from repro.net.latency import PairwiseLatencyModel
from repro.obs.analyze import SchemaError
from repro.obs.export import spans_to_jsonl
from repro.obs.health import HealthSpec, Slo
from repro.obs.metrics import MetricsRegistry
from repro.obs.stream import (
    NodeTap,
    SnapshotWriter,
    StreamConfig,
    StreamWindower,
    TelemetryBus,
    WindowAggregator,
    WindowBucket,
    frame_line,
    load_frames,
    load_frames_file,
    merge_node_frames,
    telemetry_header_line,
)
from repro.obs.trace import NodeObs, Observability, Span

CONFIG = ProtocolConfig(
    id_bits=16,
    probe_interval=8.0,
    probe_timeout=2.0,
    report_timeout=4.0,
    multicast_ack_timeout=2.0,
    level_check_interval=45.0,
    multicast_processing_delay=1.0,
)


def _span(name, node="n0", start=0.0, end=1.0, status="ok", attrs=None):
    span = Span(f"t-{name}", f"{node}.s", None, name, node, start,
                attrs=attrs or {})
    span.end = end
    span.status = status
    return span


def _small_net(**kwargs):
    net = PeerWindowNetwork(
        config=CONFIG,
        master_seed=5,
        topology=PairwiseLatencyModel(),
        observability=True,
        **kwargs,
    )
    net.seed_nodes([4000.0] * 20)
    return net


class ListSink:
    def __init__(self):
        self.lines = []
        self.closed = False

    def write(self, frame):
        self.lines.append(frame_line(frame))

    def close(self):
        self.closed = True


class BoomSink:
    """A sink whose callbacks must never run (hot-path fixture)."""

    def on_span_end(self, span):  # pragma: no cover - the point is no call
        raise AssertionError("sink reached through a disabled emit path")

    def on_inc(self, name, value):  # pragma: no cover - same
        raise AssertionError("sink reached through a disabled emit path")


# -- the bus ----------------------------------------------------------------


class TestBus:
    def test_tap_receives_span_ends_and_counter_deltas(self):
        obs = NodeObs("n0", enabled=True)
        tap = NodeTap("n0")
        obs.sink = tap
        obs.registry.sink = tap
        span = obs.start("probe", 1.0)
        assert tap.spans == []  # only *ends* are published
        obs.end(span, 2.0, status="timeout")
        obs.instant("obituary", 3.0)
        obs.registry.inc("mcast.received")
        obs.registry.inc("mcast.received", 2)
        spans, counts = tap.drain()
        assert [s.name for s in spans] == ["probe", "obituary"]
        assert counts == {"mcast.received": 3}
        assert tap.drain() == ([], {})  # drain resets

    def test_disabled_paths_never_reach_the_sink(self):
        """The sink check sits *behind* the enabled guard: a disabled
        registry or tracer must not pay for (or even touch) a
        subscriber."""
        reg = MetricsRegistry(enabled=False)
        reg.sink = BoomSink()
        reg.inc("mcast.received")  # must not raise
        obs = NodeObs("n0", enabled=False)
        obs.sink = BoomSink()
        if obs.enabled:  # pragma: no cover - the span-site idiom
            obs.instant("probe", 0.0)

    def test_attach_bus_taps_current_and_future_views(self):
        root = Observability(enabled=True)
        before = root.view("a")
        bus = TelemetryBus()
        root.attach_bus(bus)
        after = root.view("b")
        assert before.sink is bus.taps["a"]
        assert after.sink is bus.taps["b"]
        assert after.registry.sink is bus.taps["b"]
        root.detach_bus()
        assert before.sink is None and after.registry.sink is None

    def test_bus_drains_in_sorted_node_order(self):
        root = Observability(enabled=True)
        bus = TelemetryBus()
        root.attach_bus(bus)
        for node in ("b", "a", "c"):
            root.view(node).instant("probe", 1.0)
        assert [node for node, _, _ in bus.drain()] == ["a", "b", "c"]

    def test_bus_leaves_span_export_byte_identical(self):
        plain = _small_net()
        plain.run(until=60.0)
        tapped = _small_net()
        tapped.obs.attach_bus(TelemetryBus())
        tapped.run(until=60.0)
        assert spans_to_jsonl(tapped.spans()) == spans_to_jsonl(plain.spans())
        assert json.dumps(tapped.metrics_snapshot(), sort_keys=True) == \
            json.dumps(plain.metrics_snapshot(), sort_keys=True)


# -- window folding ---------------------------------------------------------


class TestWindowBucket:
    def test_span_classification(self):
        bucket = WindowBucket()
        for span in (
            _span("mcast.root", attrs={"depth": 0}),
            _span("mcast.hop", attrs={"depth": 3}),
            _span("mcast.hop", status="died", attrs={"depth": 1}),
            _span("mcast.redirect"),
            _span("join"),
            _span("join", status="failed"),
            _span("probe"),
            _span("probe", status="timeout"),
            _span("probe.verify"),
            _span("obituary"),
        ):
            bucket.add_span(span)
        assert bucket.spans == 10
        assert bucket.mcast_spans == 3
        assert bucket.mcast_max_depth == 3
        assert bucket.mcast_died == 1
        assert bucket.mcast_redirects == 1
        assert (bucket.join_ok, bucket.join_failed) == (1, 1)
        assert (bucket.probes, bucket.probe_timeouts) == (3, 1)
        assert bucket.obituaries == 1
        signals = bucket.rate_signals()
        assert signals["join.failure_rate"] == pytest.approx(0.5)
        assert signals["probe.timeout_rate"] == pytest.approx(1 / 3)
        assert signals["mcast.death_rate"] == pytest.approx(1 / 3)
        assert signals["mcast.max_depth"] == 3.0

    def test_idle_window_emits_no_rate_signals(self):
        assert WindowBucket().rate_signals() == {}

    def test_add_frame_round_trips_through_aggregator(self):
        """bucket -> frame -> add_frame reproduces the bucket: the live
        merge path must not lose or double any fact."""
        bucket = WindowBucket()
        bucket.add_node(
            [_span("mcast.root", attrs={"depth": 2}), _span("join")],
            {"mcast.received": 4},
        )
        frame = WindowAggregator().close_window(0, 0.0, 15.0, bucket)
        refolded = WindowBucket()
        refolded.add_frame(frame)
        again = WindowAggregator().close_window(0, 0.0, 15.0, refolded)
        assert frame_line(again) == frame_line(frame)


class TestWindowAggregator:
    def test_ewma_breaches_surface_in_frames(self):
        spec = HealthSpec(slos=[Slo("probe.timeout_rate", hi=0.1)])
        agg = WindowAggregator(spec=spec, alpha=1.0, warmup=0)
        bucket = WindowBucket()
        bucket.add_node(
            [_span("probe"), _span("probe", status="timeout")], {}
        )
        frame = agg.close_window(0, 0.0, 15.0, bucket)
        assert frame["healthy"] is False
        assert [b["slo"] for b in frame["breaches"]] == ["probe.timeout_rate"]
        assert frame["verdicts"] == []  # full verdicts are final-frame only

    def test_final_frame_evaluates_cumulative_signals(self):
        spec = HealthSpec(slos=[Slo("join.failure_rate", hi=0.5)])
        agg = WindowAggregator(spec=spec)
        ok = WindowBucket()
        ok.add_node([_span("join")], {})
        agg.close_window(0, 0.0, 15.0, ok)
        leftover = WindowBucket()
        leftover.add_node([_span("join", status="failed")], {})
        frame = agg.final_frame(1, 15.0, 20.0, bucket=leftover)
        assert frame["final"] is True
        assert frame["join"] == {"ok": 1, "failed": 1}  # cumulative
        assert [v["slo"] for v in frame["verdicts"]] == ["join.failure_rate"]
        assert frame["healthy"] is True
        assert frame["signals"]["join.failure_rate"] == pytest.approx(0.5)


# -- frame IO + merging -----------------------------------------------------


class TestFrameIO:
    def _frames(self):
        agg = WindowAggregator()
        bucket = WindowBucket()
        bucket.add_node([_span("probe")], {"mcast.received": 1})
        return [agg.close_window(0, 0.0, 15.0, bucket),
                agg.final_frame(1, 15.0, 20.0)]

    def test_snapshot_writer_round_trips(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        writer = SnapshotWriter(str(path))
        frames = self._frames()
        for frame in frames:
            writer.write(frame)
        writer.close()
        loaded, version, skipped = load_frames_file(str(path))
        assert (version, skipped) == (1, 0)
        assert [frame_line(f) for f in loaded] == \
            [frame_line(f) for f in frames]
        with pytest.raises(ValueError, match="closed"):
            writer.write(frames[0])

    def test_malformed_lines_are_skipped_and_counted(self):
        lines = [
            telemetry_header_line(),
            frame_line(self._frames()[0]),
            "{truncated",
            json.dumps(["not", "a", "frame"]),
            json.dumps({"no": "window"}),
        ]
        frames, version, skipped = load_frames(lines)
        assert (len(frames), version, skipped) == (1, 1, 3)

    def test_future_schema_version_is_rejected(self):
        header = json.dumps({"schema": "repro.telemetry",
                             "schema_version": 99})
        with pytest.raises(SchemaError, match="schema_version"):
            load_frames([header])

    def test_merge_node_frames_folds_by_window_index(self):
        def node_frames(node, probes):
            agg = WindowAggregator()
            out = []
            for i, count in enumerate(probes):
                bucket = WindowBucket()
                bucket.add_node([_span("probe", node=node)] * count, {})
                out.append(agg.close_window(i, i * 5.0, (i + 1) * 5.0, bucket))
            return out

        merged = merge_node_frames([
            ("host:2", node_frames("host:2", [2, 1])),
            ("host:1", node_frames("host:1", [1, 0])),
        ])
        assert [f["window"] for f in merged] == [0, 1, 2]
        assert [f.get("final", False) for f in merged] == [False, False, True]
        assert [f["probe"]["count"] for f in merged] == [3, 1, 4]
        assert merged[0]["taps"] == 2

    def test_merge_is_invariant_to_input_order(self):
        agg_a, agg_b = WindowAggregator(), WindowAggregator()
        bucket = WindowBucket()
        bucket.add_node([_span("join")], {})
        a = [agg_a.close_window(0, 0.0, 5.0, bucket)]
        bucket2 = WindowBucket()
        bucket2.add_node([_span("join", status="failed")], {})
        b = [agg_b.close_window(0, 0.0, 5.0, bucket2)]
        one = merge_node_frames([("host:1", a), ("host:2", b)])
        two = merge_node_frames([("host:2", b), ("host:1", a)])
        assert [frame_line(f) for f in one] == [frame_line(f) for f in two]


# -- the sim-side windower --------------------------------------------------


class TestStreamWindower:
    def test_requires_observability(self):
        net = PeerWindowNetwork(config=CONFIG, master_seed=5,
                                topology=PairwiseLatencyModel())
        with pytest.raises(ValueError, match="observability"):
            StreamWindower(net)

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError, match="window"):
            StreamWindower(_small_net(), window=0.0)

    def test_window_grid_survives_odd_run_slicing(self):
        """Frames are a function of (seed, window), not of how the
        driver slices its run() calls."""
        one = _small_net()
        sink_one = ListSink()
        w_one = StreamWindower(one, window=15.0, sinks=[sink_one])
        w_one.run(until=60.0)
        w_one.finish()

        two = _small_net()
        sink_two = ListSink()
        w_two = StreamWindower(two, window=15.0, sinks=[sink_two])
        for until in (7.0, 15.0, 33.0, 44.9, 60.0):
            w_two.run(until=until)
        w_two.finish()

        assert sink_one.lines == sink_two.lines
        assert sink_one.closed and sink_two.closed
        assert w_one.frames_emitted == 5  # 4 windows + final

    def test_frames_carry_state_and_extra_signals(self):
        net = _small_net()
        sink = ListSink()
        windower = StreamWindower(net, window=30.0, sinks=[sink])
        windower.run(until=60.0)
        windower.finish()
        frames = [json.loads(line) for line in sink.lines]
        for frame in frames:
            assert frame["state"]["live_nodes"] == 20
            assert "peerlist.error_rate" in frame["signals"]
        assert frames[-1]["final"] is True
        # The final frame is cumulative: it contains every windowed span
        # plus whatever the trailing partial window drained.
        assert frames[-1]["spans"] >= sum(f["spans"] for f in frames[:-1])
        assert frames[-1]["verdicts"] == []  # no spec configured

    def test_finish_twice_raises(self):
        windower = StreamWindower(_small_net(), window=15.0)
        windower.run(until=15.0)
        windower.finish()
        with pytest.raises(ValueError, match="finished"):
            windower.finish()

    def test_stream_config_builds_snapshot_sink(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        config = StreamConfig(window=20.0, snapshot_path=str(path))
        net = _small_net()
        windower = config.build(net)
        windower.run(until=40.0)
        windower.finish()
        frames, _, skipped = load_frames_file(str(path))
        assert skipped == 0
        assert [f["window"] for f in frames] == [0, 1, 2]
        assert frames[-1]["final"] is True
