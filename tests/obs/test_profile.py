"""PhaseProfiler unit tests."""

import pytest

from repro.obs.profile import PhaseProfiler, merge_profiles


class TestPhaseProfiler:
    def test_time_returns_value_and_attributes(self):
        prof = PhaseProfiler()
        assert prof.time("p", lambda a, b: a + b, 2, 3) == 5
        assert prof.calls["p"] == 1
        assert prof.seconds["p"] >= 0.0

    def test_time_attributes_even_on_exception(self):
        prof = PhaseProfiler()
        with pytest.raises(RuntimeError):
            prof.time("p", lambda: (_ for _ in ()).throw(RuntimeError("x")).__next__())
        assert prof.calls["p"] == 1

    def test_snapshot_mean(self):
        prof = PhaseProfiler()
        prof.add("p", 0.2, calls=1)
        prof.add("p", 0.4, calls=1)
        snap = prof.snapshot()
        assert snap["p"]["calls"] == 2
        assert snap["p"]["seconds"] == pytest.approx(0.6)
        assert snap["p"]["mean_us"] == pytest.approx(0.3e6)

    def test_merge(self):
        a, b = PhaseProfiler(), PhaseProfiler()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 0.5)
        merged = merge_profiles([a, b])
        assert merged.seconds["x"] == pytest.approx(3.0)
        assert merged.calls["x"] == 2
        assert merged.seconds["y"] == pytest.approx(0.5)
