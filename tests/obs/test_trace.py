"""Span/NodeObs/Observability unit tests: ids, parenting, determinism."""

from repro.obs.trace import NodeObs, Observability, Span, SpanRef


class TestNodeObs:
    def test_disabled_by_default_and_cheap(self):
        obs = NodeObs("n0")
        assert obs.enabled is False
        assert obs.registry.enabled is False

    def test_span_ids_are_per_node_counters(self):
        obs = NodeObs("n7", enabled=True)
        a = obs.start("op", 1.0)
        b = obs.start("op", 2.0)
        assert a.span_id == "n7.1"
        assert b.span_id == "n7.2"

    def test_rootless_span_roots_its_own_trace(self):
        obs = NodeObs("n0", enabled=True)
        root = obs.start("mcast.root", 0.0)
        assert root.trace_id == root.span_id
        assert root.parent_id is None

    def test_parenting_by_span_and_by_ref(self):
        obs = NodeObs("n0", enabled=True)
        root = obs.start("root", 0.0)
        child = obs.start("child", 1.0, parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        # Cross-node: the wire form is a SpanRef.
        other = NodeObs("n1", enabled=True)
        hop = other.start("hop", 2.0, parent=child.ref(depth=3))
        assert hop.trace_id == root.trace_id
        assert hop.parent_id == child.span_id

    def test_ref_carries_depth(self):
        span = Span("t", "s", None, "x", "n0", 0.0)
        ref = span.ref(depth=4)
        assert ref == SpanRef("t", "s", 4)
        assert span.ref() == SpanRef("t", "s", 0)

    def test_end_sets_status_and_duration(self):
        obs = NodeObs("n0", enabled=True)
        span = obs.start("op", 1.0)
        assert span.duration is None
        obs.end(span, 3.5, "timeout")
        assert span.duration == 2.5
        assert span.status == "timeout"

    def test_instant_is_zero_duration(self):
        obs = NodeObs("n0", enabled=True)
        span = obs.instant("obituary", 4.0, subject="n9")
        assert span.duration == 0.0
        assert span.attrs == {"subject": "n9"}

    def test_open_traces_tracks_in_flight_only(self):
        obs = NodeObs("n0", enabled=True)
        a = obs.start("a", 0.0)
        b = obs.start("b", 0.0, parent=a)
        c = obs.start("c", 0.0)
        assert obs.open_traces() == [a.trace_id, c.trace_id]
        obs.end(a, 1.0)
        obs.end(b, 1.0)
        assert obs.open_traces() == [c.trace_id]
        assert obs.open_spans() == [c]


class TestObservability:
    def test_view_is_cached_and_inherits_enabled(self):
        root = Observability(enabled=True)
        v = root.view("k")
        assert v is root.view("k")
        assert v.enabled and v.registry.enabled

    def test_merged_spans_sorted_by_start_then_node(self):
        root = Observability(enabled=True)
        b = root.view("b")
        a = root.view("a")
        sb = b.start("x", 5.0)
        sa1 = a.start("x", 5.0)
        sa2 = a.start("x", 1.0)
        # same start: sorted node order breaks the tie deterministically
        assert root.spans() == [sa2, sa1, sb]

    def test_traces_group_by_trace_id(self):
        root = Observability(enabled=True)
        v = root.view("n")
        r = v.start("root", 0.0)
        v.start("child", 1.0, parent=r)
        v.start("other", 2.0)
        groups = root.traces()
        assert len(groups) == 2
        assert len(groups[r.trace_id]) == 2

    def test_open_traces_for_unknown_node_is_empty(self):
        assert Observability(enabled=True).open_traces("nope") == []

    def test_metrics_snapshot_aggregates_views(self):
        root = Observability(enabled=True)
        root.view("a").registry.inc("x", 2)
        root.view("b").registry.inc("x", 3)
        snap = root.metrics_snapshot()
        assert snap["nodes"] == 2
        assert snap["counters"]["x"] == 5
