"""Exporter tests: output-path preparation, JSONL/Chrome/CSV writers,
and the span schema validator."""

import json
import os

import pytest

from repro.obs.export import (
    SPAN_SCHEMA_VERSION,
    prepare_output_path,
    profile_rows,
    spans_to_chrome,
    spans_to_jsonl,
    validate_span_file,
    validate_span_lines,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.obs.trace import NodeObs


def sample_spans():
    obs = NodeObs("n0", enabled=True)
    root = obs.start("mcast.root", 0.0, kind="JOIN")
    child = obs.start("mcast.hop", 0.5, parent=root.ref(1), depth=1)
    obs.end(child, 1.0)
    obs.end(root, 2.0)
    still_open = obs.start("probe", 3.0)  # noqa: F841 - stays open
    return obs.spans


class TestPrepareOutputPath:
    def test_creates_missing_parent_dirs(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.jsonl"
        assert prepare_output_path(str(target)) == str(target)
        assert (tmp_path / "a" / "b").is_dir()

    def test_directory_target_rejected_with_clear_error(self, tmp_path):
        with pytest.raises(OSError, match="is a directory"):
            prepare_output_path(str(tmp_path))

    def test_unwritable_parent_rejected(self, tmp_path):
        locked = tmp_path / "locked"
        locked.mkdir()
        locked.chmod(0o500)
        try:
            if os.access(str(locked), os.W_OK):  # pragma: no cover - root
                pytest.skip("running as a user that ignores mode bits")
            with pytest.raises(OSError, match="not writable"):
                prepare_output_path(str(locked / "x.json"), what="metrics")
        finally:
            locked.chmod(0o700)

    def test_uncreatable_parent_rejected(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.raises(OSError, match="cannot create directory"):
            prepare_output_path(str(blocker / "sub" / "x.json"))


class TestWriters:
    def test_jsonl_round_trip_and_validation(self, tmp_path):
        path = tmp_path / "nested" / "spans.jsonl"
        write_spans_jsonl(str(path), sample_spans())
        assert validate_span_file(str(path)) == []
        lines = path.read_text().splitlines()
        assert len(lines) == 4  # version header + 3 spans
        header = json.loads(lines[0])
        assert header == {"schema": "repro.span",
                          "schema_version": SPAN_SCHEMA_VERSION}
        first = json.loads(lines[1])
        assert first["name"] == "mcast.root"
        assert first["attrs"] == {"kind": "JOIN"}

    def test_validator_rejects_future_schema_version(self):
        header = json.dumps({"schema": "repro.span",
                             "schema_version": SPAN_SCHEMA_VERSION + 1})
        problems = validate_span_lines([header])
        assert any("unsupported schema_version" in p for p in problems)

    def test_chrome_export_shape(self, tmp_path):
        doc = spans_to_chrome(sample_spans())
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} == {"X", "i"}
        complete = next(e for e in events if e["name"] == "mcast.hop")
        assert complete["ts"] == pytest.approx(0.5e6)
        assert complete["dur"] == pytest.approx(0.5e6)
        assert complete["tid"] == "n0"
        assert complete["cat"] == "mcast"
        path = tmp_path / "chrome.json"
        write_chrome_trace(str(path), sample_spans())
        assert json.loads(path.read_text())["traceEvents"]

    def test_metrics_json_and_csv(self, tmp_path):
        snap = {
            "counters": {"c": 2},
            "gauges": {"g": 1.5},
            "dists": {"d": {"count": 1, "mean": 3.0, "min": 3.0, "max": 3.0}},
        }
        jpath = tmp_path / "m.json"
        write_metrics_json(str(jpath), snap)
        assert json.loads(jpath.read_text())["counters"]["c"] == 2
        cpath = tmp_path / "m.csv"
        write_metrics_csv(str(cpath), snap)
        rows = cpath.read_text().splitlines()
        assert rows[0] == "kind,name,value"
        assert "counter,c,2" in rows

    def test_profile_rows(self):
        rows = profile_rows({"sim.dispatch": {"calls": 2, "seconds": 0.5,
                                              "mean_us": 250000.0}})
        assert rows == [["sim.dispatch", 2, 0.5, 250000.0]]


class TestValidator:
    def test_rejects_bad_json_and_missing_fields(self):
        problems = validate_span_lines(["not json", '{"span_id": 3}'])
        assert any("not valid JSON" in p for p in problems)
        assert any("missing field" in p for p in problems)

    def test_rejects_duplicate_ids(self):
        line = spans_to_jsonl(sample_spans()[:1]).strip()
        problems = validate_span_lines([line, line])
        assert any("duplicate span_id" in p for p in problems)

    def test_rejects_dangling_or_cross_trace_parent(self):
        spans = sample_spans()
        lines = spans_to_jsonl(spans).splitlines()
        # Drop the root: the hop's parent is now dangling.
        problems = validate_span_lines(lines[1:])
        assert any("not in file" in p for p in problems)
        hop = json.loads(lines[1])
        hop["trace_id"] = "someone-else"
        problems = validate_span_lines([lines[0], json.dumps(hop)])
        assert any("trace_id differs" in p for p in problems)

    def test_accepts_valid_lines(self):
        assert validate_span_lines(spans_to_jsonl(sample_spans()).splitlines()) == []
