"""MetricsRegistry/Dist/aggregation unit tests."""

import pytest

from repro.obs.metrics import (
    Dist,
    MetricsRegistry,
    aggregate_snapshots,
    flatten_snapshot,
)


class TestDist:
    def test_moments(self):
        d = Dist()
        for v in (1.0, 2.0, 3.0):
            d.observe(v)
        assert d.count == 3
        assert d.mean == pytest.approx(2.0)
        assert d.min == 1.0 and d.max == 3.0
        assert d.stdev == pytest.approx((2.0 / 3.0) ** 0.5)

    def test_empty_dist_is_safe(self):
        d = Dist()
        assert d.mean == 0.0 and d.stdev == 0.0
        assert d.as_dict()["min"] == 0.0

    def test_merge(self):
        a, b = Dist(), Dist()
        a.observe(1.0)
        b.observe(5.0)
        b.observe(3.0)
        a.merge(b)
        assert a.count == 3
        assert a.min == 1.0 and a.max == 5.0
        assert a.mean == pytest.approx(3.0)

    def test_merge_empty_is_noop(self):
        a = Dist()
        a.observe(2.0)
        a.merge(Dist())
        assert a.count == 1

    def test_dict_round_trip(self):
        d = Dist()
        d.observe(4.0)
        d.observe(9.0)
        again = Dist.from_dict(d.as_dict())
        assert again.as_dict() == d.as_dict()


class TestMetricsRegistry:
    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("a")
        reg.set_gauge("g", 1.0)
        reg.observe("d", 2.0)
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "dists": {}}

    def test_enabled_records(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("a")
        reg.inc("a", 4)
        reg.set_gauge("g", 7.0)
        reg.observe("d", 2.0)
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 5
        assert snap["gauges"]["g"] == 7.0
        assert snap["dists"]["d"]["count"] == 1

    def test_snapshot_keys_sorted(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("z")
        reg.inc("a")
        assert list(reg.snapshot()["counters"]) == ["a", "z"]


class TestAggregation:
    def test_counters_and_gauges_sum_dists_merge(self):
        a = MetricsRegistry(enabled=True)
        b = MetricsRegistry(enabled=True)
        a.inc("c", 1)
        b.inc("c", 2)
        a.set_gauge("peers", 10)
        b.set_gauge("peers", 20)
        a.observe("rtt", 0.1)
        b.observe("rtt", 0.3)
        agg = aggregate_snapshots([a.snapshot(), b.snapshot()])
        assert agg["nodes"] == 2
        assert agg["counters"]["c"] == 3
        assert agg["gauges"]["peers"] == 30
        assert agg["dists"]["rtt"]["count"] == 2
        assert agg["dists"]["rtt"]["mean"] == pytest.approx(0.2)

    def test_flatten_rows(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("c", 2)
        reg.observe("d", 5.0)
        rows = flatten_snapshot(reg.snapshot())
        assert ("counter", "c", 2) in rows
        assert ("dist", "d.mean", 5.0) in rows
        assert ("dist", "d.count", 1) in rows
