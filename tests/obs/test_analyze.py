"""Span-tree analytics: golden tree reconstruction + schema handling."""

import json

import pytest

from repro.obs.analyze import (
    SchemaError,
    analyze_spans,
    load_metrics,
    load_span_lines,
    load_spans,
)
from repro.obs.export import (
    SPAN_SCHEMA_VERSION,
    span_header_line,
    spans_to_jsonl,
)
from repro.obs.trace import Span


def _span(trace, sid, parent, name, node, start, end=None, status="ok",
          attrs=None):
    span = Span(trace, sid, parent, name, node, start, attrs=attrs or {})
    span.end = end
    span.status = status
    return span


def golden_tree_spans():
    """A hand-built 8-node JOIN multicast: root n0 fans out to n1..n3,
    n1 to n4/n5, n2 to n6, n4 to n7 — depth 3, one redirect under n2."""
    t = "t-golden"
    mk = _span
    return [
        mk(t, "s0", None, "mcast.root", "n0", 10.0, 10.1,
           attrs={"kind": "JOIN", "subject": 5, "depth": 0, "fanout": 3}),
        mk(t, "s1", "s0", "mcast.hop", "n1", 10.2, 10.3,
           attrs={"kind": "JOIN", "depth": 1, "fanout": 2}),
        mk(t, "s2", "s0", "mcast.hop", "n2", 10.2, 10.4,
           attrs={"kind": "JOIN", "depth": 1, "fanout": 1}),
        mk(t, "s3", "s0", "mcast.hop", "n3", 10.25, 10.3,
           attrs={"kind": "JOIN", "depth": 1, "fanout": 0}),
        mk(t, "s4", "s1", "mcast.hop", "n4", 10.4, 10.5,
           attrs={"kind": "JOIN", "depth": 2, "fanout": 1}),
        mk(t, "s5", "s1", "mcast.hop", "n5", 10.4, 10.45,
           attrs={"kind": "JOIN", "depth": 2, "fanout": 0}),
        mk(t, "s6", "s2", "mcast.hop", "n6", 10.5, 10.6,
           attrs={"kind": "JOIN", "depth": 2, "fanout": 0}),
        mk(t, "s7", "s4", "mcast.hop", "n7", 10.6, 10.8,
           attrs={"kind": "JOIN", "depth": 3, "fanout": 0}),
        mk(t, "s8", "s2", "mcast.redirect", "n2", 10.35, 10.35,
           attrs={"failed": 9, "replacement": 6, "bit": 2}),
    ]


def test_golden_eight_node_tree_reconstruction():
    report = analyze_spans(golden_tree_spans())
    assert len(report.trees) == 1
    tree = report.trees[0]
    assert [s.span_id for s in tree.members] == [
        "s0", "s1", "s4", "s7", "s5", "s2", "s6", "s3",
    ]  # deterministic pre-order, children sorted by (start, span_id)
    assert tree.kind == "JOIN"
    assert tree.depth == 3
    assert tree.redirects == 1
    assert tree.delivered == 8
    assert tree.undelivered == 0
    assert tree.completion_latency == pytest.approx(10.8 - 10.0)
    assert sorted(tree.fanouts()) == [0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 2.0, 3.0]

    assert report.mcast_spans_total == 8  # redirect is not a tree member
    assert report.tree_completeness == 1.0
    assert report.orphan_hops == 0
    assert report.redirect_rate == pytest.approx(1 / 8)
    assert report.per_depth() == {"0": 1, "1": 3, "2": 3, "3": 1}
    assert report.per_root() == {"n0": 1}
    kinds = report.per_kind()
    assert kinds["JOIN"]["trees"] == 1
    assert kinds["JOIN"]["depth"]["mean"] == 3.0


def test_golden_tree_round_trips_through_jsonl():
    spans = golden_tree_spans()
    text = span_header_line() + "\n" + spans_to_jsonl(spans)
    loaded, version, skipped = load_span_lines(text.splitlines())
    assert (version, skipped) == (SPAN_SCHEMA_VERSION, 0)
    direct = analyze_spans(spans).to_dict()
    reloaded = analyze_spans(loaded).to_dict()
    assert direct == reloaded


def test_orphan_hop_breaks_completeness():
    spans = golden_tree_spans()
    spans.append(_span("t-other", "s9", "missing-parent", "mcast.hop",
                       "n8", 11.0, 11.1, attrs={"depth": 1}))
    report = analyze_spans(spans)
    assert report.mcast_spans_total == 9
    assert report.orphan_hops == 1
    assert report.tree_completeness == pytest.approx(8 / 9)


def test_undelivered_counts_died_and_unclosed_hops():
    spans = golden_tree_spans()
    spans[7].status = "died"
    spans[6].end = None
    report = analyze_spans(spans)
    assert report.trees[0].undelivered == 2
    assert report.non_delivery_rate == pytest.approx(2 / 8)


def test_join_probe_obituary_aggregates():
    mk = _span
    spans = [
        mk("tj1", "j1", None, "join", "n1", 0.0, 4.0),
        mk("tj2", "j2", None, "join", "n2", 1.0, None, status="failed"),
        mk("tp1", "p1", None, "probe", "n3", 2.0, 2.5),
        mk("tp2", "p2", None, "probe", "n3", 3.0, None, status="timeout"),
        mk("tp3", "p3", None, "probe.verify", "n3", 4.0, 4.2),
        # n9 is buried at t=10 but keeps probing at t=12: false positive.
        mk("to1", "o1", None, "obituary", "n3", 10.0, 10.0,
           attrs={"subject": "n9", "via": "ring-probe"}),
        mk("tx1", "x1", None, "probe", "n9", 12.0, 12.1),
        # n8 is buried and comes back through a join: real death.
        mk("to2", "o2", None, "obituary", "n4", 10.0, 10.0,
           attrs={"subject": "n8", "via": "mcast-retry"}),
        mk("tx2", "x2", None, "join", "n8", 15.0, 18.0),
    ]
    report = analyze_spans(spans)
    assert (report.joins_ok, report.joins_failed) == (2, 1)
    assert report.join_failure_rate == pytest.approx(1 / 3)
    assert report.join_warmup.count == 2  # 4.0s warm-up + n8's rejoin
    assert report.probes == 4
    assert report.probe_timeouts == 1
    assert report.probe_rtt.count == 3
    assert report.obituaries_by_via == {"mcast-retry": 1, "ring-probe": 1}
    assert report.false_obituaries == 1
    assert report.detector_false_positive_rate == pytest.approx(0.5)


def test_headerless_log_upconverts_as_version_zero():
    spans, version, skipped = load_span_lines(
        spans_to_jsonl(golden_tree_spans()).splitlines()
    )
    assert (version, skipped) == (0, 0)
    assert len(spans) == 9


def test_future_schema_version_is_rejected():
    header = json.dumps(
        {"schema": "repro.span", "schema_version": SPAN_SCHEMA_VERSION + 1}
    )
    with pytest.raises(SchemaError, match="schema_version"):
        load_span_lines([header])


def test_malformed_records_are_skipped_and_counted():
    """A crash mid-flush leaves a truncated tail; bad lines must not
    take the rest of the log down with them."""
    good = spans_to_jsonl(golden_tree_spans())
    bad_type = json.loads(good.strip().splitlines()[0])
    bad_type["start"] = "soon"
    lines = (
        ["{nope", json.dumps({"span_id": "s1"}), json.dumps(bad_type)]
        + good.splitlines()
        + ['{"trace_id": "t-trunc", "span_id": "s99", "na']
    )
    spans, version, skipped = load_span_lines(lines)
    assert (len(spans), version, skipped) == (9, 0, 4)


def test_lines_skipped_surfaces_in_analysis(tmp_path):
    path = tmp_path / "spans.jsonl"
    path.write_text(
        span_header_line() + "\n"
        + spans_to_jsonl(golden_tree_spans())
        + '{"trace_id": "t-trunc", "span_id'  # truncated tail
    )
    from repro.obs.analyze import analyze_file

    report = analyze_file(str(path))
    assert report.lines_skipped == 1
    assert report.to_dict()["lines_skipped"] == 1


def test_load_spans_and_metrics_from_disk(tmp_path):
    spans_path = tmp_path / "spans.jsonl"
    spans_path.write_text(
        span_header_line() + "\n" + spans_to_jsonl(golden_tree_spans())
    )
    spans, version, skipped = load_spans(str(spans_path))
    assert (len(spans), version, skipped) == (9, SPAN_SCHEMA_VERSION, 0)

    good = tmp_path / "metrics.json"
    good.write_text(json.dumps({"schema_version": 1, "counters": {}}))
    assert load_metrics(str(good))["schema_version"] == 1

    future = tmp_path / "future.json"
    future.write_text(json.dumps({"schema_version": 99}))
    with pytest.raises(SchemaError, match="schema_version"):
        load_metrics(str(future))


def test_empty_log_analyzes_to_vacuous_health():
    report = analyze_spans([])
    assert report.tree_completeness == 1.0
    assert report.non_delivery_rate == 0.0
    assert report.signals()["mcast.trees"] == 0.0
