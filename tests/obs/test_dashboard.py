"""Dashboard rendering: pure frame -> text, plus the file watcher."""

import io

from repro.obs.dashboard import (
    ComparisonDashboard,
    TerminalDashboard,
    render_comparison,
    render_frame,
    render_mcast_trees,
    watch_file,
)
from repro.obs.stream import frame_line, telemetry_header_line


def _frame(**overrides):
    frame = {
        "window": 2,
        "t0": 30.0,
        "t1": 45.0,
        "final": False,
        "taps": 3,
        "spans": 12,
        "span_counts": {"probe": 10, "join": 2},
        "status_counts": {"ok": 11, "timeout": 1},
        "counters": {"mcast.received": 4},
        "mcast": {"spans": 5, "redirects": 1, "max_depth": 3, "died": 0},
        "join": {"ok": 2, "failed": 0},
        "probe": {"count": 10, "timeouts": 1},
        "obituaries": 1,
        "signals": {"probe.timeout_rate": 0.1},
        "breaches": [],
        "verdicts": [],
        "healthy": True,
        "state": {"live_nodes": 20, "levels": {"0": 4, "1": 16},
                  "mean_error_rate": 0.01},
    }
    frame.update(overrides)
    return frame


def test_render_frame_is_deterministic_text():
    text = render_frame(_frame())
    assert text == render_frame(_frame())
    assert "window 2" in text
    assert "t 30.0..45.0" in text
    assert "20 live" in text
    assert "level  0" in text and "level  1" in text
    assert "probe 10 (1 timeouts)" in text
    assert "probe.timeout_rate=0.1000" in text
    assert "breaches: none" in text
    assert "verdict" not in text  # non-final frames carry no verdict


def test_render_frame_shows_breaches_and_final_verdict():
    text = render_frame(_frame(
        final=True,
        healthy=False,
        breaches=[{"slo": "join.failure_rate", "value": 0.5,
                   "lo": None, "hi": 0.05, "ok": False}],
    ))
    assert "BREACH join.failure_rate=0.5 band=[-inf, 0.05]" in text
    assert "verdict: UNHEALTHY" in text
    healthy = render_frame(_frame(final=True, healthy=True))
    assert "verdict: HEALTHY" in healthy


def test_dashboard_appends_blocks_without_a_tty():
    out = io.StringIO()
    dash = TerminalDashboard(stream=out)
    assert dash.ansi is False  # StringIO has no isatty -> plain blocks
    dash.render(_frame(window=0))
    dash.render(_frame(window=1))
    text = out.getvalue()
    assert "\x1b[" not in text
    assert text.count("== PeerWindow telemetry") == 2
    assert dash.frames_rendered == 2


def test_dashboard_ansi_repaints_in_place():
    out = io.StringIO()
    dash = TerminalDashboard(stream=out, ansi=True)
    dash.render(_frame())
    assert out.getvalue().startswith("\x1b[H\x1b[J")


def _write_frames(path, frames, header=True):
    with open(path, "w") as fh:
        if header:
            fh.write(telemetry_header_line() + "\n")
        for frame in frames:
            fh.write(frame_line(frame) + "\n")


def test_watch_file_renders_all_frames_once(tmp_path):
    path = tmp_path / "frames.jsonl"
    _write_frames(path, [_frame(window=0), _frame(window=1, final=True)])
    out = io.StringIO()
    assert watch_file(str(path), stream=out) == 0
    assert out.getvalue().count("== PeerWindow telemetry") == 2


def test_watch_file_exit_statuses(tmp_path):
    unhealthy = tmp_path / "unhealthy.jsonl"
    _write_frames(unhealthy, [_frame(final=True, healthy=False)])
    assert watch_file(str(unhealthy), stream=io.StringIO()) == 1

    empty = tmp_path / "empty.jsonl"
    _write_frames(empty, [])
    assert watch_file(str(empty), stream=io.StringIO()) == 2

    missing = tmp_path / "missing.jsonl"
    assert watch_file(str(missing), stream=io.StringIO()) == 2


def test_watch_file_follow_stops_on_final_frame(tmp_path):
    """Follow mode with the final frame already present terminates
    without waiting out the idle budget."""
    path = tmp_path / "frames.jsonl"
    _write_frames(path, [_frame(window=0), _frame(window=1, final=True)])
    out = io.StringIO()
    assert watch_file(str(path), follow=True, interval=0.01,
                      max_idle=0.05, stream=out) == 0
    assert out.getvalue().count("== PeerWindow telemetry") == 2


def test_watch_file_follow_leaves_partial_tail_pending(tmp_path):
    """A truncated last line (writer mid-flush) is not rendered."""
    path = tmp_path / "frames.jsonl"
    _write_frames(path, [_frame(window=0)])
    with open(path, "a") as fh:
        fh.write(frame_line(_frame(window=1))[:25])  # no newline
    out = io.StringIO()
    assert watch_file(str(path), follow=True, interval=0.01,
                      max_idle=0.03, stream=out) == 0
    assert out.getvalue().count("== PeerWindow telemetry") == 1


# -- tree views ---------------------------------------------------------------


def _mcast_spans():
    """A small hand-built multicast tree: root at n0, two first-level
    hops, one duplicate second-level hop."""
    from repro.obs.trace import Observability

    obs = Observability(enabled=True)
    v0, v1, v2, v3 = (obs.view(i) for i in range(4))
    root = v0.start("mcast.root", 10.0, kind="LEAVE", subject=5, fanout=2)
    v0.end(root, 10.0)
    h1 = v1.start("mcast.hop", 10.5, parent=root.ref(1), depth=1)
    h2 = v2.start("mcast.hop", 10.6, parent=root.ref(1), depth=1)
    v2.end(h2, 10.7)
    h3 = v3.start("mcast.hop", 11.0, parent=h1.ref(2), depth=2)
    v3.end(h3, 11.1, status="duplicate")
    v1.end(h1, 11.2)
    return obs.spans()


GOLDEN_TREE = """\
tree LEAVE · members=4 delivered=3 undelivered=0 depth=2
mcast.root LEAVE subject=5 root=n0 t=10.00s
├─ n1 d1 ok
│  └─ n3 d2 duplicate
└─ n2 d1 ok"""


def test_render_mcast_trees_golden():
    """The tree view is a pure function of the span list — the rendered
    text must match this golden byte-for-byte."""
    assert render_mcast_trees(_mcast_spans()) == GOLDEN_TREE
    assert render_mcast_trees(_mcast_spans()) == GOLDEN_TREE  # stable


def test_render_mcast_trees_no_trees():
    assert render_mcast_trees([]) == "no multicast trees in span stream"


def test_render_span_tree_truncates_at_budget():
    spans = _mcast_spans()
    text = render_mcast_trees(spans, max_nodes=1)
    assert "…" in text
    assert "n3" not in text  # the budget cut the deep hop
    assert "mcast.root" in text  # the root always renders


# -- comparison view ----------------------------------------------------------


def _contestant_frames():
    ok = _frame(t1=60.0, spans=12, healthy=True,
                state={"live_nodes": 20, "mean_error_rate": 0.0125})
    bad = _frame(t1=60.0, spans=40, healthy=False,
                 breaches=[{"slo": "peerlist.error_rate", "value": 0.31}],
                 state={"live_nodes": 20, "mean_error_rate": 0.0125})
    return {"peerwindow": ok, "gossip": bad}


GOLDEN_COMPARISON = """\
== protocol tournament · t 60.0 s · seed 0 ==
contestant  nodes  error   spans  mcast  join  probe_to  breach  verdict
gossip      20     0.0125  40     5      2     1         1       BREACH 
peerwindow  20     0.0125  12     5      2     1         0       ok     
BREACH [gossip] peerlist.error_rate=0.31
------------------------------------------------------------------------"""


def test_render_comparison_golden():
    text = render_comparison(_contestant_frames(), t=60.0, seed=0)
    assert text == GOLDEN_COMPARISON


def test_comparison_dashboard_repaints():
    out = io.StringIO()
    dash = ComparisonDashboard(stream=out, ansi=True)
    dash(0, 30.0, _contestant_frames())
    dash(0, 60.0, _contestant_frames())
    assert out.getvalue().count("\x1b[H\x1b[J") == 2
    assert dash.windows_rendered == 2
    dash(0, 90.0, {})  # no frames -> no paint
    assert dash.windows_rendered == 2


# -- verdict exit & skipped-line surfacing ------------------------------------


def test_watch_file_no_verdict_exit_suppresses_failure(tmp_path):
    path = tmp_path / "unhealthy.jsonl"
    _write_frames(path, [_frame(final=True, healthy=False)])
    assert watch_file(str(path), stream=io.StringIO()) == 1
    assert watch_file(str(path), stream=io.StringIO(),
                      verdict_exit=False) == 0
    # an empty file is still exit 2 even without verdict gating
    empty = tmp_path / "empty.jsonl"
    _write_frames(empty, [])
    assert watch_file(str(empty), stream=io.StringIO(),
                      verdict_exit=False) == 2


def test_watch_file_breached_window_fails_even_if_frame_healthy(tmp_path):
    """A final frame carrying breaches must gate the exit status even if
    its own healthy bit is optimistically True."""
    path = tmp_path / "frames.jsonl"
    _write_frames(path, [_frame(
        final=True, healthy=True,
        breaches=[{"slo": "probe.timeout_rate", "value": 0.9}],
    )])
    assert watch_file(str(path), stream=io.StringIO()) == 1


def test_watch_file_surfaces_skipped_lines(tmp_path):
    path = tmp_path / "frames.jsonl"
    _write_frames(path, [_frame(window=0)])
    with open(path, "a") as fh:
        fh.write("{not json}\n")
        fh.write(frame_line(_frame(window=1, final=True)) + "\n")
    out = io.StringIO()
    assert watch_file(str(path), stream=out) == 0
    text = out.getvalue()
    assert "WARNING: skipped 1 unreadable line(s)" in text
    assert text.count("== PeerWindow telemetry") == 2
