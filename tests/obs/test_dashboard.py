"""Dashboard rendering: pure frame -> text, plus the file watcher."""

import io

from repro.obs.dashboard import TerminalDashboard, render_frame, watch_file
from repro.obs.stream import frame_line, telemetry_header_line


def _frame(**overrides):
    frame = {
        "window": 2,
        "t0": 30.0,
        "t1": 45.0,
        "final": False,
        "taps": 3,
        "spans": 12,
        "span_counts": {"probe": 10, "join": 2},
        "status_counts": {"ok": 11, "timeout": 1},
        "counters": {"mcast.received": 4},
        "mcast": {"spans": 5, "redirects": 1, "max_depth": 3, "died": 0},
        "join": {"ok": 2, "failed": 0},
        "probe": {"count": 10, "timeouts": 1},
        "obituaries": 1,
        "signals": {"probe.timeout_rate": 0.1},
        "breaches": [],
        "verdicts": [],
        "healthy": True,
        "state": {"live_nodes": 20, "levels": {"0": 4, "1": 16},
                  "mean_error_rate": 0.01},
    }
    frame.update(overrides)
    return frame


def test_render_frame_is_deterministic_text():
    text = render_frame(_frame())
    assert text == render_frame(_frame())
    assert "window 2" in text
    assert "t 30.0..45.0" in text
    assert "20 live" in text
    assert "level  0" in text and "level  1" in text
    assert "probe 10 (1 timeouts)" in text
    assert "probe.timeout_rate=0.1000" in text
    assert "breaches: none" in text
    assert "verdict" not in text  # non-final frames carry no verdict


def test_render_frame_shows_breaches_and_final_verdict():
    text = render_frame(_frame(
        final=True,
        healthy=False,
        breaches=[{"slo": "join.failure_rate", "value": 0.5,
                   "lo": None, "hi": 0.05, "ok": False}],
    ))
    assert "BREACH join.failure_rate=0.5 band=[-inf, 0.05]" in text
    assert "verdict: UNHEALTHY" in text
    healthy = render_frame(_frame(final=True, healthy=True))
    assert "verdict: HEALTHY" in healthy


def test_dashboard_appends_blocks_without_a_tty():
    out = io.StringIO()
    dash = TerminalDashboard(stream=out)
    assert dash.ansi is False  # StringIO has no isatty -> plain blocks
    dash.render(_frame(window=0))
    dash.render(_frame(window=1))
    text = out.getvalue()
    assert "\x1b[" not in text
    assert text.count("== PeerWindow telemetry") == 2
    assert dash.frames_rendered == 2


def test_dashboard_ansi_repaints_in_place():
    out = io.StringIO()
    dash = TerminalDashboard(stream=out, ansi=True)
    dash.render(_frame())
    assert out.getvalue().startswith("\x1b[H\x1b[J")


def _write_frames(path, frames, header=True):
    with open(path, "w") as fh:
        if header:
            fh.write(telemetry_header_line() + "\n")
        for frame in frames:
            fh.write(frame_line(frame) + "\n")


def test_watch_file_renders_all_frames_once(tmp_path):
    path = tmp_path / "frames.jsonl"
    _write_frames(path, [_frame(window=0), _frame(window=1, final=True)])
    out = io.StringIO()
    assert watch_file(str(path), stream=out) == 0
    assert out.getvalue().count("== PeerWindow telemetry") == 2


def test_watch_file_exit_statuses(tmp_path):
    unhealthy = tmp_path / "unhealthy.jsonl"
    _write_frames(unhealthy, [_frame(final=True, healthy=False)])
    assert watch_file(str(unhealthy), stream=io.StringIO()) == 1

    empty = tmp_path / "empty.jsonl"
    _write_frames(empty, [])
    assert watch_file(str(empty), stream=io.StringIO()) == 2

    missing = tmp_path / "missing.jsonl"
    assert watch_file(str(missing), stream=io.StringIO()) == 2


def test_watch_file_follow_stops_on_final_frame(tmp_path):
    """Follow mode with the final frame already present terminates
    without waiting out the idle budget."""
    path = tmp_path / "frames.jsonl"
    _write_frames(path, [_frame(window=0), _frame(window=1, final=True)])
    out = io.StringIO()
    assert watch_file(str(path), follow=True, interval=0.01,
                      max_idle=0.05, stream=out) == 0
    assert out.getvalue().count("== PeerWindow telemetry") == 2


def test_watch_file_follow_leaves_partial_tail_pending(tmp_path):
    """A truncated last line (writer mid-flush) is not rendered."""
    path = tmp_path / "frames.jsonl"
    _write_frames(path, [_frame(window=0)])
    with open(path, "a") as fh:
        fh.write(frame_line(_frame(window=1))[:25])  # no newline
    out = io.StringIO()
    assert watch_file(str(path), follow=True, interval=0.01,
                      max_idle=0.03, stream=out) == 0
    assert out.getvalue().count("== PeerWindow telemetry") == 1
