"""Report determinism: byte-identical output, sequential vs partitioned."""

from repro.cli import main
from repro.core.config import ProtocolConfig
from repro.obs.health import HealthSpec, evaluate
from repro.obs.report import build_report, render_json, render_markdown

from .test_analyze import golden_tree_spans


def _run_and_report(tmp_path, tag, extra_run_args):
    spans = str(tmp_path / f"spans-{tag}.jsonl")
    metrics = str(tmp_path / f"metrics-{tag}.json")
    out = str(tmp_path / f"report-{tag}.md")
    json_out = str(tmp_path / f"report-{tag}.json")
    rc = main(["obs", "run", "-n", "60", "--duration", "80", "--seed", "7",
               "--spans", spans, "--metrics", metrics] + extra_run_args)
    assert rc == 0
    rc = main(["obs", "report", spans, "--metrics", metrics,
               "--out", out, "--json", json_out])
    assert rc == 0, "seed-7 run should be healthy"
    with open(out) as fh_md, open(json_out) as fh_js:
        return fh_md.read(), fh_js.read()


def test_report_byte_identical_sequential_vs_parallel(tmp_path):
    """The acceptance determinism contract: a partitioned (parallel=4)
    run of the same seed yields the exact same health report bytes."""
    seq_md, seq_js = _run_and_report(tmp_path, "seq", [])
    par_md, par_js = _run_and_report(tmp_path, "par", ["--parallel", "4"])
    assert seq_md == par_md
    assert seq_js == par_js
    assert "**Status: HEALTHY**" in seq_md


def test_report_byte_identical_across_repeat_runs(tmp_path):
    seq1_md, seq1_js = _run_and_report(tmp_path, "a", [])
    seq2_md, seq2_js = _run_and_report(tmp_path, "b", [])
    assert seq1_md == seq2_md
    assert seq1_js == seq2_js


def _golden_doc():
    from repro.obs.analyze import analyze_spans

    analysis = analyze_spans(golden_tree_spans())
    spec = HealthSpec.default(ProtocolConfig(id_bits=16), n_nodes=8)
    verdicts = evaluate(spec, analysis.signals(), now=11.0)
    return build_report(analysis, verdicts, meta={"seed": 7, "n_nodes": 8})


def test_markdown_rendering_is_pure_and_structured():
    doc = _golden_doc()
    md = render_markdown(doc)
    assert md == render_markdown(doc)  # pure function of the doc
    assert "# PeerWindow protocol health report" in md
    assert "**Status: HEALTHY**" in md
    assert "| mcast.tree_completeness | 1 |" in md
    assert "## Multicast (§4.2)" in md
    assert "- max depth: 3" in md
    assert "| 3 | 1 |" in md  # per-level table: depth 3 has one span
    assert "### Breaches" not in md


def test_markdown_surfaces_breaches_with_traces():
    from repro.obs.analyze import analyze_spans

    analysis = analyze_spans(golden_tree_spans())
    spec = HealthSpec(slos=[HealthSpec.default(
        ProtocolConfig(id_bits=16), 8).get("mcast.tree_completeness")])
    verdicts = evaluate(
        spec, {"mcast.tree_completeness": 0.5},
        traces={"mcast.tree_completeness": ("t-golden",)},
    )
    doc = build_report(analysis, verdicts)
    md = render_markdown(doc)
    assert "**Status: UNHEALTHY**" in md
    assert "### Breaches" in md
    assert "`t-golden`" in md


def test_json_rendering_is_sorted_and_stable():
    doc = _golden_doc()
    js = render_json(doc)
    assert js == render_json(doc)
    assert js.endswith("\n")
    # sort_keys: "analysis" precedes "healthy" precedes "verdicts".
    assert js.index('"analysis"') < js.index('"healthy"') < js.index('"verdicts"')
