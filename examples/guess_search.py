#!/usr/bin/env python
"""GUESS over PeerWindow (§3): local hit rate vs collected pointers.

The paper's motivating application: GUESS answers queries by probing
locally-known peers, so its hit rate grows with the number of pointers
collected.  Here every node attaches its shared-file count to its
pointers; one node runs queries against progressively larger slices of
its peer list, regenerating the motivation curve.

Run:  python examples/guess_search.py
"""

import numpy as np

from repro import PeerWindowNetwork, ProtocolConfig
from repro.apps.guess import GuessSearch
from repro.experiments.report import print_table
from repro.workloads.attached_info import guess_attached_info


def main() -> None:
    n = 120
    config = ProtocolConfig(id_bits=32, multicast_processing_delay=0.2)
    net = PeerWindowNetwork(config=config, master_seed=12)
    rng = np.random.default_rng(0)
    infos = guess_attached_info(rng, n)
    keys = net.seed_nodes(
        [{"threshold_bps": 1e9, "attached_info": infos[i]} for i in range(n)]
    )
    net.run(until=20.0)

    node = net.node(keys[0])
    search = GuessSearch(node, universe=20_000)
    sharers = len(search.candidates())
    print(f"{n} nodes seeded; node 0 sees {sharers} peers sharing files "
          f"({n - 1 - sharers} free riders filtered out)")

    curve = search.hit_rate_vs_list_size(
        content_keys=range(300),
        list_sizes=[2, 5, 10, 25, 50, sharers],
        probe_budget=60,
    )
    print_table(
        "GUESS local hit rate vs pointers available",
        ["pointers used", "hit rate"],
        [[size, round(rate, 3)] for size, rate in curve],
    )
    rates = [r for _, r in curve]
    assert rates[-1] >= rates[0]
    print("\nThe full collected list answers locally what a small routing "
          "table cannot —\nexactly the paper's pitch for node collection.")


if __name__ == "__main__":
    main()
