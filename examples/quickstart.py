#!/usr/bin/env python
"""Quickstart: build a small PeerWindow, watch it maintain itself.

Walks through the public API end to end:

1. seed a 48-node system,
2. join a new node through the real §4.3 handshake,
3. crash a node and watch §4.1 failure detection + §4.2 multicast clean
   every peer list,
4. read the per-level report (a miniature of figures 5-8).

Run:  python examples/quickstart.py
"""

from repro import PeerWindowNetwork, ProtocolConfig
from repro.experiments.report import print_table


def main() -> None:
    config = ProtocolConfig(
        id_bits=32,
        probe_interval=5.0,
        probe_timeout=1.0,
        multicast_processing_delay=0.2,
        level_check_interval=15.0,
    )
    net = PeerWindowNetwork(config=config, master_seed=42)

    # 1. Seed 48 nodes: half effectively unconstrained, half on a tight
    #    bandwidth budget (they will sit at deeper levels).
    specs = [1e9] * 24 + [60.0] * 24
    keys = net.seed_nodes(specs, mean_lifetime_s=600.0)
    net.run(until=30.0)
    print(f"t={net.sim.now:6.1f}s  seeded {len(net.live_nodes())} nodes, "
          f"levels: {net.level_histogram()}")

    # 2. A new node joins through a bootstrap (§4.3: find top node ->
    #    estimate level -> download lists -> multicast the join).
    outcome = {}
    new_key = net.add_node(
        1e9, bootstrap=keys[3], on_done=lambda ok: outcome.setdefault("ok", ok)
    )
    net.run(until=net.sim.now + 20.0)
    joiner = net.node(new_key)
    print(f"t={net.sim.now:6.1f}s  join ok={outcome.get('ok')}  level={joiner.level}  "
          f"peer list={len(joiner.peer_list)} pointers")

    # 3. Crash a node: its ring predecessor detects the silence, reports
    #    to a top node, and the leave is multicast around the audience.
    victim = net.node(keys[7])
    victim_id = victim.node_id
    print(f"t={net.sim.now:6.1f}s  crashing node {keys[7]} ...")
    net.crash(keys[7])
    net.run(until=net.sim.now + 40.0)
    holders = sum(1 for n in net.live_nodes() if victim_id in n.peer_list)
    print(f"t={net.sim.now:6.1f}s  peer lists still holding the dead pointer: {holders}")

    # 4. The per-level report (mini figures 5-8).
    rows = [
        [
            rep.level,
            rep.count,
            round(rep.mean_size(), 1),
            round(rep.mean_error(), 5),
            round(sum(rep.in_bps) / max(len(rep.in_bps), 1), 1),
            round(sum(rep.out_bps) / max(len(rep.out_bps), 1), 1),
        ]
        for rep in net.level_reports().values()
    ]
    print_table(
        "per-level snapshot (mini figures 5-8)",
        ["level", "nodes", "mean list", "error", "in bps", "out bps"],
        rows,
    )
    print(f"\nmean peer-list error rate: {net.mean_error_rate():.5f}")


if __name__ == "__main__":
    main()
