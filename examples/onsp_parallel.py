#!/usr/bin/env python
"""The ONSP execution model: a PeerWindow split across logical processes.

The paper ran its experiments on ONSP, a *parallel* discrete-event
platform: the overlay is partitioned across MPI ranks and synchronized
conservatively.  Split PeerWindow gives the perfect partition — §4.4
parts are *wholly independent*, so each part can live on its own logical
process with zero cross-LP protocol traffic; only the measurement
aggregation crosses LP boundaries (with the mandatory lookahead, like
ONSP's Myrinet latency).

This example runs a two-part split system, one part per LP, under churn,
and aggregates health statistics across LPs through lookahead-delayed
messages.  A sequential rerun verifies the parallel execution produced
identical results — the correctness property conservative parallel DES
must preserve.

Run:  python examples/onsp_parallel.py
"""

from repro import NodeId, PeerWindowNetwork, ProtocolConfig
from repro.experiments.report import print_table
from repro.sim.parallel import ParallelSimulator


def build_part(psim, rank, part_bit, n, seed):
    """One PeerWindow part living on logical process `rank`."""
    config = ProtocolConfig(
        id_bits=12,
        probe_interval=5.0,
        probe_timeout=1.0,
        multicast_ack_timeout=1.0,
        report_timeout=2.0,
        level_check_interval=1e6,
        multicast_processing_delay=0.1,
    )
    net = PeerWindowNetwork(config=config, master_seed=seed, sim=psim.lps[rank].sim)
    rng = net.streams.get("part-ids")
    specs = []
    used = set()
    while len(specs) < n:
        value = (part_bit << 11) | int(rng.integers(0, 1 << 11))
        if value in used:
            continue
        used.add(value)
        specs.append({"threshold_bps": 1e6, "node_id": NodeId(value, 12), "level": 1})
    net.seed_nodes(specs)
    return net


def run(threads: bool):
    psim = ParallelSimulator(nranks=2, lookahead=0.5, threads=threads)
    nets = [build_part(psim, rank, rank, 16, seed=rank + 1) for rank in range(2)]

    # Rank-1 periodically ships its health stats to rank-0 (cross-LP
    # message, paying the lookahead — the only inter-part traffic).
    collected = []

    def report_stats(rank):
        net = nets[rank]
        stats = (psim.lps[rank].now, rank, len(net.live_nodes()),
                 round(net.mean_error_rate(), 6))
        if rank == 0:
            collected.append(stats)
        else:
            psim.lps[rank].send(0, psim.lookahead, collected.append, stats)
        psim.lps[rank].schedule_local(20.0, report_stats, rank)

    for rank in range(2):
        psim.lps[rank].schedule_local(20.0, report_stats, rank)

    # Churn: crash one node in each part mid-run.
    for rank in range(2):
        victims = list(nets[rank].nodes)[:1]
        psim.lps[rank].schedule_local(30.0, nets[rank].crash, victims[0])

    psim.run(until=100.0)
    final = [
        (rank, len(nets[rank].live_nodes()), round(nets[rank].mean_error_rate(), 6))
        for rank in range(2)
    ]
    return sorted(collected), final, psim.total_messages()


def main() -> None:
    seq_collected, seq_final, seq_msgs = run(threads=False)
    par_collected, par_final, par_msgs = run(threads=True)

    print_table(
        "cross-LP health reports (time, rank, live, error)",
        ["t", "rank", "live nodes", "mean error"],
        seq_collected,
    )
    print_table(
        "final per-part state",
        ["LP rank", "live nodes", "mean error"],
        seq_final,
    )
    print(f"\ncross-LP messages: {seq_msgs}")
    print(f"threaded run identical to sequential: "
          f"{seq_collected == par_collected and seq_final == par_final}")
    assert seq_final == par_final


if __name__ == "__main__":
    main()
