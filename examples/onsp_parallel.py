#!/usr/bin/env python
"""The ONSP execution model: one PeerWindow partitioned across LPs.

The paper ran its experiments on ONSP, a *parallel* discrete-event
platform: the overlay is partitioned across MPI ranks and synchronized
conservatively with a lookahead window (ONSP's Myrinet latency).  This
repo reproduces that execution model as a first-class network option:

    PeerWindowNetwork(..., parallel=4)

partitions the nodes by nodeId across 4 logical processes.  Sends whose
destination lives on another LP cross the rank boundary and pay the
lookahead; intra-LP sends stay local.  Adjacent ring neighbours land on
*different* ranks under the modular partition, so the §4.1 probe ring
alone generates steady cross-LP traffic — this is the hard case for
conservative synchronization, not the embarrassingly parallel one.

The correctness property conservative parallel DES must preserve is that
results cannot depend on the partitioning.  This example drives the same
seeded deployment (with churn) sequentially, partitioned, and partitioned
with worker threads, and checks all three agree bit-for-bit.

Run:  python examples/onsp_parallel.py
"""

from repro import PeerWindowNetwork, ProtocolConfig
from repro.experiments.report import print_table
from repro.net.latency import PairwiseLatencyModel

CONFIG = ProtocolConfig(
    id_bits=16,
    probe_interval=5.0,
    probe_timeout=1.0,
    multicast_ack_timeout=1.0,
    report_timeout=2.0,
    level_check_interval=1e6,
    multicast_processing_delay=0.1,
)


def run(parallel=None, threads=False):
    """The same seeded deployment + churn on the requested engine."""
    net = PeerWindowNetwork(
        config=CONFIG,
        master_seed=7,
        topology=PairwiseLatencyModel(),
        parallel=parallel,
        threads=threads,
    )
    keys = net.seed_nodes([1e6] * 64, forced_level=3)
    net.run(until=30.0)
    for key in keys[:3]:  # churn: three crashes mid-run
        net.crash(key)
    net.run(until=100.0)
    return net


def main() -> None:
    seq = run()
    par = run(parallel=4)
    thr = run(parallel=4, threads=True)

    summary = seq.stats_summary()
    agree = (
        par.stats_summary() == summary
        and thr.stats_summary() == summary
        and par.level_histogram() == seq.level_histogram()
    )

    print_table(
        "the same 64-node deployment on three engines",
        ["mode", "live nodes", "messages", "mean error"],
        [
            [name, int(s["live_nodes"]), int(s["transport_sent"]),
             round(s["mean_error_rate"], 6)]
            for name, s in [
                ("sequential", summary),
                ("parallel=4", par.stats_summary()),
                ("parallel=4 +threads", thr.stats_summary()),
            ]
        ],
    )
    print_table(
        "partitioned execution profile (parallel=4)",
        ["metric", "value"],
        [
            ["lookahead epochs", par.runtime.psim.epochs_run],
            ["cross-LP messages", par.runtime.psim.total_messages()["sent"]],
            ["total protocol messages", int(summary["transport_sent"])],
        ],
    )
    print(f"\nall three engines bit-for-bit identical: {agree}")
    assert agree


if __name__ == "__main__":
    main()
