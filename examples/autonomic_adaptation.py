#!/usr/bin/env python
"""Autonomy in action (§2, §5.3): levels track the environment.

Part 1 — the §5.3 sweep: the same system under different lifetime
regimes.  Short lifetimes (Lifetime_Rate 0.1) push nodes deep (the paper
reports ~10 levels, ~15% at level 0); long lifetimes collapse everyone to
level 0 and error rates fall inversely.

Part 2 — a single node's controller, live: we throttle one node's
threshold mid-run on the detailed engine and watch it shift levels, then
release the throttle and watch it climb back.

Run:  python examples/autonomic_adaptation.py
"""

from repro import PeerWindowNetwork, ProtocolConfig
from repro.experiments.report import print_table
from repro.experiments.scalable import ScalableParams
from repro.experiments.figures import fig11_adaptivity_levels, fig12_adaptivity_error


def sweep() -> None:
    base = ScalableParams(n_target=10_000, duration_s=600.0, warmup_s=200.0, seed=3)
    rates = [0.1, 0.5, 1.0, 5.0]
    points = fig11_adaptivity_levels(rates, base)
    errors = dict(fig12_adaptivity_error(rates, base))
    rows = []
    for p in points:
        fr = dict(p.level_fractions)
        rows.append([p.x, p.n_levels, round(fr.get(0, 0.0), 3),
                     round(errors[p.x], 5)])
    print_table(
        "§5.3 adaptivity — lifetime rate vs levels and error",
        ["Lifetime_Rate", "levels", "frac at L0", "mean error"],
        rows,
    )


def live_controller() -> None:
    config = ProtocolConfig(
        id_bits=32,
        probe_interval=5.0,
        probe_timeout=1.0,
        multicast_processing_delay=0.2,
        level_check_interval=10.0,
    )
    net = PeerWindowNetwork(config=config, master_seed=7)
    keys = net.seed_nodes([1e9] * 40, mean_lifetime_s=600.0)
    net.run(until=30.0)
    node = net.node(keys[0])
    trace = [(net.sim.now, node.level, len(node.peer_list))]

    print("\nthrottling node 0 to 50 bps (below its event traffic) ...")
    node.controller.set_threshold(50.0)
    node.threshold_bps = 50.0
    for _ in range(6):
        net.run(until=net.sim.now + 20.0)
        trace.append((net.sim.now, node.level, len(node.peer_list)))

    print("releasing the throttle (threshold back to 1 Gbps) ...")
    node.controller.set_threshold(1e9)
    node.threshold_bps = 1e9
    for _ in range(6):
        net.run(until=net.sim.now + 20.0)
        trace.append((net.sim.now, node.level, len(node.peer_list)))

    print_table(
        "one node's autonomic trajectory",
        ["t (s)", "level", "peer list size"],
        [[round(t, 0), lvl, size] for t, lvl, size in trace],
    )
    print(f"shifts: {node.stats.level_lowers} lower, {node.stats.level_raises} raise")


if __name__ == "__main__":
    sweep()
    live_controller()
