#!/usr/bin/env python
"""Backup partner selection from attached info (§3, Pastiche/Lillibridge).

Every node attaches its operating system to its pointers; a node then
answers, purely from its peer list:

* Pastiche's question — peers with the *same* OS (dedup-friendly), and
* Lillibridge et al.'s — a maximally *diverse* partner set (no correlated
  OS failure takes out all replicas).

Run:  python examples/backup_partners.py
"""

import numpy as np

from repro import PeerWindowNetwork, ProtocolConfig
from repro.apps.backup import BackupMatcher
from repro.experiments.report import print_table
from repro.workloads.attached_info import backup_attached_info


def main() -> None:
    n = 100
    net = PeerWindowNetwork(
        config=ProtocolConfig(id_bits=32, multicast_processing_delay=0.2),
        master_seed=9,
    )
    rng = np.random.default_rng(1)
    infos = backup_attached_info(rng, n)
    keys = net.seed_nodes(
        [{"threshold_bps": 1e9, "attached_info": infos[i]} for i in range(n)]
    )
    net.run(until=20.0)

    node = net.node(keys[0])
    matcher = BackupMatcher(node)
    print(f"local node runs {matcher.own_os!r}")
    print_table(
        "OS census visible in the peer list",
        ["os", "nodes"],
        list(matcher.os_census().items()),
    )

    same = matcher.partners(4, similar=True)
    print_table(
        "Pastiche-style partners (same OS)",
        ["node id", "os"],
        [[hex(p.node_id.value), p.attached_info["os"]] for p in same],
    )

    diverse = matcher.diversity_set(5)
    print_table(
        "Lillibridge-style partners (max OS diversity)",
        ["node id", "os"],
        [[hex(p.node_id.value), p.attached_info["os"]] for p in diverse],
    )
    oses = [p.attached_info["os"] for p in diverse]
    assert len(set(oses)) == len(oses)
    print("\nBoth questions answered locally — no probing, no directory.")


if __name__ == "__main__":
    main()
