#!/usr/bin/env python
"""The paper's common experiment (§5.1), at laptop scale.

Runs the scalable engine (the paper's centralized-bookkeeping device)
with the Gnutella workload: lognormal lifetimes averaging 135 minutes,
the measured bandwidth mix (20% of nodes below 1 Mbps), thresholds of
max(1% bandwidth, 500 bps), Poisson joins balancing departures, 1000-bit
events, 1-second relay processing over the GT-ITM transit-stub underlay.

Prints figures 5-8 as tables.  Defaults to 20,000 nodes (~10 s); pass a
node count for other scales:

    python examples/gnutella_churn.py 100000     # the paper's scale
"""

import sys

from repro.experiments.report import print_table
from repro.experiments.scalable import ScalableParams, ScalableSim


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    params = ScalableParams(n_target=n, duration_s=1200.0, warmup_s=400.0, seed=1)
    print(f"simulating a {n:,}-node common PeerWindow "
          f"({params.warmup_s + params.duration_s:.0f} simulated seconds)...")
    result = ScalableSim(params).run()

    print(f"\npopulation {result.final_population:,}  "
          f"joins {result.joins:,}  leaves {result.leaves:,}  "
          f"level changes {result.level_changes:,}  refreshes {result.refreshes}")
    print(f"measured churn rate {result.measured_event_rate:.2f} events/s  "
          f"multicast: mean depth {result.mean_tree_depth:.1f}, "
          f"max depth {result.max_tree_depth}, "
          f"root out-degree {result.mean_root_out_degree:.1f}")

    print_table(
        "figures 5-8 — per-level results",
        ["level", "nodes", "fraction", "mean list", "min", "max",
         "error rate", "in bps", "out bps"],
        [
            [r.level, r.population, round(r.fraction, 3),
             round(r.mean_list_size, 0), r.min_list_size, r.max_list_size,
             round(r.error_rate, 5), round(r.in_bps, 0), round(r.out_bps, 0)]
            for r in result.rows if r.population > 0
        ],
    )
    print(f"\nmean peer-list error rate: {result.mean_error_rate:.5f} "
          f"(paper: under 0.005)")
    frac0 = result.fraction_at_level(0)
    print(f"fraction at level 0: {frac0:.3f} (paper: more than half)")


if __name__ == "__main__":
    main()
