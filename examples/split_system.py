#!/usr/bin/env python
"""Split PeerWindow (§4.4): life without level-0 nodes.

When no node can afford level 0, the system splits into independent
parts — one per id prefix — and *"each one is a complete PeerWindow"*.
This example builds a two-part system (every node at level 1), shows the
parts operating independently (failure detection, multicast), and then
walks a cross-part join: the joiner's bootstrap lives in the other part,
so the §4.4 top-node indirection has to find a top node of the joiner's
own part.

Run:  python examples/split_system.py
"""

from repro import NodeId, PeerWindowNetwork, ProtocolConfig
from repro.experiments.report import print_table


def main() -> None:
    config = ProtocolConfig(
        id_bits=12,
        probe_interval=5.0,
        probe_timeout=1.0,
        multicast_processing_delay=0.2,
        level_check_interval=1e6,  # freeze the controller: keep the split
    )
    net = PeerWindowNetwork(config=config, master_seed=5)
    rng = net.streams.get("ids")

    specs = []
    used = set()
    for part_bit in (0, 1):
        for _ in range(12):
            value = (part_bit << 11) | int(rng.integers(0, 1 << 11))
            while value in used:
                value = (part_bit << 11) | int(rng.integers(0, 1 << 11))
            used.add(value)
            specs.append(
                {"threshold_bps": 1e6, "node_id": NodeId(value, 12), "level": 1}
            )
    keys = net.seed_nodes(specs)
    net.run(until=20.0)

    print_table(
        "part structure (prefix -> population)",
        ["part prefix", "nodes"],
        list(net.parts().items()),
    )
    independent = all(
        p.node_id.bit(0) == node.node_id.bit(0)
        for node in net.live_nodes()
        for p in node.peer_list
    )
    print(f"parts hold no cross-part pointers: {independent}")

    # Failure inside part '0' is detected and cleaned inside part '0'.
    victim = next(k for k in keys if net.node(k).node_id.bit(0) == 0)
    victim_id = net.node(victim).node_id
    print(f"\ncrashing a part-'0' node ({victim_id.bitstring()}) ...")
    net.crash(victim)
    net.run(until=net.sim.now + 40.0)
    holders = sum(1 for n in net.live_nodes() if victim_id in n.peer_list)
    print(f"peer lists still holding it: {holders}")

    # Cross-part join: bootstrap in part '1', joiner belongs to part '0'.
    bootstrap = next(k for k in keys if k in net.nodes and net.node(k).node_id.bit(0) == 1)
    joiner_id = NodeId(0b000101100101, 12)
    outcome = {}
    new = net.add_node(
        1e6,
        bootstrap=bootstrap,
        node_id=joiner_id,
        on_done=lambda ok: outcome.setdefault("ok", ok),
    )
    net.run(until=net.sim.now + 40.0)
    node = net.node(new)
    print(f"\ncross-part join via a part-'1' bootstrap: ok={outcome.get('ok')}")
    print(f"joiner level={node.level}, eigenstring={node.eigenstring!r}, "
          f"peer list={len(node.peer_list)} pointers, all in part '0': "
          f"{all(p.node_id.bit(0) == 0 for p in node.peer_list)}")
    print_table(
        "final part structure",
        ["part prefix", "nodes"],
        list(net.parts().items()),
    )


if __name__ == "__main__":
    main()
