#!/usr/bin/env python
"""A/B-testing a protocol knob the production way.

Question (straight from §4.1's design space): how much accuracy does the
30-second probe interval cost compared to 10 seconds, and is the effect
real or workload noise?

Method: paired replication under common random numbers — both
configurations run against the *same* churn (same seeds), so the
per-seed differences isolate the knob.  The paired Student-t interval
and p-value come from `repro.experiments.stats.compare`.

Run:  python examples/ab_comparison.py
"""

from dataclasses import replace

from repro.experiments.report import print_table
from repro.experiments.scalable import ScalableParams
from repro.experiments.stats import compare, replicate


def main() -> None:
    base = ScalableParams(n_target=5000, duration_s=500.0, warmup_s=150.0)
    fast = replace(base, probe_interval_s=10.0)
    slow = replace(base, probe_interval_s=30.0)
    seeds = [1, 2, 3, 4]

    print("replicating both configurations over seeds", seeds, "...")
    for name, params in (("10 s probes", fast), ("30 s probes", slow)):
        out = replicate(params, seeds)
        err = out["mean_error_rate"]
        print(f"  {name}: error {err.mean:.5f} "
              f"[{err.ci_low:.5f}, {err.ci_high:.5f}] (95% CI)")

    summary, p_value = compare(
        fast, slow, seeds, metric=lambda r: r.mean_error_rate
    )
    print_table(
        "paired difference (30 s minus 10 s probes)",
        ["metric", "value"],
        [
            ["mean Δ error rate", round(summary.mean, 6)],
            ["95% CI low", round(summary.ci_low, 6)],
            ["95% CI high", round(summary.ci_high, 6)],
            ["paired t-test p", f"{p_value:.2g}"],
        ],
    )
    if summary.ci_low > 0:
        print("\nThe slower probe interval significantly increases the "
              "peer-list error rate\n(the CI excludes zero) — failure-"
              "detection latency dominates leave staleness,\nexactly as "
              "the §5.1 error budget predicts.")
    else:
        print("\nNo significant effect detected at these settings.")


if __name__ == "__main__":
    main()
