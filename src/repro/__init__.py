"""PeerWindow reproduction (ICPP 2005).

A full, laptop-scale reproduction of *"PeerWindow: An Efficient,
Heterogeneous, and Autonomic Node Collection Protocol"* (Hu, Li, Yu,
Dong, Zheng — Tsinghua University, ICPP 2005), including every substrate
the paper depends on: the ONSP-style discrete-event platform
(:mod:`repro.sim`), the GT-ITM transit-stub underlay (:mod:`repro.net`),
the Gnutella measurement workloads (:mod:`repro.workloads`), the protocol
itself (:mod:`repro.core`), comparison baselines (:mod:`repro.baselines`),
the §3 applications (:mod:`repro.apps`) and the §5 experiment harness
(:mod:`repro.experiments`).

Quickstart::

    from repro import PeerWindowNetwork

    net = PeerWindowNetwork(master_seed=1)
    keys = net.seed_nodes([50_000.0] * 64)   # 64 nodes, 50 kbps thresholds
    net.run(until=600.0)                     # ten simulated minutes
    print(net.level_histogram())
"""

from repro.core import (
    CostModel,
    EventKind,
    EventRecord,
    NodeId,
    PeerList,
    PeerWindowNetwork,
    PeerWindowNode,
    Pointer,
    ProtocolConfig,
    TopNodeList,
    audience_set,
    covers,
    eigenstring,
    estimate_join_level,
    plan_tree,
    tree_stats,
)

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "EventKind",
    "EventRecord",
    "NodeId",
    "PeerList",
    "PeerWindowNetwork",
    "PeerWindowNode",
    "Pointer",
    "ProtocolConfig",
    "TopNodeList",
    "audience_set",
    "covers",
    "eigenstring",
    "estimate_join_level",
    "plan_tree",
    "tree_stats",
    "__version__",
]
