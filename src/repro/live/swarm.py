"""Localhost swarm: launch N node processes, merge exports, judge both
backends with one HealthSpec.

The launcher (:func:`launch_swarm`) spawns one ``repro live node``
process per node — seed first by port convention, every process handed
the same ``(master_seed, epoch, duration)`` — then waits for all of them
and merges their per-process exports:

* **spans** — concatenated in sorted node order and stably sorted by
  start time, the exact merge :meth:`repro.obs.trace.Observability.spans`
  performs in-process, so cross-process parent references resolve and
  ``validate_span_lines`` passes on the merged file;
* **metrics** — per-node registry snapshots folded with
  :func:`repro.obs.metrics.aggregate_snapshots`, then the summed
  runtime counters injected per message kind, mirroring
  :meth:`repro.core.protocol.PeerWindowNetwork.metrics_snapshot`.

:func:`run_sim_counterpart` replays the same workload shape — one
bootstrap plus staggered joins of the same (n, config) under the same
master seed — on the sequential simulator, and :func:`fidelity_rows`
lines the two signal sets up side by side: the sim-vs-real fidelity
report that "On the Cost of Participating in a Peer-to-Peer Network"
frames as the credibility test for P2P cost models.

The live metrics meta deliberately omits ``mean_error_rate``: it is an
oracle quantity (global knowledge of who is really alive) that only a
simulator has, and :func:`repro.obs.health.evaluate` skips SLOs whose
signal is absent.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import ProtocolConfig
from repro.live.clock import wall_epoch
from repro.live.node import LiveNodeSpec, live_config
from repro.live.runtime import format_address
from repro.obs import metrics as m
from repro.obs.export import (
    prepare_output_path,
    span_header_line,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.obs.metrics import aggregate_snapshots

#: Seconds of wall time granted for interpreter startup before the
#: epoch's t=0 — python + numpy imports for every process serialize on
#: small CI machines (~3-4 s each on one CPU), and every process should
#: be listening before the first join fires.  Nodes additionally shift
#: their own schedules by any lateness they observe at bind time, so an
#: underestimate here degrades the shared timeline instead of the run.
STARTUP_GRACE_PER_NODE = 4.0
STARTUP_GRACE_MIN = 5.0


def swarm_specs(
    n: int,
    base_port: int,
    master_seed: int,
    epoch: float,
    duration: float,
    host: str = "127.0.0.1",
    stagger: float = 0.4,
    settle: float = 4.0,
    request_retries: int = 1,
    telemetry_window: float = 0.0,
) -> List[LiveNodeSpec]:
    """Per-process specs: index 0 is the seed at ``base_port``; joiner
    ``i`` joins at ``stagger * i`` seconds after the epoch."""
    if n < 1:
        raise ValueError("swarm needs at least one node")
    seed_address = format_address(host, base_port)
    specs = []
    for i in range(n):
        specs.append(
            LiveNodeSpec(
                host=host,
                port=base_port + i,
                index=i,
                n_nodes=n,
                master_seed=master_seed,
                epoch=epoch,
                duration=duration,
                seed_address=None if i == 0 else seed_address,
                join_at=stagger * i,
                settle=settle,
                request_retries=request_retries,
                telemetry_window=telemetry_window,
            )
        )
    return specs


def _node_argv(spec: LiveNodeSpec, outdir: str) -> List[str]:
    argv = [
        sys.executable, "-m", "repro", "live", "node",
        "--host", spec.host,
        "--port", str(spec.port),
        "--index", str(spec.index),
        "--swarm-size", str(spec.n_nodes),
        "--seed", str(spec.master_seed),
        "--epoch", repr(spec.epoch),
        "--duration", str(spec.duration),
        "--join-at", str(spec.join_at),
        "--settle", str(spec.settle),
        "--request-retries", str(spec.request_retries),
        "--out", outdir,
    ]
    if spec.telemetry_window > 0:
        argv += ["--telemetry-window", str(spec.telemetry_window)]
    if spec.seed_address is not None:
        argv += ["--via", spec.seed_address]
    return argv


def launch_swarm(
    n: int,
    duration: float,
    outdir: str,
    base_port: int = 47000,
    master_seed: int = 0,
    host: str = "127.0.0.1",
    stagger: float = 0.4,
    settle: float = 4.0,
    request_retries: int = 1,
    epoch: Optional[float] = None,
    telemetry_window: float = 0.0,
    watch: bool = False,
) -> Dict[str, Any]:
    """Run an ``n``-process swarm and merge its exports into
    ``<outdir>/spans.jsonl`` + ``<outdir>/metrics.json`` (plus
    ``<outdir>/telemetry.jsonl`` when ``telemetry_window > 0``).

    With ``watch`` the wait loop also tails the per-node telemetry
    sidecars and renders the latest merged frame while the swarm runs.

    Returns a summary dict (per-process exit codes, join outcomes, and
    the merged artifact paths).  Raises :class:`RuntimeError` when a
    process dies or fails to export — a partial merge would quietly
    understate non-delivery, so it is refused.
    """
    if watch and telemetry_window <= 0:
        raise ValueError("watch needs telemetry_window > 0")
    if epoch is None:
        epoch = wall_epoch() + max(STARTUP_GRACE_MIN, STARTUP_GRACE_PER_NODE * n)
    specs = swarm_specs(
        n, base_port, master_seed, epoch, duration,
        host=host, stagger=stagger, settle=settle,
        request_retries=request_retries,
        telemetry_window=telemetry_window,
    )
    os.makedirs(outdir, exist_ok=True)
    env = dict(os.environ)
    procs = [
        subprocess.Popen(
            _node_argv(spec, outdir),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        for spec in specs
    ]
    # Everything is epoch-scheduled; the longest-lived process exits
    # shortly after epoch + duration, plus up to one more startup grace
    # if slow interpreter startup forced nodes to shift their schedules.
    grace = max(STARTUP_GRACE_MIN, STARTUP_GRACE_PER_NODE * n)
    budget = (epoch - wall_epoch()) + duration + grace + max(60.0, duration)
    if watch:
        _watch_swarm(procs, specs, outdir, deadline=wall_epoch() + budget)
    failures: List[str] = []
    for spec, proc in zip(specs, procs):
        try:
            _, err = proc.communicate(timeout=max(budget, 10.0))
        except subprocess.TimeoutExpired:
            proc.kill()
            _, err = proc.communicate()
            failures.append(f"node {spec.address}: timed out")
            continue
        if proc.returncode != 0:
            tail = err.decode(errors="replace").strip().splitlines()[-3:]
            failures.append(
                f"node {spec.address}: exit {proc.returncode}: " + " | ".join(tail)
            )
    if failures:
        raise RuntimeError("swarm processes failed:\n  " + "\n  ".join(failures))
    results = [_load_result(outdir, spec) for spec in specs]
    spans_path = merge_spans(outdir, specs)
    metrics_path = merge_metrics(
        outdir, results, live_config(), n, master_seed, duration
    )
    telemetry_path = None
    if telemetry_window > 0:
        telemetry_path = merge_telemetry(outdir, specs)
    return {
        "n": n,
        "joined": sum(1 for r in results if r.get("joined")),
        "spans": spans_path,
        "metrics": metrics_path,
        "telemetry": telemetry_path,
        "results": results,
    }


def _settled_frames(
    outdir: str, specs: Sequence[LiveNodeSpec]
) -> List[Dict[str, Any]]:
    """Merge whatever telemetry the sidecars have flushed so far,
    keeping only windows every node has already closed — a window some
    process has not flushed yet would render once incomplete and then
    never be repainted with the full picture."""
    from repro.obs.stream import load_frames_file, merge_node_frames

    per_node: List[Tuple[str, List[Dict[str, Any]]]] = []
    highest: List[int] = []
    for spec in specs:
        path = os.path.join(outdir, f"telemetry_{spec.port}.jsonl")
        try:
            frames, _, _ = load_frames_file(path)
        except OSError:
            return []
        if not frames:
            return []
        per_node.append((spec.address, frames))
        highest.append(max(int(f["window"]) for f in frames))
    settled = min(highest)
    merged = merge_node_frames(per_node)
    return [
        f for f in merged
        if not f.get("final") and int(f["window"]) <= settled
    ]


def _watch_swarm(
    procs: Sequence[subprocess.Popen],
    specs: Sequence[LiveNodeSpec],
    outdir: str,
    deadline: float,
    interval: float = 1.0,
) -> None:
    """Tail the per-node telemetry sidecars while the swarm runs and
    render each newly settled merged window.  Purely observational: exit
    codes, timeouts, and the authoritative merge still happen in
    :func:`launch_swarm` after every process has exited."""
    from repro.obs.dashboard import TerminalDashboard

    dashboard = TerminalDashboard()
    rendered = -1
    while any(proc.poll() is None for proc in procs):
        if wall_epoch() >= deadline:
            break
        time.sleep(interval)
        for frame in _settled_frames(outdir, specs):
            if int(frame["window"]) > rendered:
                dashboard.render(frame)
                rendered = int(frame["window"])


def merge_telemetry(outdir: str, specs: Sequence[LiveNodeSpec]) -> str:
    """Merge per-process telemetry sidecars into
    ``<outdir>/telemetry.jsonl`` with the same ordering rules as the
    span merge (sorted address order within each window index), plus a
    cumulative final frame.  Tolerant of truncated per-node tails — a
    node killed mid-flush loses at most its partial last line."""
    from repro.obs.stream import (
        frame_line,
        load_frames_file,
        merge_node_frames,
        telemetry_header_line,
    )

    per_node: List[Tuple[str, List[Dict[str, Any]]]] = []
    for spec in specs:
        frames, _, _ = load_frames_file(
            os.path.join(outdir, f"telemetry_{spec.port}.jsonl")
        )
        per_node.append((spec.address, frames))
    merged = merge_node_frames(per_node)
    out_path = os.path.join(outdir, "telemetry.jsonl")
    prepare_output_path(out_path, "merged telemetry JSONL")
    with open(out_path, "w") as fh:
        fh.write(telemetry_header_line() + "\n")
        for frame in merged:
            fh.write(frame_line(frame) + "\n")
    return out_path


def _load_result(outdir: str, spec: LiveNodeSpec) -> Dict[str, Any]:
    path = os.path.join(outdir, f"node_{spec.port}.json")
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        raise RuntimeError(f"node {spec.address} left no result ({exc})") from exc


def merge_spans(outdir: str, specs: Sequence[LiveNodeSpec]) -> str:
    """Merge per-process span exports into ``<outdir>/spans.jsonl`` with
    the deterministic ordering of
    :meth:`repro.obs.trace.Observability.spans`: files concatenated in
    sorted node order (each file already in creation order), then a
    stable sort by start time."""
    per_node: List[Tuple[str, List[Dict[str, Any]]]] = []
    for spec in specs:
        path = os.path.join(outdir, f"spans_{spec.port}.jsonl")
        spans: List[Dict[str, Any]] = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                if "span_id" in obj:
                    spans.append(obj)
        per_node.append((spec.address, spans))
    per_node.sort(key=lambda pair: str(pair[0]))
    merged: List[Dict[str, Any]] = []
    for _, spans in per_node:
        merged.extend(spans)
    merged.sort(key=lambda s: s["start"])  # stable: preserves node order
    out_path = os.path.join(outdir, "spans.jsonl")
    prepare_output_path(out_path, "merged span JSONL")
    with open(out_path, "w") as fh:
        fh.write(span_header_line() + "\n")
        for obj in merged:
            fh.write(json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n")
    return out_path


def merge_metrics(
    outdir: str,
    results: Sequence[Dict[str, Any]],
    config: ProtocolConfig,
    n: int,
    master_seed: int,
    duration: float,
) -> str:
    """Fold per-node registry snapshots and runtime counters into
    ``<outdir>/metrics.json`` with the same structure (and meta block,
    minus the oracle-only ``mean_error_rate``) as a simulator export."""
    ordered = sorted(results, key=lambda r: str(r["address"]))
    snapshot = aggregate_snapshots(r["registry"] for r in ordered)
    by_kind: Dict[str, int] = {}
    bits_by_kind: Dict[str, int] = {}
    giveups = 0
    for result in ordered:
        stats = result["transport"]
        for kind, count in stats.get("by_kind", {}).items():
            by_kind[kind] = by_kind.get(kind, 0) + count
        for kind, bits in stats.get("bytes_by_kind", {}).items():
            bits_by_kind[kind] = bits_by_kind.get(kind, 0) + bits
        giveups += int(stats.get("retransmit_giveups", 0))
    counters = snapshot["counters"]
    counters[m.LIVE_RETRANSMIT_GIVEUP] = giveups
    for kind in sorted(by_kind):
        counters[f"{m.TRANSPORT_MSGS}.{kind}"] = by_kind[kind]
    for kind in sorted(bits_by_kind):
        counters[f"{m.TRANSPORT_BITS}.{kind}"] = bits_by_kind[kind]
    meta = {
        "n_nodes": n,
        "seed": master_seed,
        "duration": duration,
        "backend": "live",
        "config": config.describe(),
    }
    out_path = os.path.join(outdir, "metrics.json")
    write_metrics_json(out_path, snapshot, meta=meta)
    return out_path


# -- the sim side of the fidelity comparison --------------------------------


def run_sim_counterpart(
    n: int,
    duration: float,
    outdir: str,
    master_seed: int = 0,
    stagger: float = 0.4,
    config: Optional[ProtocolConfig] = None,
    threshold_bps: float = 4000.0,
) -> Dict[str, Any]:
    """The same (n, config) workload on the sequential simulator: one
    bootstrap node, then staggered protocol joins, run to ``duration``.
    Exports ``<outdir>/spans.jsonl`` + ``<outdir>/metrics.json``."""
    from repro.core.protocol import PeerWindowNetwork
    from repro.net.latency import PairwiseLatencyModel

    if config is None:
        config = live_config()
    net = PeerWindowNetwork(
        config=config,
        topology=PairwiseLatencyModel(),
        master_seed=master_seed,
        observability=True,
    )
    bootstrap = net.add_first_node(threshold_bps)
    for i in range(1, n):
        net.sim.schedule(stagger * i, net.add_node, threshold_bps, bootstrap)
    net.run(until=duration)
    os.makedirs(outdir, exist_ok=True)
    spans_path = write_spans_jsonl(os.path.join(outdir, "spans.jsonl"), net.spans())
    meta = {
        "n_nodes": n,
        "seed": master_seed,
        "duration": duration,
        "backend": "sim",
        "mean_error_rate": net.mean_error_rate(),
        "config": config.describe(),
    }
    metrics_path = write_metrics_json(
        os.path.join(outdir, "metrics.json"), net.metrics_snapshot(), meta=meta
    )
    return {"n": n, "spans": spans_path, "metrics": metrics_path}


def fidelity_rows(
    sim_signals: Dict[str, float], live_signals: Dict[str, float]
) -> List[List[Any]]:
    """Side-by-side signal table for the sim-vs-real fidelity report.
    Signals present on only one side render with a ``-`` placeholder
    (e.g. the sim-only peer-list accuracy oracle)."""
    rows: List[List[Any]] = []
    for name in sorted(set(sim_signals) | set(live_signals)):
        sim_v = sim_signals.get(name)
        live_v = live_signals.get(name)
        rows.append(
            [
                name,
                "-" if sim_v is None else round(sim_v, 6),
                "-" if live_v is None else round(live_v, 6),
            ]
        )
    return rows
