"""The realtime backend's one sanctioned time source.

This module is the single place in ``repro.live`` allowed to read the
host clock (it is on detlint DET001's allowlist; everything else in the
package must take time from a :class:`RealtimeClock`).  Keeping the
wall-clock surface to one module is what lets the rest of the backend —
runtime, node harness, swarm launcher — stay lintable under the same
determinism contract as the simulator code.

:class:`RealtimeClock` maps host time onto the kernel time base:
``now`` is *seconds since a configured epoch*, driven by the asyncio
loop's monotonic clock (so a stepped wall clock cannot make time run
backwards mid-run).  Every process of a swarm is handed the same epoch
(the launcher's wall time at launch), which makes exported span
timestamps comparable across processes and to simulated runs that start
at ``t = 0``.

Timer semantics mirror :class:`repro.sim.engine.Simulator` exactly —
idempotent ``cancel()``, ``active`` until fired, periodic timers with
seeded uniform jitter — see :mod:`repro.kernel.clock` for the contract.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Optional

from repro.kernel.clock import Clock


def wall_epoch() -> float:
    """Current wall time (unix seconds) — the value a swarm launcher
    distributes to its node processes as the shared ``--epoch``."""
    return time.time()


class RealtimeTimer:
    """A one-shot timer over ``loop.call_later`` with
    :class:`~repro.sim.engine.EventHandle` semantics."""

    __slots__ = ("callback", "args", "cancelled", "done", "_handle")

    def __init__(self, callback: Callable[..., Any], args: tuple):
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.done = False
        self._handle: Optional[asyncio.TimerHandle] = None

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.done = True
        self.callback(*self.args)

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent; cancelling an
        already-fired handle is a no-op."""
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def active(self) -> bool:
        return not (self.cancelled or self.done)


class RealtimePeriodicTimer:
    """A repeating timer with the jitter semantics of
    :class:`~repro.sim.engine.PeriodicTask`: each gap is drawn uniformly
    from ``interval * [1 - jitter, 1 + jitter]`` using a seeded rng."""

    __slots__ = ("clock", "interval", "callback", "args", "jitter", "rng",
                 "_handle", "_cancelled", "fired")

    def __init__(
        self,
        clock: "RealtimeClock",
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        jitter: float = 0.0,
        rng: Any = None,
    ):
        self.clock = clock
        self.interval = interval
        self.callback = callback
        self.args = args
        self.jitter = jitter
        self.rng = rng
        self._handle: Optional[RealtimeTimer] = None
        self._cancelled = False
        self.fired = 0

    def _next_interval(self) -> float:
        if self.jitter <= 0.0:
            return self.interval
        spread = self.jitter * (2.0 * float(self.rng.random()) - 1.0)
        return self.interval * (1.0 + spread)

    def _schedule(self, delay: float) -> None:
        if not self._cancelled:
            self._handle = self.clock.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fired += 1
        self.callback(*self.args)
        self._schedule(self._next_interval())

    def cancel(self) -> None:
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def active(self) -> bool:
        return not self._cancelled


class RealtimeClock(Clock):
    """Wall-clock time and timers on an asyncio event loop.

    Parameters
    ----------
    loop:
        The event loop driving the timers; defaults to the running loop
        (construct the clock inside ``asyncio.run``).
    epoch:
        Unix time that maps to ``now == 0``.  Defaults to "now", so a
        standalone clock starts near zero like a simulator; a swarm
        passes one shared epoch to every process.
    """

    __slots__ = ("_loop", "epoch", "_offset")

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        epoch: Optional[float] = None,
    ):
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        wall = time.time()
        self.epoch = float(wall if epoch is None else epoch)
        # now = loop.time() + offset; anchored so that `wall` reads as
        # `wall - epoch`, then advanced by the loop's monotonic clock.
        self._offset = (wall - self.epoch) - self._loop.time()

    @property
    def now(self) -> float:
        """Seconds since the epoch, monotone within this process."""
        return self._loop.time() + self._offset

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> RealtimeTimer:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        timer = RealtimeTimer(callback, args)
        timer._handle = self._loop.call_later(delay, timer._fire)
        return timer

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng: Any = None,
    ) -> RealtimePeriodicTimer:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if jitter > 0.0 and rng is None:
            raise ValueError("jitter requires a seeded rng")
        task = RealtimePeriodicTimer(
            self, interval, callback, args, jitter=jitter, rng=rng
        )
        task._schedule(interval if start_delay is None else start_delay)
        return task
