"""`RealtimeRuntime`: the kernel runtime over asyncio/UDP.

One instance owns one UDP socket and hosts one (or, in tests, several)
endpoint(s).  Addresses are ``"host:port"`` strings; messages are
serialized with :mod:`repro.kernel.codec` and sent as single datagrams
(every protocol message fits well under a localhost MTU).

The delivery path reproduces :class:`repro.net.transport.Transport`'s
request/response semantics exactly — same pending-map correlation, same
late/duplicate-reply fall-through to the endpoint handler, same
``unregister`` cancellation scope — so the services observe identical
behavior on both backends (verified by
``tests/live/test_request_semantics.py``).  On top of that, ``request``
can retransmit the datagram within the timeout window
(``request_retries``): UDP loss is real here, unlike the simulator's
modeled loss.  Retransmits carry the same ``msg_id``, so a duplicate
arrival at the responder is absorbed by the protocol's own dedup
machinery, exactly like transport-level duplication in the simulator.

Malformed datagrams (schema violations, junk bytes) are counted and
dropped — a wire-format error must never crash a node.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.kernel.codec import CodecError, decode_message, encode_message
from repro.kernel.runtime import NodeRuntime
from repro.live.clock import RealtimeClock, RealtimePeriodicTimer, RealtimeTimer
from repro.net.message import Message
from repro.net.transport import Endpoint

Handler = Callable[[Message], None]

#: Upper bound on per-request datagram retransmits.  Each retransmit is
#: a full extra copy of the request on the wire, so an unbounded setting
#: turns one lossy peer into a self-inflicted traffic amplifier; the
#: protocol's own §4.2/§4.3 retries already recover from whole-request
#: timeouts a layer above.
MAX_REQUEST_RETRIES = 8


def parse_address(key: Hashable) -> Tuple[str, int]:
    """Split a live ``"host:port"`` address key."""
    if not isinstance(key, str) or ":" not in key:
        raise ValueError(f"live addresses are 'host:port' strings, got {key!r}")
    host, _, port = key.rpartition(":")
    return host, int(port)


def format_address(host: str, port: int) -> str:
    return f"{host}:{port}"


class _LivePending:
    __slots__ = ("src", "on_reply", "timeout_handle", "retry_handles")

    def __init__(
        self,
        src: Hashable,
        on_reply: Callable[[Message], None],
        timeout_handle: RealtimeTimer,
        retry_handles: List[RealtimeTimer],
    ):
        self.src = src
        self.on_reply = on_reply
        self.timeout_handle = timeout_handle
        self.retry_handles = retry_handles

    def cancel_timers(self) -> None:
        self.timeout_handle.cancel()
        for handle in self.retry_handles:
            handle.cancel()


class _UdpProtocol(asyncio.DatagramProtocol):
    def __init__(self, runtime: "RealtimeRuntime"):
        self.runtime = runtime

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self.runtime._datagram_received(data)

    def error_received(self, exc: Exception) -> None:
        self.runtime.socket_errors += 1


class RealtimeRuntime(NodeRuntime):
    """A :class:`~repro.kernel.runtime.NodeRuntime` over one UDP socket.

    Build with :meth:`create` inside a running event loop::

        runtime = await RealtimeRuntime.create(port=0, epoch=epoch)
        ... PeerWindowNode(runtime=runtime, address=runtime.address, ...)
        await runtime.close()

    Parameters
    ----------
    request_retries:
        Datagram retransmits per :meth:`request` within its timeout
        window (0 disables; the protocol's own §4.2/§4.3 retries sit a
        layer above and are always active).
    """

    def __init__(
        self,
        clock: RealtimeClock,
        host: str,
        ewma_tau: float = 120.0,
        request_retries: int = 0,
    ):
        if request_retries < 0:
            raise ValueError("request_retries must be >= 0")
        if request_retries > MAX_REQUEST_RETRIES:
            raise ValueError(
                f"request_retries must be <= {MAX_REQUEST_RETRIES} "
                f"(got {request_retries}); higher values amplify loss "
                f"into traffic storms"
            )
        self.clock = clock
        self.host = host
        self.port: Optional[int] = None
        self.ewma_tau = ewma_tau
        self.request_retries = request_retries
        self._sock: Optional[asyncio.DatagramTransport] = None
        self._endpoints: Dict[Hashable, Endpoint] = {}
        self._pending: Dict[int, _LivePending] = {}
        # Statistics; same shape as Transport.stats() so the metrics
        # injection path is backend-agnostic.
        self.sent = 0
        self.delivered = 0
        self.dropped_dead = 0
        self.malformed = 0
        self.retransmits = 0
        self.retransmit_giveups = 0
        self.socket_errors = 0
        self.by_kind: Dict[str, int] = {}
        self.bytes_by_kind: Dict[str, int] = {}

    @classmethod
    async def create(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        epoch: Optional[float] = None,
        ewma_tau: float = 120.0,
        request_retries: int = 0,
        clock: Optional[RealtimeClock] = None,
    ) -> "RealtimeRuntime":
        """Bind the socket and return a ready runtime.  ``port=0`` binds
        an ephemeral port (read it back from :attr:`address`)."""
        loop = asyncio.get_running_loop()
        if clock is None:
            clock = RealtimeClock(loop, epoch=epoch)
        self = cls(clock, host, ewma_tau=ewma_tau, request_retries=request_retries)
        sock, _ = await loop.create_datagram_endpoint(
            lambda: _UdpProtocol(self), local_addr=(host, port)
        )
        self._sock = sock
        self.port = sock.get_extra_info("sockname")[1]
        return self

    @property
    def address(self) -> str:
        """This socket's ``"host:port"`` key."""
        return format_address(self.host, self.port)

    async def close(self) -> None:
        """Cancel outstanding request timers and close the socket."""
        for pending in list(self._pending.values()):
            pending.cancel_timers()
        self._pending.clear()
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        # Let the transport's connection_lost callback run.
        await asyncio.sleep(0)

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> RealtimeTimer:
        return self.clock.schedule(delay, callback, *args)

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng: Any = None,
    ) -> RealtimePeriodicTimer:
        return self.clock.every(
            interval, callback, *args, start_delay=start_delay, jitter=jitter, rng=rng
        )

    # -- registration ------------------------------------------------------

    def register(self, key: Hashable, handler: Handler) -> Endpoint:
        if key in self._endpoints:
            raise ValueError(f"endpoint {key!r} already registered")
        parse_address(key)  # live keys must be routable host:port strings
        ep = Endpoint(key, handler, self.clock.now, self.ewma_tau)
        self._endpoints[key] = ep
        return ep

    def unregister(self, key: Hashable) -> None:
        """Detach ``key``; cancels the pending requests it originated
        (and only those), mirroring the simulated transport."""
        self._endpoints.pop(key, None)
        stale = [
            msg_id for msg_id, pending in self._pending.items() if pending.src == key
        ]
        for msg_id in stale:
            self._pending.pop(msg_id).cancel_timers()

    def is_alive(self, key: Hashable) -> bool:
        """Liveness of a *locally hosted* endpoint.  A live process has
        no global membership view, and the protocol only asks about the
        node's own address (remote liveness is what §4.1 probes are for)."""
        return key in self._endpoints

    def endpoint(self, key: Hashable) -> Endpoint:
        return self._endpoints[key]

    def __len__(self) -> int:
        return len(self._endpoints)

    # -- sends -------------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Encode and transmit one datagram.  Bills the local sender's
        bandwidth meters with the paper's modeled ``size_bits`` (the
        quantity the §2 cost model integrates), not the JSON byte count."""
        data = encode_message(msg)
        self._transmit(msg, data)

    def _transmit(self, msg: Message, data: bytes) -> None:
        self.sent += 1
        self.by_kind[msg.kind] = self.by_kind.get(msg.kind, 0) + 1
        self.bytes_by_kind[msg.kind] = (
            self.bytes_by_kind.get(msg.kind, 0) + msg.size_bits
        )
        sender = self._endpoints.get(msg.src)
        if sender is not None:
            now = self.clock.now
            sender.bw_out.record(now, msg.size_bits)
            sender.ewma_out.record(now, msg.size_bits)
        host, port = parse_address(msg.dst)
        if self._sock is None or self._sock.is_closing():
            self.socket_errors += 1
            return
        self._sock.sendto(data, (host, port))

    # -- request/response --------------------------------------------------

    def request(
        self,
        msg: Message,
        timeout: float,
        on_reply: Callable[[Message], None],
        on_timeout: Callable[[], None],
    ) -> None:
        """Send ``msg`` expecting a reply correlated by ``msg.msg_id``.

        Exactly one of ``on_reply(reply)`` / ``on_timeout()`` fires.
        With ``request_retries > 0`` the datagram is retransmitted at
        even fractions of the timeout window while no reply has arrived.
        """
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        data = encode_message(msg)
        timeout_handle = self.clock.schedule(
            timeout, self._on_timeout, msg.msg_id, on_timeout
        )
        retry_handles = [
            self.clock.schedule(
                timeout * attempt / (self.request_retries + 1),
                self._retransmit,
                msg,
                data,
            )
            for attempt in range(1, self.request_retries + 1)
        ]
        self._pending[msg.msg_id] = _LivePending(
            msg.src, on_reply, timeout_handle, retry_handles
        )
        self._transmit(msg, data)

    def _retransmit(self, msg: Message, data: bytes) -> None:
        if msg.msg_id in self._pending:
            self.retransmits += 1
            self._transmit(msg, data)

    def _on_timeout(self, msg_id: int, on_timeout: Callable[[], None]) -> None:
        pending = self._pending.pop(msg_id, None)
        if pending is not None:
            for handle in pending.retry_handles:
                handle.cancel()
            if pending.retry_handles:
                # Every scheduled retransmit fired (or was just cancelled
                # above, which only happens at the window's end) and the
                # reply still never came: the request gave up.
                self.retransmit_giveups += 1
            on_timeout()

    # -- delivery ----------------------------------------------------------

    def _datagram_received(self, data: bytes) -> None:
        try:
            msg = decode_message(data)
        except CodecError:
            self.malformed += 1
            return
        self._deliver(msg)

    def _deliver(self, msg: Message) -> None:
        ep = self._endpoints.get(msg.dst)
        if ep is None:
            self.dropped_dead += 1
            return
        now = self.clock.now
        ep.bw_in.record(now, msg.size_bits)
        ep.ewma_in.record(now, msg.size_bits)
        self.delivered += 1
        if msg.reply_to is not None:
            pending = self._pending.pop(msg.reply_to, None)
            if pending is not None:
                pending.cancel_timers()
                pending.on_reply(msg)
                return
            # Late reply after timeout (or a duplicate): fall through to
            # the endpoint handler — the protocol's stale-ack path.
        ep.handler(msg)

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot, field-compatible with
        :meth:`repro.net.transport.Transport.stats` (loss/duplication are
        physical here, so the modeled-fault counters read zero)."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "lost": 0,
            "duplicated": 0,
            "dropped_dead": self.dropped_dead,
            "dropped_zombie": 0,
            "malformed": self.malformed,
            "retransmits": self.retransmits,
            "retransmit_giveups": self.retransmit_giveups,
            "socket_errors": self.socket_errors,
            "pending_requests": len(self._pending),
            "by_kind": dict(self.by_kind),
            "bytes_by_kind": dict(self.bytes_by_kind),
        }
