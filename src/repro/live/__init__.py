"""Realtime execution backend: the protocol over real sockets.

``repro.live`` runs the unmodified PeerWindow services on asyncio/UDP —
the third instantiation of the :mod:`repro.kernel` runtime interface,
next to the sequential and partitioned simulators.  One OS process hosts
one node (:mod:`repro.live.node`); :mod:`repro.live.swarm` launches an
N-process localhost swarm, merges the per-process span/metrics exports
into the same schema-versioned files the simulator writes, and judges
both a live run and its sim counterpart against the §2-derived
HealthSpec (the sim-vs-real fidelity report).

Layering rule, enforced by detlint DET001: the **only** module here that
may read host time is :mod:`repro.live.clock`; everything else goes
through its :class:`~repro.live.clock.RealtimeClock`.
"""

from repro.live.clock import RealtimeClock, wall_epoch
from repro.live.runtime import RealtimeRuntime

__all__ = ["RealtimeClock", "RealtimeRuntime", "wall_epoch"]
