"""One live PeerWindow node in one OS process.

:func:`run_node` is the per-process harness behind ``repro live
seed|node``: bind a UDP socket, construct an unmodified
:class:`~repro.core.node.PeerWindowNode` on a
:class:`~repro.live.runtime.RealtimeRuntime`, bootstrap (seed) or join
through a bootstrap address, run until an epoch-relative deadline, then
quiesce and export the same schema-versioned span/metrics artifacts the
simulator exports.

Reproducibility discipline carries over wherever physics allows: node
ids and protocol randomness derive from ``(master_seed, index)`` via
:class:`~repro.sim.rng.RandomStreams`, and all timestamps come from the
shared-epoch :class:`~repro.live.clock.RealtimeClock`, so two swarm runs
differ only by real scheduling/latency — which is exactly the residue
the sim-vs-real fidelity report is meant to measure.

The default :func:`live_config` rescales the paper's timers (30 s probes,
60 s level checks) to localhost seconds so a sub-minute swarm exercises
every service; the sim counterpart of a fidelity comparison runs the
*same* config, keeping (n, config) identical across backends.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.config import ProtocolConfig
from repro.core.node import PeerWindowNode
from repro.core.nodeid import NodeId
from repro.live.runtime import RealtimeRuntime, format_address
from repro.obs import metrics as m
from repro.obs.export import prepare_output_path, write_spans_jsonl
from repro.obs.trace import NodeObs
from repro.sim.rng import RandomStreams

#: Version of the per-process result document (``node_<port>.json``).
NODE_RESULT_SCHEMA_VERSION = 1


def live_config(**overrides: Any) -> ProtocolConfig:
    """The paper's config with timers rescaled for a localhost swarm.

    Ratios are preserved (probe timeout < probe interval, report timeout
    > ack timeout) while absolute values shrink so that probes, level
    checks, multicasts, and acks all fire many times within a ~30 s run.
    The multicast processing delay — the paper's 1 s store-and-forward
    pause at medium nodes — shrinks to 50 ms so trees complete quickly.
    """
    base = dict(
        id_bits=32,
        probe_interval=3.0,
        probe_timeout=1.5,
        multicast_processing_delay=0.05,
        multicast_ack_timeout=2.0,
        level_check_interval=5.0,
        report_timeout=3.0,
        download_grace=5.0,
        join_retry_attempts=3,
        join_retry_backoff=1.5,
    )
    base.update(overrides)
    return ProtocolConfig(**base)


@dataclass
class LiveNodeSpec:
    """Everything one node process needs to know, CLI-serializable."""

    host: str
    port: int
    index: int
    n_nodes: int
    master_seed: int
    epoch: float
    duration: float
    seed_address: Optional[str] = None  # None -> this is the seed node
    join_at: float = 0.0
    settle: float = 4.0
    threshold_bps: float = 4000.0
    request_retries: int = 1
    #: Width (epoch seconds) of the telemetry frame windows written to
    #: the ``telemetry_<port>.jsonl`` sidecar; 0 disables the sidecar.
    telemetry_window: float = 0.0

    @property
    def address(self) -> str:
        return format_address(self.host, self.port)


def node_id_for(spec: LiveNodeSpec, config: ProtocolConfig) -> NodeId:
    """Deterministic per-index node id: every process can derive its own
    without a coordinator, and ``(master_seed, index)`` pins it."""
    streams = RandomStreams(spec.master_seed)
    return NodeId.random(streams.spawn("live-nodeids", spec.index), config.id_bits)


def node_result(
    spec: LiveNodeSpec,
    node: PeerWindowNode,
    obs: NodeObs,
    runtime: RealtimeRuntime,
    joined: Optional[bool],
) -> Dict[str, Any]:
    """The per-process result document the swarm merger consumes:
    this node's metrics-registry snapshot (gauges refreshed the same way
    :meth:`~repro.core.protocol.PeerWindowNetwork.metrics_snapshot`
    refreshes them) plus the runtime's transport-style counters."""
    reg = obs.registry
    reg.gauges = {
        k: v
        for k, v in reg.gauges.items()
        if not k.startswith((m.PEERS_SIZE_LEVEL + ".", m.NODES_LEVEL + "."))
    }
    if node.ctx.alive:
        reg.set_gauge(f"{m.PEERS_SIZE_LEVEL}.{node.level}", len(node.peer_list))
        reg.set_gauge(f"{m.NODES_LEVEL}.{node.level}", 1)
    return {
        "schema": "repro.live.node",
        "schema_version": NODE_RESULT_SCHEMA_VERSION,
        "address": spec.address,
        "index": spec.index,
        "joined": joined,
        "level": node.level if node.ctx.alive else None,
        "registry": reg.snapshot(),
        "transport": runtime.stats(),
    }


async def run_node(spec: LiveNodeSpec, outdir: str) -> Dict[str, Any]:
    """Run one node for the spec's epoch-relative schedule and export
    ``spans_<port>.jsonl`` + ``node_<port>.json`` into ``outdir``.

    Timeline (seconds since the shared epoch): wait until ``join_at``;
    bootstrap or join; run the services; at ``duration - settle`` stop
    originating (cancel the periodic loops); let in-flight trees and
    acks drain through the settle window; export and close.
    """
    config = live_config()
    runtime = await RealtimeRuntime.create(
        host=spec.host,
        port=spec.port,
        epoch=spec.epoch,
        request_retries=spec.request_retries,
    )
    address = runtime.address
    obs = NodeObs(address, enabled=True)
    streams = RandomStreams(spec.master_seed)
    node = PeerWindowNode(
        runtime=runtime,
        config=config,
        node_id=node_id_for(spec, config),
        address=address,
        threshold_bps=spec.threshold_bps,
        rng=streams.spawn("node", spec.index),
        obs=obs,
    )
    joined: Optional[bool] = None
    # Interpreter startup can overrun the launcher's pre-epoch grace on a
    # loaded machine (N processes importing numpy serialize on one CPU).
    # Shift this process's whole schedule by its observed lateness so a
    # slow start translates the timeline instead of truncating it — the
    # seed must still be listening when the last joiner's retries land.
    late = max(0.0, runtime.now)
    telemetry_task: Optional[asyncio.Task] = None
    telemetry_fh = None
    if spec.telemetry_window > 0:
        telemetry_task, telemetry_fh = _start_telemetry_sidecar(
            spec, outdir, obs, runtime
        )
    try:
        await asyncio.sleep(max(0.0, late + spec.join_at - runtime.now))
        if spec.seed_address is None:
            node.bootstrap_first(level=0)
            joined = True
        else:
            done = asyncio.get_running_loop().create_future()
            node.join_via(spec.seed_address, on_done=lambda ok: done.set_result(ok))
            joined = await done
        quiesce_at = late + spec.duration - spec.settle
        await asyncio.sleep(max(0.0, quiesce_at - runtime.now))
        if node.ctx.alive:
            node._stop_loops()
        await asyncio.sleep(max(0.0, late + spec.duration - runtime.now))
    finally:
        if telemetry_task is not None:
            telemetry_task.cancel()
            try:
                await telemetry_task
            except asyncio.CancelledError:
                pass
            if telemetry_fh is not None:
                telemetry_fh.close()
        result = node_result(spec, node, obs, runtime, joined)
        spans_path = f"{outdir}/spans_{spec.port}.jsonl"
        result_path = f"{outdir}/node_{spec.port}.json"
        write_spans_jsonl(spans_path, obs.spans)
        prepare_output_path(result_path, "live node result")
        with open(result_path, "w") as fh:
            json.dump(result, fh, sort_keys=True, indent=2)
            fh.write("\n")
        await runtime.close()
    return result


def _start_telemetry_sidecar(spec: LiveNodeSpec, outdir: str,
                             obs: NodeObs, runtime: RealtimeRuntime):
    """Tap this node's emit paths and write one telemetry frame per
    ``spec.telemetry_window`` epoch seconds to
    ``<outdir>/telemetry_<port>.jsonl``, flushed per frame so the swarm
    watcher can tail it.  Windows sit on the *shared* epoch grid (no
    lateness shift) so frames from every process merge by window index.
    """
    from repro.obs.stream import (
        NodeTap,
        WindowAggregator,
        WindowBucket,
        frame_line,
        telemetry_header_line,
    )

    tap = NodeTap(runtime.address)
    obs.sink = tap
    obs.registry.sink = tap
    path = f"{outdir}/telemetry_{spec.port}.jsonl"
    prepare_output_path(path, "telemetry frames")
    fh = open(path, "w")
    fh.write(telemetry_header_line() + "\n")
    fh.flush()
    agg = WindowAggregator(spec=None)
    window = float(spec.telemetry_window)

    async def loop() -> None:
        index = max(0, int(runtime.now // window))
        while True:
            target = (index + 1) * window
            await asyncio.sleep(max(0.05, target - runtime.now))
            bucket = WindowBucket()
            bucket.add_node(*tap.drain())
            frame = agg.close_window(index, index * window, target, bucket)
            fh.write(frame_line(frame) + "\n")
            fh.flush()
            index += 1

    return asyncio.get_running_loop().create_task(loop()), fh
