"""Network substrate: topology, latency, and simulated transport.

The paper evaluates PeerWindow over a GT-ITM Transit-Stub topology [20]
with fixed per-tier latencies; messages additionally pay a 1-second
processing delay at each multicast relay.  This package provides:

* :class:`~repro.net.topology.Topology` — the latency-oracle interface.
* :class:`~repro.net.transit_stub.TransitStubTopology` — the GT-ITM model
  with the paper's exact parameters (120 transit domains x 4 transit
  nodes, 5 stub domains per transit node x 2 stub nodes).
* :class:`~repro.net.transport.Transport` — message delivery over a
  :class:`~repro.sim.engine.Simulator` with latency, optional loss, and
  per-endpoint bandwidth metering.
* :class:`~repro.net.bandwidth.BandwidthMeter` — sliding-window bit-rate
  accounting used for the autonomic level controller and figure 8.
"""

from repro.net.bandwidth import BandwidthMeter
from repro.net.latency import PairwiseLatencyModel, UniformLatencyModel
from repro.net.message import Message
from repro.net.topology import Topology
from repro.net.transit_stub import TransitStubParams, TransitStubTopology
from repro.net.transport import (
    Endpoint,
    PartitionedTransport,
    PartitionRouter,
    Transport,
)

__all__ = [
    "BandwidthMeter",
    "Endpoint",
    "Message",
    "PairwiseLatencyModel",
    "PartitionRouter",
    "PartitionedTransport",
    "Topology",
    "TransitStubParams",
    "TransitStubTopology",
    "Transport",
    "UniformLatencyModel",
]
