"""Simulated message transport.

Delivers :class:`~repro.net.message.Message` objects between registered
endpoints over a :class:`~repro.sim.engine.Simulator`, with:

* per-pair latency from a :class:`~repro.net.topology.Topology`;
* optional independent message loss (for failure-injection tests —
  PeerWindow's ack/redirect machinery must survive it);
* chaos-injection knobs: network partitions, asymmetric per-pair loss,
  message duplication, latency inflation, and "zombie" endpoints that
  receive but never react (see the ``repro.chaos`` harness);
* per-endpoint in/out :class:`~repro.net.bandwidth.BandwidthMeter` and
  EWMA meters (the autonomic controller's sensor);
* request/response correlation with timeout callbacks (used by the
  multicast acks, the report path, and the join downloads).

Messages to endpoints that are unregistered *at delivery time* vanish
silently — exactly how a crashed peer looks from the outside.

Loss/duplication decisions are **hash-derived, not RNG-drawn**: each send
gets a per-source sequence number, and the drop decision is a pure
function of ``(loss_seed, source, sequence)``.  A transport-wide RNG
would consume draws in event-execution order, which differs between the
sequential engine and the partitioned engine (and between partitionings),
silently breaking the bit-for-bit equivalence guarantee whenever
``loss_rate > 0``.  Per-source send order *is* preserved by partitioning
(each node's sends happen in its own event order), so the hashed decision
sequence is identical in every execution mode.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.net.bandwidth import BandwidthMeter, EwmaRateMeter
from repro.net.message import Message
from repro.net.topology import Topology
from repro.sim.engine import EventHandle, Simulator

Handler = Callable[[Message], None]

_U64 = (1 << 64) - 1
#: Salts separating the independent per-message decision streams.
_SALT_LOSS = 0x1
_SALT_PAIR = 0x2
_SALT_DUP = 0x3


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a fast, well-mixed 64-bit permutation."""
    x &= _U64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _U64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _U64
    return x ^ (x >> 31)


def _key_bits(key: Hashable) -> int:
    """A platform-stable integer for an endpoint key (``hash()`` is salted
    per-process, so it cannot feed a reproducible decision)."""
    if isinstance(key, int):
        return key & _U64
    return zlib.crc32(repr(key).encode("utf-8"))


class Endpoint:
    """A registered transport endpoint with its bandwidth meters."""

    __slots__ = ("key", "handler", "bw_in", "bw_out", "ewma_in", "ewma_out")

    def __init__(self, key: Hashable, handler: Handler, now: float, ewma_tau: float):
        self.key = key
        self.handler = handler
        self.bw_in = BandwidthMeter(t0=now)
        self.bw_out = BandwidthMeter(t0=now)
        self.ewma_in = EwmaRateMeter(tau=ewma_tau, t0=now)
        self.ewma_out = EwmaRateMeter(tau=ewma_tau, t0=now)


class _PendingRequest:
    __slots__ = ("src", "on_reply", "timeout_handle")

    def __init__(
        self,
        src: Hashable,
        on_reply: Callable[[Message], None],
        timeout_handle: EventHandle,
    ):
        self.src = src
        self.on_reply = on_reply
        self.timeout_handle = timeout_handle


class Transport:
    """Latency/loss message fabric over a simulator."""

    def __init__(
        self,
        sim: Simulator,
        topology: Optional[Topology],
        loss_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        ewma_tau: float = 120.0,
        loss_seed: int = 0,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.topology = topology
        self.loss_rate = float(loss_rate)
        #: Kept for API compatibility; loss decisions are hash-derived
        #: from ``loss_seed`` (see module docstring), not drawn from here.
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.loss_seed = int(loss_seed)
        self.ewma_tau = ewma_tau
        self._endpoints: Dict[Hashable, Endpoint] = {}
        self._pending: Dict[int, _PendingRequest] = {}
        # Partition injection: endpoint key -> partition group id.  Keys
        # not in the map are in the implicit group None; messages between
        # different groups are dropped while a partition is active.
        self._partition: Dict[Hashable, int] = {}
        # Chaos knobs (all off by default; see `repro.chaos`).
        self._pair_loss: Dict[Tuple[Hashable, Hashable], float] = {}
        self.duplication_rate = 0.0
        self.latency_scale = 1.0
        self._latency_extra: Dict[Hashable, float] = {}
        self._zombies: set = set()
        # Per-source send sequence (feeds the hashed loss decision).
        self._send_seq: Dict[Hashable, int] = {}
        self._src_bits: Dict[Hashable, int] = {}
        # Statistics
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.duplicated = 0
        self.dropped_dead = 0
        self.dropped_partition = 0
        self.dropped_zombie = 0
        self.by_kind: Dict[str, int] = {}
        self.bytes_by_kind: Dict[str, int] = {}
        #: Optional :class:`repro.obs.profile.PhaseProfiler` timing the
        #: receiver-handler phase (wall clock; see ``repro.obs``).
        self.profiler = None

    # -- registration -------------------------------------------------------

    def register(self, key: Hashable, handler: Handler) -> Endpoint:
        if key in self._endpoints:
            raise ValueError(f"endpoint {key!r} already registered")
        self.topology.attach(key)
        ep = Endpoint(key, handler, self.sim.now, self.ewma_tau)
        self._endpoints[key] = ep
        return ep

    def unregister(self, key: Hashable) -> None:
        """Remove an endpoint.

        Outstanding request timeouts *originated by* the removed endpoint
        are cancelled: the departed node's callbacks are dead weight, and
        leaving their timers in the queue makes long churny runs accumulate
        garbage events.  Timeouts of requests *sent to* the removed key are
        untouched — they are exactly how live peers detect the departure.
        """
        self._endpoints.pop(key, None)
        self.topology.detach(key)
        stale = [
            msg_id for msg_id, pending in self._pending.items() if pending.src == key
        ]
        for msg_id in stale:
            self._pending.pop(msg_id).timeout_handle.cancel()

    def endpoint(self, key: Hashable) -> Endpoint:
        return self._endpoints[key]

    def is_alive(self, key: Hashable) -> bool:
        return key in self._endpoints

    def __len__(self) -> int:
        return len(self._endpoints)

    # -- failure injection -----------------------------------------------------

    def partition(self, *groups: "list") -> None:
        """Install a network partition: messages between different groups
        are silently dropped (both directions) until :meth:`heal`.

        Endpoints not named in any group form one extra implicit side.
        Message loss is applied at delivery time, so packets already in
        flight when the partition starts are also cut.

        Groups are validated: a key named in more than one group, or a key
        that is not a registered endpoint, raises :class:`ValueError`
        naming the offending keys (a silently-accepted typo would make the
        "partition" a no-op for that node and the test a lie).
        """
        mapping: Dict[Hashable, int] = {}
        overlapping: List[Hashable] = []
        unregistered: List[Hashable] = []
        for gid, members in enumerate(groups):
            for key in members:
                if key in mapping and mapping[key] != gid:
                    overlapping.append(key)
                if key not in self._endpoints:
                    unregistered.append(key)
                mapping[key] = gid
        problems = []
        if overlapping:
            problems.append(f"keys in more than one group: {sorted(set(overlapping), key=repr)}")
        if unregistered:
            problems.append(f"keys not registered: {sorted(set(unregistered), key=repr)}")
        if problems:
            raise ValueError("invalid partition groups: " + "; ".join(problems))
        self._partition = mapping

    def heal(self) -> None:
        """Remove the partition; traffic flows normally again."""
        self._partition.clear()

    @property
    def partitioned(self) -> bool:
        return bool(self._partition)

    def _same_side(self, a: Hashable, b: Hashable) -> bool:
        if not self._partition:
            return True
        return self._partition.get(a) == self._partition.get(b)

    def set_pair_loss(self, src: Hashable, dst: Hashable, rate: float) -> None:
        """Directed (asymmetric) loss on the ``src -> dst`` link; the
        reverse direction is unaffected.  ``rate=0`` removes the entry."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("pair loss rate must be in [0, 1]")
        if rate == 0.0:
            self._pair_loss.pop((src, dst), None)
        else:
            self._pair_loss[(src, dst)] = float(rate)

    def clear_pair_loss(self) -> None:
        self._pair_loss.clear()

    def set_duplication(self, rate: float) -> None:
        """Deliver a fraction of sends twice (same latency; the protocol's
        sequence/dedup machinery must absorb the copy)."""
        if not 0.0 <= rate < 1.0:
            raise ValueError("duplication rate must be in [0, 1)")
        self.duplication_rate = float(rate)

    def set_latency_scale(self, scale: float) -> None:
        """Multiply every one-way delay (a network-wide latency spike)."""
        if scale < 1.0:
            raise ValueError("latency scale must be >= 1 (lookahead contract)")
        self.latency_scale = float(scale)

    def set_endpoint_delay(self, key: Hashable, extra: float) -> None:
        """Extra one-way delay on every message to or from ``key`` (a slow
        node).  ``extra=0`` removes the entry."""
        if extra < 0.0:
            raise ValueError("endpoint delay must be >= 0")
        if extra == 0.0:
            self._latency_extra.pop(key, None)
        else:
            self._latency_extra[key] = float(extra)

    def set_zombie(self, key: Hashable, zombie: bool = True) -> None:
        """Mark ``key`` as a zombie: it stays registered (so it does not
        look departed) and still *receives* traffic, but its handler never
        runs and nothing it sends leaves the host — a hung process, not a
        crashed one."""
        if zombie:
            self._zombies.add(key)
        else:
            self._zombies.discard(key)

    def is_zombie(self, key: Hashable) -> bool:
        return key in self._zombies

    # -- hashed per-message decisions -----------------------------------------

    def _decision(self, src_bits: int, seq: int, salt: int) -> float:
        """Uniform [0, 1) value, a pure function of (seed, source, per-
        source sequence, salt) — identical in every execution mode."""
        h = _mix64(self.loss_seed * 0x9E3779B97F4A7C15 + salt)
        h = _mix64(h ^ _mix64(src_bits))
        h = _mix64(h ^ seq)
        return h / 2.0**64

    def _src_key_bits(self, src: Hashable) -> int:
        bits = self._src_bits.get(src)
        if bits is None:
            bits = self._src_bits[src] = _key_bits(src)
        return bits

    # -- plain sends ----------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Fire-and-forget send.  Bills the sender now; delivery (and the
        receiver's bill) happens after the topology latency, unless the
        message is lost or the destination has died."""
        seq = self._send_seq.get(msg.src, 0)
        self._send_seq[msg.src] = seq + 1
        self.sent += 1
        self.by_kind[msg.kind] = self.by_kind.get(msg.kind, 0) + 1
        self.bytes_by_kind[msg.kind] = (
            self.bytes_by_kind.get(msg.kind, 0) + msg.size_bits
        )
        if self._zombies and msg.src in self._zombies:
            # A hung process emits nothing (its timers still fire, but the
            # traffic never leaves the host).
            self.dropped_zombie += 1
            return
        sender = self._endpoints.get(msg.src)
        now = self.sim.now
        if sender is not None:
            sender.bw_out.record(now, msg.size_bits)
            sender.ewma_out.record(now, msg.size_bits)
        src_bits = None
        if self.loss_rate > 0.0:
            src_bits = self._src_key_bits(msg.src)
            if self._decision(src_bits, seq, _SALT_LOSS) < self.loss_rate:
                self.lost += 1
                return
        if self._pair_loss:
            pair_rate = self._pair_loss.get((msg.src, msg.dst))
            if pair_rate is not None:
                if src_bits is None:
                    src_bits = self._src_key_bits(msg.src)
                if self._decision(src_bits, seq, _SALT_PAIR) < pair_rate:
                    self.lost += 1
                    return
        delay = self._route(msg)
        if delay is None:
            self.dropped_dead += 1
            return
        if self.latency_scale != 1.0:
            delay *= self.latency_scale
        if self._latency_extra:
            delay += self._latency_extra.get(msg.src, 0.0)
            delay += self._latency_extra.get(msg.dst, 0.0)
        self._dispatch(msg, delay)
        if self.duplication_rate > 0.0:
            if src_bits is None:
                src_bits = self._src_key_bits(msg.src)
            if self._decision(src_bits, seq, _SALT_DUP) < self.duplication_rate:
                self.duplicated += 1
                self._dispatch(msg, delay)

    def _route(self, msg: Message) -> Optional[float]:
        """One-way delay for ``msg``, or None when it must be dropped
        (sender or destination already gone).  Subclasses override this to
        change routing semantics."""
        try:
            return self.topology.latency(msg.src, msg.dst)
        except KeyError:
            # Destination (or source) not attached: already gone.
            return None

    def _dispatch(self, msg: Message, delay: float) -> None:
        """Schedule the delivery ``delay`` seconds from now.  Subclasses
        override this to route deliveries to other event queues."""
        self.sim.schedule(delay, self._deliver, msg)

    def _deliver(self, msg: Message) -> None:
        ep = self._endpoints.get(msg.dst)
        if ep is None:
            self.dropped_dead += 1
            return
        if not self._same_side(msg.src, msg.dst):
            self.dropped_partition += 1
            return
        now = self.sim.now
        if self._zombies and msg.dst in self._zombies:
            # The bits arrive (and are billed), but the hung process never
            # reads them: no handler, no reply correlation.
            ep.bw_in.record(now, msg.size_bits)
            ep.ewma_in.record(now, msg.size_bits)
            self.dropped_zombie += 1
            return
        ep.bw_in.record(now, msg.size_bits)
        ep.ewma_in.record(now, msg.size_bits)
        self.delivered += 1
        if msg.reply_to is not None:
            pending = self._pending.pop(msg.reply_to, None)
            if pending is not None:
                pending.timeout_handle.cancel()
                if self.profiler is not None:
                    self.profiler.time("transport.deliver", pending.on_reply, msg)
                else:
                    pending.on_reply(msg)
                return
            # Late reply after timeout: fall through to the endpoint handler
            # so protocols can still use the information (stale-ack path).
        if self.profiler is not None:
            self.profiler.time("transport.deliver", ep.handler, msg)
            return
        ep.handler(msg)

    # -- request/response -------------------------------------------------------

    def request(
        self,
        msg: Message,
        timeout: float,
        on_reply: Callable[[Message], None],
        on_timeout: Callable[[], None],
    ) -> None:
        """Send ``msg`` expecting a reply correlated by ``msg.msg_id``.

        Exactly one of ``on_reply(reply)`` / ``on_timeout()`` fires.
        """
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        handle = self.sim.schedule(timeout, self._on_timeout, msg.msg_id, on_timeout)
        self._pending[msg.msg_id] = _PendingRequest(msg.src, on_reply, handle)
        self.send(msg)

    def _on_timeout(self, msg_id: int, on_timeout: Callable[[], None]) -> None:
        if self._pending.pop(msg_id, None) is not None:
            on_timeout()

    # -- introspection -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "lost": self.lost,
            "duplicated": self.duplicated,
            "dropped_dead": self.dropped_dead,
            "dropped_zombie": self.dropped_zombie,
            "pending_requests": len(self._pending),
            "by_kind": dict(self.by_kind),
            "bytes_by_kind": dict(self.bytes_by_kind),
        }


class PartitionRouter:
    """What :class:`PartitionedTransport` needs from its coordinator.

    Implemented by :class:`repro.core.runtime.PartitionedRuntime`; kept as
    a three-method contract here so ``net`` stays independent of the
    parallel engine.
    """

    def rank_of(self, key: Hashable) -> Optional[int]:  # pragma: no cover - contract
        """Logical-process rank owning ``key`` (None if never registered)."""
        raise NotImplementedError

    def pair_latency(self, a: Hashable, b: Hashable) -> float:  # pragma: no cover
        """Pure pairwise one-way latency (no liveness precondition)."""
        raise NotImplementedError

    def cross_send(
        self, src_rank: int, dest_rank: int, delay: float, msg: Message
    ) -> None:  # pragma: no cover - contract
        """Ship ``msg`` to ``dest_rank``'s transport, honouring lookahead."""
        raise NotImplementedError


class PartitionedTransport(Transport):
    """One logical process's share of a partitioned transport fabric.

    Each LP owns one instance: a private endpoint map, pending-request map,
    and counter set, all mutated only from its own event queue — which is
    what makes threaded epoch execution race-free.  Differences from the
    sequential :class:`Transport`:

    * routing uses the router's *pure* pairwise latency, so computing a
      delay never touches shared liveness state; the is-the-destination-dead
      check moves to delivery time inside the destination LP, where it is
      correctly ordered against the destination's own departure.  Totals
      (``delivered``/``dropped_dead``) match sequential execution exactly —
      only the *instant* the drop is counted moves;
    * the (LP-local) sender-liveness check replaces the topology KeyError
      probe, so a departed node's straggler callbacks still cannot emit
      traffic;
    * endpoints do not attach/detach the shared topology object — that
      would be a cross-thread mutation.
    """

    def __init__(
        self,
        sim: Simulator,
        rank: int,
        router: PartitionRouter,
        loss_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        ewma_tau: float = 120.0,
        loss_seed: int = 0,
    ):
        super().__init__(
            sim,
            topology=None,
            loss_rate=loss_rate,
            rng=rng,
            ewma_tau=ewma_tau,
            loss_seed=loss_seed,
        )
        self.rank = rank
        self.router = router

    # -- registration: no shared-topology mutation ------------------------

    def register(self, key: Hashable, handler: Handler) -> Endpoint:
        if key in self._endpoints:
            raise ValueError(f"endpoint {key!r} already registered")
        ep = Endpoint(key, handler, self.sim.now, self.ewma_tau)
        self._endpoints[key] = ep
        return ep

    def unregister(self, key: Hashable) -> None:
        self._endpoints.pop(key, None)
        stale = [
            msg_id for msg_id, pending in self._pending.items() if pending.src == key
        ]
        for msg_id in stale:
            self._pending.pop(msg_id).timeout_handle.cancel()

    # -- routing ----------------------------------------------------------

    def _route(self, msg: Message) -> Optional[float]:
        if msg.src not in self._endpoints:
            return None  # departed sender (LP-local check)
        if self.router.rank_of(msg.dst) is None:
            return None  # address never existed
        return self.router.pair_latency(msg.src, msg.dst)

    def _dispatch(self, msg: Message, delay: float) -> None:
        dest_rank = self.router.rank_of(msg.dst)
        if dest_rank == self.rank:
            self.sim.schedule(delay, self._deliver, msg)
        else:
            self.router.cross_send(self.rank, dest_rank, delay, msg)
