"""Simulated message transport.

Delivers :class:`~repro.net.message.Message` objects between registered
endpoints over a :class:`~repro.sim.engine.Simulator`, with:

* per-pair latency from a :class:`~repro.net.topology.Topology`;
* optional independent message loss (for failure-injection tests —
  PeerWindow's ack/redirect machinery must survive it);
* per-endpoint in/out :class:`~repro.net.bandwidth.BandwidthMeter` and
  EWMA meters (the autonomic controller's sensor);
* request/response correlation with timeout callbacks (used by the
  multicast acks, the report path, and the join downloads).

Messages to endpoints that are unregistered *at delivery time* vanish
silently — exactly how a crashed peer looks from the outside.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional

import numpy as np

from repro.net.bandwidth import BandwidthMeter, EwmaRateMeter
from repro.net.message import Message
from repro.net.topology import Topology
from repro.sim.engine import EventHandle, Simulator

Handler = Callable[[Message], None]


class Endpoint:
    """A registered transport endpoint with its bandwidth meters."""

    __slots__ = ("key", "handler", "bw_in", "bw_out", "ewma_in", "ewma_out")

    def __init__(self, key: Hashable, handler: Handler, now: float, ewma_tau: float):
        self.key = key
        self.handler = handler
        self.bw_in = BandwidthMeter(t0=now)
        self.bw_out = BandwidthMeter(t0=now)
        self.ewma_in = EwmaRateMeter(tau=ewma_tau, t0=now)
        self.ewma_out = EwmaRateMeter(tau=ewma_tau, t0=now)


class _PendingRequest:
    __slots__ = ("src", "on_reply", "timeout_handle")

    def __init__(
        self,
        src: Hashable,
        on_reply: Callable[[Message], None],
        timeout_handle: EventHandle,
    ):
        self.src = src
        self.on_reply = on_reply
        self.timeout_handle = timeout_handle


class Transport:
    """Latency/loss message fabric over a simulator."""

    def __init__(
        self,
        sim: Simulator,
        topology: Optional[Topology],
        loss_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        ewma_tau: float = 120.0,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.topology = topology
        self.loss_rate = float(loss_rate)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.ewma_tau = ewma_tau
        self._endpoints: Dict[Hashable, Endpoint] = {}
        self._pending: Dict[int, _PendingRequest] = {}
        # Partition injection: endpoint key -> partition group id.  Keys
        # not in the map are in the implicit group None; messages between
        # different groups are dropped while a partition is active.
        self._partition: Dict[Hashable, int] = {}
        # Statistics
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.dropped_dead = 0
        self.dropped_partition = 0
        self.by_kind: Dict[str, int] = {}

    # -- registration -------------------------------------------------------

    def register(self, key: Hashable, handler: Handler) -> Endpoint:
        if key in self._endpoints:
            raise ValueError(f"endpoint {key!r} already registered")
        self.topology.attach(key)
        ep = Endpoint(key, handler, self.sim.now, self.ewma_tau)
        self._endpoints[key] = ep
        return ep

    def unregister(self, key: Hashable) -> None:
        """Remove an endpoint.

        Outstanding request timeouts *originated by* the removed endpoint
        are cancelled: the departed node's callbacks are dead weight, and
        leaving their timers in the queue makes long churny runs accumulate
        garbage events.  Timeouts of requests *sent to* the removed key are
        untouched — they are exactly how live peers detect the departure.
        """
        self._endpoints.pop(key, None)
        self.topology.detach(key)
        stale = [
            msg_id for msg_id, pending in self._pending.items() if pending.src == key
        ]
        for msg_id in stale:
            self._pending.pop(msg_id).timeout_handle.cancel()

    def endpoint(self, key: Hashable) -> Endpoint:
        return self._endpoints[key]

    def is_alive(self, key: Hashable) -> bool:
        return key in self._endpoints

    def __len__(self) -> int:
        return len(self._endpoints)

    # -- failure injection -----------------------------------------------------

    def partition(self, *groups: "list") -> None:
        """Install a network partition: messages between different groups
        are silently dropped (both directions) until :meth:`heal`.

        Endpoints not named in any group form one extra implicit side.
        Message loss is applied at delivery time, so packets already in
        flight when the partition starts are also cut.
        """
        self._partition.clear()
        for gid, members in enumerate(groups):
            for key in members:
                self._partition[key] = gid

    def heal(self) -> None:
        """Remove the partition; traffic flows normally again."""
        self._partition.clear()

    @property
    def partitioned(self) -> bool:
        return bool(self._partition)

    def _same_side(self, a: Hashable, b: Hashable) -> bool:
        if not self._partition:
            return True
        return self._partition.get(a) == self._partition.get(b)

    # -- plain sends ----------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Fire-and-forget send.  Bills the sender now; delivery (and the
        receiver's bill) happens after the topology latency, unless the
        message is lost or the destination has died."""
        sender = self._endpoints.get(msg.src)
        now = self.sim.now
        if sender is not None:
            sender.bw_out.record(now, msg.size_bits)
            sender.ewma_out.record(now, msg.size_bits)
        self.sent += 1
        self.by_kind[msg.kind] = self.by_kind.get(msg.kind, 0) + 1
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.lost += 1
            return
        delay = self._route(msg)
        if delay is None:
            self.dropped_dead += 1
            return
        self._dispatch(msg, delay)

    def _route(self, msg: Message) -> Optional[float]:
        """One-way delay for ``msg``, or None when it must be dropped
        (sender or destination already gone).  Subclasses override this to
        change routing semantics."""
        try:
            return self.topology.latency(msg.src, msg.dst)
        except KeyError:
            # Destination (or source) not attached: already gone.
            return None

    def _dispatch(self, msg: Message, delay: float) -> None:
        """Schedule the delivery ``delay`` seconds from now.  Subclasses
        override this to route deliveries to other event queues."""
        self.sim.schedule(delay, self._deliver, msg)

    def _deliver(self, msg: Message) -> None:
        ep = self._endpoints.get(msg.dst)
        if ep is None:
            self.dropped_dead += 1
            return
        if not self._same_side(msg.src, msg.dst):
            self.dropped_partition += 1
            return
        now = self.sim.now
        ep.bw_in.record(now, msg.size_bits)
        ep.ewma_in.record(now, msg.size_bits)
        self.delivered += 1
        if msg.reply_to is not None:
            pending = self._pending.pop(msg.reply_to, None)
            if pending is not None:
                pending.timeout_handle.cancel()
                pending.on_reply(msg)
                return
            # Late reply after timeout: fall through to the endpoint handler
            # so protocols can still use the information (stale-ack path).
        ep.handler(msg)

    # -- request/response -------------------------------------------------------

    def request(
        self,
        msg: Message,
        timeout: float,
        on_reply: Callable[[Message], None],
        on_timeout: Callable[[], None],
    ) -> None:
        """Send ``msg`` expecting a reply correlated by ``msg.msg_id``.

        Exactly one of ``on_reply(reply)`` / ``on_timeout()`` fires.
        """
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        handle = self.sim.schedule(timeout, self._on_timeout, msg.msg_id, on_timeout)
        self._pending[msg.msg_id] = _PendingRequest(msg.src, on_reply, handle)
        self.send(msg)

    def _on_timeout(self, msg_id: int, on_timeout: Callable[[], None]) -> None:
        if self._pending.pop(msg_id, None) is not None:
            on_timeout()

    # -- introspection -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "lost": self.lost,
            "dropped_dead": self.dropped_dead,
            "pending_requests": len(self._pending),
            "by_kind": dict(self.by_kind),
        }


class PartitionRouter:
    """What :class:`PartitionedTransport` needs from its coordinator.

    Implemented by :class:`repro.core.runtime.PartitionedRuntime`; kept as
    a three-method contract here so ``net`` stays independent of the
    parallel engine.
    """

    def rank_of(self, key: Hashable) -> Optional[int]:  # pragma: no cover - contract
        """Logical-process rank owning ``key`` (None if never registered)."""
        raise NotImplementedError

    def pair_latency(self, a: Hashable, b: Hashable) -> float:  # pragma: no cover
        """Pure pairwise one-way latency (no liveness precondition)."""
        raise NotImplementedError

    def cross_send(
        self, src_rank: int, dest_rank: int, delay: float, msg: Message
    ) -> None:  # pragma: no cover - contract
        """Ship ``msg`` to ``dest_rank``'s transport, honouring lookahead."""
        raise NotImplementedError


class PartitionedTransport(Transport):
    """One logical process's share of a partitioned transport fabric.

    Each LP owns one instance: a private endpoint map, pending-request map,
    and counter set, all mutated only from its own event queue — which is
    what makes threaded epoch execution race-free.  Differences from the
    sequential :class:`Transport`:

    * routing uses the router's *pure* pairwise latency, so computing a
      delay never touches shared liveness state; the is-the-destination-dead
      check moves to delivery time inside the destination LP, where it is
      correctly ordered against the destination's own departure.  Totals
      (``delivered``/``dropped_dead``) match sequential execution exactly —
      only the *instant* the drop is counted moves;
    * the (LP-local) sender-liveness check replaces the topology KeyError
      probe, so a departed node's straggler callbacks still cannot emit
      traffic;
    * endpoints do not attach/detach the shared topology object — that
      would be a cross-thread mutation.
    """

    def __init__(
        self,
        sim: Simulator,
        rank: int,
        router: PartitionRouter,
        loss_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        ewma_tau: float = 120.0,
    ):
        super().__init__(sim, topology=None, loss_rate=loss_rate, rng=rng, ewma_tau=ewma_tau)
        self.rank = rank
        self.router = router

    # -- registration: no shared-topology mutation ------------------------

    def register(self, key: Hashable, handler: Handler) -> Endpoint:
        if key in self._endpoints:
            raise ValueError(f"endpoint {key!r} already registered")
        ep = Endpoint(key, handler, self.sim.now, self.ewma_tau)
        self._endpoints[key] = ep
        return ep

    def unregister(self, key: Hashable) -> None:
        self._endpoints.pop(key, None)
        stale = [
            msg_id for msg_id, pending in self._pending.items() if pending.src == key
        ]
        for msg_id in stale:
            self._pending.pop(msg_id).timeout_handle.cancel()

    # -- routing ----------------------------------------------------------

    def _route(self, msg: Message) -> Optional[float]:
        if msg.src not in self._endpoints:
            return None  # departed sender (LP-local check)
        if self.router.rank_of(msg.dst) is None:
            return None  # address never existed
        return self.router.pair_latency(msg.src, msg.dst)

    def _dispatch(self, msg: Message, delay: float) -> None:
        dest_rank = self.router.rank_of(msg.dst)
        if dest_rank == self.rank:
            self.sim.schedule(delay, self._deliver, msg)
        else:
            self.router.cross_send(self.rank, dest_rank, delay, msg)
