"""Simulated message transport.

Delivers :class:`~repro.net.message.Message` objects between registered
endpoints over a :class:`~repro.sim.engine.Simulator`, with:

* per-pair latency from a :class:`~repro.net.topology.Topology`;
* optional independent message loss (for failure-injection tests —
  PeerWindow's ack/redirect machinery must survive it);
* per-endpoint in/out :class:`~repro.net.bandwidth.BandwidthMeter` and
  EWMA meters (the autonomic controller's sensor);
* request/response correlation with timeout callbacks (used by the
  multicast acks, the report path, and the join downloads).

Messages to endpoints that are unregistered *at delivery time* vanish
silently — exactly how a crashed peer looks from the outside.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional

import numpy as np

from repro.net.bandwidth import BandwidthMeter, EwmaRateMeter
from repro.net.message import Message
from repro.net.topology import Topology
from repro.sim.engine import EventHandle, Simulator

Handler = Callable[[Message], None]


class Endpoint:
    """A registered transport endpoint with its bandwidth meters."""

    __slots__ = ("key", "handler", "bw_in", "bw_out", "ewma_in", "ewma_out")

    def __init__(self, key: Hashable, handler: Handler, now: float, ewma_tau: float):
        self.key = key
        self.handler = handler
        self.bw_in = BandwidthMeter(t0=now)
        self.bw_out = BandwidthMeter(t0=now)
        self.ewma_in = EwmaRateMeter(tau=ewma_tau, t0=now)
        self.ewma_out = EwmaRateMeter(tau=ewma_tau, t0=now)


class _PendingRequest:
    __slots__ = ("on_reply", "timeout_handle")

    def __init__(self, on_reply: Callable[[Message], None], timeout_handle: EventHandle):
        self.on_reply = on_reply
        self.timeout_handle = timeout_handle


class Transport:
    """Latency/loss message fabric over a simulator."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        loss_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        ewma_tau: float = 120.0,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.topology = topology
        self.loss_rate = float(loss_rate)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.ewma_tau = ewma_tau
        self._endpoints: Dict[Hashable, Endpoint] = {}
        self._pending: Dict[int, _PendingRequest] = {}
        # Partition injection: endpoint key -> partition group id.  Keys
        # not in the map are in the implicit group None; messages between
        # different groups are dropped while a partition is active.
        self._partition: Dict[Hashable, int] = {}
        # Statistics
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.dropped_dead = 0
        self.dropped_partition = 0
        self.by_kind: Dict[str, int] = {}

    # -- registration -------------------------------------------------------

    def register(self, key: Hashable, handler: Handler) -> Endpoint:
        if key in self._endpoints:
            raise ValueError(f"endpoint {key!r} already registered")
        self.topology.attach(key)
        ep = Endpoint(key, handler, self.sim.now, self.ewma_tau)
        self._endpoints[key] = ep
        return ep

    def unregister(self, key: Hashable) -> None:
        self._endpoints.pop(key, None)
        self.topology.detach(key)

    def endpoint(self, key: Hashable) -> Endpoint:
        return self._endpoints[key]

    def is_alive(self, key: Hashable) -> bool:
        return key in self._endpoints

    def __len__(self) -> int:
        return len(self._endpoints)

    # -- failure injection -----------------------------------------------------

    def partition(self, *groups: "list") -> None:
        """Install a network partition: messages between different groups
        are silently dropped (both directions) until :meth:`heal`.

        Endpoints not named in any group form one extra implicit side.
        Message loss is applied at delivery time, so packets already in
        flight when the partition starts are also cut.
        """
        self._partition.clear()
        for gid, members in enumerate(groups):
            for key in members:
                self._partition[key] = gid

    def heal(self) -> None:
        """Remove the partition; traffic flows normally again."""
        self._partition.clear()

    @property
    def partitioned(self) -> bool:
        return bool(self._partition)

    def _same_side(self, a: Hashable, b: Hashable) -> bool:
        if not self._partition:
            return True
        return self._partition.get(a) == self._partition.get(b)

    # -- plain sends ----------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Fire-and-forget send.  Bills the sender now; delivery (and the
        receiver's bill) happens after the topology latency, unless the
        message is lost or the destination has died."""
        sender = self._endpoints.get(msg.src)
        now = self.sim.now
        if sender is not None:
            sender.bw_out.record(now, msg.size_bits)
            sender.ewma_out.record(now, msg.size_bits)
        self.sent += 1
        self.by_kind[msg.kind] = self.by_kind.get(msg.kind, 0) + 1
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.lost += 1
            return
        try:
            delay = self.topology.latency(msg.src, msg.dst)
        except KeyError:
            # Destination (or source) not attached: already gone.
            self.dropped_dead += 1
            return
        self.sim.schedule(delay, self._deliver, msg)

    def _deliver(self, msg: Message) -> None:
        ep = self._endpoints.get(msg.dst)
        if ep is None:
            self.dropped_dead += 1
            return
        if not self._same_side(msg.src, msg.dst):
            self.dropped_partition += 1
            return
        now = self.sim.now
        ep.bw_in.record(now, msg.size_bits)
        ep.ewma_in.record(now, msg.size_bits)
        self.delivered += 1
        if msg.reply_to is not None:
            pending = self._pending.pop(msg.reply_to, None)
            if pending is not None:
                pending.timeout_handle.cancel()
                pending.on_reply(msg)
                return
            # Late reply after timeout: fall through to the endpoint handler
            # so protocols can still use the information (stale-ack path).
        ep.handler(msg)

    # -- request/response -------------------------------------------------------

    def request(
        self,
        msg: Message,
        timeout: float,
        on_reply: Callable[[Message], None],
        on_timeout: Callable[[], None],
    ) -> None:
        """Send ``msg`` expecting a reply correlated by ``msg.msg_id``.

        Exactly one of ``on_reply(reply)`` / ``on_timeout()`` fires.
        """
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        handle = self.sim.schedule(timeout, self._on_timeout, msg.msg_id, on_timeout)
        self._pending[msg.msg_id] = _PendingRequest(on_reply, handle)
        self.send(msg)

    def _on_timeout(self, msg_id: int, on_timeout: Callable[[], None]) -> None:
        if self._pending.pop(msg_id, None) is not None:
            on_timeout()

    # -- introspection -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "lost": self.lost,
            "dropped_dead": self.dropped_dead,
            "pending_requests": len(self._pending),
            "by_kind": dict(self.by_kind),
        }
