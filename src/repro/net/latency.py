"""Simple latency models for tests and baselines.

The headline experiments use the transit-stub model
(:mod:`repro.net.transit_stub`); these lightweight alternatives keep unit
tests fast and give baselines a topology-independent footing.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

import numpy as np

from repro.net.topology import Topology


class UniformLatencyModel(Topology):
    """Every pair of distinct nodes is ``latency`` seconds apart.

    Optionally jittered: with ``jitter > 0`` each *pair* gets a stable
    multiplicative factor drawn from ``U[1-jitter, 1+jitter]`` — stable so
    that repeated queries for the same pair agree (triangle inequality is
    not guaranteed, matching real internet measurements).
    """

    def __init__(
        self,
        latency: float = 0.05,
        loopback: float = 0.0,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if latency < 0 or loopback < 0:
            raise ValueError("latencies must be non-negative")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.base = float(latency)
        self.loopback = float(loopback)
        self.jitter = float(jitter)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._attached: Dict[Hashable, None] = {}
        self._pair_factor: Dict[tuple, float] = {}

    def attach(self, key: Hashable) -> None:
        self._attached[key] = None

    def detach(self, key: Hashable) -> None:
        self._attached.pop(key, None)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._attached

    def latency(self, a: Hashable, b: Hashable) -> float:
        if a not in self._attached or b not in self._attached:
            raise KeyError(f"latency query for unattached key: {a!r} or {b!r}")
        if a == b:
            return self.loopback
        if self.jitter == 0.0:
            return self.base
        pair = (a, b) if repr(a) <= repr(b) else (b, a)
        factor = self._pair_factor.get(pair)
        if factor is None:
            factor = float(self._rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))
            self._pair_factor[pair] = factor
        return self.base * factor
