"""Simple latency models for tests and baselines.

The headline experiments use the transit-stub model
(:mod:`repro.net.transit_stub`); these lightweight alternatives keep unit
tests fast and give baselines a topology-independent footing.
"""

from __future__ import annotations

import zlib
from typing import Dict, Hashable, Optional

import numpy as np

from repro.net.topology import Topology


class UniformLatencyModel(Topology):
    """Every pair of distinct nodes is ``latency`` seconds apart.

    Optionally jittered: with ``jitter > 0`` each *pair* gets a stable
    multiplicative factor drawn from ``U[1-jitter, 1+jitter]`` — stable so
    that repeated queries for the same pair agree (triangle inequality is
    not guaranteed, matching real internet measurements).
    """

    def __init__(
        self,
        latency: float = 0.05,
        loopback: float = 0.0,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if latency < 0 or loopback < 0:
            raise ValueError("latencies must be non-negative")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.base = float(latency)
        self.loopback = float(loopback)
        self.jitter = float(jitter)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._attached: Dict[Hashable, None] = {}
        self._pair_factor: Dict[tuple, float] = {}

    def attach(self, key: Hashable) -> None:
        self._attached[key] = None

    def detach(self, key: Hashable) -> None:
        self._attached.pop(key, None)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._attached

    def latency(self, a: Hashable, b: Hashable) -> float:
        if a not in self._attached or b not in self._attached:
            raise KeyError(f"latency query for unattached key: {a!r} or {b!r}")
        if a == b:
            return self.loopback
        if self.jitter == 0.0:
            return self.base
        pair = (a, b) if repr(a) <= repr(b) else (b, a)
        factor = self._pair_factor.get(pair)
        if factor is None:
            factor = float(self._rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))
            self._pair_factor[pair] = factor
        return self.base * factor

    def pair_latency(self, a: Hashable, b: Hashable) -> float:
        if self.jitter != 0.0:
            # Jittered factors are drawn lazily in query order — not a pure
            # pair function, so not partition-safe.
            raise NotImplementedError(
                "UniformLatencyModel with jitter has no pure pairwise latency"
            )
        return self.loopback if a == b else self.base

    def min_latency(self) -> float:
        if self.jitter != 0.0:
            return self.base * (1.0 - self.jitter)
        return self.base


class PairwiseLatencyModel(Topology):
    """Deterministic, *distinct* per-pair latencies from a stable hash.

    ``latency(a, b) = base + spread * h(a, b)`` where ``h`` maps the
    unordered pair into ``[0, 1)`` via CRC-32 — a pure function of the two
    keys, identical across runs, machines, and threads, and requiring no
    attachment state.  Two properties make this the model of choice for
    partitioned execution:

    * every latency is ``>= base``, so ``base`` is a valid conservative
      lookahead;
    * distinct pairs almost always get distinct delays, which removes the
      simultaneous-delivery ties that make sequential and partitioned
      event orders diverge on uniform-latency topologies.
    """

    def __init__(self, base: float = 0.05, spread: float = 0.02, loopback: float = 0.0):
        if base <= 0 or spread < 0 or loopback < 0:
            raise ValueError("latencies must be positive (base) / non-negative")
        self.base = float(base)
        self.spread = float(spread)
        self.loopback = float(loopback)
        self._attached: Dict[Hashable, None] = {}

    def attach(self, key: Hashable) -> None:
        self._attached[key] = None

    def detach(self, key: Hashable) -> None:
        self._attached.pop(key, None)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._attached

    def pair_latency(self, a: Hashable, b: Hashable) -> float:
        if a == b:
            return self.loopback
        pair = (a, b) if repr(a) <= repr(b) else (b, a)
        h = zlib.crc32(repr(pair).encode("utf-8"))
        return self.base + self.spread * ((h % 9973) / 9973.0)

    def latency(self, a: Hashable, b: Hashable) -> float:
        if a not in self._attached or b not in self._attached:
            raise KeyError(f"latency query for unattached key: {a!r} or {b!r}")
        return self.pair_latency(a, b)

    def min_latency(self) -> float:
        return self.base
