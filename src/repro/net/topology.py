"""Latency-oracle interface for overlay simulations.

An overlay simulator needs exactly one thing from the underlying network
model: the one-way latency between two attachment points.  ``Topology``
defines that contract; concrete models (transit-stub, uniform, star) attach
overlay nodes to underlay positions and answer latency queries.
"""

from __future__ import annotations

import abc
from typing import Hashable


class Topology(abc.ABC):
    """Abstract latency oracle.

    Overlay nodes are identified by arbitrary hashable keys; the topology
    assigns each key an attachment point when :meth:`attach` is called and
    answers pairwise latency queries thereafter.
    """

    @abc.abstractmethod
    def attach(self, key: Hashable) -> None:
        """Assign ``key`` an attachment point.  Idempotent."""

    @abc.abstractmethod
    def detach(self, key: Hashable) -> None:
        """Release ``key``'s attachment point (a departed overlay node)."""

    @abc.abstractmethod
    def latency(self, a: Hashable, b: Hashable) -> float:
        """One-way latency in seconds between the attachment points of two
        attached keys.  ``latency(a, a)`` must be >= 0 (loopback cost)."""

    @abc.abstractmethod
    def __contains__(self, key: Hashable) -> bool:
        """Whether ``key`` is currently attached."""
