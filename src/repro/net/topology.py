"""Latency-oracle interface for overlay simulations.

An overlay simulator needs exactly one thing from the underlying network
model: the one-way latency between two attachment points.  ``Topology``
defines that contract; concrete models (transit-stub, uniform, star) attach
overlay nodes to underlay positions and answer latency queries.
"""

from __future__ import annotations

import abc
from typing import Hashable


class Topology(abc.ABC):
    """Abstract latency oracle.

    Overlay nodes are identified by arbitrary hashable keys; the topology
    assigns each key an attachment point when :meth:`attach` is called and
    answers pairwise latency queries thereafter.
    """

    @abc.abstractmethod
    def attach(self, key: Hashable) -> None:
        """Assign ``key`` an attachment point.  Idempotent."""

    @abc.abstractmethod
    def detach(self, key: Hashable) -> None:
        """Release ``key``'s attachment point (a departed overlay node)."""

    @abc.abstractmethod
    def latency(self, a: Hashable, b: Hashable) -> float:
        """One-way latency in seconds between the attachment points of two
        attached keys.  ``latency(a, a)`` must be >= 0 (loopback cost)."""

    @abc.abstractmethod
    def __contains__(self, key: Hashable) -> bool:
        """Whether ``key`` is currently attached."""

    def pair_latency(self, a: Hashable, b: Hashable) -> float:
        """Latency as a *pure function* of the key pair — defined even for
        detached keys and safe to call concurrently.

        The partitioned runtime requires this (delays must be computable
        without consulting shared liveness state); models whose latencies
        depend on mutable or lazily-drawn state must raise instead of
        returning something that differs from :meth:`latency`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no pure pairwise latency; "
            "partitioned execution needs one (see PairwiseLatencyModel)"
        )

    def min_latency(self) -> float:
        """A lower bound on every cross-node latency — the natural
        conservative-simulation lookahead.  Models that cannot bound their
        latencies must raise."""
        raise NotImplementedError(f"{type(self).__name__} has no latency bound")
