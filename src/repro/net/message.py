"""Wire message representation and size accounting.

The paper accounts bandwidth in *bits*: event messages are 1,000 bits,
heartbeats ~500 bits.  ``Message`` carries an explicit ``size_bits`` so the
bandwidth meters can integrate exactly what the paper integrates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator, Optional, Tuple

_msg_ids: Iterator[int] = itertools.count()

#: Default sizes (bits) from the paper's experiment setup (§5.1) and the
#: introduction's probing example.
EVENT_MESSAGE_BITS: int = 1000
HEARTBEAT_BITS: int = 500
ACK_BITS: int = 100
POINTER_BITS: int = 500  # one pointer entry during peer-list download


@dataclass(slots=True)
class Message:
    """A simulated datagram.

    Attributes
    ----------
    src, dst:
        Endpoint keys (overlay node identifiers).
    kind:
        Message type tag, e.g. ``"event"``, ``"heartbeat"``, ``"ack"``,
        ``"report"``, ``"join"``, ``"download"``.
    payload:
        Model-level payload.  The DES backends pass it by reference
        (sizes are explicit); the realtime backend serializes it via
        :mod:`repro.kernel.codec`, whose per-kind schemas define what may
        legally appear here.
    size_bits:
        Wire size used for bandwidth accounting.
    trace:
        Optional causal-trace context (a ``repro.obs.trace.SpanRef``,
        i.e. a ``(trace_id, span_id, depth)`` tuple).  Metadata only: it
        never affects routing, sizing, or protocol decisions, and is
        ``None`` whenever observability is off — a real implementation
        would carry it as an optional header, so the wire format stays
        compatible (see PROTOCOL.md).
    """

    src: Hashable
    dst: Hashable
    kind: str
    payload: Any = None
    size_bits: int = EVENT_MESSAGE_BITS
    # Sanctioned shared counter: msg_id is reply-correlation metadata
    # only, never a protocol decision, and allocation order is identical
    # in every execution mode.  # detlint: ignore[ISO003]
    msg_id: int = field(default_factory=lambda: next(_msg_ids))  # detlint: ignore[ISO003]
    reply_to: Optional[int] = None
    #: Structurally a ``repro.obs.trace.SpanRef``; typed as a plain tuple
    #: so the wire layer stays import-independent of the obs layer.
    trace: Optional[Tuple[str, str, int]] = None

    def __post_init__(self) -> None:
        if self.size_bits < 0:
            raise ValueError("size_bits must be non-negative")

    def make_reply(self, kind: str, payload: Any = None, size_bits: int = ACK_BITS) -> "Message":
        """Construct the reply message (dst/src swapped, linked by id).

        The request's trace context is carried back on the reply, so the
        requester can parent follow-up spans without a correlation table.
        """
        return Message(
            src=self.dst,
            dst=self.src,
            kind=kind,
            payload=payload,
            size_bits=size_bits,
            reply_to=self.msg_id,
            trace=self.trace,
        )
