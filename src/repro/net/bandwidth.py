"""Bandwidth metering.

Two meters are provided:

* :class:`BandwidthMeter` — cumulative bits with windowed rate queries;
  cheap enough to attach one (in + out) to every simulated node.
* :class:`EwmaRateMeter` — exponentially-weighted moving average of the
  bit rate; this is what the autonomic level controller (§2, §4.3) reads:
  *"its current bandwidth cost ... that is dynamically measured"*.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Tuple


class BandwidthMeter:
    """Cumulative + sliding-window bit accounting.

    ``record(now, bits)`` on every send/receive; ``rate(now)`` returns the
    average bit rate over the trailing ``window`` seconds (events older
    than the window are evicted lazily).
    """

    __slots__ = ("window", "total_bits", "t0", "_events")

    def __init__(self, window: float = 60.0, t0: float = 0.0):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self.total_bits = 0.0
        self.t0 = t0
        self._events: Deque[Tuple[float, float]] = deque()

    def record(self, now: float, bits: float) -> None:
        if bits < 0:
            raise ValueError("bits must be non-negative")
        self.total_bits += bits
        self._events.append((now, bits))
        self._evict(now)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        events = self._events
        while events and events[0][0] < cutoff:
            events.popleft()

    def rate(self, now: float) -> float:
        """Bits per second over the trailing window."""
        self._evict(now)
        if not self._events:
            return 0.0
        return sum(b for _, b in self._events) / self.window

    def lifetime_rate(self, now: float) -> float:
        """Bits per second averaged since construction."""
        elapsed = now - self.t0
        if elapsed <= 0:
            return 0.0
        return self.total_bits / elapsed


class EwmaRateMeter:
    """EWMA bit-rate estimate with continuous-time decay.

    The estimate decays as ``exp(-dt / tau)`` between samples; a burst of
    ``bits`` contributes ``bits / tau`` to the instantaneous rate.  With
    ``tau`` around tens of seconds this tracks "current bandwidth cost"
    the way a node would measure it online.
    """

    __slots__ = ("tau", "_rate", "_last_t")

    def __init__(self, tau: float = 60.0, t0: float = 0.0):
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = float(tau)
        self._rate = 0.0
        self._last_t = t0

    def record(self, now: float, bits: float) -> None:
        if bits < 0:
            raise ValueError("bits must be non-negative")
        self._decay(now)
        self._rate += bits / self.tau

    def _decay(self, now: float) -> None:
        dt = now - self._last_t
        if dt > 0:
            self._rate *= math.exp(-dt / self.tau)
            self._last_t = now

    def rate(self, now: float) -> float:
        self._decay(now)
        return self._rate
