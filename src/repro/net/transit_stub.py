"""GT-ITM Transit-Stub topology model [20].

The paper's underlay: *"there are 120 transit domains, each containing 4
transit nodes.  Every transit node has 5 stub domains, each containing 2
stub nodes.  Thus, there are totally 4800 stub nodes.  ...  transit-to-
transit latency is 100ms; transit-to-stub is 20ms; stub-to-stub is 5ms;
and node-to-node is 1ms."*

Structure generated here (matching GT-ITM's hierarchy):

* a top-level random connected graph over transit **domains** (a ring plus
  random chords, guaranteeing connectivity with GT-ITM-like mean degree);
* a small connected random graph over the transit **nodes** inside each
  domain (ring of 4 by default);
* each inter-domain edge lands on a uniformly random transit node at each
  end;
* stub domains hang off their parent transit node; stub nodes within a
  stub domain are one intra-stub hop apart.

Latency between two attached overlay nodes is computed hierarchically:

``lat(a, b) = node_to_node                      (same stub node)``
``lat(a, b) = stub_to_stub + node_to_node       (same stub domain)``
``lat(a, b) = 2*transit_to_stub + hops(t_a, t_b)*transit_to_transit
              + node_to_node                    (otherwise)``

where ``hops`` is the shortest-path hop count over the transit-node graph
(precomputed once with ``scipy.sparse.csgraph``).  This is exactly the
routing cost over the generated graph — computing it hierarchically avoids
materializing a 100,000^2 latency matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from repro.net.topology import Topology


@dataclass(frozen=True)
class TransitStubParams:
    """Structural and latency parameters; defaults are the paper's."""

    transit_domains: int = 120
    transit_nodes_per_domain: int = 4
    stub_domains_per_transit: int = 5
    stub_nodes_per_stub_domain: int = 2
    extra_domain_edges: int = 120  # chords over the domain ring
    transit_to_transit: float = 0.100  # seconds
    transit_to_stub: float = 0.020
    stub_to_stub: float = 0.005
    node_to_node: float = 0.001

    def __post_init__(self) -> None:
        if min(
            self.transit_domains,
            self.transit_nodes_per_domain,
            self.stub_domains_per_transit,
            self.stub_nodes_per_stub_domain,
        ) < 1:
            raise ValueError("all structural counts must be >= 1")
        if min(
            self.transit_to_transit,
            self.transit_to_stub,
            self.stub_to_stub,
            self.node_to_node,
        ) < 0:
            raise ValueError("latencies must be non-negative")

    @property
    def n_transit_nodes(self) -> int:
        return self.transit_domains * self.transit_nodes_per_domain

    @property
    def n_stub_nodes(self) -> int:
        return (
            self.n_transit_nodes
            * self.stub_domains_per_transit
            * self.stub_nodes_per_stub_domain
        )

    @classmethod
    def small(cls) -> "TransitStubParams":
        """A scaled-down topology for unit tests (fast to build)."""
        return cls(
            transit_domains=6,
            transit_nodes_per_domain=2,
            stub_domains_per_transit=2,
            stub_nodes_per_stub_domain=2,
            extra_domain_edges=4,
        )


# A stub-node position: (transit_node_index, stub_domain_index, stub_node_index)
StubPos = Tuple[int, int, int]


class TransitStubTopology(Topology):
    """The GT-ITM transit-stub latency oracle.

    Overlay nodes attach to stub nodes uniformly at random (the paper
    assigns ~20 overlay nodes per stub node at the 100,000 scale, which is
    what a uniform assignment produces in expectation).
    """

    def __init__(
        self,
        params: Optional[TransitStubParams] = None,
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
    ):
        self.params = params if params is not None else TransitStubParams()
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._attached: Dict[Hashable, int] = {}  # key -> global stub index
        self._build()

    # -- construction -----------------------------------------------------

    def _build(self) -> None:
        p = self.params
        rng = self._rng
        n_domains = p.transit_domains
        tn_per = p.transit_nodes_per_domain
        n_tn = p.n_transit_nodes

        # Top-level domain graph: ring + random chords (connected by
        # construction, like GT-ITM's random top-level graph conditioned on
        # connectivity).
        self.domain_graph = nx.Graph()
        self.domain_graph.add_nodes_from(range(n_domains))
        if n_domains > 1:
            for d in range(n_domains):
                self.domain_graph.add_edge(d, (d + 1) % n_domains)
            added = 0
            attempts = 0
            while added < p.extra_domain_edges and attempts < p.extra_domain_edges * 20:
                attempts += 1
                a, b = rng.integers(0, n_domains, size=2)
                if a != b and not self.domain_graph.has_edge(int(a), int(b)):
                    self.domain_graph.add_edge(int(a), int(b))
                    added += 1

        # Transit-node graph: intra-domain ring + one inter-domain edge per
        # domain-graph edge, endpoints chosen uniformly.
        rows: List[int] = []
        cols: List[int] = []

        def add_edge(u: int, v: int) -> None:
            rows.append(u)
            cols.append(v)
            rows.append(v)
            cols.append(u)

        for d in range(n_domains):
            base = d * tn_per
            if tn_per > 1:
                for i in range(tn_per):
                    add_edge(base + i, base + (i + 1) % tn_per)
        for a, b in self.domain_graph.edges():
            u = a * tn_per + int(rng.integers(0, tn_per))
            v = b * tn_per + int(rng.integers(0, tn_per))
            add_edge(u, v)

        data = np.ones(len(rows), dtype=np.int8)
        adj = csr_matrix((data, (rows, cols)), shape=(n_tn, n_tn))
        # Hop-count matrix over transit nodes (480x480 at paper scale).
        self._transit_hops = shortest_path(
            adj, method="D", unweighted=True, directed=False
        )
        if np.isinf(self._transit_hops).any():
            raise RuntimeError("transit graph is not connected")

        # Stub-node indexing: global stub index s ->
        #   transit node  s // (stub_domains_per_transit*stub_nodes_per_stub_domain)
        #   stub domain  (s // stub_nodes_per_stub_domain) % stub_domains_per_transit
        self._stubs_per_tn = p.stub_domains_per_transit * p.stub_nodes_per_stub_domain
        self.n_stub_nodes = p.n_stub_nodes

    # -- attachment -----------------------------------------------------------

    def attach(self, key: Hashable) -> None:
        if key in self._attached:
            return
        self._attached[key] = int(self._rng.integers(0, self.n_stub_nodes))

    def attach_at(self, key: Hashable, stub_index: int) -> None:
        """Deterministic attachment (tests and worked examples)."""
        if not 0 <= stub_index < self.n_stub_nodes:
            raise ValueError(f"stub index {stub_index} out of range")
        self._attached[key] = stub_index

    def detach(self, key: Hashable) -> None:
        self._attached.pop(key, None)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._attached

    def stub_of(self, key: Hashable) -> int:
        return self._attached[key]

    def stub_position(self, stub_index: int) -> StubPos:
        p = self.params
        tn = stub_index // self._stubs_per_tn
        rem = stub_index % self._stubs_per_tn
        sd = rem // p.stub_nodes_per_stub_domain
        sn = rem % p.stub_nodes_per_stub_domain
        return (tn, sd, sn)

    # -- latency -----------------------------------------------------------

    def stub_latency(self, sa: int, sb: int) -> float:
        """Latency between two stub attachment points (excluding the final
        node-to-node hop, which :meth:`latency` adds once)."""
        p = self.params
        if sa == sb:
            return 0.0
        ta, da, _ = self.stub_position(sa)
        tb, db, _ = self.stub_position(sb)
        if ta == tb and da == db:
            return p.stub_to_stub
        hops = float(self._transit_hops[ta, tb])
        return 2.0 * p.transit_to_stub + hops * p.transit_to_transit

    def latency(self, a: Hashable, b: Hashable) -> float:
        try:
            sa = self._attached[a]
            sb = self._attached[b]
        except KeyError as exc:
            raise KeyError(f"latency query for unattached key: {exc}") from exc
        return self.stub_latency(sa, sb) + self.params.node_to_node

    # -- bulk helpers for the scalable engine ---------------------------------

    def sample_stub_indices(self, n: int) -> np.ndarray:
        """Vectorized attachment-point sampling for the scalable engine."""
        return self._rng.integers(0, self.n_stub_nodes, size=n)

    def latency_sample(self, n_pairs: int) -> np.ndarray:
        """Latencies of ``n_pairs`` uniformly random stub pairs (used to
        calibrate the multicast-delay model at scale)."""
        sa = self._rng.integers(0, self.n_stub_nodes, size=n_pairs)
        sb = self._rng.integers(0, self.n_stub_nodes, size=n_pairs)
        p = self.params
        ta = sa // self._stubs_per_tn
        tb = sb // self._stubs_per_tn
        da = (sa % self._stubs_per_tn) // p.stub_nodes_per_stub_domain
        db = (sb % self._stubs_per_tn) // p.stub_nodes_per_stub_domain
        hops = self._transit_hops[ta, tb]
        out = 2.0 * p.transit_to_stub + hops * p.transit_to_transit
        same_domain = (ta == tb) & (da == db)
        out[same_domain] = p.stub_to_stub
        out[sa == sb] = 0.0
        return out + p.node_to_node
