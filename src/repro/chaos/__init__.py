"""Deterministic chaos harness (robustness tentpole).

Three cooperating pieces:

* :class:`~repro.chaos.faults.FaultPlan` — a declarative, seeded schedule
  of fault events (crashes, crash-with-recovery, churn bursts, network
  partitions, asymmetric per-pair loss, latency spikes, slow and
  "zombie" nodes, message duplication) that drives the
  :class:`~repro.net.transport.Transport` and
  :class:`~repro.core.protocol.PeerWindowNetwork` through the simulated
  clock only — a chaos run replays **bit-for-bit** from its seed;
* :class:`~repro.chaos.monitor.InvariantMonitor` — a periodic checker
  that runs *during* the chaos and asserts the protocol's safety
  invariants always, and its convergence invariants whenever the network
  has been quiescent for a config-derived bound;
* :class:`~repro.chaos.runner.ChaosRunner` — wires a named
  :class:`~repro.chaos.scenarios.Scenario` to a fresh network, runs the
  plan plus a quiescence tail, and emits a deterministic fault/state
  trace whose bytes are identical across same-seed runs.

A fourth piece (DESIGN §16) layers *adversaries* on the same machinery:
:class:`~repro.chaos.byzantine.ByzantinePlan` injects lies (level
inflation, forged obituaries, eclipse-style targeted isolation, sybil
floods, flash crowds) and :class:`~repro.chaos.byzantine.ByzantineMonitor`
asserts the invariants the protocol hardening must enforce against them.

CLI: ``python -m repro chaos --scenario churn-partition --nodes 500 --seed 0``
or ``python -m repro chaos --byzantine forged-obituary --health default``.
"""

from repro.chaos.byzantine import (
    BYZANTINE_SCENARIOS,
    ByzantineMonitor,
    ByzantinePlan,
    ByzantineRunner,
    ByzantineScenario,
)
from repro.chaos.faults import ChaosTrace, FaultEvent, FaultPlan
from repro.chaos.monitor import InvariantMonitor, Violation, quiescence_bound
from repro.chaos.runner import ChaosResult, ChaosRunner
from repro.chaos.scenarios import SCENARIOS, Scenario

__all__ = [
    "BYZANTINE_SCENARIOS",
    "ByzantineMonitor",
    "ByzantinePlan",
    "ByzantineRunner",
    "ByzantineScenario",
    "ChaosResult",
    "ChaosRunner",
    "ChaosTrace",
    "FaultEvent",
    "FaultPlan",
    "InvariantMonitor",
    "SCENARIOS",
    "Scenario",
    "Violation",
    "quiescence_bound",
]
