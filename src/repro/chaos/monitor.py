"""Live invariant checking during chaos runs.

Two invariant classes, checked on a periodic tick *while the faults are
being injected*:

* **safety** — must hold at every instant, disrupted or not:

  - every live node's level is within ``[0, id_bits]``;
  - a live node's peer list contains its own pointer;
  - every held pointer is **audience-recognizable**: the owner can prove
    from the ``(nodeId, level)`` pair alone that the pointee belongs in
    its peer list (the ``in_peer_list`` prefix relation — peer-list
    property 1);

* **convergence** — must hold once the network has been quiescent (no
  fault injected or reversed) for :func:`quiescence_bound` seconds:

  - every live node's peer list equals the oracle: pointers to departed
    nodes (**stale**) and missing live audience members (**absent**) are
    both violations, reported separately;
  - the §4.1 failure-detection ring of every eigenstring group is
    closed: each member's ``ring_successor`` is exactly the next live
    member of its group in id order (wrapping).

Convergence is *gated, not skipped*: the fault plan calls
:meth:`InvariantMonitor.note_disruption` whenever it perturbs the
network, and the checker holds its convergence assertions until the
protocol has had the full repair budget to re-converge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.audience import in_peer_list
from repro.core.config import ProtocolConfig


def quiescence_bound(config: ProtocolConfig) -> float:
    """How long after the last disruption the network must be given
    before its convergence invariants are asserted.

    The bound is the worst-case repair pipeline, end to end:

    * *detect* — a failed neighbor is noticed at worst one probe period
      plus ``probe_misses_to_fail`` back-to-back probe timeouts after the
      fault;
    * *disseminate* — the obituary travels the §4.5 report path (two
      report hops with timeout/retry budget) and the §4.2 tree (retries
      plus per-hop processing delay over the deepest possible tree);
    * *verify* — with ``config.obituary_verify`` on (DESIGN §16), every
      believer probes the reported-dead subject before evicting, adding
      one full verification window ahead of each application;
    * one extra probe period of slack for repairs that themselves
      trigger a second detection round (e.g. crash-recovery's stale
      cache verification).
    """
    detect = config.probe_interval + (
        config.probe_misses_to_fail * config.probe_timeout
    )
    disseminate = (
        2 * config.report_timeout
        + config.multicast_attempts * config.multicast_ack_timeout
        + config.id_bits * config.multicast_processing_delay
    )
    verify = (
        config.probe_misses_to_fail * config.probe_timeout
        if config.obituary_verify
        else 0.0
    )
    return detect + disseminate + verify + config.probe_interval


@dataclass(frozen=True)
class Violation:
    """One invariant failure observed at one node at one instant.

    ``traces`` carries the ids of the traces with an in-flight span at
    the violating node when the check fired (empty when the network runs
    without observability) — the operations most likely implicated.
    """

    time: float
    invariant: str
    node_key: object
    detail: str
    traces: Tuple[str, ...] = ()

    def describe(self) -> str:
        base = f"t={self.time:.3f} {self.invariant} node={self.node_key}: {self.detail}"
        if self.traces:
            base += f" [in-flight traces: {', '.join(self.traces)}]"
        return base


class InvariantMonitor:
    """Periodic in-run checker for a sequential :class:`PeerWindowNetwork`."""

    def __init__(
        self,
        net,
        interval: float = 5.0,
        quiescence: Optional[float] = None,
        max_violations: int = 1000,
    ):
        if net.sim is None:
            raise ValueError("InvariantMonitor needs the sequential engine")
        self.net = net
        self.interval = float(interval)
        self.quiescence = (
            quiescence_bound(net.config) if quiescence is None else float(quiescence)
        )
        self.max_violations = max_violations
        self.violations: List[Violation] = []
        self.safety_checks = 0
        self.convergence_checks = 0
        self.last_disruption = net.sim.now
        self._task = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._task = self.net.sim.every(self.interval, self.check, start_delay=self.interval)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def note_disruption(self, time: Optional[float] = None) -> None:
        """Restart the quiescence clock (called by the fault plan on every
        injection *and* reversal)."""
        t = self.net.sim.now if time is None else time
        self.last_disruption = max(self.last_disruption, t)

    @property
    def quiescent(self) -> bool:
        """Whether the repair budget has fully elapsed since the last
        disruption (and no fault is still being held open)."""
        transport = self.net.transport
        if transport.partitioned or transport._zombies:
            return False
        return self.net.sim.now >= self.last_disruption + self.quiescence

    # -- checking ----------------------------------------------------------

    def check(self) -> List[Violation]:
        """One monitor tick: safety always, convergence when quiescent.
        Returns the violations found *by this tick*."""
        found: List[Violation] = []
        self._check_safety(found)
        self.safety_checks += 1
        if self.quiescent:
            self._check_convergence(found)
            self.convergence_checks += 1
        room = self.max_violations - len(self.violations)
        if room > 0:
            self.violations.extend(found[:room])
        return found

    def _record(self, out: List[Violation], invariant: str, key, detail: str) -> None:
        traces: Tuple[str, ...] = ()
        obs = getattr(self.net, "obs", None)
        if obs is not None and obs.enabled:
            traces = tuple(obs.open_traces(key))
        out.append(Violation(self.net.sim.now, invariant, key, detail, traces))

    def _check_safety(self, out: List[Violation]) -> None:
        bits = self.net.config.id_bits
        for node in self.net.live_nodes():
            if not 0 <= node.level <= bits:
                self._record(out, "level-range", node.address,
                             f"level {node.level} outside [0, {bits}]")
                continue
            if node.peer_list.get(node.node_id) is None:
                self._record(out, "self-pointer", node.address,
                             "live node missing from its own peer list")
            for p in node.peer_list:
                if not in_peer_list(node.node_id, node.level, p.node_id):
                    self._record(
                        out, "audience-recognizable", node.address,
                        f"holds {p.node_id!r} outside its level-{node.level} prefix",
                    )

    def _check_convergence(self, out: List[Violation]) -> None:
        live = self.net.live_nodes()
        population = [(n.node_id, n.node_id.value, n.level) for n in live]
        for node in live:
            oracle = {
                value
                for nid, value, _lvl in population
                if nid.shares_prefix(node.node_id, node.level)
            }
            actual = set(node.peer_list.ids())
            for value in sorted(actual - oracle):
                self._record(out, "stale-pointer", node.address,
                             f"points at departed/foreign id {value:#x}")
            for value in sorted(oracle - actual):
                self._record(out, "missing-peer", node.address,
                             f"live audience member {value:#x} absent")
            self._check_ring(out, node, population)

    def _check_ring(self, out: List[Violation], node, population) -> None:
        """Ring closure: the §4.1 ring runs over the node's eigenstring
        group (same level, same prefix); its successor must be the next
        live group member in id order, wrapping."""
        group = sorted(
            value
            for nid, value, lvl in population
            if lvl == node.level and nid.shares_prefix(node.node_id, node.level)
        )
        successor = node.peer_list.ring_successor(node.node_id)
        if len(group) <= 1:
            if successor is not None and successor.node_id.value not in group:
                self._record(out, "ring-closed", node.address,
                             f"singleton group but probes {successor.node_id!r}")
            return
        own = node.node_id.value
        larger = [v for v in group if v > own]
        expected = larger[0] if larger else group[0]
        if expected == own:
            return
        if successor is None:
            self._record(out, "ring-closed", node.address,
                         f"no ring successor; expected {expected:#x}")
        elif successor.node_id.value != expected:
            self._record(
                out, "ring-closed", node.address,
                f"probes {successor.node_id.value:#x}, expected {expected:#x}",
            )

    # -- summaries ---------------------------------------------------------

    def summary(self) -> str:
        kinds: dict = {}
        for v in self.violations:
            kinds[v.invariant] = kinds.get(v.invariant, 0) + 1
        inner = ", ".join(f"{k}={n}" for k, n in sorted(kinds.items())) or "none"
        return (f"{len(self.violations)} violation(s) [{inner}] over "
                f"{self.safety_checks} safety / {self.convergence_checks} "
                f"convergence checks")
