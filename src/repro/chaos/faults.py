"""Declarative, seeded fault schedules.

A :class:`FaultPlan` is a list of :class:`FaultEvent` entries built with
the fluent helpers (:meth:`FaultPlan.crash`, :meth:`FaultPlan.partition`,
...).  ``install`` schedules every event on the network's simulator;
when an event fires its *targets are resolved at fire time* from the
sorted live population using a generator seeded by ``(plan seed, event
index)``.  Nothing consults the wall clock or any unseeded source, so a
plan applied to a deterministic network replays bit-for-bit: same seed,
same fault times, same victims, same trace bytes.

Every applied fault (and every reversal — heal, loss clear, zombie cure,
recovery completion) appends one line to a :class:`ChaosTrace` and pings
the ``on_disruption`` callback so the invariant monitor can restart its
quiescence clock.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Tuple

import numpy as np


class ChaosTrace:
    """An append-only, deterministic run log.

    Lines carry simulated time only (never wall-clock), formatted with a
    fixed width so two same-seed runs produce byte-identical text.
    """

    def __init__(self) -> None:
        self.lines: List[str] = []

    def add(self, time: float, text: str) -> None:
        self.lines.append(f"[{time:14.6f}] {text}")

    def text(self) -> str:
        return "\n".join(self.lines) + ("\n" if self.lines else "")

    def digest(self) -> str:
        return hashlib.sha256(self.text().encode()).hexdigest()


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` at simulated ``time`` with ``params``.

    ``params`` values are plain numbers; the victims are *not* stored here
    — they are resolved from the live population when the event fires.
    """

    time: float
    kind: str
    params: Tuple[Tuple[str, float], ...] = ()

    def get(self, name: str, default: float = 0.0) -> float:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def describe(self) -> str:
        inner = " ".join(f"{k}={v:g}" for k, v in self.params)
        return f"{self.kind} {inner}".strip()


class FaultPlan:
    """A seeded schedule of fault events for one chaos run."""

    #: Never crash/zombie below this many live nodes — a plan that
    #: extinguishes the population tests nothing.
    MIN_SURVIVORS = 3

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.events: List[FaultEvent] = []

    # -- builders ----------------------------------------------------------

    @staticmethod
    def _require(condition: bool, message: str) -> None:
        """Builder-parameter validation: a misconfigured plan must fail
        loudly at build time, not fire silently wrong (or not at all)."""
        if not condition:
            raise ValueError(message)

    def _add(self, time: float, kind: str, **params: float) -> "FaultPlan":
        self._require(time >= 0, f"{kind}: time must be >= 0, got {time!r}")
        for name in ("duration", "down_for"):
            if name in params:
                self._require(
                    params[name] > 0,
                    f"{kind}: {name} must be positive, got {params[name]!r}",
                )
        for name in ("count", "crash", "join", "pairs"):
            if name in params:
                self._require(
                    params[name] >= 0 and int(params[name]) == params[name],
                    f"{kind}: {name} must be a non-negative integer, "
                    f"got {params[name]!r}",
                )
        if "rate" in params:
            self._require(
                0.0 <= params["rate"] <= 1.0,
                f"{kind}: rate must be in [0, 1], got {params['rate']!r}",
            )
        self.events.append(
            FaultEvent(float(time), kind, tuple(sorted(params.items())))
        )
        return self

    def crash(self, time: float, count: int = 1) -> "FaultPlan":
        """Silently kill ``count`` live nodes (no LEAVE announcement)."""
        self._require(count >= 1, f"crash: count must be >= 1, got {count!r}")
        return self._add(time, "crash", count=count)

    def crash_recover(
        self, time: float, count: int = 1, down_for: float = 20.0
    ) -> "FaultPlan":
        """Crash ``count`` nodes, then rejoin each through the §4.3 path
        ``down_for`` seconds later, reconciling its stale cached peer
        list against the downloaded snapshot."""
        self._require(count >= 1, f"crash_recover: count must be >= 1, got {count!r}")
        self._require(
            down_for > 0,
            "crash_recover: down_for must be positive (a recovery scheduled "
            f"at or before its crash is non-monotone), got {down_for!r}",
        )
        return self._add(time, "crash_recover", count=count, down_for=down_for)

    def churn(self, time: float, crash: int = 0, join: int = 0,
              threshold: float = 1e9) -> "FaultPlan":
        """A churn burst: ``crash`` silent deaths plus ``join`` fresh
        protocol joins through randomly chosen live bootstraps."""
        self._require(crash >= 0 and join >= 0,
                      f"churn: crash/join must be >= 0, got {crash!r}/{join!r}")
        self._require(crash + join > 0, "churn: needs crash > 0 or join > 0")
        self._require(threshold > 0,
                      f"churn: threshold must be positive, got {threshold!r}")
        return self._add(time, "churn", crash=crash, join=join, threshold=threshold)

    def partition(self, time: float, groups: int = 2,
                  duration: float = 4.0) -> "FaultPlan":
        """Split every registered endpoint into ``groups`` random sides,
        heal after ``duration``.  Keep ``duration`` below the detection
        horizon (``probe_misses_to_fail * probe_timeout``) when the
        scenario must converge back without evictions."""
        self._require(groups >= 2, f"partition: groups must be >= 2, got {groups!r}")
        return self._add(time, "partition", groups=groups, duration=duration)

    def pair_loss(self, time: float, pairs: int = 50, rate: float = 0.3,
                  duration: float = 10.0) -> "FaultPlan":
        """Asymmetric loss: ``pairs`` random directed links drop ``rate``
        of their traffic for ``duration`` seconds."""
        self._require(pairs >= 1, f"pair_loss: pairs must be >= 1, got {pairs!r}")
        return self._add(time, "pair_loss", pairs=pairs, rate=rate, duration=duration)

    def latency_spike(self, time: float, scale: float = 2.0,
                      duration: float = 10.0) -> "FaultPlan":
        """Multiply every one-way delay by ``scale`` for ``duration``."""
        self._require(scale >= 1.0,
                      f"latency_spike: scale must be >= 1, got {scale!r}")
        return self._add(time, "latency_spike", scale=scale, duration=duration)

    def slow(self, time: float, count: int = 1, extra: float = 0.3,
             duration: float = 10.0) -> "FaultPlan":
        """Give ``count`` nodes ``extra`` seconds of one-way delay (keep
        the round trip under ``probe_timeout`` or they will be declared
        dead, which is a different fault — see :meth:`zombie`)."""
        self._require(count >= 1, f"slow: count must be >= 1, got {count!r}")
        self._require(extra >= 0, f"slow: extra must be >= 0, got {extra!r}")
        return self._add(time, "slow", count=count, extra=extra, duration=duration)

    def zombie(self, time: float, count: int = 1,
               duration: float = 4.0) -> "FaultPlan":
        """Wedge ``count`` nodes: registered and receiving, but their
        handler never runs and nothing they send leaves the host.  On
        cure each announces a REFRESH with an outrunning sequence number
        so any obituary in flight is refuted."""
        self._require(count >= 1, f"zombie: count must be >= 1, got {count!r}")
        return self._add(time, "zombie", count=count, duration=duration)

    def duplicate(self, time: float, rate: float = 0.2,
                  duration: float = 10.0) -> "FaultPlan":
        """Deliver ``rate`` of all sends twice for ``duration``."""
        return self._add(time, "duplicate", rate=rate, duration=duration)

    # -- introspection -----------------------------------------------------

    @property
    def horizon(self) -> float:
        """When the last scheduled fault effect ends (recovery completions
        may still be in flight shortly after — the runner adds margin)."""
        end = 0.0
        for ev in self.events:
            end = max(end, ev.time + ev.get("duration") + ev.get("down_for"))
        return end

    # -- installation ------------------------------------------------------

    def install(
        self,
        net,
        trace: ChaosTrace,
        on_disruption: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Schedule every event on ``net.sim`` (sequential engine only).

        Event times are relative to the install instant, so the same plan
        works regardless of how long the network settled first.
        """
        if net.sim is None:
            raise ValueError("FaultPlan drives the sequential engine; "
                             "partitioned networks have no single event queue")
        self._validate_population(len(net.nodes))
        self._disrupt = on_disruption or (lambda _t: None)
        for index, ev in enumerate(sorted(self.events, key=lambda e: e.time)):
            net.sim.schedule(ev.time, self._fire, net, trace, ev, index)

    def _validate_population(self, population: int) -> None:
        """Install-time check: an event that targets more *existing* nodes
        than the network has is a misconfigured plan, not a fault.  (Keys
        that create nodes — churn's ``join`` — are exempt, and fire-time
        still clamps to the then-live pool for populations that shrank.)
        """
        for ev in self.events:
            for name in ("count", "crash", "victims", "liars", "adversaries"):
                wanted = int(ev.get(name))
                if wanted > population:
                    raise ValueError(
                        f"{ev.kind}: {name}={wanted} exceeds the "
                        f"population of {population} nodes"
                    )

    # -- firing ------------------------------------------------------------

    def _rng(self, index: int) -> np.random.Generator:
        return np.random.default_rng((self.seed, index))

    def _pick(self, rng: np.random.Generator, pool: List[Hashable],
              count: int) -> List[Hashable]:
        count = min(count, len(pool))
        if count <= 0:
            return []
        chosen = rng.choice(len(pool), size=count, replace=False)
        return [pool[i] for i in sorted(int(i) for i in chosen)]

    def _live_keys(self, net) -> List[Hashable]:
        return sorted(k for k, n in net.nodes.items() if n.alive)

    def _killable(self, net) -> List[Hashable]:
        """Live keys that may be crashed/zombied without dropping the
        population below MIN_SURVIVORS (already-zombied keys excluded)."""
        return [k for k in self._live_keys(net)
                if not net.transport.is_zombie(k)]

    def _note(self, net, trace: ChaosTrace, text: str) -> None:
        now = net.sim.now
        trace.add(now, text)
        self._disrupt(now)

    def _fire(self, net, trace: ChaosTrace, ev: FaultEvent, index: int) -> None:
        rng = self._rng(index)
        handler = getattr(self, "_fire_" + ev.kind)
        handler(net, trace, ev, index, rng)

    def _fire_crash(self, net, trace, ev, index, rng) -> None:
        pool = self._killable(net)
        budget = max(0, len(pool) - self.MIN_SURVIVORS)
        victims = self._pick(rng, pool, min(int(ev.get("count", 1)), budget))
        for key in victims:
            net.crash(key)
        self._note(net, trace, f"crash keys={victims}")

    def _fire_crash_recover(self, net, trace, ev, index, rng) -> None:
        pool = self._killable(net)
        budget = max(0, len(pool) - self.MIN_SURVIVORS)
        victims = self._pick(rng, pool, min(int(ev.get("count", 1)), budget))
        down_for = ev.get("down_for", 20.0)
        for key in victims:
            node = net.crash(key)
            net.sim.schedule(down_for, self._recover, net, trace, node, index)
        self._note(net, trace, f"crash_recover keys={victims} down_for={down_for:g}")

    def _recover(self, net, trace, node, index) -> None:
        live = self._live_keys(net)
        if not live:  # pragma: no cover - plans never extinguish the net
            trace.add(net.sim.now, f"recover key={node.address} aborted: no live bootstrap")
            return
        # Deterministic bootstrap choice: seeded by the originating event,
        # decorrelated per victim by its (stable, unique) key.
        rng = self._rng((index + 1) * 1_000_003 + int(node.address))
        bootstrap = live[int(rng.integers(len(live)))]

        def done(ok: bool, key=node.address, boot=bootstrap) -> None:
            self._note(net, trace, f"recovered key={key} via={boot} ok={ok}")

        net.recover_node(node, bootstrap, on_done=done)
        self._note(net, trace, f"recovering key={node.address} via={bootstrap}")

    def _fire_churn(self, net, trace, ev, index, rng) -> None:
        pool = self._killable(net)
        budget = max(0, len(pool) - self.MIN_SURVIVORS)
        victims = self._pick(rng, pool, min(int(ev.get("crash", 0)), budget))
        for key in victims:
            net.crash(key)
        joined: List[Hashable] = []
        live = self._live_keys(net)
        for _ in range(int(ev.get("join", 0))):
            if not live:
                break
            bootstrap = live[int(rng.integers(len(live)))]
            joined.append(net.add_node(ev.get("threshold", 1e9), bootstrap,
                                       on_done=lambda ok: self._disrupt(net.sim.now)))
        self._note(net, trace, f"churn crashed={victims} joined={joined}")

    def _fire_partition(self, net, trace, ev, index, rng) -> None:
        keys = [k for k in sorted(net.nodes) if net.transport.is_alive(k)]
        n_groups = max(2, int(ev.get("groups", 2)))
        assignment = rng.integers(n_groups, size=len(keys))
        groups: List[List[Hashable]] = [[] for _ in range(n_groups)]
        for key, gid in zip(keys, assignment):
            groups[int(gid)].append(key)
        groups = [g for g in groups if g]
        duration = ev.get("duration", 4.0)
        net.transport.partition(*groups)
        net.sim.schedule(duration, self._heal, net, trace)
        sizes = [len(g) for g in groups]
        self._note(net, trace, f"partition groups={sizes} duration={duration:g}")

    def _heal(self, net, trace) -> None:
        net.transport.heal()
        self._note(net, trace, "heal")

    def _fire_pair_loss(self, net, trace, ev, index, rng) -> None:
        keys = self._live_keys(net)
        n_pairs = int(ev.get("pairs", 50))
        rate = ev.get("rate", 0.3)
        pairs: List[Tuple[Hashable, Hashable]] = []
        if len(keys) >= 2:
            for _ in range(n_pairs):
                i, j = (int(x) for x in rng.choice(len(keys), size=2, replace=False))
                pairs.append((keys[i], keys[j]))
        for src, dst in pairs:
            net.transport.set_pair_loss(src, dst, rate)
        duration = ev.get("duration", 10.0)
        net.sim.schedule(duration, self._clear_pair_loss, net, trace, pairs)
        self._note(net, trace,
                   f"pair_loss pairs={len(pairs)} rate={rate:g} duration={duration:g}")

    def _clear_pair_loss(self, net, trace, pairs) -> None:
        for src, dst in pairs:
            net.transport.set_pair_loss(src, dst, 0.0)
        self._note(net, trace, f"pair_loss_clear pairs={len(pairs)}")

    def _fire_latency_spike(self, net, trace, ev, index, rng) -> None:
        scale = max(1.0, ev.get("scale", 2.0))
        duration = ev.get("duration", 10.0)
        net.transport.set_latency_scale(scale)
        net.sim.schedule(duration, self._latency_restore, net, trace)
        self._note(net, trace, f"latency_spike scale={scale:g} duration={duration:g}")

    def _latency_restore(self, net, trace) -> None:
        net.transport.set_latency_scale(1.0)
        self._note(net, trace, "latency_restore")

    def _fire_slow(self, net, trace, ev, index, rng) -> None:
        victims = self._pick(rng, self._live_keys(net), int(ev.get("count", 1)))
        extra = ev.get("extra", 0.3)
        duration = ev.get("duration", 10.0)
        for key in victims:
            net.transport.set_endpoint_delay(key, extra)
        net.sim.schedule(duration, self._unslow, net, trace, victims)
        self._note(net, trace,
                   f"slow keys={victims} extra={extra:g} duration={duration:g}")

    def _unslow(self, net, trace, victims) -> None:
        for key in victims:
            net.transport.set_endpoint_delay(key, 0.0)
        self._note(net, trace, f"slow_clear keys={victims}")

    def _fire_zombie(self, net, trace, ev, index, rng) -> None:
        pool = self._killable(net)
        budget = max(0, len(pool) - self.MIN_SURVIVORS)
        victims = self._pick(rng, pool, min(int(ev.get("count", 1)), budget))
        duration = ev.get("duration", 4.0)
        for key in victims:
            net.transport.set_zombie(key, True)
        net.sim.schedule(duration, self._cure, net, trace, victims)
        self._note(net, trace, f"zombie keys={victims} duration={duration:g}")

    def _cure(self, net, trace, victims) -> None:
        from repro.core.events import EventKind

        for key in victims:
            net.transport.set_zombie(key, False)
            node = net.nodes.get(key)
            if node is None or not node.alive:
                continue
            # Wedge-recovery heartbeat: bump past any obituary announced
            # while we were silent (observers' LEAVE seq is at most our
            # last-heard seq + 1), then refresh so it is refuted.
            node.ctx.seq += 1
            node.ctx.report_event(node.ctx.make_event(EventKind.REFRESH))
        self._note(net, trace, f"zombie_cure keys={victims}")

    def _fire_duplicate(self, net, trace, ev, index, rng) -> None:
        rate = ev.get("rate", 0.2)
        duration = ev.get("duration", 10.0)
        net.transport.set_duplication(rate)
        net.sim.schedule(duration, self._duplicate_clear, net, trace)
        self._note(net, trace, f"duplicate rate={rate:g} duration={duration:g}")

    def _duplicate_clear(self, net, trace) -> None:
        net.transport.set_duplication(0.0)
        self._note(net, trace, "duplicate_clear")
