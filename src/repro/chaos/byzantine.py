"""Byzantine fault injection: seeded adversaries and the invariants
that judge the hardening against them (DESIGN §16).

The chaos layer so far injects *non-malicious* faults — crashes, cuts,
loss — against which the protocol's §4 machinery was designed.  This
module injects *lies*: a :class:`ByzantinePlan` wraps selected nodes in
misbehaving personas that speak valid protocol messages with false
content:

* **level inflation** — a liar announces REFRESH events claiming a far
  stronger level than it serves, poisoning audience sets and top-node
  lists (countered by the §16 claim audit);
* **forged obituaries** — liars report LEAVE events for live victims
  through the ordinary §4.5 report path (countered by verify-before-
  believe and the false-accuser quarantine);
* **eclipse** — group mates of one victim send *targeted* forged
  obituaries (``start_bit = id_bits``: zero fanout, so the multicast
  never reaches the victim and the refutation path never fires) to every
  other holder of the victim's pointer (countered by verification; the
  targeted shape is exactly what earns accuser strikes);
* **sybil flood** — a burst of protocol-correct joins from throwaway
  identities through a small set of bootstraps (countered by the
  proof-of-work admission gate and per-server join throttling);
* **flash crowd** — a legitimate join surge with power-law lifetimes;
  not an attack, but the scenario that admission control must *not*
  break.

Everything an adversary does is scheduled through the same seeded
machinery as :class:`~repro.chaos.faults.FaultPlan` — same seed, same
liars, same forged sequence numbers, byte-identical chaos trace.
Adversary forgeries emit ``byz.forge`` spans (never ``obituary`` spans,
which belong to the honest failure detector and feed its
false-positive-rate signal).

:class:`ByzantineMonitor` extends the invariant checker with the
adversarial invariants the hardening must enforce:

* **forged-eviction** — no live forgery victim disappears from an
  honest holder's peer list;
* **eclipse-isolation** — an eclipse victim stays reachable: at least
  half its oracle audience still holds its pointer;
* **sybil-occupancy** — sybil identities never dominate an honest
  node's peer list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.chaos.faults import FaultPlan
from repro.chaos.monitor import InvariantMonitor, Violation
from repro.chaos.runner import ChaosRunner
from repro.chaos.scenarios import Scenario
from repro.core.events import EventKind, EventRecord
from repro.net.message import Message


class ByzantinePlan(FaultPlan):
    """A seeded schedule of adversarial behaviors.

    Beyond the base plan's events, the plan records — at fire time, so
    the record is replay-deterministic — which keys played adversary and
    which were designated victims; the byzantine monitor and the
    ``byz.*`` health signals read these lists.
    """

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        #: Keys that actively lied (liars, eclipse adversaries).
        self.adversaries: List[Hashable] = []
        #: Keys the plan forged network-wide obituaries for.
        self.forgery_victims: List[Hashable] = []
        #: Keys targeted by an eclipse.
        self.eclipse_victims: List[Hashable] = []
        #: Keys that inflated their level claims.
        self.level_liars: List[Hashable] = []
        #: Keys of every sybil identity that *started* a join.
        self.sybil_keys: List[Hashable] = []
        self.sybil_attempts = 0
        self.sybil_admitted = 0
        self.flash_joins = 0

    def _remember(self, seen: List[Hashable], keys) -> None:
        for key in keys:
            if key not in seen:
                seen.append(key)

    # -- builders ----------------------------------------------------------

    def level_inflate(
        self,
        time: float,
        count: int = 1,
        claim_level: int = 0,
        period: float = 3.0,
        duration: float = 20.0,
    ) -> "ByzantinePlan":
        """``count`` liars periodically announce REFRESH events claiming
        ``claim_level`` (0 = strongest) instead of their true level."""
        self._require(count >= 1, f"level_inflate: count must be >= 1, got {count!r}")
        self._require(
            claim_level >= 0 and int(claim_level) == claim_level,
            f"level_inflate: claim_level must be a non-negative integer, "
            f"got {claim_level!r}",
        )
        self._require(period > 0, f"level_inflate: period must be positive, got {period!r}")
        self._add(
            time, "level_inflate",
            count=count, claim_level=claim_level, period=period, duration=duration,
        )
        return self

    def forge_obituaries(
        self,
        time: float,
        liars: int = 1,
        victims: int = 4,
        period: float = 3.0,
        duration: float = 20.0,
    ) -> "ByzantinePlan":
        """``liars`` keep reporting forged LEAVE events for ``victims``
        live nodes through the ordinary §4.5 report path, with sequence
        numbers chosen to outrun each victim's refutations."""
        self._require(liars >= 1, f"forge_obituaries: liars must be >= 1, got {liars!r}")
        self._require(victims >= 1,
                      f"forge_obituaries: victims must be >= 1, got {victims!r}")
        self._require(period > 0,
                      f"forge_obituaries: period must be positive, got {period!r}")
        self._add(
            time, "forge_obituaries",
            liars=liars, victims=victims, period=period, duration=duration,
        )
        return self

    def eclipse(
        self,
        time: float,
        adversaries: int = 2,
        period: float = 2.0,
        duration: float = 20.0,
    ) -> "ByzantinePlan":
        """``adversaries`` group mates of one victim send *targeted*
        forged obituaries (zero-fanout multicasts) to every other holder
        of the victim's pointer — the victim never hears its own
        obituary, so the refutation path never fires."""
        self._require(adversaries >= 1,
                      f"eclipse: adversaries must be >= 1, got {adversaries!r}")
        self._require(period > 0, f"eclipse: period must be positive, got {period!r}")
        self._add(time, "eclipse", adversaries=adversaries, period=period,
                  duration=duration)
        return self

    def sybil_flood(
        self,
        time: float,
        count: int = 20,
        spacing: float = 0.5,
        bootstraps: int = 2,
        threshold: float = 1e9,
    ) -> "ByzantinePlan":
        """``count`` throwaway identities join ``spacing`` seconds apart
        through a fixed set of ``bootstraps`` servers.  (Stored under the
        ``join`` key — like churn's joins, the count may exceed the
        current population.)"""
        self._require(count >= 1, f"sybil_flood: count must be >= 1, got {count!r}")
        self._require(spacing > 0, f"sybil_flood: spacing must be positive, got {spacing!r}")
        self._require(bootstraps >= 1,
                      f"sybil_flood: bootstraps must be >= 1, got {bootstraps!r}")
        self._require(threshold > 0,
                      f"sybil_flood: threshold must be positive, got {threshold!r}")
        self._add(
            time, "sybil_flood",
            join=count, spacing=spacing, bootstraps=bootstraps,
            threshold=threshold, duration=spacing * count,
        )
        return self

    def flash_crowd(
        self,
        time: float,
        joins: int = 20,
        window: float = 30.0,
        alpha: float = 1.5,
        lifetime: float = 20.0,
        threshold: float = 1e9,
    ) -> "ByzantinePlan":
        """``joins`` legitimate joiners arrive uniformly over ``window``
        seconds and stay for Pareto(``alpha``)-distributed lifetimes
        scaled by ``lifetime`` (clamped at 3x so the run terminates)."""
        self._require(joins >= 1, f"flash_crowd: joins must be >= 1, got {joins!r}")
        self._require(window > 0, f"flash_crowd: window must be positive, got {window!r}")
        self._require(alpha > 1.0,
                      f"flash_crowd: alpha must be > 1 (finite mean), got {alpha!r}")
        self._require(lifetime > 0,
                      f"flash_crowd: lifetime must be positive, got {lifetime!r}")
        self._require(threshold > 0,
                      f"flash_crowd: threshold must be positive, got {threshold!r}")
        self._add(
            time, "flash_crowd",
            join=joins, window=window, alpha=alpha, lifetime=lifetime,
            threshold=threshold, duration=window + 3.0 * lifetime,
        )
        return self

    # -- forgery helpers ---------------------------------------------------

    @staticmethod
    def _forged_leave(net, victim, seq: int) -> EventRecord:
        ctx = victim.ctx
        return EventRecord(
            kind=EventKind.LEAVE,
            subject_id=ctx.node_id,
            subject_level=ctx.level,
            subject_address=ctx.address,
            seq=seq,
            origin_time=net.sim.now,
            attached_info=ctx.attached_info,
        )

    @staticmethod
    def _forge_span(liar, **attrs):
        """An adversary action marker: ``byz.forge``, deliberately *not*
        an ``obituary`` span (those belong to the honest detector and
        feed its false-positive-rate signal)."""
        ctx = liar.ctx
        if not ctx.obs.enabled:
            return None
        return ctx.obs.instant("byz.forge", liar.runtime.now, **attrs)

    # -- firing: level inflation -------------------------------------------

    def _fire_level_inflate(self, net, trace, ev, index, rng) -> None:
        liars = self._pick(rng, self._live_keys(net), int(ev.get("count", 1)))
        claim = int(ev.get("claim_level", 0))
        period = ev.get("period", 3.0)
        end = net.sim.now + ev.get("duration", 20.0)
        self._remember(self.adversaries, liars)
        self._remember(self.level_liars, liars)
        for key in liars:
            self._inflate_tick(net, trace, key, claim, period, end)
        self._note(net, trace, f"level_inflate liars={liars} claim={claim}")

    def _inflate_tick(self, net, trace, key, claim, period, end) -> None:
        node = net.nodes.get(key)
        if node is None or not node.alive or net.sim.now > end:
            return
        ctx = node.ctx
        level = max(0, min(int(claim), ctx.node_id.bits))
        event = EventRecord(
            kind=EventKind.REFRESH,
            subject_id=ctx.node_id,
            subject_level=level,
            subject_address=ctx.address,
            seq=ctx.next_seq(),
            origin_time=net.sim.now,
            attached_info=ctx.attached_info,
        )
        span = self._forge_span(node, kind="level_inflate", claimed=level)
        ctx.report_event(event, trace=span.ref() if span is not None else None)
        self._note(net, trace,
                   f"level_inflate_tick key={key} claimed={level} seq={event.seq}")
        net.sim.schedule(period, self._inflate_tick, net, trace, key, claim,
                         period, end)

    # -- firing: forged obituaries -----------------------------------------

    def _fire_forge_obituaries(self, net, trace, ev, index, rng) -> None:
        # Liars and victims come from ONE eigenstring group: an event
        # about a subject outside the receiver's prefix is ignored on
        # arrival (the apply_event audience rule), so a cross-group
        # forgery evicts nobody — the believable lie is about a peer.
        pool = self._live_keys(net)
        picked = self._pick(rng, pool, 1)
        if not picked:
            return
        anchor = net.nodes[picked[0]]
        group = [
            k for k in pool
            if net.nodes[k].ctx.node_id.shares_prefix(
                anchor.ctx.node_id, anchor.ctx.level
            )
        ]
        liars = self._pick(rng, group, int(ev.get("liars", 1)))
        victims = self._pick(rng, [k for k in group if k not in liars],
                             int(ev.get("victims", 4)))
        if not liars or not victims:
            self._note(net, trace, "forge_obituaries aborted: group too small")
            return
        period = ev.get("period", 3.0)
        end = net.sim.now + ev.get("duration", 20.0)
        self._remember(self.adversaries, liars)
        self._remember(self.forgery_victims, victims)
        self._forge_tick(net, trace, liars, victims, period, end)

    def _forge_tick(self, net, trace, liars, victims, period, end) -> None:
        if net.sim.now > end:
            return
        live_liars = [k for k in liars
                      if k in net.nodes and net.nodes[k].alive]
        if not live_liars:
            return
        forged: List[Hashable] = []
        for i, vkey in enumerate(victims):
            victim = net.nodes.get(vkey)
            if victim is None or not victim.alive:
                continue
            liar = net.nodes[live_liars[i % len(live_liars)]]
            # Outrun the victim's refutations: forge one past the newest
            # sequence the liar has heard for the victim (or, for victims
            # outside the liar's audience, the victim's own counter).
            held = liar.ctx.peer_list.get(victim.ctx.node_id)
            seq = (held.last_event_seq if held is not None else victim.ctx.seq) + 1
            event = self._forged_leave(net, victim, seq)
            span = self._forge_span(liar, kind="obituary", subject=str(vkey))
            liar.ctx.report_event(
                event, trace=span.ref() if span is not None else None
            )
            forged.append(vkey)
        self._note(net, trace,
                   f"forge_obituary liars={live_liars} victims={forged}")
        net.sim.schedule(period, self._forge_tick, net, trace, liars, victims,
                         period, end)

    # -- firing: eclipse ---------------------------------------------------

    def _fire_eclipse(self, net, trace, ev, index, rng) -> None:
        pool = self._live_keys(net)
        picked = self._pick(rng, pool, 1)
        if not picked:
            return
        victim_key = picked[0]
        victim = net.nodes[victim_key]
        mates = [
            k for k in pool
            if k != victim_key
            and net.nodes[k].ctx.node_id.shares_prefix(
                victim.ctx.node_id, victim.ctx.level
            )
        ]
        adversaries = self._pick(rng, mates, int(ev.get("adversaries", 2)))
        if not adversaries:
            self._note(net, trace,
                       f"eclipse aborted: no group mates for {victim_key}")
            return
        period = ev.get("period", 2.0)
        end = net.sim.now + ev.get("duration", 20.0)
        self._remember(self.adversaries, adversaries)
        self._remember(self.eclipse_victims, [victim_key])
        self._note(net, trace,
                   f"eclipse victim={victim_key} adversaries={adversaries}")
        self._eclipse_tick(net, trace, victim_key, adversaries, period, end, 0)

    def _eclipse_tick(self, net, trace, victim_key, adversaries, period, end,
                      bump) -> None:
        victim = net.nodes.get(victim_key)
        if victim is None or not victim.alive or net.sim.now > end:
            return
        live_advs = [k for k in adversaries
                     if k in net.nodes and net.nodes[k].alive]
        if not live_advs:
            return
        forged = 0
        # Target every *other* current holder of the victim's pointer with
        # a zero-fanout multicast (start_bit = id_bits): the lie lands and
        # stops — the victim is never in the tree, so it cannot refute.
        for ptr in sorted(list(victim.ctx.peer_list),
                          key=lambda p: p.node_id.value):
            tkey = ptr.address
            if tkey == victim_key or tkey in adversaries:
                continue
            target = net.nodes.get(tkey)
            if target is None or not target.alive:
                continue
            liar = net.nodes[live_advs[forged % len(live_advs)]]
            # Escalate the forged sequence each round (``bump``): a
            # hardened target refuses the first lie but records its seq
            # as seen, so a repeat at the same seq dies in the duplicate
            # path — an adaptive adversary outruns that, and the repeat
            # accusations are exactly what earns it quarantine strikes.
            held = target.ctx.peer_list.get(victim.ctx.node_id)
            base = held.last_event_seq if held is not None else victim.ctx.seq
            event = self._forged_leave(net, victim, base + 1 + bump)
            span = self._forge_span(liar, kind="eclipse", subject=str(victim_key),
                                    target=str(tkey))
            liar.runtime.send(
                Message(
                    liar.ctx.address,
                    tkey,
                    "mcast",
                    payload=(event, liar.ctx.node_id.bits),
                    size_bits=liar.ctx.config.event_message_bits,
                    trace=span.ref() if span is not None else None,
                )
            )
            forged += 1
        if forged:
            self._note(net, trace,
                       f"eclipse_tick victim={victim_key} targeted={forged}")
        net.sim.schedule(period, self._eclipse_tick, net, trace, victim_key,
                         adversaries, period, end, bump + 1)

    # -- firing: sybil flood -----------------------------------------------

    def _fire_sybil_flood(self, net, trace, ev, index, rng) -> None:
        boots = self._pick(rng, self._live_keys(net),
                           int(ev.get("bootstraps", 2)))
        if not boots:
            return
        count = int(ev.get("join", 20))
        spacing = ev.get("spacing", 0.5)
        threshold = ev.get("threshold", 1e9)
        self.sybil_attempts += count
        for i in range(count):
            net.sim.schedule(spacing * i, self._sybil_join, net, trace, boots,
                             threshold, index, i)
        self._note(net, trace,
                   f"sybil_flood count={count} spacing={spacing:g} bootstraps={boots}")

    def _sybil_join(self, net, trace, boots, threshold, index, i) -> None:
        rng = self._rng((index + 3) * 1_000_003 + i)
        live_boots = [k for k in boots
                      if k in net.nodes and net.nodes[k].alive]
        pool = live_boots or self._live_keys(net)
        if not pool:
            return
        boot = pool[int(rng.integers(len(pool)))]

        def done(ok: bool, i=i, boot=boot) -> None:
            if ok:
                self.sybil_admitted += 1
            self._note(net, trace, f"sybil_join i={i} via={boot} ok={ok}")

        key = net.add_node(threshold, boot, on_done=done)
        self.sybil_keys.append(key)

    # -- firing: flash crowd -----------------------------------------------

    def _fire_flash_crowd(self, net, trace, ev, index, rng) -> None:
        count = int(ev.get("join", 20))
        window = ev.get("window", 30.0)
        alpha = ev.get("alpha", 1.5)
        lifetime = ev.get("lifetime", 20.0)
        threshold = ev.get("threshold", 1e9)
        offsets = sorted(float(x) for x in rng.uniform(0.0, window, size=count))
        lifetimes = [
            min(float(lifetime * (x + 1.0)), 3.0 * lifetime)
            for x in rng.pareto(alpha, size=count)
        ]
        self.flash_joins += count
        for i in range(count):
            net.sim.schedule(offsets[i], self._flash_join, net, trace,
                             threshold, lifetimes[i], index, i)
        self._note(net, trace,
                   f"flash_crowd joins={count} window={window:g} alpha={alpha:g}")

    def _flash_join(self, net, trace, threshold, lifetime, index, i) -> None:
        live = self._live_keys(net)
        if not live:
            return
        rng = self._rng((index + 7) * 1_000_003 + i)
        boot = live[int(rng.integers(len(live)))]

        def done(ok: bool, i=i) -> None:
            self._note(net, trace, f"flash_join i={i} ok={ok}")

        key = net.add_node(threshold, boot, on_done=done)
        net.sim.schedule(lifetime, self._flash_depart, net, trace, key)

    def _flash_depart(self, net, trace, key) -> None:
        node = net.nodes.get(key)
        if node is None or not node.alive:
            return
        if len(self._live_keys(net)) <= self.MIN_SURVIVORS:
            return
        net.crash(key)
        self._note(net, trace, f"flash_depart key={key}")


class ByzantineMonitor(InvariantMonitor):
    """The invariant checker plus the DESIGN §16 adversarial invariants.

    The byzantine checks are *safety-class* — asserted on every tick,
    disrupted or not: an eviction-by-forgery is a violation the instant
    it exists, however briefly the refutation path later heals it.
    A tight default interval (1 s) is what catches those windows.
    """

    def __init__(
        self,
        net,
        plan: ByzantinePlan,
        interval: float = 1.0,
        quiescence: Optional[float] = None,
        max_violations: int = 1000,
    ):
        super().__init__(net, interval=interval, quiescence=quiescence,
                         max_violations=max_violations)
        self.plan = plan
        self.forged_evictions = 0
        self.eclipse_alarms = 0
        self.sybil_alarms = 0

    def check(self) -> List[Violation]:
        found = super().check()
        extra: List[Violation] = []
        self._check_forged_evictions(extra)
        self._check_eclipse(extra)
        self._check_sybil(extra)
        room = self.max_violations - len(self.violations)
        if room > 0:
            self.violations.extend(extra[:room])
        return found + extra

    def _holders_of(self, victim) -> List[object]:
        """Live honest nodes whose oracle audience contains ``victim``."""
        adversaries = set(self.plan.adversaries)
        return [
            n for n in self.net.live_nodes()
            if n.address != victim.address
            and n.address not in adversaries
            and victim.node_id.shares_prefix(n.node_id, n.level)
        ]

    def _check_forged_evictions(self, out: List[Violation]) -> None:
        """No live node is evicted by forgery: every honest audience
        member still holds each live forgery victim's pointer."""
        for vkey in self.plan.forgery_victims:
            victim = self.net.nodes.get(vkey)
            if victim is None or not victim.alive:
                continue
            for holder in self._holders_of(victim):
                if holder.peer_list.get(victim.node_id) is None:
                    self.forged_evictions += 1
                    self._record(
                        out, "forged-eviction", holder.address,
                        f"live victim {vkey} evicted by forged obituary",
                    )

    def _check_eclipse(self, out: List[Violation]) -> None:
        """An eclipse victim stays reachable: at least half its oracle
        audience still holds its pointer."""
        for vkey in self.plan.eclipse_victims:
            victim = self.net.nodes.get(vkey)
            if victim is None or not victim.alive:
                continue
            holders = self._holders_of(victim)
            if not holders:
                continue
            holding = sum(
                1 for h in holders if h.peer_list.get(victim.node_id) is not None
            )
            coverage = holding / len(holders)
            if coverage < 0.5:
                self.eclipse_alarms += 1
                self._record(
                    out, "eclipse-isolation", vkey,
                    f"only {holding}/{len(holders)} audience members "
                    f"still hold the victim",
                )

    def _check_sybil(self, out: List[Violation]) -> None:
        """Bounded sybil occupancy: sybil identities never make up the
        majority of an honest node's peer list."""
        if not self.plan.sybil_keys:
            return
        sybil_keys = set(self.plan.sybil_keys)
        sybil_ids = {
            self.net.nodes[k].node_id.value
            for k in sybil_keys
            if k in self.net.nodes
        }
        for node in self.net.live_nodes():
            if node.address in sybil_keys:
                continue
            others = [v for v in node.peer_list.ids()
                      if v != node.node_id.value]
            if not others:
                continue
            share = sum(1 for v in others if v in sybil_ids) / len(others)
            if share > 0.5:
                self.sybil_alarms += 1
                self._record(
                    out, "sybil-occupancy", node.address,
                    f"sybils hold {share:.0%} of the peer list",
                )


def sybil_fraction(net, plan: ByzantinePlan) -> float:
    """Aggregate sybil occupancy: the sybil share of all honest live
    nodes' peer-list slots at the end of the run (0.0 when no sybil was
    ever admitted).  Per-node *majority* capture is the monitor's
    sybil-occupancy invariant; this signal judges how much of the
    network's pointer real estate the flood bought overall."""
    sybil_keys = set(plan.sybil_keys)
    sybil_ids = {
        net.nodes[k].node_id.value for k in sybil_keys if k in net.nodes
    }
    held = 0
    total = 0
    for node in net.live_nodes():
        if node.address in sybil_keys:
            continue
        others = [v for v in node.peer_list.ids() if v != node.node_id.value]
        held += sum(1 for v in others if v in sybil_ids)
        total += len(others)
    return held / total if total else 0.0


def inflated_claims(net, plan: ByzantinePlan) -> int:
    """Pointers across honest live nodes still carrying a level-inflated
    liar's false claim (level below the liar's true level)."""
    count = 0
    for key in plan.level_liars:
        liar = net.nodes.get(key)
        if liar is None or not liar.alive:
            continue
        true_level = liar.ctx.level
        for node in net.live_nodes():
            if node.address == key:
                continue
            held = node.peer_list.get(liar.node_id)
            if held is not None and held.level < true_level:
                count += 1
            for top in node.ctx.top_list.pointers():
                if (top.node_id.value == liar.node_id.value
                        and top.level < true_level):
                    count += 1
    return count


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------

#: The full §16 hardening switch block.  ``join_pow_bits=10`` at 200
#: hashes/s means an expected ~5 s of grinding per admission attempt
#: (and a retry re-grinds — retries are not free); the 12 s per-server
#: throttle bounds each bootstrap to 5 admissions/min.
HARDENING: Dict[str, float] = {
    "obituary_verify": True,
    "quarantine_strikes": 2,
    "join_pow_bits": 10,
    "join_pow_hash_rate": 200.0,
    "join_throttle_interval": 12.0,
    "claim_audit_interval": 8.0,
}

#: Flash crowds are legitimate: keep the PoW cost but relax the throttle
#: so honest joiners clear the gate within their retry budget.
FLASH_HARDENING: Dict[str, float] = dict(HARDENING, join_throttle_interval=1.0)


@dataclass(frozen=True)
class ByzantineScenario(Scenario):
    """A chaos scenario with an adversary in it.

    ``forced_level`` pins every seeded node's level (controlled group
    geometry: with ``id_bits=16`` and level 2, four parts whose members
    hold each other); ``hardened`` records whether the §16 defenses are
    on — the ``-unhardened`` variants exist to *demonstrate the breach*
    and are expected to fail their SLOs.
    """

    forced_level: Optional[int] = None
    hardened: bool = True


def _forged_obituary_plan(n: int, seed: int) -> ByzantinePlan:
    plan = ByzantinePlan(seed)
    plan.forge_obituaries(6.0, liars=2, victims=4, period=2.5, duration=18.0)
    return plan


def _eclipse_plan(n: int, seed: int) -> ByzantinePlan:
    plan = ByzantinePlan(seed)
    plan.eclipse(6.0, adversaries=2, period=2.0, duration=16.0)
    return plan


def _sybil_flood_plan(n: int, seed: int) -> ByzantinePlan:
    plan = ByzantinePlan(seed)
    plan.sybil_flood(5.0, count=max(16, n), spacing=0.75, bootstraps=2)
    return plan


def _level_inflation_plan(n: int, seed: int) -> ByzantinePlan:
    plan = ByzantinePlan(seed)
    plan.level_inflate(6.0, count=2, claim_level=0, period=4.0, duration=20.0)
    return plan


def _flash_crowd_plan(n: int, seed: int) -> ByzantinePlan:
    plan = ByzantinePlan(seed)
    plan.flash_crowd(5.0, joins=max(8, n // 2), window=20.0, alpha=1.5,
                     lifetime=15.0)
    return plan


def _byz_pair(
    name: str,
    description: str,
    plan,
    default_nodes: int = 24,
    hardening: Optional[Dict[str, float]] = None,
    breaches: bool = True,
) -> List[ByzantineScenario]:
    """One scenario, two configs: hardened (defenses on, must stay
    healthy) and ``-unhardened`` (stock protocol — demonstrates the
    breach, except for benign surges like the flash crowd)."""
    overrides = HARDENING if hardening is None else hardening
    note = ": expected to breach" if breaches else ""
    return [
        ByzantineScenario(
            name=name,
            description=description + " (hardening on)",
            default_nodes=default_nodes,
            settle=10.0,
            plan=plan,
            config_overrides=dict(overrides),
            forced_level=2,
            hardened=True,
        ),
        ByzantineScenario(
            name=name + "-unhardened",
            description=description + f" (stock protocol{note})",
            default_nodes=default_nodes,
            settle=10.0,
            plan=plan,
            forced_level=2,
            hardened=False,
        ),
    ]


BYZANTINE_SCENARIOS: Dict[str, ByzantineScenario] = {
    s.name: s
    for s in (
        _byz_pair(
            "forged-obituary",
            "liars report forged LEAVE events for live victims through "
            "the §4.5 report path",
            _forged_obituary_plan,
        )
        + _byz_pair(
            "eclipse",
            "group mates isolate one victim with targeted zero-fanout "
            "forged obituaries",
            _eclipse_plan,
        )
        + _byz_pair(
            "sybil-flood",
            "a burst of throwaway identities joins through two bootstraps",
            _sybil_flood_plan,
            default_nodes=32,
        )
        + _byz_pair(
            "level-inflation",
            "liars claim level 0 to poison audience sets and top lists",
            _level_inflation_plan,
        )
        + _byz_pair(
            "flash-crowd",
            "a legitimate power-law join surge admission control must "
            "not break",
            _flash_crowd_plan,
            hardening=FLASH_HARDENING,
            breaches=False,
        )
    )
}


class ByzantineRunner(ChaosRunner):
    """The chaos driver specialized for adversarial scenarios: pinned
    seed levels, the byzantine monitor (tight 1 s tick), and ``byz.*``
    health signals."""

    def __init__(
        self,
        scenario: Scenario,
        n_nodes: Optional[int] = None,
        seed: int = 0,
        monitor_interval: float = 1.0,
        observe: bool = False,
        health_spec=None,
        stream=None,
        detsan=None,
    ):
        super().__init__(
            scenario,
            n_nodes=n_nodes,
            seed=seed,
            monitor_interval=monitor_interval,
            observe=observe,
            health_spec=health_spec,
            stream=stream,
            detsan=detsan,
        )

    def _seed(self, net) -> None:
        net.seed_nodes(
            [self.scenario.threshold_bps] * self.n_nodes,
            forced_level=getattr(self.scenario, "forced_level", None),
        )

    def _make_monitor(self, net, plan) -> InvariantMonitor:
        return ByzantineMonitor(net, plan, interval=self.monitor_interval)

    def _extra_signals(self, net, monitor) -> Dict[str, float]:
        """Only signals the plan actually exercised are emitted, so the
        byzantine SLO bands are skipped (not vacuously passed or failed)
        for scenarios that never injected the matching adversary."""
        plan = monitor.plan
        signals: Dict[str, float] = {}
        if plan.forgery_victims:
            signals["byz.forged_evictions"] = float(monitor.forged_evictions)
        if plan.eclipse_victims:
            signals["byz.eclipse_isolation"] = float(monitor.eclipse_alarms)
        if plan.sybil_attempts:
            signals["byz.sybil_fraction"] = sybil_fraction(net, plan)
        if plan.level_liars:
            signals["byz.inflated_claims"] = float(inflated_claims(net, plan))
        return signals


__all__ = [
    "BYZANTINE_SCENARIOS",
    "ByzantineMonitor",
    "ByzantinePlan",
    "ByzantineRunner",
    "ByzantineScenario",
    "FLASH_HARDENING",
    "HARDENING",
    "inflated_claims",
    "sybil_fraction",
]
