"""The chaos run driver: scenario -> network -> plan -> verdict.

:class:`ChaosRunner` builds a fresh sequential
:class:`~repro.core.protocol.PeerWindowNetwork`, seeds it, lets it
settle, installs the scenario's :class:`~repro.chaos.faults.FaultPlan`
and an :class:`~repro.chaos.monitor.InvariantMonitor`, runs past the
plan horizon plus the quiescence bound, forces a final full check, and
returns a :class:`ChaosResult`.

Everything in the run — victim selection, fault times, the trace — is a
pure function of ``(scenario, n_nodes, seed)``: the emitted trace ends
with a per-node peer-list digest, so two same-seed runs can be compared
byte-for-byte (`ChaosResult.trace`), which is exactly how the
determinism tests and the acceptance criterion check replayability.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.obs.stream import StreamConfig

from repro.chaos.faults import ChaosTrace
from repro.chaos.monitor import InvariantMonitor, Violation
from repro.chaos.scenarios import Scenario
from repro.core.protocol import PeerWindowNetwork
from repro.obs.health import HealthSpec, LiveHealthMonitor, Verdict, evaluate
from repro.obs.trace import Span


@dataclass
class ChaosResult:
    """Everything a caller (CLI, test) needs from one chaos run."""

    scenario: str
    n_nodes: int
    seed: int
    duration: float
    live_nodes: int
    mean_error_rate: float
    faults_injected: int
    safety_checks: int
    convergence_checks: int
    violations: List[Violation]
    trace: str
    #: Recorded spans (empty unless the runner was built with
    #: ``observe=True``) and the network-wide metrics snapshot.
    spans: List[Span] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: SLO verdicts (empty unless built with ``health_spec=...``):
    #: breaches the live monitor recorded during the run, plus one
    #: post-hoc evaluation over the whole span log at the end.
    health_verdicts: List[Verdict] = field(default_factory=list)
    #: DetSan findings (empty unless the run was sanitized; see
    #: :mod:`repro.analysis.detsan`), as human-readable strings.
    detsan_violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def detsan_ok(self) -> bool:
        """No sanitizer finding (vacuously true when DetSan was off)."""
        return not self.detsan_violations

    @property
    def healthy(self) -> bool:
        """No SLO breach (vacuously true when health was not evaluated)."""
        return all(v.ok for v in self.health_verdicts)


class ChaosRunner:
    """Run one named scenario deterministically on the sequential engine."""

    #: Extra simulated seconds past ``horizon + quiescence`` so async
    #: tails (a recovery handshake started at the horizon) can land.
    MARGIN = 10.0

    def __init__(
        self,
        scenario: Scenario,
        n_nodes: Optional[int] = None,
        seed: int = 0,
        monitor_interval: float = 5.0,
        observe: bool = False,
        health_spec: Optional[HealthSpec] = None,
        stream: Optional["StreamConfig"] = None,
        detsan: Optional[bool] = None,
    ):
        self.scenario = scenario
        self.n_nodes = scenario.default_nodes if n_nodes is None else int(n_nodes)
        self.seed = int(seed)
        self.monitor_interval = monitor_interval
        #: Run under the DetSan sanitizer (None = honor REPRO_DETSAN).
        if detsan is None:
            from repro.analysis.detsan import detsan_requested

            detsan = detsan_requested()
        self.detsan = bool(detsan)
        #: Record spans + metrics during the run.  Tracing adds no
        #: messages and draws no randomness, so the chaos trace (and its
        #: determinism digest) is byte-identical with or without it.
        #: A health spec needs the instrumentation, so it forces this on.
        #: Streaming telemetry taps the same instrumentation, so it
        #: forces it on too.
        self.health_spec = health_spec
        self.stream = stream
        self.observe = (
            bool(observe) or health_spec is not None or stream is not None
        )

    def run(self) -> ChaosResult:
        scenario = self.scenario
        config = scenario.make_config()
        net = PeerWindowNetwork(
            config=config, master_seed=self.seed, observability=self.observe
        )
        sanitizer = None
        if self.detsan:
            from repro.analysis.detsan import DetSan

            sanitizer = DetSan()
            sanitizer.attach(net)
        try:
            return self._execute(net, config, sanitizer)
        finally:
            # The tripwires monkeypatch process globals (time/random):
            # always restore, even when the run raises.
            if sanitizer is not None:
                sanitizer.detach()

    def _execute(self, net, config, sanitizer) -> ChaosResult:
        scenario = self.scenario
        # All simulation advances route through the stream windower when
        # one is configured, so window boundaries land on the same grid
        # no matter how this driver slices its run calls.
        windower = self.stream.build(net) if self.stream is not None else None
        advance = net.run if windower is None else (
            lambda until: windower.run(until)
        )
        self._seed(net)
        advance(until=scenario.settle)

        trace = ChaosTrace()
        plan = scenario.build_plan(self.n_nodes, self.seed)
        monitor = self._make_monitor(net, plan)
        trace.add(net.sim.now, f"begin scenario={scenario.name} "
                               f"nodes={self.n_nodes} seed={self.seed}")
        plan.install(net, trace, on_disruption=monitor.note_disruption)
        monitor.start()
        health_mon: Optional[LiveHealthMonitor] = None
        if self.health_spec is not None:
            # Breaches only count while the network is quiescent: the SLOs
            # judge what the protocol *recovers to*, not the injected chaos
            # itself.  The EWMA still folds mid-fault samples in, so a
            # network that never recovers breaches as soon as it settles.
            health_mon = LiveHealthMonitor(
                net,
                self.health_spec,
                interval=self.monitor_interval * 4,
                gate=lambda: monitor.quiescent,
            )
            health_mon.start()

        advance(until=scenario.settle + plan.horizon + monitor.quiescence
                + self.MARGIN)
        # Late async disruptions (recovery completions, retried joins)
        # push the quiescence clock forward; keep running until the full
        # budget has elapsed after the *last* of them.
        for _ in range(8):
            target = monitor.last_disruption + monitor.quiescence + self.MARGIN
            if net.sim.now >= target:
                break
            advance(until=target)
        monitor.stop()
        monitor.check()  # one forced, quiescent, full check
        if not monitor.quiescent:  # pragma: no cover - runner bug guard
            raise RuntimeError("chaos run ended before quiescence")

        health_verdicts: List[Verdict] = []
        if health_mon is not None:
            health_mon.stop()
            health_verdicts.extend(health_mon.breaches)
            health_verdicts.extend(self._posthoc_health(net, config, monitor))

        if windower is not None:
            windower.finish()
        self._trace_final_state(net, trace, monitor)
        detsan_violations: List[str] = []
        if sanitizer is not None:
            sanitizer.final_scan()
            detsan_violations = [v.describe() for v in sanitizer.violations]
        return ChaosResult(
            scenario=scenario.name,
            n_nodes=self.n_nodes,
            seed=self.seed,
            duration=net.sim.now,
            live_nodes=len(net.live_nodes()),
            mean_error_rate=net.mean_error_rate(),
            faults_injected=len(plan.events),
            safety_checks=monitor.safety_checks,
            convergence_checks=monitor.convergence_checks,
            violations=list(monitor.violations),
            trace=trace.text(),
            spans=net.spans() if self.observe else [],
            metrics=net.metrics_snapshot() if self.observe else {},
            health_verdicts=health_verdicts,
            detsan_violations=detsan_violations,
        )

    # -- subclass hooks ----------------------------------------------------

    def _seed(self, net) -> None:
        """Install the initial population (hook: the byzantine runner
        pins the seeded level so group geometry is controlled)."""
        net.seed_nodes([self.scenario.threshold_bps] * self.n_nodes)

    def _make_monitor(self, net, plan) -> InvariantMonitor:
        """Build the in-run invariant checker (hook: the byzantine runner
        substitutes a monitor that also asserts adversarial invariants)."""
        return InvariantMonitor(net, interval=self.monitor_interval)

    def _extra_signals(self, net, monitor) -> Dict[str, float]:
        """Scenario-family signals merged into the post-hoc health
        evaluation (hook: ``byz.*`` signals; empty by default)."""
        return {}

    def _posthoc_health(self, net, config, monitor) -> List[Verdict]:
        """One authoritative spec evaluation over the quiesced end state:
        full span-log analytics plus metrics-derived signals."""
        from repro.obs.analyze import analyze_spans
        from repro.obs.health import metrics_signals

        report = analyze_spans(net.spans())
        signals = dict(report.signals())
        signals.update(
            metrics_signals(
                net.metrics_snapshot(),
                config,
                meta={"mean_error_rate": net.mean_error_rate()},
            )
        )
        signals.update(self._extra_signals(net, monitor))
        assert self.health_spec is not None
        return evaluate(self.health_spec, signals, now=net.sim.now)

    def _trace_final_state(self, net, trace: ChaosTrace,
                           monitor: InvariantMonitor) -> None:
        """Append the determinism footer: one digest line per live node
        (key, level, peer-list CRC over the sorted ids) plus totals."""
        for key in sorted(net.nodes):
            node = net.nodes[key]
            if not node.alive:
                continue
            ids = ",".join(format(v, "x") for v in sorted(node.peer_list.ids()))
            crc = zlib.crc32(ids.encode())
            trace.add(net.sim.now,
                      f"state key={key} level={node.level} "
                      f"peers={len(node.peer_list)} crc={crc:08x}")
        trace.add(net.sim.now,
                  f"end live={len(net.live_nodes())} "
                  f"violations={len(monitor.violations)} "
                  f"error_rate={net.mean_error_rate():.6f}")
