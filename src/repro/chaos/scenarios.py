"""Named chaos scenarios.

Each :class:`Scenario` couples a protocol configuration tuned for chaos
runs (fast probe/report clocks so detection and repair fit in simulated
minutes, frozen level changes so the population shape stays the
convergence oracle's) with a seeded :class:`~repro.chaos.faults.FaultPlan`
builder.

Two timing rules every scenario obeys:

* **partitions and zombies stay inside the detection horizon**
  (``probe_misses_to_fail * probe_timeout`` — 6 s under
  :data:`CHAOS_CONFIG`): the pinned protocol behavior for longer cuts is
  permanent mutual eviction (see ``tests/integration/test_partition.py``),
  which can never re-converge without out-of-band rendezvous and would
  make a zero-violation acceptance criterion a lie;
* **crashes are allowed to be detected** — they are announced via §4.1
  obituaries and, for ``crash_recover``, repaired via the §4.3 rejoin —
  so their windows need no such cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict

from repro.chaos.faults import FaultPlan
from repro.core.config import ProtocolConfig

#: The common chaos clock: detection horizon 3 x 2 = 6 s, quiescence
#: bound (see :func:`repro.chaos.monitor.quiescence_bound`) = 8 + 6 +
#: (2*4 + 3*2 + 16*0.25) + 8 = 40 s.
CHAOS_CONFIG = ProtocolConfig(
    id_bits=16,
    probe_interval=8.0,
    probe_timeout=2.0,
    probe_misses_to_fail=3,
    multicast_ack_timeout=2.0,
    multicast_attempts=3,
    report_timeout=4.0,
    level_check_interval=1e6,
    multicast_processing_delay=0.25,
    join_retry_attempts=2,
    join_retry_backoff=2.0,
)


@dataclass(frozen=True)
class Scenario:
    """A named, parameterized chaos recipe."""

    name: str
    description: str
    default_nodes: int
    settle: float
    plan: Callable[[int, int], FaultPlan]
    threshold_bps: float = 1e9
    config_overrides: Dict[str, float] = field(default_factory=dict)

    def make_config(self) -> ProtocolConfig:
        if self.config_overrides:
            return replace(CHAOS_CONFIG, **self.config_overrides)
        return CHAOS_CONFIG

    def build_plan(self, n_nodes: int, seed: int) -> FaultPlan:
        return self.plan(n_nodes, seed)


def _smoke_plan(n: int, seed: int) -> FaultPlan:
    plan = FaultPlan(seed)
    plan.crash(5.0, count=1)
    plan.partition(12.0, groups=2, duration=3.5)
    plan.pair_loss(20.0, pairs=max(4, n // 2), rate=0.3, duration=8.0)
    plan.duplicate(24.0, rate=0.2, duration=8.0)
    return plan


def _churn_partition_plan(n: int, seed: int) -> FaultPlan:
    burst = max(2, n // 100)
    plan = FaultPlan(seed)
    plan.churn(10.0, crash=burst, join=burst)
    plan.partition(35.0, groups=2, duration=4.0)
    plan.churn(55.0, crash=burst, join=burst)
    plan.partition(75.0, groups=3, duration=4.0)
    plan.crash_recover(95.0, count=max(1, burst // 2), down_for=20.0)
    return plan


def _loss_storm_plan(n: int, seed: int) -> FaultPlan:
    # The churn burst comes *after* the storm clears: an event multicast
    # under heavy targeted loss can exhaust its bounded retries
    # (rate^attempts per lossy tree edge), and the §4.6 expiry that would
    # eventually repair the miss is far outside the quiescence window.
    # The storm itself still exercises lossy probing — including
    # false-positive evictions and their REFRESH refutation.
    plan = FaultPlan(seed)
    plan.pair_loss(10.0, pairs=4 * n, rate=0.4, duration=30.0)
    plan.duplicate(15.0, rate=0.15, duration=25.0)
    plan.churn(48.0, crash=max(1, n // 40), join=max(1, n // 40))
    return plan


def _zombie_latency_plan(n: int, seed: int) -> FaultPlan:
    plan = FaultPlan(seed)
    plan.zombie(10.0, count=max(1, n // 30), duration=4.0)
    plan.latency_spike(20.0, scale=3.0, duration=15.0)
    plan.slow(25.0, count=max(1, n // 20), extra=0.3, duration=15.0)
    plan.zombie(45.0, count=max(1, n // 30), duration=4.0)
    return plan


def _crash_churn_plan(n: int, seed: int) -> FaultPlan:
    # Crash/churn only (no partitions or zombies), so there is no
    # detection-horizon cap to respect: this is the DetSan smoke — lots
    # of joins and obituaries means lots of Pointer-carrying payloads
    # crossing the transport for the sanitizer to tag.
    batch = max(1, n // 20)
    plan = FaultPlan(seed)
    plan.crash(8.0, count=batch)
    plan.churn(20.0, crash=batch, join=batch)
    plan.crash_recover(40.0, count=max(1, batch // 2), down_for=15.0)
    plan.churn(60.0, join=batch)
    return plan


def _recovery_stress_plan(n: int, seed: int) -> FaultPlan:
    batch = max(1, n // 25)
    plan = FaultPlan(seed)
    plan.crash_recover(10.0, count=batch, down_for=15.0)
    plan.crash_recover(40.0, count=batch, down_for=20.0)
    plan.crash(60.0, count=max(1, batch // 2))
    plan.churn(65.0, join=batch)
    return plan


SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            name="smoke",
            description="fast everything-once pass for CI (one crash, a "
                        "short cut, loss, duplication)",
            default_nodes=40,
            settle=10.0,
            plan=_smoke_plan,
        ),
        Scenario(
            name="churn-partition",
            description="churn bursts interleaved with short partitions "
                        "and crash-recovery (the acceptance scenario)",
            default_nodes=500,
            settle=15.0,
            plan=_churn_partition_plan,
        ),
        Scenario(
            name="loss-storm",
            description="wide asymmetric pair loss plus duplication with "
                        "churn in the middle of the storm",
            default_nodes=120,
            settle=10.0,
            plan=_loss_storm_plan,
        ),
        Scenario(
            name="zombie-latency",
            description="hung (zombie) nodes, a global latency spike and "
                        "slow endpoints",
            default_nodes=90,
            settle=10.0,
            plan=_zombie_latency_plan,
        ),
        Scenario(
            name="crash_churn",
            description="crash and churn bursts with a recovery batch — "
                        "the DetSan sanitizer smoke (payload-heavy "
                        "join/obituary traffic, no partitions)",
            default_nodes=60,
            settle=10.0,
            plan=_crash_churn_plan,
        ),
        Scenario(
            name="recovery-stress",
            description="repeated crash-recovery batches, a permanent "
                        "crash and fresh joins",
            default_nodes=100,
            settle=10.0,
            plan=_recovery_stress_plan,
        ),
    )
}
