"""Shared output-path preparation for every report-writing command.

Both exporter families (``repro obs``/``repro chaos`` span and metrics
writers in :mod:`repro.obs.export`, and the ``repro lint`` report and
baseline writers in :mod:`repro.analysis`) route destination paths
through :func:`prepare_output_path` so a bad ``--csv``/``--spans``/
``--baseline`` destination fails up front with an actionable message
instead of a bare ``FileNotFoundError`` deep inside ``open``.
"""

from __future__ import annotations

import os


def prepare_output_path(path: str, what: str = "output") -> str:
    """Make ``path`` writable: create parent dirs, verify access.

    Raises :class:`OSError` with an actionable message (which path, what
    failed) rather than letting ``open`` raise a bare
    ``FileNotFoundError``/``PermissionError`` later.
    """
    parent = os.path.dirname(os.path.abspath(path))
    try:
        os.makedirs(parent, exist_ok=True)
    except OSError as exc:
        raise OSError(
            f"cannot create directory {parent!r} for {what} file {path!r}: "
            f"{exc.strerror or exc}"
        ) from exc
    if os.path.isdir(path):
        raise OSError(f"{what} path {path!r} is a directory, not a file")
    probe = path if os.path.exists(path) else parent
    if not os.access(probe, os.W_OK):
        raise OSError(f"{what} path {path!r} is not writable")
    return path
