"""Event tracing for simulation debugging.

Every serious DES platform ships a tracer; this one wraps a
:class:`~repro.sim.engine.Simulator` and records each executed event as
``(time, callback name, args repr)``, with optional filtering and a ring
buffer so long runs stay bounded.  Typical use::

    tracer = SimTracer(sim, keep=500, match="probe")
    ... run ...
    print(tracer.format())

The tracer hooks the simulator's ``step`` non-invasively (wrapping the
bound method) and restores it on :meth:`close`, so it can be attached and
detached mid-run.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Deque, List, NamedTuple, Optional

from repro.sim.engine import Simulator


class TraceRecord(NamedTuple):
    time: float
    name: str
    detail: str


def _describe(callback, args) -> tuple:
    name = getattr(callback, "__qualname__", None) or getattr(
        callback, "__name__", repr(callback)
    )
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        address = getattr(owner, "address", None)
        if address is not None:
            name = f"{name}@{address!r}"
    detail = ", ".join(repr(a)[:60] for a in args)
    return name, detail


class SimTracer:
    """Record executed events from a simulator.

    Parameters
    ----------
    sim:
        The simulator to trace.
    keep:
        Ring-buffer size (oldest records evicted beyond it).
    match:
        Optional regex; only events whose description matches are kept.
    """

    def __init__(self, sim: Simulator, keep: int = 1000, match: Optional[str] = None):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.sim = sim
        self.records: Deque[TraceRecord] = deque(maxlen=keep)
        self._pattern = re.compile(match) if match else None
        self.dropped = 0
        self._original_step = sim.step
        self._active = True
        sim.step = self._traced_step  # type: ignore[method-assign]

    def _traced_step(self) -> bool:
        # Peek at the head the same way step() will execute it.  We wrap
        # rather than duplicate step()'s logic: record after execution by
        # snapshotting the clock and the executed handle via a callback
        # shim is racy, so instead we intercept the queue pop.
        queue = self.sim._queue
        while True:
            try:
                time, seq, handle = queue.pop()
            except IndexError:
                return False
            if handle.cancelled:
                continue
            name, detail = _describe(handle.callback, handle.args)
            text = f"{name}({detail})"
            if self._pattern is None or self._pattern.search(text):
                self.records.append(TraceRecord(time, name, detail))
            else:
                self.dropped += 1
            self.sim._now = time
            handle.done = True
            self.sim._events_executed += 1
            handle.callback(*handle.args)
            return True

    def close(self) -> None:
        """Detach the tracer; the simulator runs untraced afterwards."""
        if self._active:
            self.sim.step = self._original_step  # type: ignore[method-assign]
            self._active = False

    def __enter__(self) -> "SimTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def filter(self, pattern: str) -> List[TraceRecord]:
        rx = re.compile(pattern)
        return [r for r in self.records if rx.search(f"{r.name}({r.detail})")]

    def format(self, limit: Optional[int] = None) -> str:
        rows = list(self.records)[-(limit or len(self.records)):]
        return "\n".join(f"t={r.time:10.3f}  {r.name}({r.detail})" for r in rows)
