"""Instrumentation primitives for simulation measurements.

Everything PeerWindow's evaluation reports is a time-aggregate: bandwidth
(bits transferred / window length), error rate (erroneous entry-seconds /
entry-seconds), level populations (time-weighted counts).  These helpers
make those aggregates cheap and uniform:

* :class:`Counter` — monotone event counts with rate queries.
* :class:`TimeWeightedStat` — integrates a piecewise-constant signal over
  time (the right way to average "peer list size" or "population at
  level l" over a run).
* :class:`TimeSeries` — raw (t, value) samples, with NumPy export.
* :class:`Histogram` — fixed-bin histogram with summary statistics.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np


class Counter:
    """A monotone counter with a creation timestamp for rate queries."""

    __slots__ = ("name", "value", "t0")

    def __init__(self, name: str = "", t0: float = 0.0):
        self.name = name
        self.value = 0.0
        self.t0 = t0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("Counter.add requires amount >= 0")
        self.value += amount

    def rate(self, now: float) -> float:
        """Average accumulation rate per second since ``t0``."""
        elapsed = now - self.t0
        if elapsed <= 0:
            return 0.0
        return self.value / elapsed

    def reset(self, now: float) -> None:
        self.value = 0.0
        self.t0 = now


class TimeWeightedStat:
    """Time-weighted mean of a piecewise-constant signal.

    Call :meth:`update` whenever the signal changes; the integral of the
    signal between updates is accumulated.  :meth:`mean` divides by total
    observed time.
    """

    __slots__ = ("_last_t", "_last_v", "_area", "_t_total", "_min", "_max")

    def __init__(self, t0: float = 0.0, v0: float = 0.0):
        self._last_t = t0
        self._last_v = v0
        self._area = 0.0
        self._t_total = 0.0
        self._min = v0
        self._max = v0

    @property
    def current(self) -> float:
        return self._last_v

    def update(self, now: float, value: float) -> None:
        if now < self._last_t:
            raise ValueError(f"time went backwards: {now} < {self._last_t}")
        dt = now - self._last_t
        self._area += self._last_v * dt
        self._t_total += dt
        self._last_t = now
        self._last_v = value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def advance(self, now: float) -> None:
        """Account elapsed time without changing the value."""
        self.update(now, self._last_v)

    def mean(self, now: Optional[float] = None) -> float:
        area, total = self._area, self._t_total
        if now is not None and now > self._last_t:
            area += self._last_v * (now - self._last_t)
            total += now - self._last_t
        if total <= 0:
            return self._last_v
        return area / total

    @property
    def min(self) -> float:
        return self._min

    @property
    def max(self) -> float:
        return self._max


class TimeSeries:
    """Raw (time, value) samples with NumPy export."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, t: float, value: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError("TimeSeries timestamps must be non-decreasing")
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    def mean(self) -> float:
        if not self.values:
            return math.nan
        return float(np.mean(self.values))

    def last(self) -> float:
        if not self.values:
            raise IndexError("empty TimeSeries")
        return self.values[-1]


class Histogram:
    """Fixed-bin histogram over ``[lo, hi)`` with overflow/underflow bins."""

    def __init__(self, lo: float, hi: float, nbins: int):
        if not (hi > lo):
            raise ValueError("hi must be > lo")
        if nbins < 1:
            raise ValueError("nbins must be >= 1")
        self.lo = lo
        self.hi = hi
        self.nbins = nbins
        self.counts = np.zeros(nbins + 2, dtype=np.int64)  # [under, bins..., over]
        self._sum = 0.0
        self._sumsq = 0.0
        self._n = 0

    def add(self, value: float, count: int = 1) -> None:
        if value < self.lo:
            idx = 0
        elif value >= self.hi:
            idx = self.nbins + 1
        else:
            idx = 1 + int((value - self.lo) / (self.hi - self.lo) * self.nbins)
        self.counts[idx] += count
        self._sum += value * count
        self._sumsq += value * value * count
        self._n += count

    @property
    def n(self) -> int:
        return self._n

    def mean(self) -> float:
        return self._sum / self._n if self._n else math.nan

    def std(self) -> float:
        if self._n < 2:
            return 0.0
        var = self._sumsq / self._n - self.mean() ** 2
        return math.sqrt(max(var, 0.0))

    def bin_edges(self) -> np.ndarray:
        return np.linspace(self.lo, self.hi, self.nbins + 1)

    def quantile(self, q: float) -> float:
        """Approximate quantile from bin midpoints (under/overflow clamp to
        the range edges)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self._n == 0:
            return math.nan
        target = q * self._n
        cum = 0
        edges = self.bin_edges()
        for idx, c in enumerate(self.counts):
            cum += c
            if cum >= target:
                if idx == 0:
                    return self.lo
                if idx == self.nbins + 1:
                    return self.hi
                return float(0.5 * (edges[idx - 1] + edges[idx]))
        return self.hi


def summarize(values: Sequence[float]) -> dict:
    """Five-number-ish summary used by the benchmark report tables."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {"n": 0, "mean": math.nan, "min": math.nan, "max": math.nan, "p50": math.nan}
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "p50": float(np.median(arr)),
    }
