"""Conservative parallel discrete-event execution (the ONSP model).

ONSP [17] partitioned the simulated overlay across MPI ranks and
synchronized with parallel discrete-event techniques.  This module
reproduces that execution model on a single host:

* The model is partitioned into :class:`LogicalProcess` instances (LPs),
  each owning a private :class:`~repro.sim.engine.Simulator`.
* Cross-LP interactions are *messages* with a mandatory minimum latency —
  the **lookahead** — exactly like ONSP's network-latency lookahead over
  Myrinet links.
* Execution proceeds in *epochs* of length ``lookahead``: within one
  epoch, no message sent by any LP can affect another LP (its delivery
  time falls in a later epoch), so all LPs can safely run an epoch
  independently.  This is the classic conservative window / bounded-lag
  scheme, the same safety argument as null-message (Chandy–Misra–Bryant)
  protocols with uniform lookahead.

Epochs run LPs sequentially in rank order by default, which is fully
deterministic; ``threads=True`` runs each epoch's LPs on a thread pool
(CPython's GIL limits speedup, but the mode demonstrates — and the test
suite verifies — that the partitioned execution produces results identical
to sequential execution, which is the correctness property parallel DES
must preserve).
"""

from __future__ import annotations

import time as _time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.engine import SimulationError, Simulator


class LogicalProcess:
    """One partition of the model, owning a private event queue."""

    def __init__(self, rank: int, parallel: "ParallelSimulator"):
        self.rank = rank
        self.parallel = parallel
        self.sim = Simulator()
        # Messages produced this epoch, to be exchanged at the barrier:
        # (dest_rank, deliver_time, handler, args)
        self._outbox: List[Tuple[int, float, Callable, tuple]] = []
        self.messages_sent = 0
        self.messages_received = 0

    @property
    def now(self) -> float:
        return self.sim.now

    def schedule_local(self, delay: float, callback: Callable, *args: Any):
        """Schedule an intra-LP event; no lookahead constraint."""
        return self.sim.schedule(delay, callback, *args)

    def send(self, dest_rank: int, latency: float, handler: Callable, *args: Any) -> None:
        """Send a cross-LP message.

        ``latency`` must be at least the configured lookahead — this is the
        conservative-synchronization contract; violating it would allow a
        message to arrive inside the current safe window.
        """
        if dest_rank == self.rank:
            self.schedule_local(latency, handler, *args)
            return
        if latency < self.parallel.lookahead:
            raise SimulationError(
                f"cross-LP latency {latency} below lookahead "
                f"{self.parallel.lookahead}"
            )
        self._outbox.append((dest_rank, self.sim.now + latency, handler, args))
        self.messages_sent += 1

    def _run_epoch(self, until: float) -> None:
        self.sim.run(until=until)

    def _drain_outbox(self) -> List[Tuple[int, float, Callable, tuple]]:
        out, self._outbox = self._outbox, []
        return out


class ParallelSimulator:
    """Epoch-barrier conservative parallel simulator.

    Parameters
    ----------
    nranks:
        Number of logical processes.
    lookahead:
        Minimum cross-LP message latency, in simulated seconds.  Epoch
        length equals the lookahead.
    threads:
        Execute each epoch's LPs on a thread pool instead of sequentially.
        Results are identical either way (that property is tested).
    """

    def __init__(self, nranks: int, lookahead: float, threads: bool = False):
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        if lookahead <= 0:
            raise ValueError("lookahead must be > 0")
        self.lookahead = float(lookahead)
        self.lps = [LogicalProcess(rank, self) for rank in range(nranks)]
        self.threads = threads
        self._now = 0.0
        self.epochs_run = 0
        #: Optional :class:`repro.obs.profile.PhaseProfiler` attributing
        #: wall time to LP execution vs. barrier synchronization.  Only
        #: touched from the coordinating thread (per-LP dispatch timing
        #: lives on each LP's own ``sim.profiler``).
        self.profiler = None

    @property
    def nranks(self) -> int:
        return len(self.lps)

    @property
    def now(self) -> float:
        return self._now

    def lp(self, rank: int) -> LogicalProcess:
        return self.lps[rank]

    def lp_for(self, key: int) -> LogicalProcess:
        """Deterministic partitioning helper: key → LP by modulo."""
        return self.lps[key % len(self.lps)]

    def run(self, until: float) -> float:
        """Run all LPs to simulated time ``until`` in lookahead-wide epochs."""
        if until < self._now:
            raise SimulationError("cannot run backwards")
        pool: Optional[ThreadPoolExecutor] = None
        if self.threads and len(self.lps) > 1:
            pool = ThreadPoolExecutor(max_workers=len(self.lps))
        try:
            while self._now < until:
                epoch_end = min(self._now + self.lookahead, until)
                # Wall-clock reads below feed the PhaseProfiler only —
                # they never touch simulated state or outputs.
                t0 = _time.perf_counter() if self.profiler is not None else 0.0  # detlint: ignore[DET001]
                if pool is not None:
                    futures = [
                        pool.submit(lp._run_epoch, epoch_end) for lp in self.lps
                    ]
                    for fut in futures:
                        fut.result()
                else:
                    for lp in self.lps:
                        lp._run_epoch(epoch_end)
                if self.profiler is not None:
                    t1 = _time.perf_counter()  # detlint: ignore[DET001]
                    self.profiler.add("parallel.lp_run", t1 - t0)
                    t0 = t1
                # Barrier: exchange cross-LP messages.  Deterministic order:
                # by source rank, then send order (outbox is FIFO).
                for src in self.lps:
                    for dest_rank, t, handler, args in src._drain_outbox():
                        dest = self.lps[dest_rank]
                        dest.messages_received += 1
                        dest.sim.schedule_at(max(t, epoch_end), handler, *args)
                if self.profiler is not None:
                    self.profiler.add("parallel.barrier",
                                      _time.perf_counter() - t0)  # detlint: ignore[DET001]
                self._now = epoch_end
                self.epochs_run += 1
            # Boundary settlement: cross-LP deliveries landing exactly at
            # `until` were scheduled during the final barrier above and
            # would otherwise only execute on the *next* run() call.  The
            # sequential engine runs events at exactly t == until within
            # the same call, and windowed telemetry strides
            # (repro.obs.stream) rely on both engines agreeing on which
            # stride a boundary event belongs to.  Any sends these events
            # produce land at least one lookahead past `until`, so a
            # single extra pass settles the boundary.
            for lp in self.lps:
                lp._run_epoch(until)
            for src in self.lps:
                for dest_rank, t, handler, args in src._drain_outbox():
                    dest = self.lps[dest_rank]
                    dest.messages_received += 1
                    dest.sim.schedule_at(max(t, until), handler, *args)
        finally:
            if pool is not None:
                pool.shutdown()
        return self._now

    def total_messages(self) -> Dict[str, int]:
        return {
            "sent": sum(lp.messages_sent for lp in self.lps),
            "received": sum(lp.messages_received for lp in self.lps),
        }
