"""Discrete-event simulation substrate (the ONSP [17] substitute).

The paper ran its experiments on ONSP, a parallel discrete-event overlay
simulation platform written in C++/MPI.  This package provides the same
execution model in pure Python:

* :class:`~repro.sim.engine.Simulator` — a sequential discrete-event core
  with a binary-heap scheduler, cancellable events, and generator-based
  processes.
* :class:`~repro.sim.parallel.ParallelSimulator` — a conservative
  (lookahead-synchronized) logical-process engine mirroring ONSP's
  parallel-DES design, runnable deterministically on a single host.
* :mod:`~repro.sim.rng` — named, reproducible random streams derived from a
  single master seed (one stream per model component, so adding a component
  never perturbs another component's draws).
* :mod:`~repro.sim.monitor` — time-weighted statistics, counters and
  histograms for instrumentation.
* :mod:`~repro.sim.queues` — an alternative calendar-queue scheduler with
  the same interface as the heap scheduler.
"""

from repro.sim.engine import Event, EventHandle, Simulator, SimulationError
from repro.sim.monitor import Counter, Histogram, TimeSeries, TimeWeightedStat
from repro.sim.parallel import LogicalProcess, ParallelSimulator
from repro.sim.queues import CalendarQueue, HeapQueue
from repro.sim.rng import RandomStreams
from repro.sim.trace import SimTracer, TraceRecord

__all__ = [
    "CalendarQueue",
    "Counter",
    "Event",
    "EventHandle",
    "HeapQueue",
    "Histogram",
    "LogicalProcess",
    "ParallelSimulator",
    "RandomStreams",
    "SimTracer",
    "SimulationError",
    "Simulator",
    "TraceRecord",
    "TimeSeries",
    "TimeWeightedStat",
]
