"""Pending-event set implementations for the discrete-event engine.

Two interchangeable schedulers are provided:

* :class:`HeapQueue` — a binary heap (``heapq``) with lazy deletion.  This
  is the default; it is O(log n) per operation and has excellent constant
  factors in CPython.
* :class:`CalendarQueue` — the classic Brown (1988) calendar queue, O(1)
  amortized when the event-time distribution is stable.  Discrete-event
  simulators for large overlays (ONSP included) traditionally use calendar
  queues; we keep one here both for fidelity and as a cross-check of the
  heap scheduler (the engine's test suite runs both).

Both store ``(time, seq, item)`` triples; ``seq`` is a monotonically
increasing tie-breaker so that events scheduled earlier run earlier at
equal timestamps, which makes runs deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator, List, Optional, Tuple

Entry = Tuple[float, int, Any]


class HeapQueue:
    """Binary-heap pending-event set with deterministic tie-breaking."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Entry] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, seq: int, item: Any) -> None:
        heapq.heappush(self._heap, (time, seq, item))

    def pop(self) -> Entry:
        """Remove and return the earliest entry.

        Raises :class:`IndexError` when empty.
        """
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest entry, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def clear(self) -> None:
        self._heap.clear()

    def __iter__(self) -> Iterator[Entry]:
        # Iteration order is heap order, not time order; callers that need
        # time order should sort.  Used only for inspection in tests.
        return iter(self._heap)


class CalendarQueue:
    """Calendar-queue pending-event set (Brown 1988).

    Events are hashed into ``nbuckets`` day-buckets of width ``bucket_width``
    by ``t // width % nbuckets``; a full "year" is ``nbuckets * width``.
    Dequeue scans the current day for an event within the current year,
    falling back to a direct minimum search when the calendar is sparse.
    The queue resizes (doubling / halving the bucket count) to keep the
    average bucket occupancy near one, preserving O(1) amortized behaviour
    as the event population grows and shrinks.
    """

    def __init__(self, nbuckets: int = 16, bucket_width: float = 1.0) -> None:
        if nbuckets < 1:
            raise ValueError("nbuckets must be >= 1")
        if bucket_width <= 0:
            raise ValueError("bucket_width must be > 0")
        self._init_calendar(nbuckets, bucket_width, start_time=0.0)
        self._size = 0

    # -- internal helpers ------------------------------------------------

    def _init_calendar(self, nbuckets: int, width: float, start_time: float) -> None:
        self._nbuckets = nbuckets
        self._width = width
        self._buckets: List[List[Entry]] = [[] for _ in range(nbuckets)]
        # The "current" position used by dequeues.
        self._last_time = start_time
        self._current = int(start_time / width) % nbuckets
        self._bucket_top = (int(start_time / width) + 1) * width

    def _bucket_index(self, time: float) -> int:
        return int(time / self._width) % self._nbuckets

    def _resize(self, nbuckets: int) -> None:
        entries: List[Entry] = [e for bucket in self._buckets for e in bucket]
        width = self._suggest_width(entries)
        self._init_calendar(nbuckets, width, self._last_time)
        for entry in entries:
            self._buckets[self._bucket_index(entry[0])].append(entry)

    def _suggest_width(self, entries: List[Entry]) -> float:
        """Pick a bucket width ~ average gap between adjacent event times."""
        if len(entries) < 2:
            return self._width
        times = sorted(e[0] for e in entries)
        # Sample the middle of the distribution to be robust to outliers.
        lo = len(times) // 4
        hi = max(lo + 2, (3 * len(times)) // 4)
        window = times[lo:hi]
        span = window[-1] - window[0]
        gaps = len(window) - 1
        if span <= 0.0 or gaps <= 0:
            return self._width
        return max(span / gaps * 3.0, 1e-12)

    # -- public interface --------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def push(self, time: float, seq: int, item: Any) -> None:
        if time < self._last_time:
            raise ValueError(
                f"cannot schedule into the past: {time} < now {self._last_time}"
            )
        self._buckets[self._bucket_index(time)].append((time, seq, item))
        self._size += 1
        if self._size > 2 * self._nbuckets:
            self._resize(2 * self._nbuckets)

    def pop(self) -> Entry:
        if self._size == 0:
            raise IndexError("pop from empty CalendarQueue")
        entry = self._dequeue_min()
        self._size -= 1
        self._last_time = entry[0]
        if self._nbuckets > 16 and self._size < self._nbuckets // 2:
            self._resize(self._nbuckets // 2)
        return entry

    def peek_time(self) -> Optional[float]:
        if self._size == 0:
            return None
        best = None
        for bucket in self._buckets:
            for entry in bucket:
                if best is None or entry[:2] < best[:2]:
                    best = entry
        assert best is not None
        return best[0]

    def clear(self) -> None:
        for bucket in self._buckets:
            bucket.clear()
        self._size = 0

    def __iter__(self) -> Iterator[Entry]:
        for bucket in self._buckets:
            yield from bucket

    # -- dequeue machinery -------------------------------------------------

    def _dequeue_min(self) -> Entry:
        # Scan forward from the current day looking for an event within the
        # current year; after a full lap with no hit, fall back to a global
        # minimum search (sparse calendar).
        current = self._current
        bucket_top = self._bucket_top
        for _ in range(self._nbuckets):
            bucket = self._buckets[current]
            candidate_idx = -1
            candidate: Optional[Entry] = None
            for idx, entry in enumerate(bucket):
                if entry[0] < bucket_top and (
                    candidate is None or entry[:2] < candidate[:2]
                ):
                    candidate = entry
                    candidate_idx = idx
            if candidate is not None:
                bucket.pop(candidate_idx)
                self._current = current
                self._bucket_top = bucket_top
                return candidate
            current = (current + 1) % self._nbuckets
            bucket_top += self._width
        # Sparse: direct search over everything.
        best: Optional[Entry] = None
        best_pos: Tuple[int, int] = (-1, -1)
        for bidx, bucket in enumerate(self._buckets):
            for idx, entry in enumerate(bucket):
                if best is None or entry[:2] < best[:2]:
                    best = entry
                    best_pos = (bidx, idx)
        assert best is not None
        self._buckets[best_pos[0]].pop(best_pos[1])
        year = self._nbuckets * self._width
        self._current = self._bucket_index(best[0])
        self._bucket_top = (int(best[0] / self._width) + 1) * self._width
        # Keep bucket_top consistent with the year containing the popped event.
        if self._bucket_top - best[0] > year:
            self._bucket_top = best[0] + self._width
        return best
