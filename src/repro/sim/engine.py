"""Sequential discrete-event simulation core.

The engine is deliberately small and fast: events are ``(time, seq,
callback)`` triples in a pending-event set (heap by default, calendar queue
optionally), with *lazy cancellation* — cancelling marks the handle dead and
the dispatcher drops dead entries on pop, which avoids O(n) heap surgery.

Two programming styles are supported:

* **callback style** — ``sim.schedule(delay, fn, *args)``;
* **process style** — ``sim.process(gen)`` where ``gen`` is a generator
  that yields either a ``float`` (sleep for that many simulated seconds) or
  an :class:`Event` (wait until the event is triggered).  Process style is
  used by the protocol state machines; callback style by the transport.

Determinism: with a fixed seed (see :mod:`repro.sim.rng`) and the
tie-breaking sequence number, two runs of the same model produce identical
event orders, which the test suite relies on.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Union

from repro.sim.queues import CalendarQueue, HeapQueue


class SimulationError(RuntimeError):
    """Raised on engine misuse (scheduling into the past, etc.)."""


class EventHandle:
    """A cancellable reference to a scheduled callback."""

    __slots__ = ("time", "callback", "args", "cancelled", "done")

    def __init__(self, time: float, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.done = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent; cancelling an
        already-executed handle is a no-op."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not (self.cancelled or self.done)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("done" if self.done else "pending")
        return f"<EventHandle t={self.time:.6g} {state} {self.callback!r}>"


class Event:
    """A triggerable condition that processes can wait on.

    ``Event`` is the synchronization primitive for process-style code:
    any number of processes may ``yield event``; when ``event.trigger(value)``
    is called every waiter resumes (in wait order) with ``value`` as the
    result of the ``yield``.  Triggering is level-sensitive: a process that
    waits on an already-triggered event resumes immediately.
    """

    __slots__ = ("sim", "_triggered", "value", "_waiters")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._triggered = False
        self.value: Any = None
        self._waiters: List[Generator] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    def trigger(self, value: Any = None) -> None:
        if self._triggered:
            raise SimulationError("Event already triggered")
        self._triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim.schedule(0.0, self.sim._resume_process, proc, value)

    def _add_waiter(self, proc: Generator) -> None:
        if self._triggered:
            self.sim.schedule(0.0, self.sim._resume_process, proc, self.value)
        else:
            self._waiters.append(proc)


class PeriodicTask:
    """A repeating timer created by :meth:`Simulator.every`.

    With ``jitter > 0`` each period is drawn uniformly from
    ``interval * [1 - jitter, 1 + jitter]`` using the supplied seeded
    generator, which breaks the lockstep synchronization of thousands of
    identical timers at scale while staying fully reproducible.
    """

    __slots__ = (
        "sim", "interval", "callback", "args", "jitter", "rng",
        "_handle", "_cancelled", "fired",
    )

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        jitter: float = 0.0,
        rng: Any = None,
    ):
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.args = args
        self.jitter = jitter
        self.rng = rng
        self._handle: Optional[EventHandle] = None
        self._cancelled = False
        self.fired = 0

    def _next_interval(self) -> float:
        if self.jitter <= 0.0:
            return self.interval
        spread = self.jitter * (2.0 * float(self.rng.random()) - 1.0)
        return self.interval * (1.0 + spread)

    def _schedule(self, delay: float) -> None:
        if not self._cancelled:
            self._handle = self.sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fired += 1
        self.callback(*self.args)
        self._schedule(self._next_interval())

    def cancel(self) -> None:
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def active(self) -> bool:
        return not self._cancelled


class Simulator:
    """A sequential discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial simulation clock value (seconds).
    queue:
        ``"heap"`` (default) or ``"calendar"`` — the pending-event set
        implementation.
    """

    def __init__(self, start_time: float = 0.0, queue: str = "heap"):
        if queue == "heap":
            self._queue: Union[HeapQueue, CalendarQueue] = HeapQueue()
        elif queue == "calendar":
            self._queue = CalendarQueue()
        else:
            raise ValueError(f"unknown queue kind {queue!r}")
        self._now = float(start_time)
        self._seq = 0
        self._events_executed = 0
        self._running = False
        self._stop_requested = False
        #: Optional :class:`repro.obs.profile.PhaseProfiler` timing event
        #: dispatch (wall clock; never affects simulated behaviour).
        self.profiler = None

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def __len__(self) -> int:
        """Number of pending (possibly cancelled) entries."""
        return len(self._queue)

    # -- scheduling ------------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule into the past: {time} < {self._now}")
        handle = EventHandle(time, callback, args)
        self._queue.push(time, self._seq, handle)
        self._seq += 1
        return handle

    def event(self) -> Event:
        """Create a fresh :class:`Event` bound to this simulator."""
        return Event(self)

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng: Any = None,
    ) -> "PeriodicTask":
        """Run ``callback(*args)`` every ``interval`` seconds until the
        returned :class:`PeriodicTask` is cancelled.  The first firing is
        after ``start_delay`` (default: one interval).

        ``jitter`` (a fraction of the interval, in ``[0, 1)``) desynchronizes
        the period: every gap is drawn from ``interval * [1-jitter, 1+jitter]``
        using ``rng`` (a seeded :class:`numpy.random.Generator`, e.g. from
        :class:`repro.sim.rng.RandomStreams`), so runs stay reproducible.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")
        if not 0.0 <= jitter < 1.0:
            raise SimulationError("jitter must be in [0, 1)")
        if jitter > 0.0 and rng is None:
            raise SimulationError("jitter requires a seeded rng")
        task = PeriodicTask(self, interval, callback, args, jitter=jitter, rng=rng)
        task._schedule(interval if start_delay is None else start_delay)
        return task

    # -- processes -----------------------------------------------------------

    def process(self, generator: Generator) -> Generator:
        """Register a generator as a simulation process and start it now."""
        self.schedule(0.0, self._resume_process, generator, None)
        return generator

    def _resume_process(self, proc: Generator, value: Any) -> None:
        try:
            yielded = proc.send(value)
        except StopIteration:
            return
        if isinstance(yielded, Event):
            yielded._add_waiter(proc)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(f"process yielded negative delay {yielded}")
            self.schedule(float(yielded), self._resume_process, proc, None)
        else:
            raise SimulationError(
                f"process yielded {yielded!r}; expected a delay or an Event"
            )

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when none remain."""
        while True:
            try:
                time, _seq, handle = self._queue.pop()
            except IndexError:
                return False
            if handle.cancelled:
                continue
            self._now = time
            handle.done = True
            self._events_executed += 1
            if self.profiler is not None:
                self.profiler.time("sim.dispatch", handle.callback, *handle.args)
            else:
                handle.callback(*handle.args)
            return True

    def peek(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None``.

        Dead (cancelled) heads are dropped; the first live head is popped
        and reinserted with its original sequence number, so FIFO ties are
        preserved.  (No ``peek_time`` pre-check: for the calendar queue
        that is an O(n) scan, which would make run() quadratic.)
        """
        while True:
            try:
                entry = self._queue.pop()
            except IndexError:
                return None
            if entry[2].cancelled:
                continue
            self._queue.push(*entry)
            return entry[0]

    def stop(self) -> None:
        """Request that the current (or next) :meth:`run` return after the
        event being dispatched completes.

        This is the cooperative halt used by in-simulation monitors — e.g.
        a live health monitor breaching an SLO — to end a run early
        without unwinding the dispatch stack; pending events stay queued,
        so a later ``run()`` continues from where the halt left off.
        """
        self._stop_requested = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``
        have executed.  Returns the final clock value.

        When stopping at ``until``, the clock is advanced to exactly
        ``until`` (events at later times stay pending).
        """
        if self._running:
            raise SimulationError("run() re-entered")
        self._running = True
        self._stop_requested = False
        try:
            executed = 0
            while True:
                if max_events is not None and executed >= max_events:
                    break
                # peek() skips cancelled entries; using the raw queue head
                # here would let step() run a live event beyond `until`
                # whenever a cancelled entry fronted the queue.
                next_t = self.peek()
                if next_t is None:
                    break
                if until is not None and next_t > until:
                    self._now = until
                    break
                if not self.step():
                    break
                executed += 1
                if self._stop_requested:
                    break
            if until is not None and self._now < until and self._queue.peek_time() is None:
                self._now = until
            return self._now
        finally:
            self._running = False
