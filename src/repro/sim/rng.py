"""Reproducible named random streams.

Large simulations need *stream separation*: the churn generator, the
topology generator, and the protocol's randomized choices must each draw
from an independent stream so that changing one component (e.g. adding a
draw in the failure detector) does not perturb every other component's
sequence.  This is the standard variance-reduction / reproducibility idiom
from parallel discrete-event simulation.

:class:`RandomStreams` derives one :class:`numpy.random.Generator` per
*name* from a master seed using ``numpy.random.SeedSequence.spawn``-style
keying: the child seed is ``SeedSequence((master, hash(name)))``, so the
mapping name → stream is stable across runs and across machines.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


def _stable_key(name: str) -> int:
    """A platform-stable 32-bit key for a stream name (``hash()`` is salted
    per-process, so it cannot be used)."""
    return zlib.crc32(name.encode("utf-8"))


class RandomStreams:
    """A factory of independent, named, reproducible random generators."""

    def __init__(self, master_seed: int = 0):
        if master_seed < 0:
            raise ValueError("master_seed must be non-negative")
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (its state advances as it is used).
        """
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence((self.master_seed, _stable_key(name)))
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *freshly re-seeded* generator for ``name`` (state reset
        to the beginning of the stream)."""
        seq = np.random.SeedSequence((self.master_seed, _stable_key(name)))
        gen = np.random.Generator(np.random.PCG64(seq))
        self._streams[name] = gen
        return gen

    def spawn(self, name: str, index: int) -> np.random.Generator:
        """An indexed sub-stream (e.g. one per node) under ``name``."""
        seq = np.random.SeedSequence((self.master_seed, _stable_key(name), int(index)))
        return np.random.Generator(np.random.PCG64(seq))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(master_seed={self.master_seed}, streams={sorted(self._streams)})"
