"""GUESS-style non-forwarding search over the local peer list (§3, [19]).

GUESS answers queries by probing peers chosen *locally* instead of
flooding; its hit rate therefore rises with the number of pointers the
node has collected — the property the paper cites as motivation: *"nodes
need to collect a large amount of pointers to other nodes to increase
the local hit rate of submitted queries."*

Here a query is "find up to k peers likely to hold content X"; each peer
advertises a ``shared_files`` count in its attached info and a synthetic
content vector derived from its nodeId, so hit probability is
deterministic and testable.  :meth:`GuessSearch.hit_rate_vs_list_size`
regenerates the intro's qualitative claim.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.node import PeerWindowNode
from repro.core.pointer import Pointer


def _holds(pointer: Pointer, content_key: int, universe: int) -> bool:
    """Deterministic synthetic content placement: a peer sharing ``f``
    files holds content ``c`` iff one of the f pseudo-random slots drawn
    from its nodeId lands on c."""
    info = pointer.attached_info or {}
    files = int(info.get("shared_files", 0)) if isinstance(info, dict) else 0
    if files <= 0:
        return False
    # Cheap stable hash mixing of (nodeId, slot index) without Python rng.
    seed = pointer.node_id.value & 0xFFFFFFFF
    x = np.uint64(seed ^ 0x9E3779B97F4A7C15)
    for i in range(min(files, 512)):
        x = np.uint64((int(x) * 6364136223846793005 + 1442695040888963407) % (1 << 64))
        if int(x) % universe == content_key:
            return True
    return False


class GuessSearch:
    """Non-forwarding search bound to one PeerWindow node."""

    def __init__(self, node: PeerWindowNode, universe: int = 10_000):
        if universe < 1:
            raise ValueError("universe must be >= 1")
        self.node = node
        self.universe = universe
        self.queries = 0
        self.hits = 0

    def candidates(self) -> List[Pointer]:
        """Peers worth probing: nonzero shared files, not ourselves,
        ordered by advertised share size (GUESS probes promising peers
        first)."""
        out = [
            p
            for p in self.node.peer_list
            if p.node_id.value != self.node.node_id.value
            and isinstance(p.attached_info, dict)
            and p.attached_info.get("shared_files", 0) > 0
        ]
        out.sort(key=lambda p: (-p.attached_info["shared_files"], p.node_id.value))
        return out

    def query(self, content_key: int, probe_budget: int = 50) -> Optional[Pointer]:
        """Probe up to ``probe_budget`` local candidates for the content;
        returns the first holder, or None on a miss."""
        if not 0 <= content_key < self.universe:
            raise ValueError("content_key out of universe")
        self.queries += 1
        for p in self.candidates()[:probe_budget]:
            if _holds(p, content_key, self.universe):
                self.hits += 1
                return p
        return None

    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0

    def hit_rate_vs_list_size(
        self,
        content_keys: Iterable[int],
        list_sizes: List[int],
        probe_budget: int = 50,
    ) -> List[Tuple[int, float]]:
        """Hit rate when the search may only use the first ``s`` pointers,
        for each ``s`` — the larger the collected list, the better the
        local hit rate (the paper's motivation, measured)."""
        keys = list(content_keys)
        all_candidates = self.candidates()
        out: List[Tuple[int, float]] = []
        for size in list_sizes:
            pool = all_candidates[: max(size, 0)]
            hits = 0
            for key in keys:
                if any(_holds(p, key, self.universe) for p in pool[:probe_budget]):
                    hits += 1
            out.append((size, hits / len(keys) if keys else 0.0))
        return out
