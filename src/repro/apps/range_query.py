"""Range-query optimization from attached summaries (§3, Mercury [1]).

Mercury gathers *"load distribution, node-count distribution, and query
selectivity"* from other nodes to optimize multi-attribute range queries.
With PeerWindow the same summaries ride in pointers: every node attaches
a compact per-attribute histogram of the data it stores; a query planner
then estimates, purely from its peer list,

* the **selectivity** of a range predicate (what fraction of tuples
  match), and
* the **node-count** a range query must visit (how many peers hold
  matching data),

and orders multi-attribute query plans cheapest-first — the §3 promise
("query optimization") made concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.node import PeerWindowNode
from repro.core.pointer import Pointer


@dataclass(frozen=True)
class AttributeSummary:
    """A compact equi-width histogram of one attribute's values.

    ``counts[i]`` tuples fall in ``[lo + i*w, lo + (i+1)*w)`` with
    ``w = (hi - lo) / len(counts)``.  Wire size: one 16-bit count per
    bucket plus two floats — small enough to ride in a pointer (§3's
    compression requirement).
    """

    lo: float
    hi: float
    counts: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.counts:
            raise ValueError("need at least one bucket")
        if not self.hi > self.lo:
            raise ValueError("hi must exceed lo")
        if any(c < 0 for c in self.counts):
            raise ValueError("counts must be non-negative")

    @classmethod
    def from_values(
        cls, values: Sequence[float], lo: float, hi: float, buckets: int = 16
    ) -> "AttributeSummary":
        counts, _ = np.histogram(
            np.asarray(list(values), dtype=float), bins=buckets, range=(lo, hi)
        )
        return cls(lo, hi, tuple(int(c) for c in counts))

    @property
    def total(self) -> int:
        return sum(self.counts)

    def estimate_in_range(self, a: float, b: float) -> float:
        """Expected tuples in ``[a, b)``, with linear interpolation inside
        partially-covered buckets."""
        if b <= a:
            return 0.0
        width = (self.hi - self.lo) / len(self.counts)
        out = 0.0
        for i, count in enumerate(self.counts):
            blo = self.lo + i * width
            bhi = blo + width
            overlap = max(0.0, min(b, bhi) - max(a, blo))
            if overlap > 0:
                out += count * overlap / width
        return out

    def size_bits(self) -> int:
        return 16 * len(self.counts) + 2 * 32


@dataclass(frozen=True)
class RangePredicate:
    """``attribute in [lo, hi)``."""

    attribute: str
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not self.hi > self.lo:
            raise ValueError("hi must exceed lo")


class RangeQueryPlanner:
    """Selectivity / node-count estimation over a node's peer list."""

    def __init__(self, node: PeerWindowNode):
        self.node = node

    @staticmethod
    def make_attached_info(
        data: Dict[str, Sequence[float]],
        domains: Dict[str, Tuple[float, float]],
        buckets: int = 16,
    ) -> dict:
        """Summaries for a node's data: ``{"summaries": {attr: hist}}``."""
        return {
            "summaries": {
                attr: AttributeSummary.from_values(
                    values, domains[attr][0], domains[attr][1], buckets
                )
                for attr, values in data.items()
            }
        }

    def _summaries(self) -> List[Tuple[Pointer, Dict[str, AttributeSummary]]]:
        out = []
        for p in self.node.peer_list:
            if p.node_id.value == self.node.node_id.value:
                continue
            info = p.attached_info
            if isinstance(info, dict) and isinstance(info.get("summaries"), dict):
                out.append((p, info["summaries"]))
        return out

    def selectivity(self, pred: RangePredicate) -> float:
        """Estimated fraction of all visible tuples matching ``pred``."""
        matching = 0.0
        total = 0.0
        for _, summaries in self._summaries():
            hist = summaries.get(pred.attribute)
            if hist is None:
                continue
            matching += hist.estimate_in_range(pred.lo, pred.hi)
            total += hist.total
        return matching / total if total > 0 else 0.0

    def node_count(self, pred: RangePredicate, min_expected: float = 0.5) -> int:
        """How many peers are expected to hold matching tuples."""
        count = 0
        for _, summaries in self._summaries():
            hist = summaries.get(pred.attribute)
            if hist is not None and hist.estimate_in_range(pred.lo, pred.hi) >= min_expected:
                count += 1
        return count

    def holders(self, pred: RangePredicate, min_expected: float = 0.5) -> List[Pointer]:
        out = []
        for p, summaries in self._summaries():
            hist = summaries.get(pred.attribute)
            if hist is not None and hist.estimate_in_range(pred.lo, pred.hi) >= min_expected:
                out.append(p)
        return out

    def plan(self, predicates: Sequence[RangePredicate]) -> List[RangePredicate]:
        """Order a conjunctive multi-attribute query most-selective-first
        (the classic optimization Mercury's statistics feed)."""
        return sorted(predicates, key=lambda p: (self.selectivity(p), p.attribute))
