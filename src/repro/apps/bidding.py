"""Storage-bidding partner selection (§3, [5]).

Cooper & Garcia-Molina's data-preservation trading needs *"adequate
bargainers in terms of capacity, availability, physical location,
bidding price"*.  Nodes advertise a :class:`~repro.workloads.attached_info.BidInfo`
in their pointers; a buyer scores every visible bid locally and takes
the best offers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.node import PeerWindowNode
from repro.core.pointer import Pointer
from repro.workloads.attached_info import BidInfo


def score_bid(
    bid: BidInfo,
    need_gb: float,
    max_price: float,
    availability_weight: float = 2.0,
) -> float:
    """Utility of one bid for a buyer needing ``need_gb`` under
    ``max_price`` per GB.  Non-viable bids score ``-inf``.

    Viable bids are scored by price headroom plus weighted availability —
    monotone in both, so tests can verify dominance ordering.
    """
    if need_gb <= 0 or max_price <= 0:
        raise ValueError("need_gb and max_price must be positive")
    if bid.storage_gb < need_gb or bid.price_per_gb > max_price:
        return float("-inf")
    price_headroom = (max_price - bid.price_per_gb) / max_price
    return price_headroom + availability_weight * bid.availability


class BidMatcher:
    """Score and select storage offers from a node's peer list."""

    def __init__(self, node: PeerWindowNode):
        self.node = node

    def visible_bids(self) -> List[Tuple[Pointer, BidInfo]]:
        out = []
        for p in self.node.peer_list:
            if p.node_id.value == self.node.node_id.value:
                continue
            info = p.attached_info
            bid: Optional[BidInfo] = None
            if isinstance(info, dict):
                candidate = info.get("bid")
                if isinstance(candidate, BidInfo):
                    bid = candidate
            elif isinstance(info, BidInfo):
                bid = info
            if bid is not None:
                out.append((p, bid))
        return out

    def best_offers(
        self, need_gb: float, max_price: float, k: int = 3
    ) -> List[Tuple[Pointer, BidInfo, float]]:
        """The top ``k`` viable offers, best first (deterministic ties)."""
        if k < 0:
            raise ValueError("k must be >= 0")
        scored = [
            (p, bid, score_bid(bid, need_gb, max_price))
            for p, bid in self.visible_bids()
        ]
        viable = [row for row in scored if row[2] != float("-inf")]
        viable.sort(key=lambda row: (-row[2], row[0].node_id.value))
        return viable[:k]

    def market_depth(self, need_gb: float, max_price: float) -> int:
        """How many viable counterparties the local list offers — the
        quantity that grows with peer-list size (PeerWindow's pitch)."""
        return len(self.best_offers(need_gb, max_price, k=len(self.node.peer_list)))
