"""Upper applications (§3): what peer lists are *for*.

Each module realizes one of the usage scenarios the paper motivates, on
top of the public PeerWindow API, exchanging data through pointer
``attached_info``:

* :mod:`~repro.apps.guess` — GUESS [19] non-forwarding search: answer
  queries from the local peer list; hit rate grows with list size.
* :mod:`~repro.apps.backup` — backup partner selection [4][10]: find
  peers with the *same* OS (Pastiche: shared data) or *different* OS
  (Lillibridge: diversity against correlated failure).
* :mod:`~repro.apps.load_balance` — pair overloaded with underloaded
  nodes [6].
* :mod:`~repro.apps.bidding` — storage-trading partner scoring [5].
"""

from repro.apps.backup import BackupMatcher
from repro.apps.bidding import BidMatcher, score_bid
from repro.apps.compress import BloomFilter, DocumentDirectory
from repro.apps.guess import GuessSearch
from repro.apps.load_balance import LoadBalancer, Transfer
from repro.apps.range_query import (
    AttributeSummary,
    RangePredicate,
    RangeQueryPlanner,
)
from repro.apps.selection import level_census, peers_at_level, powerful_peers

__all__ = [
    "AttributeSummary",
    "BackupMatcher",
    "BidMatcher",
    "BloomFilter",
    "DocumentDirectory",
    "GuessSearch",
    "LoadBalancer",
    "RangePredicate",
    "RangeQueryPlanner",
    "Transfer",
    "level_census",
    "peers_at_level",
    "powerful_peers",
    "score_bid",
]
