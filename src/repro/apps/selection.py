"""Powerful-peer selection by level (§3's simplest usage).

*"A simple and direct way is finding powerful nodes by looking at the
level value in the pointers.  Practical experience shows that nodes with
higher bandwidth (at high levels in PeerWindow) also tend to stay longer
and contribute more resources."*  (Remember the footnote: "higher level"
means *smaller* level value — 0 is the highest.)
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.node import PeerWindowNode
from repro.core.pointer import Pointer


def powerful_peers(node: PeerWindowNode, k: int) -> List[Pointer]:
    """The ``k`` most powerful peers visible: smallest level value first,
    ties broken by id for determinism.  Excludes the node itself."""
    if k < 0:
        raise ValueError("k must be >= 0")
    peers = [
        p for p in node.peer_list if p.node_id.value != node.node_id.value
    ]
    peers.sort(key=lambda p: (p.level, p.node_id.value))
    return peers[:k]


def peers_at_level(node: PeerWindowNode, level: int) -> List[Pointer]:
    """All visible peers running at exactly ``level``."""
    if level < 0:
        raise ValueError("level must be >= 0")
    return [
        p
        for p in node.peer_list
        if p.level == level and p.node_id.value != node.node_id.value
    ]


def level_census(node: PeerWindowNode) -> Dict[int, int]:
    """Visible population per level — a node's local view of figure 5."""
    census: Dict[int, int] = {}
    for p in node.peer_list:
        census[p.level] = census.get(p.level, 0) + 1
    return dict(sorted(census.items()))
