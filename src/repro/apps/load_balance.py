"""Load balancing via peer-list load tags (§3, [6]).

Godfrey et al.'s dynamic load balancing needs heavily-loaded nodes to
find lightly-loaded ones to shed work onto.  With PeerWindow the
overloaded node simply scans its peer list's ``load`` attached info —
the matching is local and immediate.

:class:`LoadBalancer` plans transfers greedily: largest overload pairs
with the emptiest target first, never pushing a target above the high
watermark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.node import PeerWindowNode
from repro.core.pointer import Pointer


@dataclass(frozen=True)
class Transfer:
    """One planned load movement."""

    src_id: int
    dst_id: int
    amount: float

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise ValueError("transfer amount must be positive")


def _load_of(pointer: Pointer) -> float:
    info = pointer.attached_info
    if isinstance(info, dict) and "load" in info:
        return float(info["load"])
    return float("nan")


class LoadBalancer:
    """Plan transfers from the view of one node's peer list."""

    def __init__(self, node: PeerWindowNode, high: float = 1.0, low: float = 0.5):
        if not 0 <= low < high:
            raise ValueError("need 0 <= low < high")
        self.node = node
        self.high = high
        self.low = low

    def visible_loads(self) -> Dict[int, float]:
        """(id value -> load) for every peer advertising a load."""
        out = {}
        for p in self.node.peer_list:
            load = _load_of(p)
            if load == load:  # not NaN
                out[p.node_id.value] = load
        return out

    def overloaded(self) -> List[int]:
        return sorted(
            (v for v, load in self.visible_loads().items() if load > self.high),
            key=lambda v: -self.visible_loads()[v],
        )

    def underloaded(self) -> List[int]:
        return sorted(
            (v for v, load in self.visible_loads().items() if load < self.low),
            key=lambda v: self.visible_loads()[v],
        )

    def plan(self) -> List[Transfer]:
        """Greedy matching: move each node's excess above ``high`` into the
        emptiest targets without raising any target past ``high``."""
        loads = self.visible_loads()
        heavy = [(v, loads[v]) for v in loads if loads[v] > self.high]
        light = [(v, loads[v]) for v in loads if loads[v] < self.low]
        heavy.sort(key=lambda kv: -kv[1])
        light.sort(key=lambda kv: kv[1])
        transfers: List[Transfer] = []
        li = 0
        for src, load in heavy:
            excess = load - self.high
            while excess > 1e-12 and li < len(light):
                dst, dst_load = light[li]
                room = self.high - dst_load
                if room <= 1e-12:
                    li += 1
                    continue
                amount = min(excess, room)
                transfers.append(Transfer(src, dst, amount))
                excess -= amount
                dst_load += amount
                light[li] = (dst, dst_load)
                if self.high - dst_load <= 1e-12:
                    li += 1
        return transfers

    def imbalance_before_after(self) -> Dict[str, float]:
        """Max load before and after applying the plan (a test oracle)."""
        loads = dict(self.visible_loads())
        before = max(loads.values(), default=0.0)
        for t in self.plan():
            loads[t.src_id] -= t.amount
            loads[t.dst_id] += t.amount
        after = max(loads.values(), default=0.0)
        return {"before": before, "after": after}
