"""Backup partner selection from attached-info OS tags (§3, [4][10]).

Two opposite policies, both from the paper's citations:

* **Pastiche** [4] wants partners with *similar* systems (shared files
  dedupe across identical OS installs) — ``similar=True``;
* **Lillibridge et al.** [10] want partners with *different* systems
  (guard against a virus taking out all replicas at once) —
  ``similar=False``.

Either way the node answers the question locally, from its peer list —
no probing, no directory.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.node import PeerWindowNode
from repro.core.pointer import Pointer


class BackupMatcher:
    """Find backup partners by OS attached info."""

    def __init__(self, node: PeerWindowNode):
        self.node = node

    def _os_of(self, pointer: Pointer) -> Optional[str]:
        info = pointer.attached_info
        if isinstance(info, dict):
            value = info.get("os")
            return str(value) if value is not None else None
        return None

    @property
    def own_os(self) -> Optional[str]:
        info = self.node.attached_info
        if isinstance(info, dict):
            return info.get("os")
        return None

    def partners(self, k: int, similar: bool = True) -> List[Pointer]:
        """Up to ``k`` partners with the same (``similar=True``) or a
        different OS.  Deterministic order (id) for reproducibility."""
        if k < 0:
            raise ValueError("k must be >= 0")
        own = self.own_os
        if own is None:
            raise ValueError("local node has no 'os' attached info")
        out = []
        for p in self.node.peer_list:
            if p.node_id.value == self.node.node_id.value:
                continue
            other = self._os_of(p)
            if other is None:
                continue
            if (other == own) == similar:
                out.append(p)
        out.sort(key=lambda p: p.node_id.value)
        return out[:k]

    def diversity_set(self, k: int) -> List[Pointer]:
        """Up to ``k`` partners maximizing OS diversity: at most one
        partner per distinct OS, most-distinct-first ([10]'s policy)."""
        if k < 0:
            raise ValueError("k must be >= 0")
        by_os: Dict[str, Pointer] = {}
        for p in sorted(self.node.peer_list, key=lambda q: q.node_id.value):
            if p.node_id.value == self.node.node_id.value:
                continue
            os_name = self._os_of(p)
            if os_name is not None and os_name not in by_os:
                by_os[os_name] = p
        own = self.own_os
        ordered = sorted(
            by_os.items(), key=lambda kv: (kv[0] == own, kv[0])
        )  # different-OS entries first
        return [p for _, p in ordered[:k]]

    def os_census(self) -> Dict[str, int]:
        """OS population visible in the peer list (query-optimization-style
        summary, cf. the range-query usage in §3)."""
        census: Dict[str, int] = {}
        for p in self.node.peer_list:
            os_name = self._os_of(p)
            if os_name is not None:
                census[os_name] = census.get(os_name, 0) + 1
        return dict(sorted(census.items()))
