"""Attached-info compression (§3).

*"PeerWindow pointers should be kept small, because large pointers will
finally deflate the peer lists.  Therefore, if nodes need to express much
about their status, some compressing techniques should be combined.  ...
LOCKSS can use bloom filter to indicate whether a node contains a given
digital document and attach the filter results into the pointers."*

:class:`BloomFilter` is a classic Bloom (1970) filter sized in *bits* so
the pointer-size accounting of the rest of the system applies directly;
:class:`DocumentDirectory` is the LOCKSS-style usage: nodes attach a
filter of their document holdings, and a searcher scans its peer list for
probable holders — trading a small false-positive rate for pointers that
stay a few hundred bits.
"""

from __future__ import annotations

import math
import zlib
from typing import Hashable, Iterable, List, Tuple

from repro.core.node import PeerWindowNode
from repro.core.pointer import Pointer


class BloomFilter:
    """A fixed-size Bloom filter over hashable items.

    Parameters
    ----------
    size_bits:
        Filter width in bits (this is what inflates the pointer).
    n_hashes:
        Number of hash functions; :meth:`optimal` picks
        ``k = (m/n) ln 2`` for an expected item count.
    """

    __slots__ = ("size_bits", "n_hashes", "_bits", "count")

    def __init__(self, size_bits: int = 256, n_hashes: int = 4):
        if size_bits < 8:
            raise ValueError("size_bits must be >= 8")
        if n_hashes < 1:
            raise ValueError("n_hashes must be >= 1")
        self.size_bits = size_bits
        self.n_hashes = n_hashes
        self._bits = 0
        self.count = 0

    @classmethod
    def optimal(cls, expected_items: int, size_bits: int = 256) -> "BloomFilter":
        """Filter with the optimal hash count for ``expected_items``."""
        if expected_items < 1:
            raise ValueError("expected_items must be >= 1")
        k = max(1, round(size_bits / expected_items * math.log(2)))
        return cls(size_bits=size_bits, n_hashes=min(k, 16))

    def _positions(self, item: Hashable) -> List[int]:
        data = repr(item).encode("utf-8")
        h1 = zlib.crc32(data)
        h2 = zlib.adler32(data) | 1  # odd, for double hashing
        return [(h1 + i * h2) % self.size_bits for i in range(self.n_hashes)]

    def add(self, item: Hashable) -> None:
        for pos in self._positions(item):
            self._bits |= 1 << pos
        self.count += 1

    def update(self, items: Iterable[Hashable]) -> None:
        for item in items:
            self.add(item)

    def __contains__(self, item: Hashable) -> bool:
        return all((self._bits >> pos) & 1 for pos in self._positions(item))

    def false_positive_rate(self) -> float:
        """Expected FP rate ``(1 - e^{-kn/m})^k`` at the current load."""
        if self.count == 0:
            return 0.0
        k, n, m = self.n_hashes, self.count, self.size_bits
        return (1.0 - math.exp(-k * n / m)) ** k

    def fill_ratio(self) -> float:
        return bin(self._bits).count("1") / self.size_bits

    def to_int(self) -> int:
        """The raw bit vector (what actually rides in the pointer)."""
        return self._bits

    @classmethod
    def from_int(cls, bits: int, size_bits: int, n_hashes: int, count: int = 0) -> "BloomFilter":
        f = cls(size_bits, n_hashes)
        f._bits = bits
        f.count = count
        return f


class DocumentDirectory:
    """LOCKSS-style document location over a peer list.

    Peers attach ``{"doc_filter": BloomFilter}``; :meth:`probable_holders`
    scans the local peer list — no messages — and returns peers whose
    filter claims the document.
    """

    def __init__(self, node: PeerWindowNode):
        self.node = node

    @staticmethod
    def make_attached_info(documents: Iterable[Hashable], size_bits: int = 256) -> dict:
        docs = list(documents)
        filt = BloomFilter.optimal(max(len(docs), 1), size_bits=size_bits)
        filt.update(docs)
        return {"doc_filter": filt}

    def probable_holders(self, document: Hashable) -> List[Pointer]:
        out = []
        for p in self.node.peer_list:
            if p.node_id.value == self.node.node_id.value:
                continue
            info = p.attached_info
            filt = info.get("doc_filter") if isinstance(info, dict) else None
            if isinstance(filt, BloomFilter) and document in filt:
                out.append(p)
        return out

    def lookup_quality(
        self, document: Hashable, true_holders: set
    ) -> Tuple[int, int]:
        """(true positives, false positives) for a known ground truth —
        the testing oracle for the compression trade-off."""
        hits = self.probable_holders(document)
        tp = sum(1 for p in hits if p.node_id.value in true_holders)
        fp = len(hits) - tp
        return tp, fp
