"""Protocol tournament: every contestant, one seeded workload, one scorecard.

The paper's claim is comparative — PeerWindow collects full node lists
with less bandwidth and lower error than flat alternatives — so the
repro needs a driver that makes the comparison *measured* rather than
asserted.  This package runs PeerWindow and every registered baseline
over byte-identical seeded churn workloads, folds each contestant
through the same :class:`~repro.obs.stream.StreamWindower` /
:class:`~repro.obs.health.HealthSpec` machinery, and reduces the result
to one deterministic markdown + JSON scorecard (``repro compare``).
"""

from repro.compare.contestants import (
    CONTESTANTS,
    ContestantRun,
    baseline_health_spec,
    build_contestant,
    contestant_names,
)
from repro.compare.scorecard import (
    SCORECARD_SCHEMA,
    SCORECARD_VERSION,
    render_json,
    render_markdown,
)
from repro.compare.tournament import TournamentConfig, run_tournament
from repro.compare.workload import ChurnOp, CompareWorkload

__all__ = [
    "CONTESTANTS",
    "ChurnOp",
    "CompareWorkload",
    "ContestantRun",
    "SCORECARD_SCHEMA",
    "SCORECARD_VERSION",
    "TournamentConfig",
    "baseline_health_spec",
    "build_contestant",
    "contestant_names",
    "render_json",
    "render_markdown",
    "run_tournament",
]
