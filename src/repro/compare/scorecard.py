"""Scorecard document: the tournament's one deterministic artifact.

JSON side: ``schema: "repro.compare"``, version 1 — per-(contestant,
seed) rows, cross-seed aggregates, and the champion verdict, rendered
with sorted keys so repeated runs (and sequential vs partitioned
champion engines) produce byte-identical files.  Markdown side: the
same numbers as human-readable tables in the idiom of
``repro.experiments.report``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

__all__ = [
    "SCORECARD_SCHEMA",
    "SCORECARD_VERSION",
    "build_doc",
    "champion_healthy",
    "render_json",
    "render_markdown",
]

SCORECARD_SCHEMA = "repro.compare"
SCORECARD_VERSION = 1


def build_doc(cfg, rows: List[Dict[str, Any]], aggregates: List[Dict[str, Any]]
              ) -> Dict[str, Any]:
    return {
        "schema": SCORECARD_SCHEMA,
        "schema_version": SCORECARD_VERSION,
        # The execution engine (sequential vs parallel=N) is deliberately
        # NOT recorded: the determinism contract promises byte-identical
        # scorecards across engines, so the engine cannot appear in them.
        "config": {
            "contestants": list(cfg.contestants),
            "n_nodes": cfg.n_nodes,
            "duration": cfg.duration,
            "window": cfg.window,
            "seeds": list(cfg.seeds),
            "champion": cfg.champion,
        },
        "rows": rows,
        "aggregates": aggregates,
        "champion_healthy": champion_healthy(cfg.champion, rows),
    }


def champion_healthy(champion: str, rows: List[Dict[str, Any]]) -> bool:
    """True iff the champion stayed inside its bands on *every* seed.
    Vacuously true when the champion did not compete."""
    mine = [r for r in rows if r["contestant"] == champion]
    return all(r["healthy"] for r in mine)


def render_json(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _table(headers: List[str], rows: List[List[Any]]) -> List[str]:
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in cells), default=0))
        for i in range(len(headers))
    ]
    def line(parts: List[str]) -> str:
        return "| " + " | ".join(p.ljust(widths[i]) for i, p in enumerate(parts)) + " |"
    out = [line(headers),
           "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
    out.extend(line(r) for r in cells)
    return out


_ROW_COLS = [
    ("contestant", "contestant"),
    ("seed", "seed"),
    ("bandwidth_bps_per_node", "bw bps/node"),
    ("error_rate", "error"),
    ("completeness", "complete"),
    ("join_latency_s", "join s"),
    ("detect_latency_s", "detect s"),
    ("collection_latency_s", "collect s"),
    ("mcast_trees", "trees"),
    ("mcast_max_depth", "depth"),
    ("window_breaches", "breaches"),
    ("healthy", "healthy"),
]

_AGG_COLS = [
    ("contestant", "contestant"),
    ("seeds", "seeds"),
    ("bandwidth_bps_per_node", "bw bps/node"),
    ("error_rate", "error"),
    ("completeness", "complete"),
    ("join_latency_s", "join s"),
    ("detect_latency_s", "detect s"),
    ("collection_latency_s", "collect s"),
    ("window_breaches", "breaches"),
    ("healthy", "healthy"),
]


def render_markdown(doc: Dict[str, Any]) -> str:
    cfg = doc["config"]
    lines = [
        "# Protocol tournament scorecard",
        "",
        (
            f"{len(cfg['contestants'])} contestants · n={cfg['n_nodes']} · "
            f"duration={_fmt(float(cfg['duration']))}s · "
            f"window={_fmt(float(cfg['window']))}s · "
            f"seeds={','.join(str(s) for s in cfg['seeds'])}"
        ),
        "",
        "## Per-seed rows",
        "",
    ]
    lines.extend(_table(
        [h for _, h in _ROW_COLS],
        [[row.get(k) for k, _ in _ROW_COLS] for row in doc["rows"]],
    ))
    lines += ["", "## Cross-seed aggregates", ""]
    lines.extend(_table(
        [h for _, h in _AGG_COLS],
        [[agg.get(k) for k, _ in _AGG_COLS] for agg in doc["aggregates"]],
    ))
    lines += ["", "## Verdicts", ""]
    for row in doc["rows"]:
        breached = row.get("final_breaches") or []
        status = "healthy" if row["healthy"] else (
            "BREACHED: " + ", ".join(breached)
        )
        lines.append(f"- {row['contestant']} · seed {row['seed']}: {status}")
    champ = cfg["champion"]
    verdict = "inside its bands" if doc["champion_healthy"] else "BREACHED"
    lines += ["", f"Champion ({champ}): {verdict}.", ""]
    return "\n".join(lines)
