"""Seeded churn workloads shared by every tournament contestant.

Fair comparison demands *identical* fault pressure: the same number of
crashes and joins at the same simulated times, for every protocol.  The
subtlety is that contestants allocate different node keys, so a
workload cannot name victims directly.  Like the chaos FaultPlan, a
:class:`ChurnOp` therefore carries an abstract ``pick`` in ``[0, 1)``
that each contestant resolves against *its own* sorted live-key list at
fire time — every contestant loses "the same" member (same rank, same
moment) without sharing key spaces.

The op list is derived entirely from ``(seed, n_nodes, duration)`` via
a seeded generator, so a tournament seed reproduces its workload
byte-for-byte forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["ChurnOp", "CompareWorkload"]

#: Never crash a network below this population — the comparison is about
#: steady-state collection quality, not extinction dynamics.
MIN_SURVIVORS = 8


@dataclass(frozen=True)
class ChurnOp:
    """One abstract churn event.

    ``pick`` selects the crash victim by rank: the contestant resolves
    ``keys[int(pick * len(keys))]`` over its sorted live keys.  Joins
    ignore ``pick`` (every contestant boots via its default bootstrap).
    """

    time: float
    kind: str  # "crash" | "join"
    pick: float

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "join"):
            raise ValueError(f"unknown churn op kind {self.kind!r}")
        if not 0.0 <= self.pick < 1.0:
            raise ValueError("churn op pick must lie in [0, 1)")

    def resolve(self, live_keys: List[int]):
        """Victim key for a crash, given the contestant's live keys."""
        if not live_keys:
            return None
        return live_keys[int(self.pick * len(live_keys))]


class CompareWorkload:
    """The full churn schedule for one tournament seed."""

    def __init__(
        self,
        seed: int,
        n_nodes: int,
        duration: float,
        ops_per_100s: float = 4.0,
    ):
        if n_nodes < 2 or duration <= 0:
            raise ValueError("workload needs n_nodes >= 2 and duration > 0")
        self.seed = int(seed)
        self.n_nodes = int(n_nodes)
        self.duration = float(duration)
        rng = np.random.default_rng((0x7033, self.seed))
        count = max(2, int(round(ops_per_100s * self.duration / 100.0)))
        # Churn only inside the middle of the run: the first windows
        # measure the seeded steady state, the last measure recovery.
        times = np.sort(rng.uniform(0.2 * self.duration, 0.8 * self.duration, count))
        kinds = rng.random(count)
        picks = rng.random(count)
        self.ops: List[ChurnOp] = [
            ChurnOp(
                time=float(times[i]),
                kind="crash" if kinds[i] < 0.6 else "join",
                pick=float(picks[i]),
            )
            for i in range(count)
        ]

    def apply(self, op: ChurnOp, contestant) -> bool:
        """Fire ``op`` against one contestant (its clock must already sit
        at ``op.time``).  Returns False when the op was skipped by the
        survivor guard."""
        live = contestant.live_keys()
        if op.kind == "crash":
            if len(live) <= MIN_SURVIVORS:
                return False
            victim = op.resolve(live)
            contestant.crash(victim)
            return True
        contestant.join()
        return True

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n_nodes": self.n_nodes,
            "duration": self.duration,
            "ops": [
                {"time": op.time, "kind": op.kind, "pick": op.pick}
                for op in self.ops
            ],
        }
