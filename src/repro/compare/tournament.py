"""The tournament driver: identical workloads, lockstep windows, one doc.

Every contestant in a seed advances through the *same* time marks — the
union of churn-op times and window boundaries — so their telemetry
windows line up exactly and a ``--watch`` callback can render them side
by side after every closed window.  Rows are measured per (contestant,
seed); cross-seed aggregates average them.  Everything downstream of
the seeded networks is pure arithmetic over simulated time, so the
resulting scorecard document is byte-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.compare.contestants import CHAMPION, CONTESTANTS, build_contestant
from repro.compare.scorecard import build_doc
from repro.compare.workload import CompareWorkload
from repro.obs.analyze import analyze_spans
from repro.obs.stream import SnapshotWriter, StreamWindower

__all__ = ["TournamentConfig", "run_tournament"]

#: ``on_window(seed, t, frames_by_name)`` — called after each lockstep
#: window boundary with every contestant's freshest frame.
WatchCallback = Callable[[int, float, Dict[str, Dict[str, Any]]], None]


@dataclass
class TournamentConfig:
    contestants: Tuple[str, ...]
    n_nodes: int = 40
    duration: float = 240.0
    window: float = 30.0
    seeds: Tuple[int, ...] = (0,)
    parallel: Optional[int] = None
    champion: str = CHAMPION

    def __post_init__(self):
        if self.duration <= 0 or self.window <= 0:
            raise ValueError("duration and window must be > 0")
        if not self.contestants:
            raise ValueError("at least one contestant required")
        unknown = [c for c in self.contestants if c not in CONTESTANTS]
        if unknown:
            known = ", ".join(CONTESTANTS)
            raise ValueError(
                f"unknown contestant(s) {unknown} (known: {known})"
            )


@dataclass
class _Entry:
    run: Any
    windower: StreamWindower
    frames: List[Dict[str, Any]] = field(default_factory=list)


class _Collector:
    def __init__(self, frames: List[Dict[str, Any]]):
        self.frames = frames

    def write(self, frame: Dict[str, Any]) -> None:
        self.frames.append(frame)

    def close(self) -> None:
        pass


def _mean(values: List[float]) -> Optional[float]:
    vals = [v for v in values if v is not None]
    return sum(vals) / len(vals) if vals else None


def _dist_mean(snapshot: Dict[str, Any], name: str) -> Optional[float]:
    dist = snapshot.get("dists", {}).get(name)
    if not dist or not dist.get("count"):
        return None
    return float(dist["mean"])


def _run_seed(
    cfg: TournamentConfig,
    seed: int,
    frames_dir: Optional[str] = None,
    on_window: Optional[WatchCallback] = None,
) -> List[Dict[str, Any]]:
    workload = CompareWorkload(seed, cfg.n_nodes, cfg.duration)
    entries: Dict[str, _Entry] = {}
    for name in cfg.contestants:
        run = build_contestant(name, seed, cfg.n_nodes, cfg.parallel)
        frames: List[Dict[str, Any]] = []
        sinks: List[Any] = [_Collector(frames)]
        if frames_dir is not None:
            sinks.append(
                SnapshotWriter(f"{frames_dir}/{name}-seed{seed}.jsonl")
            )
        windower = StreamWindower(
            run.net, window=cfg.window, spec=run.spec, sinks=sinks
        )
        entries[name] = _Entry(run=run, windower=windower, frames=frames)

    n_windows = int(cfg.duration // cfg.window)
    boundaries = [cfg.window * (i + 1) for i in range(n_windows)]
    marks = sorted(
        {round(t, 9) for t in boundaries}
        | {round(op.time, 9) for op in workload.ops}
        | {round(cfg.duration, 9)}
    )
    boundary_set = {round(b, 9) for b in boundaries}
    ops_by_time: Dict[float, List] = {}
    for op in workload.ops:
        ops_by_time.setdefault(round(op.time, 9), []).append(op)

    for mark in marks:
        for name in cfg.contestants:
            entries[name].windower.run(mark)
        for op in ops_by_time.get(mark, ()):
            for name in cfg.contestants:
                workload.apply(op, entries[name].run)
        if mark in boundary_set and on_window is not None:
            on_window(
                seed, mark,
                {
                    name: entries[name].frames[-1]
                    for name in cfg.contestants
                    if entries[name].frames
                },
            )

    rows: List[Dict[str, Any]] = []
    for name in cfg.contestants:
        entry = entries[name]
        entry.windower.finish()
        rows.append(_measure(cfg, seed, name, entry))
    if on_window is not None:
        on_window(
            seed, cfg.duration,
            {name: entries[name].frames[-1] for name in cfg.contestants},
        )
    return rows


def _measure(
    cfg: TournamentConfig, seed: int, name: str, entry: _Entry
) -> Dict[str, Any]:
    run = entry.run
    net = run.net
    snapshot = net.metrics_snapshot()
    report = analyze_spans(net.spans())
    latencies = [
        t.completion_latency
        for t in report.trees
        if t.completion_latency is not None
    ]
    live = len(run.live_keys())
    bits = run.transport_bits()
    final = entry.frames[-1] if entry.frames else {}
    breaches_windows = sum(
        len(f.get("breaches", ())) for f in entry.frames if not f.get("final")
    )
    return {
        "contestant": name,
        "seed": seed,
        "live_final": live,
        "bits_total": bits,
        "bandwidth_bps_per_node": (
            bits / cfg.duration / live if live else 0.0
        ),
        "error_rate": run.error_rate(),
        "completeness": run.completeness(),
        "join_latency_s": _dist_mean(snapshot, "join.latency"),
        "detect_latency_s": _dist_mean(snapshot, "detect.latency"),
        "collection_latency_s": _mean(latencies),
        "mcast_trees": len(report.trees),
        "mcast_max_depth": report.max_depth,
        "spans_total": len(net.spans()),
        "windows": sum(1 for f in entry.frames if not f.get("final")),
        "window_breaches": breaches_windows,
        "final_breaches": [v["slo"] for v in final.get("breaches", ())],
        "healthy": bool(final.get("healthy", False)),
    }


_AGG_FIELDS = (
    "bandwidth_bps_per_node",
    "error_rate",
    "completeness",
    "join_latency_s",
    "detect_latency_s",
    "collection_latency_s",
)


def _aggregate(
    cfg: TournamentConfig, rows: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    out = []
    for name in cfg.contestants:
        mine = [r for r in rows if r["contestant"] == name]
        agg: Dict[str, Any] = {"contestant": name, "seeds": len(mine)}
        for fieldname in _AGG_FIELDS:
            agg[fieldname] = _mean([r[fieldname] for r in mine])
        agg["window_breaches"] = sum(r["window_breaches"] for r in mine)
        agg["healthy_seeds"] = sum(1 for r in mine if r["healthy"])
        agg["healthy"] = all(r["healthy"] for r in mine)
        out.append(agg)
    return out


def run_tournament(
    cfg: TournamentConfig,
    frames_dir: Optional[str] = None,
    on_window: Optional[WatchCallback] = None,
) -> Dict[str, Any]:
    """Run every seed, return the scorecard document (see
    :mod:`repro.compare.scorecard` for the schema)."""
    rows: List[Dict[str, Any]] = []
    for seed in cfg.seeds:
        rows.extend(_run_seed(cfg, seed, frames_dir=frames_dir, on_window=on_window))
    rows.sort(key=lambda r: (r["contestant"], r["seed"]))
    aggregates = _aggregate(cfg, rows)
    return build_doc(cfg, rows, aggregates)
