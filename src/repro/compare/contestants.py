"""Tournament contestants: PeerWindow plus every executable baseline.

Each contestant wraps a live network behind one tiny uniform surface
(``live_keys`` / ``crash`` / ``join`` / ``completeness``) so the
tournament driver and the shared :class:`~repro.compare.workload.
CompareWorkload` never care which protocol they are driving.  The
wrapped network itself satisfies the ``StreamWindower`` duck type, so
every contestant also produces ``repro.telemetry`` v1 frames.

The champion (PeerWindow) is judged against the full derived
:meth:`~repro.obs.health.HealthSpec.default` bands; baselines get
deliberately loose bands (:func:`baseline_health_spec`) — the scorecard
should show *how much worse* they are, not drown in their expected
breaches.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from repro.baselines.pushpull import PushPullGossipNetwork
from repro.baselines.runtime import (
    ExplicitProbeNetwork,
    GossipNetwork,
    OneHopNetwork,
    RandomWalkNetwork,
)
from repro.obs.health import HealthSpec, Slo

__all__ = [
    "CONTESTANTS",
    "ContestantRun",
    "baseline_health_spec",
    "build_contestant",
    "contestant_names",
]

CHAMPION = "peerwindow"

#: Per-node bandwidth threshold for seeded PeerWindow populations.
_PW_THRESHOLD = 1e9


def baseline_health_spec(name: str, config, n_nodes: int) -> HealthSpec:
    """Loose SLO bands for a baseline contestant.

    These flag only outright pathology (detector burying half the net,
    gossip depth blowing past its TTL); a baseline performing like the
    paper predicts — worse than PeerWindow but functioning — stays
    green, so the scorecard's *numbers* carry the comparison.
    """
    ttl = max(2, int(math.ceil(2.0 * math.log(max(2, n_nodes)))))
    error_hi = {
        "gossip": 0.25,
        "push-pull-gossip": 0.25,
        "onehop": 0.15,
        "random-walk": 0.75,
        "explicit-probe": 0.6,
    }.get(name, 0.75)
    return HealthSpec(
        name=f"baseline:{name}",
        slos=[
            Slo("peerlist.error_rate",
                "membership staleness tolerated for this baseline",
                hi=error_hi),
            Slo("join.failure_rate", "joins through a live bootstrap", hi=0.25),
            Slo("probe.timeout_rate",
                "most probes must still return positively", hi=0.25),
            Slo("mcast.max_depth", "dissemination bounded by the TTL",
                hi=float(ttl + 2)),
            Slo("bandwidth.model_ratio",
                "measured bits within two orders of the §2 model",
                lo=0.02, hi=50.0),
        ],
    )


class ContestantRun:
    """One protocol instance competing in one tournament seed."""

    def __init__(self, name: str, net, spec: HealthSpec, champion: bool = False):
        self.name = name
        self.net = net
        self.spec = spec
        self.champion = champion

    # -- the uniform churn surface the workload drives ---------------------

    def live_keys(self) -> List[int]:
        return self.net.live_keys()

    def crash(self, key) -> None:
        self.net.crash(key)

    def join(self) -> None:
        self.net.join()

    def completeness(self) -> float:
        """Mean fraction of the oracle membership each live member holds."""
        return self.net.mean_completeness()

    def error_rate(self) -> float:
        return self.net.mean_error_rate()

    def transport_bits(self) -> float:
        return self.net.total_bits()


class _PeerWindowRun(ContestantRun):
    """Champion adapter: maps the uniform surface onto the core network."""

    def __init__(self, seed: int, n_nodes: int, parallel: Optional[int]):
        from repro.core.protocol import PeerWindowNetwork
        from repro.net.latency import PairwiseLatencyModel

        net = PeerWindowNetwork(
            topology=PairwiseLatencyModel(),
            master_seed=seed,
            parallel=parallel,
            observability=True,
        )
        net.seed_nodes([_PW_THRESHOLD] * n_nodes)
        spec = HealthSpec.default(net.config, n_nodes)
        super().__init__(CHAMPION, net, spec, champion=True)

    def live_keys(self) -> List[int]:
        return [k for k in sorted(self.net.nodes) if self.net.nodes[k].alive]

    def crash(self, key) -> None:
        self.net.crash(key)

    def join(self) -> None:
        live = self.live_keys()
        if live:
            self.net.add_node(_PW_THRESHOLD, bootstrap=live[0])

    def completeness(self) -> float:
        import numpy as np

        live = [self.net.nodes[k] for k in self.live_keys()]
        vals = []
        for node in live:
            correct = self.net.oracle_peer_ids(node)
            if not correct:
                continue
            actual = set(node.peer_list.ids())
            vals.append(len(actual & correct) / len(correct))
        return float(np.mean(vals)) if vals else 1.0

    def transport_bits(self) -> float:
        snapshot = self.net.metrics_snapshot()
        counters = snapshot["counters"]
        return float(
            sum(counters[k] for k in sorted(counters)
                if k.startswith("transport.bits."))
        )


def _baseline_factory(cls) -> Callable[[int, int, Optional[int]], ContestantRun]:
    def build(seed: int, n_nodes: int, parallel: Optional[int]) -> ContestantRun:
        net = cls(n_nodes, master_seed=seed, observability=True)
        spec = baseline_health_spec(cls.name, net.config, n_nodes)
        return ContestantRun(cls.name, net, spec)

    return build


#: name -> factory(seed, n_nodes, parallel).  ``parallel`` only applies
#: to the champion (baselines are sequential by construction); insertion
#: order is the scorecard's display order.
CONTESTANTS: Dict[str, Callable[[int, int, Optional[int]], ContestantRun]] = {
    CHAMPION: lambda seed, n, parallel: _PeerWindowRun(seed, n, parallel),
    GossipNetwork.name: _baseline_factory(GossipNetwork),
    PushPullGossipNetwork.name: _baseline_factory(PushPullGossipNetwork),
    OneHopNetwork.name: _baseline_factory(OneHopNetwork),
    RandomWalkNetwork.name: _baseline_factory(RandomWalkNetwork),
    ExplicitProbeNetwork.name: _baseline_factory(ExplicitProbeNetwork),
}


def contestant_names() -> List[str]:
    return list(CONTESTANTS)


def build_contestant(
    name: str, seed: int, n_nodes: int, parallel: Optional[int] = None
) -> ContestantRun:
    try:
        factory = CONTESTANTS[name]
    except KeyError:
        known = ", ".join(CONTESTANTS)
        raise ValueError(f"unknown contestant {name!r} (known: {known})") from None
    return factory(seed, n_nodes, parallel if name == CHAMPION else None)
