"""Baseline node-collection schemes PeerWindow is compared against.

The paper's introduction and related-work sections position PeerWindow
against four maintenance/collection strategies; all are implemented here
with the same bandwidth accounting so the efficiency comparison
(``benchmarks/bench_baseline_comparison.py``) is apples-to-apples:

* :mod:`~repro.baselines.explicit_probe` — heartbeat every neighbor
  periodically.  The intro's arithmetic: with 2-hour lifetimes and 30 s
  probes, 99.58 % of probes return positively (pure waste); 10 kbps
  maintains only 600 pointers.
* :mod:`~repro.baselines.gossip` — push-gossip multicast of events
  (the §2 alternative to the tree: higher redundancy r, so fewer pointers
  per bps).
* :mod:`~repro.baselines.onehop` — the one-hop DHT [7]: every node keeps
  the full membership, homogeneously — weak nodes pay the same as strong.
* :mod:`~repro.baselines.random_walk` — Mercury-style random-walk
  collection over a small-world overlay: pointers gathered by active
  walking, with per-pointer cost that does not amortize.
* :mod:`~repro.baselines.pushpull` — push–pull hybrid gossip: lean push
  seeding plus periodic anti-entropy pulls; lower redundancy than pure
  push but a standing digest cost.

:mod:`~repro.baselines.runtime` additionally provides *executable*,
fully instrumented versions of each strategy (span tracing, metrics,
transport accounting) satisfying the ``StreamWindower`` surface, so the
``repro compare`` tournament can run and watch every contestant over
identical seeded workloads.
"""

from repro.baselines.common import CollectionScheme, SchemeReport
from repro.baselines.explicit_probe import ExplicitProbeScheme
from repro.baselines.gossip import GossipMulticastScheme, GossipSim
from repro.baselines.onehop import OneHopDHTScheme
from repro.baselines.pushpull import PushPullGossipNetwork, PushPullGossipScheme
from repro.baselines.random_walk import RandomWalkScheme, small_world_graph
from repro.baselines.runtime import (
    BaselineNetwork,
    ExplicitProbeNetwork,
    GossipNetwork,
    OneHopNetwork,
    RandomWalkNetwork,
)

__all__ = [
    "BaselineNetwork",
    "CollectionScheme",
    "ExplicitProbeNetwork",
    "ExplicitProbeScheme",
    "GossipMulticastScheme",
    "GossipNetwork",
    "GossipSim",
    "OneHopDHTScheme",
    "OneHopNetwork",
    "PushPullGossipNetwork",
    "PushPullGossipScheme",
    "RandomWalkNetwork",
    "RandomWalkScheme",
    "SchemeReport",
    "small_world_graph",
]
