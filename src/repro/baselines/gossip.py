"""Gossip-multicast baseline (the §2 alternative design).

§2 sketches a gossip alternative to the tree multicast: *"the top node
first initiates a gossip around all the top nodes, and then sends the
event message to a level-1 node; L1 then initiates a gossip around all the
level-1 nodes ..."*.  Push gossip delivers with redundancy ``r`` well
above 1 (each node receives a given event ``fanout / ln(fanout-ish)``
times in expectation for reliable coverage), which divides the pointers-
per-bps efficiency by ``r`` in the §2 cost model.

:class:`GossipSim` actually runs push-gossip rounds over the DES engine so
reach, rounds-to-coverage, and redundancy are measured rather than
assumed; :class:`GossipMulticastScheme` is the closed-form counterpart
used in the comparison table.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.baselines.common import CollectionScheme
from repro.sim.engine import Simulator


class GossipMulticastScheme(CollectionScheme):
    """§2 cost model with gossip redundancy ``r > 1``."""

    name = "gossip-multicast"
    heterogeneous = True
    autonomic = True

    def __init__(
        self,
        mean_lifetime_s: float = 3600.0,
        changes_per_lifetime: float = 3.0,
        message_bits: float = 1000.0,
        redundancy: float = 4.0,
    ):
        if min(mean_lifetime_s, changes_per_lifetime, message_bits, redundancy) <= 0:
            raise ValueError("all parameters must be positive")
        self.mean_lifetime_s = mean_lifetime_s
        self.changes_per_lifetime = changes_per_lifetime
        self.message_bits = message_bits
        self.redundancy = redundancy

    def bandwidth_for_pointers(self, pointers: float) -> float:
        return (
            pointers
            * self.changes_per_lifetime
            * self.redundancy
            * self.message_bits
            / self.mean_lifetime_s
        )

    def pointers_for_bandwidth(self, bandwidth_bps: float) -> float:
        return (
            bandwidth_bps
            * self.mean_lifetime_s
            / (self.changes_per_lifetime * self.redundancy * self.message_bits)
        )

    def useful_message_fraction(self) -> float:
        """Only the first copy of an event updates state."""
        return 1.0 / self.redundancy


class GossipSim:
    """Push gossip of one event over ``n`` nodes with the given fanout.

    Every informed node forwards the event to ``fanout`` uniformly random
    nodes each round (round length = ``round_s``); nodes stop forwarding
    after ``rounds_ttl`` rounds.  Measures reach, per-node receive counts
    (redundancy), and rounds until coverage.
    """

    def __init__(
        self,
        sim: Simulator,
        n: int,
        fanout: int = 3,
        rounds_ttl: Optional[int] = None,
        round_s: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if n < 1 or fanout < 1 or round_s <= 0:
            raise ValueError("invalid gossip parameters")
        self.sim = sim
        self.n = n
        self.fanout = fanout
        self.rounds_ttl = (
            rounds_ttl if rounds_ttl is not None else max(1, int(2 * math.log(max(n, 2))))
        )
        self.round_s = round_s
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.receive_counts: Dict[int, int] = {}
        self.first_round: Dict[int, int] = {}
        self.messages_sent = 0

    def start(self, origin: int = 0) -> None:
        self.receive_counts[origin] = 1
        self.first_round[origin] = 0
        self.sim.schedule(0.0, self._spread, origin, 0)

    def _spread(self, node: int, round_idx: int) -> None:
        if round_idx >= self.rounds_ttl:
            return
        targets = self.rng.integers(0, self.n, size=self.fanout)
        for t in targets:
            t = int(t)
            self.messages_sent += 1
            fresh = t not in self.receive_counts
            self.receive_counts[t] = self.receive_counts.get(t, 0) + 1
            if fresh:
                self.first_round[t] = round_idx + 1
                self.sim.schedule(self.round_s, self._spread, t, round_idx + 1)

    # -- measurements -------------------------------------------------------

    def reach(self) -> int:
        return len(self.receive_counts)

    def coverage(self) -> float:
        return self.reach() / self.n

    def redundancy(self) -> float:
        """Mean receives per reached node (>= 1; the ``r`` of the §2 model
        counts sends per node: messages_sent / reach)."""
        if not self.receive_counts:
            return 0.0
        return self.messages_sent / self.reach()

    def rounds_to_coverage(self, fraction: float = 0.99) -> Optional[int]:
        """First round by which ``fraction`` of nodes were reached, or
        None if never."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        target = fraction * self.n
        counts_by_round: Dict[int, int] = {}
        for r in self.first_round.values():
            counts_by_round[r] = counts_by_round.get(r, 0) + 1
        cum = 0
        for r in sorted(counts_by_round):
            cum += counts_by_round[r]
            if cum >= target:
                return r
        return None
