"""Common interface for node-collection schemes.

Every scheme answers the two questions the paper's comparison turns on:

* ``pointers_for_bandwidth(W)`` — how many pointers can a node maintain
  when spending ``W`` bps on collection?
* ``bandwidth_for_pointers(p)`` — what does maintaining ``p`` pointers
  cost?

plus a ``useful_message_fraction`` diagnostic (what share of maintenance
traffic actually updates pointer state — PeerWindow's multicast scores
~1.0, periodic probing ~0.004 in the intro's example).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class SchemeReport:
    """One row of the baseline-comparison table."""

    name: str
    bandwidth_bps: float
    pointers: float
    useful_fraction: float
    heterogeneous: bool
    autonomic: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.name,
            "bandwidth_bps": round(self.bandwidth_bps, 1),
            "pointers": round(self.pointers, 1),
            "useful_fraction": round(self.useful_fraction, 4),
            "heterogeneous": self.heterogeneous,
            "autonomic": self.autonomic,
        }


class CollectionScheme(abc.ABC):
    """A node-collection/maintenance strategy's analytic cost model."""

    name: str = "abstract"
    heterogeneous: bool = False
    autonomic: bool = False

    @abc.abstractmethod
    def bandwidth_for_pointers(self, pointers: float) -> float:
        """bps needed to maintain ``pointers`` pointers."""

    @abc.abstractmethod
    def pointers_for_bandwidth(self, bandwidth_bps: float) -> float:
        """Pointers maintainable at ``bandwidth_bps``."""

    @abc.abstractmethod
    def useful_message_fraction(self) -> float:
        """Fraction of maintenance messages that change pointer state."""

    def report(self, bandwidth_bps: float) -> SchemeReport:
        return SchemeReport(
            name=self.name,
            bandwidth_bps=bandwidth_bps,
            pointers=self.pointers_for_bandwidth(bandwidth_bps),
            useful_fraction=self.useful_message_fraction(),
            heterogeneous=self.heterogeneous,
            autonomic=self.autonomic,
        )
