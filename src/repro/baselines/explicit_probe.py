"""Explicit-probing baseline: heartbeat every neighbor periodically.

The introduction's arithmetic, which this module reproduces exactly:
with average lifetime 2 hours and a 30-second probe period, a fraction
``1 - period/lifetime = 239/240 ≈ 99.58 %`` of probes return positively —
pure waste.  At 10 kbps with 500-bit heartbeats a node can maintain only
``10_000 * 30 / 500 = 600`` pointers.

Besides the closed form, :class:`ExplicitProbeSim` runs the scheme over
the discrete-event engine so the failure-*detection latency* comparison
with PeerWindow's ring probing is also measurable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.baselines.common import CollectionScheme
from repro.sim.engine import Simulator


class ExplicitProbeScheme(CollectionScheme):
    """Closed-form cost model of all-neighbor heartbeating."""

    name = "explicit-probe"
    heterogeneous = True  # a node may probe fewer neighbors...
    autonomic = False  # ...but gets no event push, so lists stay tiny

    def __init__(
        self,
        probe_period_s: float = 30.0,
        heartbeat_bits: float = 500.0,
        mean_lifetime_s: float = 7200.0,
    ):
        if probe_period_s <= 0 or heartbeat_bits <= 0 or mean_lifetime_s <= 0:
            raise ValueError("all parameters must be positive")
        self.probe_period_s = probe_period_s
        self.heartbeat_bits = heartbeat_bits
        self.mean_lifetime_s = mean_lifetime_s

    def bandwidth_for_pointers(self, pointers: float) -> float:
        if pointers < 0:
            raise ValueError("pointers must be >= 0")
        return pointers * self.heartbeat_bits / self.probe_period_s

    def pointers_for_bandwidth(self, bandwidth_bps: float) -> float:
        if bandwidth_bps < 0:
            raise ValueError("bandwidth must be >= 0")
        return bandwidth_bps * self.probe_period_s / self.heartbeat_bits

    def useful_message_fraction(self) -> float:
        """Probability a probe observes a state change: the probability the
        neighbor died within the last probe period."""
        return min(1.0, self.probe_period_s / self.mean_lifetime_s)


class ExplicitProbeSim:
    """Event-driven probing of a fixed neighbor set.

    ``on_detect(neighbor, latency)`` fires when a dead neighbor is first
    discovered; ``latency`` is the detection delay since the death.  The
    comparison bench uses the mean detection latency (expected ~period/2)
    and the counted probe traffic.
    """

    def __init__(
        self,
        sim: Simulator,
        neighbors: List[int],
        probe_period_s: float = 30.0,
        heartbeat_bits: float = 500.0,
        rng: Optional[np.random.Generator] = None,
        on_detect: Optional[Callable[[int, float], None]] = None,
    ):
        self.sim = sim
        self.neighbors = list(neighbors)
        self.probe_period_s = probe_period_s
        self.heartbeat_bits = heartbeat_bits
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.on_detect = on_detect
        self.death_time: Dict[int, float] = {}
        self.detected: Dict[int, float] = {}
        self.probes_sent = 0
        self.bits_sent = 0.0
        self._stopped = False
        # Stagger probe phases uniformly like real deployments.
        for nb in self.neighbors:
            offset = float(self.rng.uniform(0.0, probe_period_s))
            self.sim.schedule(offset, self._probe, nb)

    def kill(self, neighbor: int) -> None:
        """Mark a neighbor dead (it stops answering probes)."""
        if neighbor not in self.death_time:
            self.death_time[neighbor] = self.sim.now

    def stop(self) -> None:
        self._stopped = True

    def _probe(self, neighbor: int) -> None:
        if self._stopped:
            return
        self.probes_sent += 1
        self.bits_sent += self.heartbeat_bits
        dead_since = self.death_time.get(neighbor)
        if dead_since is not None and neighbor not in self.detected:
            latency = self.sim.now - dead_since
            self.detected[neighbor] = latency
            if self.on_detect is not None:
                self.on_detect(neighbor, latency)
            return  # stop probing the dead
        if dead_since is None:
            self.sim.schedule(self.probe_period_s, self._probe, neighbor)

    def wasted_fraction(self) -> float:
        """Share of probes that observed no state change."""
        if self.probes_sent == 0:
            return 0.0
        return 1.0 - len(self.detected) / self.probes_sent
