"""Executable, instrumented baseline networks for the protocol tournament.

The analytic schemes in this package answer "what *should* a strategy
cost"; these classes actually *run* each strategy over the DES engine
with the same observability hooks :class:`~repro.core.protocol.
PeerWindowNetwork` carries — per-member :class:`~repro.obs.trace.NodeObs`
spans (``join`` / ``probe`` / ``obituary`` / ``mcast.root`` /
``mcast.hop`` with parent links and ``depth`` attrs), a per-member
:class:`~repro.obs.metrics.MetricsRegistry`, and transport byte/message
accounting per wire kind — so a :class:`~repro.obs.stream.StreamWindower`
folds the exact same ``repro.telemetry`` v1 frames for every contestant
and ``repro compare --watch`` renders them side by side.

Every network satisfies the windower's duck type (``obs`` /
``now`` / ``run`` / ``live_nodes`` / ``level_histogram`` /
``mean_error_rate`` / ``metrics_snapshot`` / ``config``) plus the churn
surface the tournament workload drives (``live_keys`` / ``crash`` /
``join``).  All baselines are *flat* — every member reports level 0 —
which is precisely the contrast the paper draws against PeerWindow's
level hierarchy.

Determinism contract (same as the core protocol): all randomness flows
from :class:`~repro.sim.rng.RandomStreams` sub-streams, every timestamp
is the simulated clock, and every protocol decision iterates sorted
keys, so a seed reproduces frames and spans byte-for-byte.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import ProtocolConfig
from repro.obs import metrics as m
from repro.obs.trace import Observability, Span
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

__all__ = [
    "BaselineMember",
    "BaselineNetwork",
    "ExplicitProbeNetwork",
    "GossipNetwork",
    "OneHopNetwork",
    "RandomWalkNetwork",
]


class BaselineMember:
    """One participant in a baseline network.

    ``known`` maps peer key -> sim time the entry was last refreshed;
    ``dead`` carries death certificates (peer key -> burial time) so
    anti-entropy merges cannot resurrect a buried peer.
    """

    __slots__ = (
        "key", "alive", "known", "dead", "neighbors", "seen",
        "obs", "rng", "tasks", "joined_at",
    )

    def __init__(self, key: int, obs, rng):
        self.key = key
        self.alive = True
        self.known: Dict[int, float] = {}
        self.dead: Dict[int, float] = {}
        #: Static-overlay links (random-walk baseline only).
        self.neighbors: List[int] = []
        #: Event ids already applied (gossip duplicate suppression).
        self.seen: set = set()
        self.obs = obs
        self.rng = rng
        self.tasks: List = []
        self.joined_at = 0.0


class BaselineNetwork:
    """Shared machinery: population, probing detector, join handshake,
    oracle measurement, and the StreamWindower surface.

    Subclasses override :meth:`_on_death_detected` /
    :meth:`_announce_join` (how membership events disseminate),
    :meth:`_probe_targets` (how aggressively the detector probes), and
    the :meth:`_wire` / :meth:`_start_extra` hooks for scheme-specific
    overlay state and timers.
    """

    name = "baseline"
    #: One-way message latency between any two members (simulated s).
    hop_delay = 0.05

    def __init__(
        self,
        n_nodes: int,
        config: Optional[ProtocolConfig] = None,
        master_seed: int = 0,
        observability: bool = True,
    ):
        if n_nodes < 2:
            raise ValueError("a baseline network needs at least 2 members")
        self.config = config if config is not None else ProtocolConfig(id_bits=16)
        self.sim = Simulator()
        self.streams = RandomStreams(master_seed)
        self.obs = Observability(enabled=observability)
        #: Baselines only run sequentially (mirrors the attribute the
        #: windower-compatible surface exposes on the core network).
        self.parallel = None
        self.nodes: Dict[int, BaselineMember] = {}
        self._next_key = 0
        self._msgs: Dict[str, int] = {}
        self._bits: Dict[str, float] = {}
        self._death_time: Dict[int, float] = {}
        self._event_seq = 0
        keys = [self._spawn() for _ in range(n_nodes)]
        for key in keys:
            member = self.nodes[key]
            member.known = {k: 0.0 for k in keys if k != key}
        self._wire(keys)
        for key in keys:
            self._start(self.nodes[key])

    # -- population --------------------------------------------------------

    def _spawn(self) -> int:
        key = self._next_key
        self._next_key += 1
        self.nodes[key] = BaselineMember(
            key,
            obs=self.obs.view(key),
            rng=self.streams.spawn("baseline-member", key),
        )
        return key

    def _wire(self, keys: List[int]) -> None:
        """Scheme-specific overlay construction at seed time."""

    def _start(self, member: BaselineMember) -> None:
        interval = self.config.probe_interval
        phase = float(member.rng.uniform(0.0, interval))
        member.tasks.append(
            self.sim.every(
                interval, self._detector_tick, member.key, start_delay=phase
            )
        )
        self._start_extra(member)

    def _start_extra(self, member: BaselineMember) -> None:
        """Scheme-specific periodic timers."""

    def live_keys(self) -> List[int]:
        return [k for k in sorted(self.nodes) if self.nodes[k].alive]

    def live_nodes(self) -> List[BaselineMember]:
        return [self.nodes[k] for k in self.live_keys()]

    # -- churn surface (driven by the tournament workload) -----------------

    def crash(self, key: int) -> BaselineMember:
        """Silent death: timers stop, nobody is told."""
        member = self.nodes[key]
        if member.alive:
            member.alive = False
            for task in member.tasks:
                task.cancel()
            member.tasks = []
            self._death_time[key] = self.sim.now
        return member

    def leave(self, key: int) -> None:
        """Baselines have no goodbye protocol; leaving is crashing."""
        self.crash(key)

    def join(self, bootstrap: Optional[int] = None) -> int:
        """A new member joins via ``bootstrap`` (default: lowest live
        key), downloading its membership snapshot.  Returns the new key
        immediately; the handshake completes after a network round trip."""
        live = self.live_keys()
        if not live:
            raise ValueError("cannot join an empty network")
        if (
            bootstrap is None
            or bootstrap not in self.nodes
            or not self.nodes[bootstrap].alive
        ):
            bootstrap = live[0]
        key = self._spawn()
        member = self.nodes[key]
        now = self.sim.now
        member.joined_at = now
        span = None
        if member.obs.enabled:
            span = member.obs.start("join", now, via=bootstrap)
        self._send("join", self.config.event_message_bits)
        self.sim.schedule(2 * self.hop_delay, self._join_done, key, bootstrap, span)
        return key

    def _join_done(self, key: int, bootstrap: int, span: Optional[Span]) -> None:
        member = self.nodes.get(key)
        if member is None or not member.alive:
            return
        now = self.sim.now
        reg = member.obs.registry
        boot = self.nodes.get(bootstrap)
        if boot is None or not boot.alive:
            if span is not None:
                member.obs.end(span, now, status="failed")
            reg.inc(m.JOIN_FAILURES)
            self._start(member)
            return
        snapshot = [k for k in sorted(boot.known) if k != key]
        self._send(
            "download", self.config.pointer_bits * float(len(snapshot) + 1)
        )
        member.known = {k: now for k in snapshot}
        member.known[bootstrap] = now
        boot.known[key] = now
        if span is not None:
            member.obs.end(span, now, status="ok")
        reg.observe(m.JOIN_LATENCY, now - member.joined_at)
        self._start(member)
        self._announce_join(member, bootstrap, span)

    # -- failure detection -------------------------------------------------

    def _detector_tick(self, key: int) -> None:
        member = self.nodes.get(key)
        if member is None or not member.alive:
            return
        for target in self._probe_targets(member):
            self._probe(member, target)

    def _probe_targets(self, member: BaselineMember) -> List[int]:
        """Default detector: one uniformly random known peer per tick."""
        known = sorted(member.known)
        if not known:
            return []
        return [known[int(member.rng.integers(0, len(known)))]]

    def _probe(self, member: BaselineMember, target: int) -> None:
        now = self.sim.now
        self._send("probe", self.config.heartbeat_bits)
        span = None
        if member.obs.enabled:
            span = member.obs.start("probe", now, target=target)
        peer = self.nodes.get(target)
        if peer is not None and peer.alive:
            self._send("ack", self.config.ack_bits)
            self.sim.schedule(
                2 * self.hop_delay, self._probe_ok, member.key, target, span
            )
        else:
            self.sim.schedule(
                self.config.probe_timeout,
                self._probe_timeout, member.key, target, span,
            )

    def _probe_ok(self, key: int, target: int, span: Optional[Span]) -> None:
        member = self.nodes.get(key)
        if member is None:
            return
        now = self.sim.now
        if span is not None:
            member.obs.end(span, now, status="ok")
        member.obs.registry.observe(m.PROBE_RTT, 2 * self.hop_delay)
        if member.alive and target in member.known:
            member.known[target] = now

    def _probe_timeout(self, key: int, target: int, span: Optional[Span]) -> None:
        member = self.nodes.get(key)
        if member is None:
            return
        now = self.sim.now
        if span is not None:
            member.obs.end(span, now, status="timeout")
        reg = member.obs.registry
        reg.inc(m.PROBE_TIMEOUTS)
        if not member.alive or target not in member.known:
            return
        self._forget(member, target, via="probe", parent=span)
        reg.inc(m.FAILURES_DETECTED)
        died = self._death_time.get(target)
        if died is not None:
            reg.observe(m.DETECT_LATENCY, now - died)
        self._on_death_detected(member, target, span)

    def _forget(
        self,
        member: BaselineMember,
        target: int,
        via: str,
        parent=None,
    ) -> None:
        member.known.pop(target, None)
        member.dead[target] = self.sim.now
        if member.obs.enabled:
            member.obs.instant(
                "obituary", self.sim.now, parent=parent, subject=target, via=via
            )

    # -- event dissemination hooks ----------------------------------------

    def _on_death_detected(
        self, member: BaselineMember, subject: int, parent: Optional[Span]
    ) -> None:
        """How (whether) a detected death spreads.  Default: it doesn't."""

    def _announce_join(
        self, member: BaselineMember, bootstrap: int, parent: Optional[Span]
    ) -> None:
        """How (whether) a completed join spreads.  Default: it doesn't."""

    def _apply_event(
        self, member: BaselineMember, kind: str, subject: int
    ) -> None:
        now = self.sim.now
        if kind == "leave":
            if subject in member.known:
                member.known.pop(subject, None)
                member.dead[subject] = now
        elif kind == "join":
            if subject != member.key and subject in self.nodes:
                member.dead.pop(subject, None)
                member.known[subject] = now

    def _event_id(self, kind: str, subject: int) -> str:
        self._event_seq += 1
        return f"{kind}:{subject}:{self._event_seq}"

    # -- transport accounting ----------------------------------------------

    def _send(self, kind: str, bits: float) -> None:
        self._msgs[kind] = self._msgs.get(kind, 0) + 1
        self._bits[kind] = self._bits.get(kind, 0.0) + float(bits)

    def total_bits(self) -> float:
        return float(sum(self._bits[k] for k in sorted(self._bits)))

    # -- oracle measurement -------------------------------------------------

    def member_error_rate(self, member: BaselineMember) -> float:
        """(stale + absent) / correct, against the live-population oracle."""
        correct = set(self.live_keys())
        actual = set(member.known)
        actual.add(member.key)
        if not correct:
            return 0.0
        stale = len(actual - correct)
        absent = len(correct - actual)
        return (stale + absent) / len(correct)

    def member_completeness(self, member: BaselineMember) -> float:
        """|known ∩ live| / |live| — the collection-coverage fraction."""
        correct = set(self.live_keys())
        if not correct:
            return 1.0
        actual = set(member.known)
        actual.add(member.key)
        return len(actual & correct) / len(correct)

    def mean_error_rate(self) -> float:
        rates = [self.member_error_rate(mem) for mem in self.live_nodes()]
        return float(np.mean(rates)) if rates else 0.0

    def mean_completeness(self) -> float:
        vals = [self.member_completeness(mem) for mem in self.live_nodes()]
        return float(np.mean(vals)) if vals else 1.0

    # -- StreamWindower surface --------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> float:
        return self.sim.run(until=until, max_events=max_events)

    def level_histogram(self) -> Dict[int, int]:
        live = len(self.live_keys())
        return {0: live} if live else {}

    def spans(self) -> List[Span]:
        return self.obs.spans()

    def metrics_snapshot(self) -> Dict[str, object]:
        """Network-wide metrics aggregate with refreshed level gauges and
        injected transport counters (the same shape the core network
        produces, so :func:`repro.obs.health.metrics_signals` works)."""
        if self.obs.enabled:
            for view in self.obs.views().values():
                view.registry.gauges = {
                    k: v
                    for k, v in view.registry.gauges.items()
                    if not k.startswith(
                        (m.PEERS_SIZE_LEVEL + ".", m.NODES_LEVEL + ".")
                    )
                }
            for member in self.live_nodes():
                reg = member.obs.registry
                reg.set_gauge(
                    f"{m.PEERS_SIZE_LEVEL}.0", float(len(member.known) + 1)
                )
                reg.set_gauge(f"{m.NODES_LEVEL}.0", 1)
        snapshot = self.obs.metrics_snapshot()
        counters = snapshot["counters"]
        for kind in sorted(self._msgs):
            counters[f"{m.TRANSPORT_MSGS}.{kind}"] = self._msgs[kind]
        for kind in sorted(self._bits):
            counters[f"{m.TRANSPORT_BITS}.{kind}"] = self._bits[kind]
        return snapshot


class GossipNetwork(BaselineNetwork):
    """Flat push gossip (the §2 alternative): every membership event is
    rumor-mongered with fanout ``F`` and a ``2·ln n`` round TTL.

    Joins and detected deaths originate a ``mcast.root`` span; each
    receipt is a ``mcast.hop`` with its gossip round as ``depth`` and
    the sender's span as parent, so the telemetry pipeline reconstructs
    gossip "trees" exactly as it does PeerWindow multicasts — complete
    with the duplicate deliveries that make gossip pay redundancy ``r``.
    """

    name = "gossip"
    fanout = 3

    def _rounds_ttl(self) -> int:
        return max(2, int(math.ceil(2.0 * math.log(max(2, len(self.nodes))))))

    def _on_death_detected(self, member, subject, parent):
        self._originate(member, "leave", subject, parent)

    def _announce_join(self, member, bootstrap, parent):
        boot = self.nodes.get(bootstrap)
        if boot is not None and boot.alive:
            self._originate(boot, "join", member.key, parent)

    def _gossip_targets(self, member: BaselineMember, exclude: int) -> List[int]:
        pool = [k for k in sorted(member.known) if k != exclude]
        if not pool:
            return []
        count = min(self.fanout, len(pool))
        idx = member.rng.choice(len(pool), size=count, replace=False)
        return [pool[int(i)] for i in sorted(int(j) for j in idx)]

    def _originate(
        self,
        member: BaselineMember,
        kind: str,
        subject: int,
        parent: Optional[Span],
    ) -> None:
        now = self.sim.now
        event = self._event_id(kind, subject)
        member.seen.add(event)
        reg = member.obs.registry
        reg.inc(m.MCAST_ORIGINATED)
        targets = self._gossip_targets(member, exclude=subject)
        reg.observe(m.MCAST_FANOUT, float(len(targets)))
        root = None
        if member.obs.enabled:
            root = member.obs.start(
                "mcast.root", now, parent=parent,
                kind=kind.upper(), subject=subject, fanout=len(targets),
            )
            member.obs.end(root, now)
        ref = root.ref(1) if root is not None else None
        for target in targets:
            self._send("mcast", self.config.event_message_bits)
            self.sim.schedule(
                self.hop_delay, self._deliver, target, event, kind, subject, 1, ref
            )

    def _deliver(
        self,
        key: int,
        event: str,
        kind: str,
        subject: int,
        depth: int,
        ref,
    ) -> None:
        member = self.nodes.get(key)
        if member is None or not member.alive:
            return
        now = self.sim.now
        reg = member.obs.registry
        reg.inc(m.MCAST_RECEIVED)
        span = None
        if member.obs.enabled:
            span = member.obs.start(
                "mcast.hop", now, parent=ref,
                kind=kind.upper(), subject=subject, depth=depth,
            )
        if event in member.seen:
            reg.inc(m.MCAST_DUPLICATES)
            if span is not None:
                member.obs.end(span, now, status="duplicate")
            return
        member.seen.add(event)
        reg.observe(m.MCAST_DEPTH, float(depth))
        self._apply_event(member, kind, subject)
        if depth < self._rounds_ttl():
            targets = self._gossip_targets(member, exclude=subject)
            reg.observe(m.MCAST_FANOUT, float(len(targets)))
            if span is not None:
                span.attrs["fanout"] = len(targets)
            next_ref = span.ref(depth + 1) if span is not None else None
            for target in targets:
                self._send("mcast", self.config.event_message_bits)
                self.sim.schedule(
                    self.hop_delay, self._deliver,
                    target, event, kind, subject, depth + 1, next_ref,
                )
        if span is not None:
            member.obs.end(span, now)


class OneHopNetwork(BaselineNetwork):
    """One-hop DHT [7]: full membership everywhere, homogeneously.

    A leader (the lowest live key) serializes membership events and
    broadcasts each to every member — a depth-1 ``n``-way star per
    event, which is exactly the per-event cost the paper's onehop column
    models.  Detectors report deaths to the leader; the leader dedups by
    (kind, subject) so one death yields one broadcast.
    """

    name = "onehop"

    def _leader_key(self, member: BaselineMember) -> int:
        candidates = sorted(set(member.known) | {member.key})
        return candidates[0]

    def _on_death_detected(self, member, subject, parent):
        self._report(member, "leave", subject, parent)

    def _announce_join(self, member, bootstrap, parent):
        boot = self.nodes.get(bootstrap)
        if boot is not None and boot.alive:
            self._report(boot, "join", member.key, parent)

    def _report(
        self,
        member: BaselineMember,
        kind: str,
        subject: int,
        parent: Optional[Span],
    ) -> None:
        leader = self._leader_key(member)
        member.obs.registry.inc(m.REPORT_SENT)
        if leader == member.key:
            self.sim.schedule(0.0, self._broadcast, leader, kind, subject, parent)
        else:
            self._send("report", self.config.event_message_bits)
            self.sim.schedule(
                self.hop_delay, self._broadcast, leader, kind, subject, parent
            )

    def _broadcast(
        self, leader_key: int, kind: str, subject: int, parent
    ) -> None:
        leader = self.nodes.get(leader_key)
        if leader is None or not leader.alive:
            return
        event = f"{kind}:{subject}"
        if event in leader.seen:
            return
        leader.seen.add(event)
        now = self.sim.now
        reg = leader.obs.registry
        reg.inc(m.REPORT_SERVED)
        reg.inc(m.MCAST_ORIGINATED)
        self._apply_event(leader, kind, subject)
        targets = [k for k in sorted(leader.known) if k != subject]
        reg.observe(m.MCAST_FANOUT, float(len(targets)))
        root = None
        if leader.obs.enabled:
            root = leader.obs.start(
                "mcast.root", now, parent=parent,
                kind=kind.upper(), subject=subject, fanout=len(targets),
            )
            leader.obs.end(root, now)
        ref = root.ref(1) if root is not None else None
        for target in targets:
            self._send("mcast", self.config.event_message_bits)
            self.sim.schedule(
                self.hop_delay, self._deliver, target, kind, subject, ref
            )

    def _deliver(self, key: int, kind: str, subject: int, ref) -> None:
        member = self.nodes.get(key)
        if member is None or not member.alive:
            return
        now = self.sim.now
        reg = member.obs.registry
        reg.inc(m.MCAST_RECEIVED)
        reg.observe(m.MCAST_DEPTH, 1.0)
        if member.obs.enabled:
            span = member.obs.start(
                "mcast.hop", now, parent=ref,
                kind=kind.upper(), subject=subject, depth=1,
            )
            member.obs.end(span, now)
        self._apply_event(member, kind, subject)


class RandomWalkNetwork(BaselineNetwork):
    """Mercury-style random-walk collection over a small-world overlay.

    Collection is *pull*: every ``walk_interval`` each member launches a
    walk over the static ring+shortcut graph, refreshing its pointers to
    the nodes the walk visits (and introducing itself to them).  Entries
    not re-seen within ``entry_ttl`` expire — the ε·L refresh-period
    staleness tradeoff of the paper's random-walk column.  Membership
    events never propagate; only walking (or the base detector probing a
    dead pointer) repairs state, so error rates sit well above the
    push-based schemes.
    """

    name = "random-walk"
    walk_interval = 30.0
    neighbor_count = 4
    entry_ttl = 90.0

    def _walk_length(self) -> int:
        return max(4, int(math.ceil(2.0 * math.log(max(2, len(self.nodes))))))

    def _wire(self, keys: List[int]) -> None:
        ring = sorted(keys)
        n = len(ring)
        graph_rng = self.streams.get("baseline-graph")
        for i, key in enumerate(ring):
            member = self.nodes[key]
            member.neighbors = [ring[(i - 1) % n], ring[(i + 1) % n]]
            extra = self.neighbor_count - 2
            pool = [k for k in ring if k != key]
            if extra > 0 and pool:
                idx = graph_rng.choice(
                    len(pool), size=min(extra, len(pool)), replace=False
                )
                for j in sorted(int(x) for x in idx):
                    member.neighbors.append(pool[j])

    def _start_extra(self, member: BaselineMember) -> None:
        phase = float(member.rng.uniform(0.0, self.walk_interval))
        member.tasks.append(
            self.sim.every(
                self.walk_interval, self._launch_walk, member.key,
                start_delay=phase,
            )
        )

    def _announce_join(self, member, bootstrap, parent):
        live = [k for k in self.live_keys() if k != member.key]
        count = min(self.neighbor_count, len(live))
        if count:
            idx = member.rng.choice(len(live), size=count, replace=False)
            for i in sorted(int(j) for j in idx):
                peer = live[i]
                member.neighbors.append(peer)
                self.nodes[peer].neighbors.append(member.key)

    def _launch_walk(self, key: int) -> None:
        member = self.nodes.get(key)
        if member is None or not member.alive:
            return
        member.obs.registry.inc(m.WALKS_LAUNCHED)
        span = None
        if member.obs.enabled:
            span = member.obs.start("walk", self.sim.now, steps=0)
        self._walk_step(key, key, 0, span)

    def _walk_step(
        self, origin_key: int, at_key: int, steps: int, span: Optional[Span]
    ) -> None:
        now = self.sim.now
        origin = self.nodes.get(origin_key)
        if origin is None or not origin.alive:
            if span is not None:
                self.obs.view(origin_key).end(span, now, status="died")
            return
        if steps >= self._walk_length():
            self._finish_walk(origin, steps, span)
            return
        at = self.nodes.get(at_key)
        hops = [] if at is None else [k for k in at.neighbors if k in self.nodes]
        pool = sorted(set(hops) - {origin_key})
        if not pool:
            self._finish_walk(origin, steps, span)
            return
        nxt = pool[int(origin.rng.integers(0, len(pool)))]
        self._send("walk", self.config.pointer_bits)
        target = self.nodes.get(nxt)
        if target is None or not target.alive:
            # A dead pointer stalls the walk for a timeout, then the
            # walker repairs: the graph edge and the stale entry go.
            if at is not None:
                at.neighbors = [k for k in at.neighbors if k != nxt]
            if nxt in origin.known:
                self._forget(origin, nxt, via="walk", parent=span)
                origin.obs.registry.inc(m.FAILURES_DETECTED)
                died = self._death_time.get(nxt)
                if died is not None:
                    origin.obs.registry.observe(m.DETECT_LATENCY, now - died)
            self.sim.schedule(
                self.config.probe_timeout,
                self._walk_step, origin_key, at_key, steps + 1, span,
            )
            return
        origin.known[nxt] = now
        origin.dead.pop(nxt, None)
        target.known[origin_key] = now
        target.dead.pop(origin_key, None)
        self.sim.schedule(
            self.hop_delay, self._walk_step, origin_key, nxt, steps + 1, span
        )

    def _finish_walk(
        self, origin: BaselineMember, steps: int, span: Optional[Span]
    ) -> None:
        now = self.sim.now
        origin.obs.registry.observe(m.WALK_STEPS, float(steps))
        if span is not None:
            span.attrs["steps"] = steps
            origin.obs.end(span, now)
        cutoff = now - self.entry_ttl
        for key in [k for k in sorted(origin.known) if origin.known[k] < cutoff]:
            origin.known.pop(key)


class ExplicitProbeNetwork(BaselineNetwork):
    """The intro's strawman: heartbeat *every* known peer, every period.

    Deaths are detected quickly (by everyone, independently) but nothing
    else ever propagates — a joiner is known only to its bootstrap — and
    nearly every probe returns positively, which is the 99.58 %-waste
    arithmetic of the paper's introduction made executable.
    """

    name = "explicit-probe"

    def _probe_targets(self, member: BaselineMember) -> List[int]:
        return sorted(member.known)
