"""One-hop DHT baseline [7] (Gupta, Liskov, Rodrigues — HotOS IX).

Every node keeps the complete membership (the level-0 PeerWindow state,
for everyone).  §6's critique, which the model captures: *"one-hop DHT
treats almost all the nodes as homogeneous peers and costs too much for
weak nodes when the system is very large and dynamic."*

The maintenance cost per node is the full event stream of the system:
``N * m / L`` events per second at ``i`` bits each — independent of the
node's capacity, so a modem node drowns once ``N`` passes a few tens of
thousands (the bench sweeps exactly that crossover against PeerWindow).
"""

from __future__ import annotations

from repro.baselines.common import CollectionScheme


class OneHopDHTScheme(CollectionScheme):
    """Full-membership maintenance, homogeneous across nodes."""

    name = "one-hop-dht"
    heterogeneous = False
    autonomic = False

    def __init__(
        self,
        n_nodes: float,
        mean_lifetime_s: float = 3600.0,
        changes_per_lifetime: float = 3.0,
        message_bits: float = 1000.0,
        dissemination_overhead: float = 1.0,
    ):
        """``dissemination_overhead`` models the one-hop hierarchy's
        slice/unit-leader forwarding duplication (>= 1)."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if min(mean_lifetime_s, changes_per_lifetime, message_bits) <= 0:
            raise ValueError("parameters must be positive")
        if dissemination_overhead < 1:
            raise ValueError("dissemination_overhead must be >= 1")
        self.n_nodes = float(n_nodes)
        self.mean_lifetime_s = mean_lifetime_s
        self.changes_per_lifetime = changes_per_lifetime
        self.message_bits = message_bits
        self.dissemination_overhead = dissemination_overhead

    def per_node_cost_bps(self) -> float:
        """Every node pays for the full event stream, capacity regardless."""
        events_per_s = self.n_nodes * self.changes_per_lifetime / self.mean_lifetime_s
        return events_per_s * self.message_bits * self.dissemination_overhead

    def bandwidth_for_pointers(self, pointers: float) -> float:
        """The scheme cannot scale its list down: any participation costs
        the full-membership rate (that *is* the §6 critique)."""
        if pointers <= 0:
            return 0.0
        return self.per_node_cost_bps()

    def pointers_for_bandwidth(self, bandwidth_bps: float) -> float:
        """All of N if the node can afford the stream; nothing otherwise."""
        if bandwidth_bps >= self.per_node_cost_bps():
            return self.n_nodes
        return 0.0

    def useful_message_fraction(self) -> float:
        return 1.0 / self.dissemination_overhead
