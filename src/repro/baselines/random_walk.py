"""Random-walk collection baseline (Mercury [1] style).

Mercury gathers remote-node information by launching random walks over a
small-world overlay and sampling the nodes the walk visits.  Collection
is *active*: every pointer costs a fresh walk step, and pointers decay
with churn, so holding ``p`` fresh pointers costs ``p / lifetime`` walk
messages per second — no multicast amortization.

:func:`small_world_graph` builds the Watts-Strogatz-style overlay (ring +
rewired shortcuts) with networkx; :class:`RandomWalkScheme` gives the
closed-form costs; :meth:`RandomWalkScheme.collect` actually runs walks
and reports the unique-node yield (duplicate visits waste steps, which is
the scheme's second inefficiency).
"""

from __future__ import annotations

from typing import List, Optional, Set

import networkx as nx
import numpy as np

from repro.baselines.common import CollectionScheme


def small_world_graph(n: int, k: int = 8, rewire_p: float = 0.2, seed: int = 0) -> nx.Graph:
    """A connected Watts-Strogatz small-world overlay."""
    if n < 3:
        raise ValueError("n must be >= 3")
    k = min(k, n - 1)
    if k % 2:
        k -= 1
    k = max(k, 2)
    return nx.connected_watts_strogatz_graph(n, k, rewire_p, tries=200, seed=seed)


class RandomWalkScheme(CollectionScheme):
    """Active collection by random walking."""

    name = "random-walk"
    heterogeneous = True
    autonomic = True

    def __init__(
        self,
        mean_lifetime_s: float = 3600.0,
        message_bits: float = 1000.0,
        steps_per_pointer: float = 1.5,
        target_staleness: float = 0.05,
    ):
        """``steps_per_pointer`` accounts for duplicate visits (measured by
        :meth:`collect`; ~1.2-2 for small-world graphs at modest coverage).

        ``target_staleness`` is the tolerated stale fraction of the
        collected set.  Walking is pull-based: the collector never learns
        of departures, so a pointer refreshed every ``T`` seconds is stale
        for about ``T / (2 L)`` of the time; holding staleness at ``ε``
        requires ``T = 2 ε L``.  (PeerWindow's push keeps staleness under
        0.5 % for free — the default 5 % here is already generous to the
        baseline.)
        """
        if min(mean_lifetime_s, message_bits, steps_per_pointer) <= 0:
            raise ValueError("parameters must be positive")
        if not 0.0 < target_staleness < 1.0:
            raise ValueError("target_staleness must be in (0, 1)")
        self.mean_lifetime_s = mean_lifetime_s
        self.message_bits = message_bits
        self.steps_per_pointer = steps_per_pointer
        self.target_staleness = target_staleness

    @property
    def refresh_period_s(self) -> float:
        return 2.0 * self.target_staleness * self.mean_lifetime_s

    def bandwidth_for_pointers(self, pointers: float) -> float:
        # Each pointer must be re-walked every refresh period at
        # steps_per_pointer messages a time.
        refresh_rate = pointers / self.refresh_period_s
        return refresh_rate * self.steps_per_pointer * self.message_bits

    def pointers_for_bandwidth(self, bandwidth_bps: float) -> float:
        return (
            bandwidth_bps
            * self.refresh_period_s
            / (self.steps_per_pointer * self.message_bits)
        )

    def useful_message_fraction(self) -> float:
        return 1.0 / self.steps_per_pointer

    # -- executable walk ----------------------------------------------------

    def collect(
        self,
        graph: nx.Graph,
        start: int,
        steps: int,
        rng: Optional[np.random.Generator] = None,
    ) -> List[int]:
        """Run one ``steps``-long random walk; returns the distinct nodes
        visited (excluding ``start``)."""
        if steps < 0:
            raise ValueError("steps must be >= 0")
        rng = rng if rng is not None else np.random.default_rng(0)
        seen: Set[int] = set()
        current = start
        for _ in range(steps):
            nbrs = list(graph.neighbors(current))
            if not nbrs:
                break
            current = nbrs[int(rng.integers(0, len(nbrs)))]
            if current != start:
                seen.add(current)
        return sorted(seen)

    def measured_steps_per_pointer(
        self,
        graph: nx.Graph,
        start: int,
        steps: int,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Empirical duplicate-visit overhead on a concrete graph."""
        unique = len(self.collect(graph, start, steps, rng))
        if unique == 0:
            return float("inf")
        return steps / unique
