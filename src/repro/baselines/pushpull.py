"""Push–pull hybrid gossip baseline (the fifth contestant).

Classic anti-entropy literature (Demers et al.) shows that pairing a
lean push phase with periodic pull exchanges cuts push redundancy from
``O(ln n)``-ish to a small constant: the push only has to *seed* each
event somewhere, because pulls deterministically drain the difference
between any two views.  The price is a standing digest cost — every
member spends ``digest_bits / pull_interval`` bps forever, events or
not — which the §2 cost model charges as a constant bandwidth floor
before any pointers are bought.

:class:`PushPullGossipScheme` is the closed-form column for the
comparison table; :class:`PushPullGossipNetwork` is the executable
tournament contestant: :class:`~repro.baselines.runtime.GossipNetwork`
with push fanout 1 plus a periodic symmetric pull that merges both
views, honoring death certificates so a buried peer cannot be gossiped
back to life.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.gossip import GossipMulticastScheme
from repro.baselines.runtime import BaselineMember, GossipNetwork
from repro.obs import metrics as m

__all__ = ["PushPullGossipNetwork", "PushPullGossipScheme"]


class PushPullGossipScheme(GossipMulticastScheme):
    """§2 cost model for push–pull: lower redundancy ``r`` than pure
    push, plus a constant anti-entropy digest overhead in bps."""

    name = "push-pull-gossip"

    def __init__(
        self,
        mean_lifetime_s: float = 3600.0,
        changes_per_lifetime: float = 3.0,
        message_bits: float = 1000.0,
        redundancy: float = 2.0,
        digest_bits: float = 500.0,
        pull_interval_s: float = 20.0,
    ):
        super().__init__(
            mean_lifetime_s=mean_lifetime_s,
            changes_per_lifetime=changes_per_lifetime,
            message_bits=message_bits,
            redundancy=redundancy,
        )
        if digest_bits <= 0 or pull_interval_s <= 0:
            raise ValueError("digest parameters must be positive")
        self.digest_bits = digest_bits
        self.pull_interval_s = pull_interval_s

    @property
    def pull_overhead_bps(self) -> float:
        """Standing anti-entropy cost, paid regardless of event rate."""
        return self.digest_bits / self.pull_interval_s

    def bandwidth_for_pointers(self, pointers: float) -> float:
        return super().bandwidth_for_pointers(pointers) + self.pull_overhead_bps

    def pointers_for_bandwidth(self, bandwidth_bps: float) -> float:
        usable = max(0.0, bandwidth_bps - self.pull_overhead_bps)
        return super().pointers_for_bandwidth(usable)


class PushPullGossipNetwork(GossipNetwork):
    """Executable push–pull hybrid: push fanout 1 seeds each event, and
    every ``pull_interval`` each member anti-entropies with one random
    known peer (both directions merge, death certificates win ties)."""

    name = "push-pull-gossip"
    fanout = 1
    pull_interval = 20.0

    def _start_extra(self, member: BaselineMember) -> None:
        phase = float(member.rng.uniform(0.0, self.pull_interval))
        member.tasks.append(
            self.sim.every(
                self.pull_interval, self._pull_tick, member.key,
                start_delay=phase,
            )
        )

    def _pull_tick(self, key: int) -> None:
        member = self.nodes.get(key)
        if member is None or not member.alive:
            return
        pool = sorted(member.known)
        if not pool:
            return
        target = pool[int(member.rng.integers(0, len(pool)))]
        self._send("pull", self.config.heartbeat_bits)
        self.sim.schedule(self.hop_delay, self._pull_serve, key, target)

    def _pull_serve(self, requester_key: int, target_key: int) -> None:
        requester = self.nodes.get(requester_key)
        if requester is None or not requester.alive:
            return
        target = self.nodes.get(target_key)
        if target is None or not target.alive:
            # Pull into the void; the detector will bury the peer later.
            return
        now = self.sim.now
        moved = self._merge(requester, target) + self._merge(target, requester)
        self._send("pull", self.config.pointer_bits * float(max(1, moved)))
        reg = requester.obs.registry
        reg.inc(m.PULL_EXCHANGES)
        reg.inc(m.PULL_ENTRIES, moved)
        if requester.obs.enabled:
            requester.obs.instant("pull", now, peer=target_key, entries=moved)

    @staticmethod
    def _merge(dst: BaselineMember, src: BaselineMember) -> int:
        """Fold ``src``'s view into ``dst``: unknown live entries arrive
        with their source timestamps; death certificates newer than the
        destination's last sighting bury the peer.  Returns entries
        transferred."""
        moved = 0
        for key in sorted(src.known):
            if key == dst.key or key in dst.known:
                continue
            seen = src.known[key]
            buried = dst.dead.get(key)
            if buried is not None and buried >= seen:
                continue
            dst.dead.pop(key, None)
            dst.known[key] = seen
            moved += 1
        for key in sorted(src.dead):
            buried = src.dead[key]
            if key in dst.known and dst.known[key] < buried:
                dst.known.pop(key, None)
                dst.dead[key] = buried
                moved += 1
        return moved
