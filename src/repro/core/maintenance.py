"""MaintenanceService: the §4.6 refresh/expiry accuracy machinery.

Two periodic loops per node:

* **refresh** — re-announce our own pointer every ``refresh_multiple *
  LT_l`` seconds (lifetime-scaled, via
  :class:`~repro.core.refresh.RefreshManager`) so audience members can
  tell a silent-but-alive peer from a silently departed one;
* **sweep** — expire pointers not refreshed within ``expiry_multiple *
  LT_m`` of their own level's expected lifetime.

Refresh periods optionally carry seeded jitter (``config.timer_jitter``)
for the same de-synchronization reason as the probe loop.

A third, opt-in loop (``config.claim_audit_interval > 0``) is the claim
audit of DESIGN §16: levels are self-declared, and a node that *lies*
about being strong (low level) poisons every audience set and ring view
that believes it.  The audit cross-checks the strongest claim we hold
against observed behavior — a genuinely level-``c`` node (``c`` below
our own ``l``) covers a strictly wider prefix, so downloading its list
at its claimed level must return meaningfully more pointers than we hold
and include members outside our own level-``l`` prefix.  Liars are
demoted in place (their stored pointer's level reset to ours, and
dropped from the top-node list) so the ring/audience geometry heals.
"""

from __future__ import annotations

from typing import Optional

from repro.core.context import NodeContext
from repro.core.events import EventKind
from repro.core.pointer import Pointer
from repro.core.runtime import NodeRuntime
from repro.net.message import Message
from repro.obs import metrics as m


class MaintenanceService:
    """§4.6 refresh + expiry-sweep loops (+ the opt-in claim audit)."""

    def __init__(self, runtime: NodeRuntime, ctx: NodeContext):
        self.runtime = runtime
        self.ctx = ctx

    def start(self) -> None:
        ctx = self.ctx
        ctx.track(
            self.runtime.schedule(
                ctx.jittered(ctx.refresh_mgr.refresh_due_interval(ctx.level)),
                self.refresh_tick,
            )
        )
        ctx.track(
            self.runtime.schedule(ctx.config.level_check_interval, self.sweep_tick)
        )
        if ctx.config.claim_audit_interval > 0:
            ctx.track(
                self.runtime.schedule(
                    ctx.jittered(ctx.config.claim_audit_interval), self.audit_tick
                )
            )

    def refresh_tick(self) -> None:
        ctx = self.ctx
        if not ctx.alive:
            return
        ctx.stats.refreshes_sent += 1
        ctx.refresh_mgr.refreshes_sent += 1
        ctx.obs.registry.inc(m.REFRESH_SENT)
        root = None
        if ctx.obs.enabled:
            root = ctx.obs.instant("refresh", self.runtime.now, level=ctx.level)
        ctx.report_event(
            ctx.make_event(EventKind.REFRESH),
            trace=root.ref() if root is not None else None,
        )
        ctx.track(
            self.runtime.schedule(
                ctx.jittered(ctx.refresh_mgr.refresh_due_interval(ctx.level)),
                self.refresh_tick,
            )
        )

    def sweep_tick(self) -> None:
        ctx = self.ctx
        if not ctx.alive:
            return
        expired = ctx.refresh_mgr.sweep(ctx.peer_list, self.runtime.now)
        if expired:
            ctx.obs.registry.inc(m.SWEEP_EXPIRED, len(expired))
        for p in expired:
            if p.node_id.value == ctx.node_id.value:
                # Never expire ourselves.
                ctx.peer_list.add(ctx.self_pointer())
        ctx.track(
            self.runtime.schedule(ctx.config.level_check_interval, self.sweep_tick)
        )

    # -- claim auditing (DESIGN §16) ---------------------------------------

    def audit_tick(self) -> None:
        ctx = self.ctx
        if not ctx.alive:
            return
        suspect = self._strongest_claim()
        if suspect is not None:
            self._audit(suspect)
        ctx.track(
            self.runtime.schedule(
                ctx.jittered(ctx.config.claim_audit_interval), self.audit_tick
            )
        )

    def _strongest_claim(self) -> Optional[Pointer]:
        """The held pointer making the strongest (lowest-level) claim
        below our own level — deterministically the minimum of
        ``(level, id)`` so repeated audits converge on the same suspect
        until it is demoted or confirmed."""
        ctx = self.ctx
        best: Optional[Pointer] = None
        for p in list(ctx.peer_list) + list(ctx.top_list.pointers()):
            if p.node_id.value == ctx.node_id.value or p.level >= ctx.level:
                continue
            if best is None or (p.level, p.node_id.value) < (
                best.level,
                best.node_id.value,
            ):
                best = p
        return best

    def _audit(self, claim: Pointer) -> None:
        """Download the claimant's list at its *claimed* level and judge
        the claim by what comes back.  A level query would be the obvious
        cross-check, but a liar answers it with the same lie; the
        download is behavioral evidence it cannot fake without actually
        holding the wider list."""
        ctx = self.ctx
        ctx.obs.registry.inc(m.AUDIT_CHECKS)
        span = None
        if ctx.obs.enabled:
            span = ctx.obs.start(
                "audit",
                self.runtime.now,
                subject=str(claim.address),
                claimed=claim.level,
            )
        own_size = len(ctx.peer_list)
        msg = Message(
            ctx.address,
            claim.address,
            "download",
            payload=(claim.node_id, claim.level),
            size_bits=ctx.config.ack_bits,
            trace=span.ref() if span is not None else None,
        )

        def replied(reply: Message) -> None:
            matching, _tops = reply.payload
            self._judge(claim, matching, own_size, span)

        def timed_out() -> None:
            # Silence is not proof of lying (the §4.1 ring handles the
            # dead); the next tick re-audits whoever then claims most.
            if span is not None:
                ctx.obs.end(span, self.runtime.now, "timeout")

        self.runtime.request(
            msg,
            timeout=ctx.config.report_timeout,
            on_reply=replied,
            on_timeout=timed_out,
        )

    def _judge(self, claim: Pointer, matching, own_size: int, span) -> None:
        ctx = self.ctx
        if not ctx.alive:
            return
        # A genuine level-c node (c < our l) holds every member of a
        # strictly wider prefix: its list must be meaningfully larger
        # than ours AND contain members outside our own level-l prefix.
        # A liar whose true coverage is just our group returns ~our list.
        outside = any(
            not p.node_id.shares_prefix(ctx.node_id, ctx.level)
            for p in matching
            if p.node_id.value != ctx.node_id.value
        )
        big_enough = len(matching) >= ctx.config.claim_audit_margin * max(1, own_size)
        if outside and big_enough:
            ctx.obs.registry.inc(m.AUDIT_PASSES)
            if span is not None:
                ctx.obs.end(span, self.runtime.now, "pass")
            return
        ctx.obs.registry.inc(m.AUDIT_DEMOTIONS)
        held = ctx.peer_list.get(claim.node_id)
        if held is not None:
            held.level = ctx.level
        ctx.top_list.remove(claim.node_id)
        if span is not None:
            span.attrs["demoted_to"] = ctx.level
            ctx.obs.end(span, self.runtime.now, "demoted")
