"""MaintenanceService: the §4.6 refresh/expiry accuracy machinery.

Two periodic loops per node:

* **refresh** — re-announce our own pointer every ``refresh_multiple *
  LT_l`` seconds (lifetime-scaled, via
  :class:`~repro.core.refresh.RefreshManager`) so audience members can
  tell a silent-but-alive peer from a silently departed one;
* **sweep** — expire pointers not refreshed within ``expiry_multiple *
  LT_m`` of their own level's expected lifetime.

Refresh periods optionally carry seeded jitter (``config.timer_jitter``)
for the same de-synchronization reason as the probe loop.
"""

from __future__ import annotations

from repro.core.context import NodeContext
from repro.core.events import EventKind
from repro.core.runtime import NodeRuntime
from repro.obs import metrics as m


class MaintenanceService:
    """§4.6 refresh + expiry-sweep loops."""

    def __init__(self, runtime: NodeRuntime, ctx: NodeContext):
        self.runtime = runtime
        self.ctx = ctx

    def start(self) -> None:
        ctx = self.ctx
        ctx.track(
            self.runtime.schedule(
                ctx.jittered(ctx.refresh_mgr.refresh_due_interval(ctx.level)),
                self.refresh_tick,
            )
        )
        ctx.track(
            self.runtime.schedule(ctx.config.level_check_interval, self.sweep_tick)
        )

    def refresh_tick(self) -> None:
        ctx = self.ctx
        if not ctx.alive:
            return
        ctx.stats.refreshes_sent += 1
        ctx.refresh_mgr.refreshes_sent += 1
        ctx.obs.registry.inc(m.REFRESH_SENT)
        root = None
        if ctx.obs.enabled:
            root = ctx.obs.instant("refresh", self.runtime.now, level=ctx.level)
        ctx.report_event(
            ctx.make_event(EventKind.REFRESH),
            trace=root.ref() if root is not None else None,
        )
        ctx.track(
            self.runtime.schedule(
                ctx.jittered(ctx.refresh_mgr.refresh_due_interval(ctx.level)),
                self.refresh_tick,
            )
        )

    def sweep_tick(self) -> None:
        ctx = self.ctx
        if not ctx.alive:
            return
        expired = ctx.refresh_mgr.sweep(ctx.peer_list, self.runtime.now)
        if expired:
            ctx.obs.registry.inc(m.SWEEP_EXPIRED, len(expired))
        for p in expired:
            if p.node_id.value == ctx.node_id.value:
                # Never expire ourselves.
                ctx.peer_list.add(ctx.self_pointer())
        ctx.track(
            self.runtime.schedule(ctx.config.level_check_interval, self.sweep_tick)
        )
