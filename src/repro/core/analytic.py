"""The paper's closed-form performance model (§2).

With average lifetime ``L`` seconds, ``m`` state changes per lifetime
(joining and leaving included), multicast redundancy ``r`` (messages
received per event), and event-message size ``i`` bits, maintaining one
pointer costs ``m*r/L`` messages per second, so a node spending ``W`` bps
collects

    ``p = W * L / (m * r * i)``                      (§2)

pointers.  The worked example: ``L=3600, m=3, i=1000, r=1`` gives a 5 kbps
modem node ``p = 6000`` pointers — *"the cost of collecting 1,000 pointers
being less than 1 kbps"* (abstract).  These functions regenerate that
table and supply the level-assignment rule both engines use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """Parameters of the §2 analytic model."""

    mean_lifetime_s: float = 3600.0
    changes_per_lifetime: float = 3.0  # m: join + leave + one change
    redundancy: float = 1.0  # r: tree multicast delivers once
    message_bits: float = 1000.0  # i

    def __post_init__(self) -> None:
        if min(
            self.mean_lifetime_s,
            self.changes_per_lifetime,
            self.redundancy,
            self.message_bits,
        ) <= 0:
            raise ConfigError("all cost-model parameters must be positive")

    # -- §2 formulas ------------------------------------------------------

    def messages_per_pointer_per_second(self) -> float:
        """``m*r/L``: event messages received per maintained pointer."""
        return self.changes_per_lifetime * self.redundancy / self.mean_lifetime_s

    def bandwidth_for_pointers(self, pointers: float) -> float:
        """Input bandwidth (bps) to maintain ``pointers`` pointers."""
        if pointers < 0:
            raise ConfigError("pointers must be >= 0")
        return pointers * self.messages_per_pointer_per_second() * self.message_bits

    def pointers_for_bandwidth(self, bandwidth_bps: float) -> float:
        """``p = W*L/(m*r*i)``: pointers collectable at ``W`` bps."""
        if bandwidth_bps < 0:
            raise ConfigError("bandwidth must be >= 0")
        return (
            bandwidth_bps
            * self.mean_lifetime_s
            / (self.changes_per_lifetime * self.redundancy * self.message_bits)
        )

    def bandwidth_per_1000_pointers(self) -> float:
        """The abstract's headline number (bps per 1,000 pointers)."""
        return self.bandwidth_for_pointers(1000.0)

    # -- level assignment ---------------------------------------------------

    def peer_list_size(self, n_nodes: float, level: int) -> float:
        """Expected peer-list size ``N / 2^l`` (uniform ids, §1)."""
        if n_nodes < 0 or level < 0:
            raise ConfigError("n_nodes and level must be >= 0")
        return n_nodes / (2.0**level)

    def level_cost(self, n_nodes: float, level: int) -> float:
        """Input bandwidth (bps) of running at ``level`` in an ``n_nodes``
        system."""
        return self.bandwidth_for_pointers(self.peer_list_size(n_nodes, level))

    def min_affordable_level(self, n_nodes: float, threshold_bps: float) -> int:
        """The strongest (smallest-value) level whose maintenance cost fits
        under ``threshold_bps``.  This is the stationary point of the
        autonomic controller and the level the join estimator converges to.
        """
        if threshold_bps <= 0:
            raise ConfigError("threshold must be positive")
        if n_nodes <= 0:
            return 0
        cost_l0 = self.level_cost(n_nodes, 0)
        if cost_l0 <= threshold_bps:
            return 0
        # cost(l) = cost(0) / 2^l <= W  =>  l >= log2(cost(0)/W)
        return int(math.ceil(math.log2(cost_l0 / threshold_bps)))


def estimate_join_level(
    top_level: int, top_cost_bps: float, own_threshold_bps: float
) -> int:
    """The §4.3 join-time level estimate:

        ``l_X = ceil( l_T + log2(W_T / W_X) )``, clamped at 0.

    ``top_level``/``top_cost_bps`` are reported by the contacted top node
    (its level and its dynamically measured bandwidth cost).
    """
    if top_level < 0:
        raise ConfigError("top_level must be >= 0")
    if own_threshold_bps <= 0:
        raise ConfigError("own threshold must be positive")
    if top_cost_bps <= 0:
        # A freshly measured-zero top node: nothing is cheaper than free,
        # so the joiner can afford the top level itself.
        return top_level
    raw = top_level + math.log2(top_cost_bps / own_threshold_bps)
    return max(0, math.ceil(raw - 1e-9))


def expected_error_rate(
    multicast_delay_s: float, mean_lifetime_s: float
) -> float:
    """§5.3's error-rate approximation:
    ``error_rate = multicast_delay / lifetime`` (capped at 1)."""
    if multicast_delay_s < 0 or mean_lifetime_s <= 0:
        raise ConfigError("delay must be >= 0 and lifetime > 0")
    return min(1.0, multicast_delay_s / mean_lifetime_s)


def expected_multicast_steps(n_nodes: float) -> float:
    """§4.2 property 3: an event reaches the audience in about
    ``log2 N`` steps."""
    if n_nodes < 1:
        return 0.0
    return math.log2(n_nodes)
