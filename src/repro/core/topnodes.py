"""Top-node list maintenance (§2, §4.5).

Every node keeps a *top-node list* of ``t`` pointers (t = 8 by default) to
the top nodes of its part, used to report state-changing events.  The list
is maintained **lazily**: report acks piggyback ``t-1`` fresh top-node
pointers; unresponsive entries are dropped at use time; when the list
runs dry the node asks a peer for its list as a substitution.

A *top node's* own top-node list is different (§4.4): it holds pointers to
top nodes of **other parts**, ``t`` per part, keyed by the part prefix.
:class:`CrossPartTopList` implements that variant.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.nodeid import NodeId
from repro.core.pointer import Pointer


class TopNodeList:
    """A bounded list of pointers to the top nodes of the local part."""

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._pointers: Dict[int, Pointer] = {}

    def __len__(self) -> int:
        return len(self._pointers)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id.value in self._pointers

    def pointers(self) -> List[Pointer]:
        """Entries in ascending id order (deterministic)."""
        return [self._pointers[v] for v in sorted(self._pointers)]

    def merge(self, pointers: List[Pointer]) -> int:
        """Fold piggybacked pointers in, preferring the freshest entry per
        id and evicting the oldest-refreshed entries beyond capacity.
        Returns how many new ids were added.

        Entries are stored as copies: with an in-memory transport the
        pointers arriving here are often another node's live peer-list
        objects, and those are updated in place by event application —
        sharing them would couple two nodes' state outside the message
        fabric."""
        added = 0
        for p in pointers:
            existing = self._pointers.get(p.node_id.value)
            if existing is None:
                self._pointers[p.node_id.value] = p.copy()
                added += 1
            elif p.last_refresh >= existing.last_refresh:
                self._pointers[p.node_id.value] = p.copy()
        while len(self._pointers) > self.capacity:
            victim = min(self._pointers.values(), key=lambda q: (q.last_refresh, q.node_id.value))
            del self._pointers[victim.node_id.value]
        return added

    def remove(self, node_id: NodeId) -> Optional[Pointer]:
        return self._pointers.pop(node_id.value, None)

    def choose(self, rng: np.random.Generator) -> Optional[Pointer]:
        """A uniformly random entry (§4.1: reports go to *"a top node,
        randomly chosen from its top-node list"*)."""
        if not self._pointers:
            return None
        keys = sorted(self._pointers)
        return self._pointers[keys[int(rng.integers(0, len(keys)))]]

    def min_level(self) -> Optional[int]:
        """Smallest level value among entries (the part's top level as
        currently believed); None when empty."""
        if not self._pointers:
            return None
        return min(p.level for p in self._pointers.values())

    def clear(self) -> None:
        self._pointers.clear()


class CrossPartTopList:
    """A top node's map from *other* part prefixes to their top nodes.

    Keys are part-prefix bitstrings ('0'/'1' strings); each part keeps at
    most ``per_part`` pointers.
    """

    def __init__(self, per_part: int = 8):
        if per_part < 1:
            raise ValueError("per_part must be >= 1")
        self.per_part = per_part
        self._parts: Dict[str, TopNodeList] = {}

    def parts(self) -> List[str]:
        return sorted(self._parts)

    def merge(self, part_prefix: str, pointers: List[Pointer]) -> None:
        lst = self._parts.get(part_prefix)
        if lst is None:
            lst = TopNodeList(self.per_part)
            self._parts[part_prefix] = lst
        lst.merge(pointers)
        if len(lst) == 0:
            del self._parts[part_prefix]

    def for_part(self, part_prefix: str) -> List[Pointer]:
        lst = self._parts.get(part_prefix)
        return lst.pointers() if lst is not None else []

    def find_for_id(self, node_id: NodeId) -> List[Pointer]:
        """Top nodes of the part containing ``node_id``: the part whose
        prefix is a prefix of the id's bitstring."""
        bitstr = node_id.bitstring()
        for prefix in sorted(self._parts, key=len):
            if bitstr.startswith(prefix):
                return self._parts[prefix].pointers()
        return []

    def remove(self, node_id: NodeId) -> None:
        for prefix in list(self._parts):
            self._parts[prefix].remove(node_id)
            if len(self._parts[prefix]) == 0:
                del self._parts[prefix]
