"""Pointers: what one node knows about another.

§2: *"A pointer consists of the corresponding node's IP address, nodeId,
level, and a piece of attached info that can be specified by upper
applications."*

We additionally carry two timestamps used by the accuracy machinery
(§4.6): when the pointer's node was first seen joining (for lifetime
measurement) and when the pointer was last refreshed (for expiry).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Hashable, Optional

from repro.core.errors import NodeIdError
from repro.core.nodeid import NodeId, eigenstring


@dataclass(slots=True)
class Pointer:
    """A peer-list entry.

    ``address`` stands in for the IP address — it is the transport key of
    the node (any hashable).  ``attached_info`` is application data (§3).
    """

    node_id: NodeId
    address: Hashable
    level: int
    attached_info: Any = None
    #: Simulated time the node was observed joining (None if unknown, e.g.
    #: the pointer arrived via a bulk download rather than a join event).
    seen_join_time: Optional[float] = None
    #: Last time a state multicast about this node was received (§4.6).
    last_refresh: float = 0.0
    #: Monotone per-subject sequence number of the last applied event,
    #: guarding against out-of-order multicast application.
    last_event_seq: int = -1

    def __post_init__(self) -> None:
        if self.level < 0:
            raise NodeIdError("pointer level must be >= 0")
        if self.level > self.node_id.bits:
            raise NodeIdError(
                f"pointer level {self.level} exceeds id width {self.node_id.bits}"
            )

    @property
    def eigenstring(self) -> str:
        return eigenstring(self.node_id, self.level)

    def copy(self, **overrides: Any) -> "Pointer":
        return replace(self, **overrides)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Pointer(id={self.node_id.bitstring() if self.node_id.bits <= 16 else hex(self.node_id.value)},"
            f" level={self.level}, addr={self.address!r})"
        )
