"""Node identifiers, bit addressing, and eigenstrings.

A nodeId is a ``bits``-wide unsigned integer, *"commonly the result of
consistent hashing of its public key or IP address"* (§2), so ids are
uniform in the id space.  Bits are addressed **MSB-first**: bit 0 is the
most significant bit, matching the paper's "first l bits" phrasing.

The *eigenstring* of an l-level node is its first l bits as a '0'/'1'
string (§2, figure 1).  Everything in PeerWindow — peer-list membership,
audience sets, the multicast tree, parts — reduces to prefix relations on
these bitstrings, so this module is the semantic bedrock and is tested
(including with hypothesis) more heavily than any other.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.errors import NodeIdError


class NodeId:
    """An immutable ``bits``-wide identifier with MSB-first bit access."""

    __slots__ = ("value", "bits")

    def __init__(self, value: int, bits: int = 128):
        if not 1 <= bits <= 256:
            raise NodeIdError(f"bits must be in [1, 256], got {bits}")
        if not 0 <= value < (1 << bits):
            raise NodeIdError(f"value {value} out of range for {bits}-bit id")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "bits", bits)

    def __setattr__(self, name: str, value: object) -> None:  # immutability
        raise AttributeError("NodeId is immutable")

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_bitstring(cls, s: str) -> "NodeId":
        """Build from a '0'/'1' string; its length sets ``bits``.

        ``NodeId.from_bitstring("1011")`` is node H's id in figure 1.
        """
        if not s or any(c not in "01" for c in s):
            raise NodeIdError(f"not a bitstring: {s!r}")
        return cls(int(s, 2), bits=len(s))

    @classmethod
    def random(cls, rng: np.random.Generator, bits: int = 128) -> "NodeId":
        """A uniformly random id (the consistent-hash assumption)."""
        value = 0
        remaining = bits
        while remaining > 0:
            chunk = min(remaining, 32)
            value = (value << chunk) | int(rng.integers(0, 1 << chunk))
            remaining -= chunk
        return cls(value, bits)

    @classmethod
    def hash_of(cls, data: bytes, bits: int = 128) -> "NodeId":
        """Consistent hash of an address / public key (§2)."""
        digest = hashlib.sha256(data).digest()
        value = int.from_bytes(digest, "big") >> (256 - bits)
        return cls(value, bits)

    # -- bit access -------------------------------------------------------

    def bit(self, i: int) -> int:
        """Bit ``i`` (0 = most significant)."""
        if not 0 <= i < self.bits:
            raise NodeIdError(f"bit index {i} out of range for {self.bits}-bit id")
        return (self.value >> (self.bits - 1 - i)) & 1

    def prefix_int(self, length: int) -> int:
        """The first ``length`` bits as an integer (0 for length 0)."""
        if not 0 <= length <= self.bits:
            raise NodeIdError(f"prefix length {length} out of range")
        if length == 0:
            return 0
        return self.value >> (self.bits - length)

    def prefix_bits(self, length: int) -> str:
        """The first ``length`` bits as a '0'/'1' string."""
        if length == 0:
            return ""
        return format(self.prefix_int(length), f"0{length}b")

    def bitstring(self) -> str:
        return format(self.value, f"0{self.bits}b")

    def flip_bit(self, i: int) -> "NodeId":
        """A copy with bit ``i`` flipped (test-scenario construction)."""
        if not 0 <= i < self.bits:
            raise NodeIdError(f"bit index {i} out of range")
        return NodeId(self.value ^ (1 << (self.bits - 1 - i)), self.bits)

    def shares_prefix(self, other: "NodeId", length: int) -> bool:
        """Whether the first ``length`` bits agree (ids must be same width)."""
        if other.bits != self.bits:
            raise NodeIdError("cannot compare ids of different widths")
        return self.prefix_int(length) == other.prefix_int(length)

    def common_prefix_len(self, other: "NodeId") -> int:
        """Length of the longest common prefix with ``other``."""
        if other.bits != self.bits:
            raise NodeIdError("cannot compare ids of different widths")
        diff = self.value ^ other.value
        if diff == 0:
            return self.bits
        return self.bits - diff.bit_length()

    # -- dunder plumbing --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NodeId)
            and self.value == other.value
            and self.bits == other.bits
        )

    def __lt__(self, other: "NodeId") -> bool:
        if not isinstance(other, NodeId) or other.bits != self.bits:
            raise NodeIdError("ordering requires same-width NodeIds")
        return self.value < other.value

    def __le__(self, other: "NodeId") -> bool:
        return self == other or self < other

    def __hash__(self) -> int:
        return hash((self.value, self.bits))

    def __repr__(self) -> str:
        if self.bits <= 16:
            return f"NodeId({self.bitstring()!r})"
        return f"NodeId(0x{self.value:0{self.bits // 4}x})"


def eigenstring(node_id: NodeId, level: int) -> str:
    """The eigenstring of a node: its first ``level`` id bits (§2).

    Level-0 nodes have the blank eigenstring.
    """
    if level < 0:
        raise NodeIdError("level must be >= 0")
    if level > node_id.bits:
        raise NodeIdError(f"level {level} exceeds id width {node_id.bits}")
    return node_id.prefix_bits(level)
