"""Simulation-backed runtimes for the kernel's :class:`NodeRuntime`.

The PeerWindow services (join, failure detection, dissemination,
maintenance) never touch a simulator or a transport directly; they are
written against :class:`repro.kernel.runtime.NodeRuntime` — a clock,
timers, and a message fabric (re-exported here for compatibility).
This module provides the two discrete-event instantiations (the third,
:class:`repro.live.runtime.RealtimeRuntime`, runs over real sockets):

* :class:`SimRuntime` — the classic pairing of one sequential
  :class:`~repro.sim.engine.Simulator` with one
  :class:`~repro.net.transport.Transport`.  This is what every detailed
  single-engine experiment uses.
* :class:`PartitionedRuntime` — maps nodes onto the logical processes of
  the conservative :class:`~repro.sim.parallel.ParallelSimulator` (the
  ONSP execution model).  Each LP owns a private event queue and a
  private :class:`~repro.net.transport.PartitionedTransport`; intra-LP
  messages are plain local events while cross-LP messages go through the
  LP outbox and therefore must respect the lookahead contract (the
  topology's minimum latency serves as the lookahead, exactly like ONSP's
  network-latency lookahead over Myrinet links).

The partitioned runtime is engineered so that a fixed-seed protocol run
produces *bit-for-bit* the same results as sequential execution (the
correctness property conservative parallel DES must preserve, verified by
``tests/integration/test_parallel_equivalence.py``):

* per-LP transports keep private counters, pending-request maps and
  endpoint tables, so threaded epochs never race on shared state;
* message delays come from the topology's **pure** ``pair_latency``
  function — computing a delay never reads shared liveness state, and the
  destination-dead check happens at delivery time inside the destination
  LP where it is correctly ordered against the departure;
* every per-node random stream is keyed by the node, so draw order within
  a node is the node's own event order, which partitioning preserves;
* no :class:`~repro.core.pointer.Pointer` object is ever shared between
  nodes (insertion boundaries copy) — event application updates pointers
  in place, and a shared object would be a covert channel that leaks one
  LP's progress into another outside the message fabric.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional

from repro.kernel.clock import SimClock
from repro.kernel.runtime import NodeRuntime
from repro.net.message import Message
from repro.net.topology import Topology
from repro.net.transport import Endpoint, PartitionedTransport, Transport
from repro.sim.engine import EventHandle, PeriodicTask, Simulator
from repro.sim.parallel import ParallelSimulator

__all__ = ["NodeRuntime", "PartitionedRuntime", "SimRuntime"]


class SimRuntime(NodeRuntime):
    """A sequential Simulator + Transport pair seen through the runtime
    interface (clock duties delegated to a kernel
    :class:`~repro.kernel.clock.SimClock`).  All nodes of a sequential
    network share one instance."""

    def __init__(self, sim: Simulator, transport: Transport):
        self.sim = sim
        self.clock = SimClock(sim)
        self.transport = transport

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        return self.clock.schedule(delay, callback, *args)

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng: Any = None,
    ) -> PeriodicTask:
        return self.clock.every(
            interval, callback, *args, start_delay=start_delay, jitter=jitter, rng=rng
        )

    def send(self, msg: Message) -> None:
        self.transport.send(msg)

    def request(
        self,
        msg: Message,
        timeout: float,
        on_reply: Callable[[Message], None],
        on_timeout: Callable[[], None],
    ) -> None:
        self.transport.request(msg, timeout, on_reply, on_timeout)

    def is_alive(self, key: Hashable) -> bool:
        return self.transport.is_alive(key)

    def register(self, key: Hashable, handler: Callable[[Message], None]) -> Endpoint:
        return self.transport.register(key, handler)

    def unregister(self, key: Hashable) -> None:
        self.transport.unregister(key)


class PartitionedRuntime:
    """Nodes partitioned across the logical processes of a
    :class:`~repro.sim.parallel.ParallelSimulator`.

    The runtime is the *coordinator*: it owns the parallel simulator, one
    :class:`~repro.net.transport.PartitionedTransport` per LP, and the
    address -> rank directory; :meth:`runtime_for` hands each node the
    :class:`SimRuntime` view of its LP.  It also implements the
    :class:`~repro.net.transport.PartitionRouter` contract those
    transports route through.

    Parameters
    ----------
    nranks:
        Number of logical processes.
    topology:
        A topology exposing ``pair_latency`` (a pure pairwise function) —
        e.g. :class:`~repro.net.latency.PairwiseLatencyModel` or an
        unjittered :class:`~repro.net.latency.UniformLatencyModel`.
    lookahead:
        Conservative window width; defaults to ``topology.min_latency()``.
        Must not exceed it — a cross-LP message below the lookahead is a
        contract violation the LP refuses.
    threads:
        Run each epoch's LPs on a thread pool.  Results are identical
        either way; per-LP state isolation is what makes that safe.
    loss_rate:
        Independent message loss.  Drop decisions are hash-derived from
        ``(loss_seed, source, per-source send sequence)`` — not drawn from
        a transport-wide RNG — so they are identical across partitionings
        and the bit-for-bit equivalence guarantee holds with loss enabled
        (see :mod:`repro.net.transport`).
    loss_seed:
        Seed of the hashed loss/duplication decision stream; must match
        the sequential run being compared against.
    """

    def __init__(
        self,
        nranks: int,
        topology: Topology,
        lookahead: Optional[float] = None,
        threads: bool = False,
        ewma_tau: float = 120.0,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ):
        # Raises NotImplementedError for models without a pure pair
        # function (purity means probing with dummy keys is harmless).
        topology.pair_latency("__partition_probe_a__", "__partition_probe_b__")
        min_lat = topology.min_latency()
        if lookahead is None:
            lookahead = min_lat
        if lookahead > min_lat:
            raise ValueError(
                f"lookahead {lookahead} exceeds the topology's minimum "
                f"latency {min_lat}; cross-LP sends would violate the "
                "conservative contract"
            )
        self.topology = topology
        self.psim = ParallelSimulator(nranks=nranks, lookahead=lookahead, threads=threads)
        self.transports: List[PartitionedTransport] = [
            PartitionedTransport(
                lp.sim,
                rank=lp.rank,
                router=self,
                loss_rate=loss_rate,
                ewma_tau=ewma_tau,
                loss_seed=loss_seed,
            )
            for lp in self.psim.lps
        ]
        self._views = [
            SimRuntime(lp.sim, tr) for lp, tr in zip(self.psim.lps, self.transports)
        ]
        #: address -> owning rank; written only between epochs (node
        #: creation happens outside ``run``), read from any LP thread.
        self._directory: Dict[Hashable, int] = {}

    # -- partitioning ------------------------------------------------------

    @property
    def nranks(self) -> int:
        return self.psim.nranks

    @property
    def lookahead(self) -> float:
        return self.psim.lookahead

    def rank_for_node(self, node_id_value: int) -> int:
        """Deterministic nodeId -> LP assignment (modulo partitioning)."""
        return node_id_value % self.psim.nranks

    def runtime_for(self, node_id_value: int, address: Hashable) -> SimRuntime:
        """The runtime view a node at ``address`` should be wired to.

        Also records the address -> rank mapping so the transports can
        route to it.  Call before the node registers its endpoint.
        """
        rank = self.rank_for_node(node_id_value)
        self._directory[address] = rank
        return self._views[rank]

    def view(self, rank: int) -> SimRuntime:
        return self._views[rank]

    # -- PartitionRouter contract -----------------------------------------

    def rank_of(self, key: Hashable) -> Optional[int]:
        return self._directory.get(key)

    def pair_latency(self, a: Hashable, b: Hashable) -> float:
        return self.topology.pair_latency(a, b)

    def cross_send(self, src_rank: int, dest_rank: int, delay: float, msg: Message) -> None:
        self.psim.lps[src_rank].send(
            dest_rank, delay, self.transports[dest_rank]._deliver, msg
        )

    # -- execution and introspection --------------------------------------

    @property
    def now(self) -> float:
        return self.psim.now

    def run(self, until: float) -> float:
        return self.psim.run(until=until)

    def transport_stats(self) -> Dict[str, Any]:
        """Per-LP transport counters summed — comparable field-for-field
        with a sequential :meth:`~repro.net.transport.Transport.stats`."""
        totals: Dict[str, Any] = {}
        for tr in self.transports:
            for key, value in tr.stats().items():
                if isinstance(value, dict):
                    merged = totals.setdefault(key, {})
                    for kind, count in value.items():
                        merged[kind] = merged.get(kind, 0) + count
                else:
                    totals[key] = totals.get(key, 0) + value
        return totals

    # -- profiling ---------------------------------------------------------

    def enable_profiling(self) -> None:
        """Attach wall-clock phase profilers: one per LP (event dispatch +
        transport delivery, thread-confined to that LP's worker) plus a
        coordinator profiler for epoch orchestration (LP run vs barrier).

        Wall-clock numbers are diagnostics only — they never feed back
        into the simulation, so determinism is unaffected."""
        from repro.obs.profile import PhaseProfiler

        self._lp_profilers: List[PhaseProfiler] = []
        for lp, tr in zip(self.psim.lps, self.transports):
            prof = PhaseProfiler()
            lp.sim.profiler = prof
            tr.profiler = prof
            self._lp_profilers.append(prof)
        self.psim.profiler = PhaseProfiler()

    def profile_snapshot(self) -> Dict[str, Any]:
        """Merged profiling snapshot across LP profilers + coordinator.
        Empty dicts when :meth:`enable_profiling` was never called."""
        from repro.obs.profile import merge_profiles

        profilers = list(getattr(self, "_lp_profilers", []))
        if getattr(self.psim, "profiler", None) is not None:
            profilers.append(self.psim.profiler)
        return merge_profiles(profilers).snapshot()
