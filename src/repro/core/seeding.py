"""Population seeding for the detailed-engine harness.

The paper first *creates* its population, then churns it; this module is
that creation step for :class:`~repro.core.protocol.PeerWindowNetwork`.
Levels are assigned with the §2 cost model (the stationary point of the
autonomic controller), peer lists are built from ground truth, top-node
lists point at ``t`` random top nodes of each node's part, and top nodes
get cross-part lists — so the system starts in the consistent state the
protocol would converge to.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.analytic import CostModel
from repro.core.errors import JoinError
from repro.core.nodeid import NodeId, eigenstring

#: A seed spec: a bare threshold, or (threshold, node_id), or a full dict.
SeedSpec = Union[float, Tuple[float, NodeId], Dict[str, Any]]


def seed_network(
    net,
    specs: Sequence[SeedSpec],
    mean_lifetime_s: float = 3600.0,
    changes_per_lifetime: float = 3.0,
    forced_level: Optional[int] = None,
) -> List[Any]:
    """Install an initial population into ``net``; returns keys in spec
    order.  (The body of ``PeerWindowNetwork.seed_nodes``.)"""
    if net.nodes:
        raise JoinError("seed_nodes requires an empty network")
    model = CostModel(
        mean_lifetime_s=mean_lifetime_s,
        changes_per_lifetime=changes_per_lifetime,
        message_bits=net.config.event_message_bits,
    )
    normalized: List[Dict[str, Any]] = []
    for spec in specs:
        if isinstance(spec, dict):
            normalized.append(dict(spec))
        elif isinstance(spec, tuple):
            normalized.append({"threshold_bps": spec[0], "node_id": spec[1]})
        else:
            normalized.append({"threshold_bps": float(spec)})
    n = len(normalized)
    created = []
    for spec in normalized:
        node = net._make_node(
            spec.get("node_id"),
            spec["threshold_bps"],
            attached_info=spec.get("attached_info"),
        )
        if forced_level is not None:
            node.level = forced_level
        elif "level" in spec:
            node.level = int(spec["level"])
        else:
            node.level = min(
                model.min_affordable_level(n, spec["threshold_bps"]),
                net.config.id_bits,
            )
        created.append(node)

    # Part structure: the shortest existing eigenstring that prefixes
    # each node's id.
    eigen = sorted({eigenstring(nd.node_id, nd.level) for nd in created}, key=len)
    part_of: Dict[int, str] = {}
    for nd in created:
        bitstr = nd.node_id.bitstring()
        for e in eigen:
            if bitstr.startswith(e):
                part_of[nd.node_id.value] = e
                break
    parts: Dict[str, List[Any]] = {}
    for nd in created:
        parts.setdefault(part_of[nd.node_id.value], []).append(nd)
    tops_by_part = {
        prefix: [nd for nd in members if nd.level == len(prefix)]
        for prefix, members in parts.items()
    }

    rng = net.streams.get("seeding")
    pointer_of = {nd.node_id.value: nd.self_pointer() for nd in created}
    for nd in created:
        peers = [
            pointer_of[other.node_id.value]
            for other in created
            if other.node_id.shares_prefix(nd.node_id, nd.level)
            and other.node_id.value != nd.node_id.value
        ]
        part_prefix = part_of[nd.node_id.value]
        tops = tops_by_part[part_prefix]
        pool = [pointer_of[t.node_id.value] for t in tops]
        chosen = (
            list(pool)
            if len(pool) <= net.config.top_list_size
            else [
                pool[i]
                for i in rng.choice(len(pool), net.config.top_list_size, replace=False)
            ]
        )
        is_top = nd.level == len(part_prefix)
        nd.install(nd.level, peers, chosen, is_top)
        if is_top:
            for other_prefix, other_tops in tops_by_part.items():
                if other_prefix == part_prefix or not other_tops:
                    continue
                other_pool = [pointer_of[t.node_id.value] for t in other_tops]
                take = min(len(other_pool), net.config.top_list_size)
                idx = rng.choice(len(other_pool), take, replace=False)
                nd.cross_parts.merge(other_prefix, [other_pool[i] for i in idx])
    return [nd.address for nd in created]
