"""MulticastService: the §4.2/§4.5 event-dissemination machinery.

One service instance per node, owning:

* origination and relay of the tree multicast (acks, retries,
  stale-pointer redirects) via
  :class:`~repro.core.multicast.MulticastForwarder`;
* the report path — deliver an event to a top node, retry across the
  top-node list, fall back to peers' top-node lists when every pointer is
  stale (§4.5);
* serving reports, top-node-list queries, and bridge subscriptions (the
  part-merge completion of DESIGN.md §8);
* applying received events to the shared peer list and top-node list.

The service is runtime-agnostic: it talks to the network exclusively
through :class:`~repro.core.runtime.NodeRuntime`.
"""

from __future__ import annotations

from typing import Callable

from repro.core.context import NodeContext
from repro.core.events import EventKind, EventRecord, apply_event
from repro.core.multicast import MulticastForwarder
from repro.core.pointer import Pointer
from repro.core.runtime import NodeRuntime
from repro.net.message import Message


class MulticastService:
    """Tree multicast + ack/redirect + report retry/fallback (§4.2, §4.5)."""

    def __init__(self, runtime: NodeRuntime, ctx: NodeContext):
        self.runtime = runtime
        self.ctx = ctx
        self.forwarder = MulticastForwarder(
            ctx.config,
            ctx.node_id,
            ctx.peer_list,
            send_fn=self._mcast_send,
            on_stale_pointer=self._stale_pointer,
        )

    def _stale_pointer(self, departed: Pointer) -> None:
        """A relay target never acked and was removed (§4.2).

        That removal is a failure *detection*, so it must be announced
        like one (§4.1): if the remover happened to be the dead node's
        only ring predecessor, nobody else will ever probe it and the
        stale pointer would survive in every other list forever.  A
        false positive is healed by the subject's own higher-sequence
        REFRESH refutation, exactly as for probe-based detection.
        """
        ctx = self.ctx
        ctx.estimator.observe_departure(departed, self.runtime.now)
        ctx.report_event(
            EventRecord(
                kind=EventKind.LEAVE,
                subject_id=departed.node_id,
                subject_level=departed.level,
                subject_address=departed.address,
                seq=departed.last_event_seq + 1,
                origin_time=self.runtime.now,
            )
        )

    # -- relay path --------------------------------------------------------

    def on_mcast(self, msg: Message) -> None:
        ctx = self.ctx
        event, start_bit = msg.payload
        ctx.stats.mcasts_received += 1
        subject_value = event.subject_id.value
        if subject_value == ctx.node_id.value:
            self.runtime.send(
                msg.make_reply("mcast-ack", size_bits=ctx.config.ack_bits)
            )
            # We are in our own audience, so a *false* failure report (a
            # lost probe ack, §4.1) reaches us as our own obituary.  Refute
            # it with a higher-sequence refresh so every audience member
            # re-adds us.  (The paper leaves false positives to the slow
            # §4.6 refresh cycle; this is the immediate version.)
            if ctx.alive and event.kind is EventKind.LEAVE and event.seq >= ctx.seq:
                ctx.seq = event.seq
                self.report_event(ctx.make_event(EventKind.REFRESH))
            return
        if ctx.seen_events.get(subject_value, -1) >= event.seq:
            # Already carried this event: our subtree is covered, so the
            # duplicate can be acknowledged straight away.
            self.runtime.send(
                msg.make_reply("mcast-ack", size_bits=ctx.config.ack_bits)
            )
            ctx.stats.mcast_duplicates += 1
            return
        ctx.seen_events[subject_value] = event.seq
        self.apply(event)
        self._copy_to_recent_downloads(event, self.runtime.now)
        # §5.1: a relay spends 1 s "receiving, calculating and sending".
        # The ack rides at the END of that window: acknowledging a fresh
        # multicast means accepting responsibility for the subtree, so a
        # relay that dies mid-processing leaves the send unacked and the
        # sender's retry -> remove -> redirect re-covers its range through
        # a replacement relay (ack-on-receipt silently lost the subtree).
        self.runtime.schedule(
            ctx.config.multicast_processing_delay,
            self._forward_and_ack,
            msg,
            event,
            start_bit,
        )

    def _forward_and_ack(self, msg: Message, event: EventRecord, start_bit: int) -> None:
        ctx = self.ctx
        if not ctx.alive:
            return
        self.runtime.send(msg.make_reply("mcast-ack", size_bits=ctx.config.ack_bits))
        self.forwarder.forward(event, start_bit)

    def _mcast_send(
        self,
        target: Pointer,
        event: EventRecord,
        next_bit: int,
        on_result: Callable[[bool], None],
    ) -> None:
        ctx = self.ctx
        msg = Message(
            ctx.address,
            target.address,
            "mcast",
            payload=(event, next_bit),
            size_bits=ctx.config.event_message_bits,
        )
        self.runtime.request(
            msg,
            timeout=ctx.config.multicast_ack_timeout,
            on_reply=lambda _reply: on_result(True),
            on_timeout=lambda: on_result(False),
        )

    # -- origination -------------------------------------------------------

    def start_multicast(self, event: EventRecord) -> None:
        """Originate a multicast as a top node (root of the tree)."""
        ctx = self.ctx
        ctx.seen_events[event.subject_id.value] = event.seq
        self.apply(event)
        self._copy_to_recent_downloads(event, self.runtime.now)
        self.runtime.schedule(
            ctx.config.multicast_processing_delay, self._root_forward, event
        )

    def _root_forward(self, event: EventRecord) -> None:
        ctx = self.ctx
        if not ctx.alive and event.subject_id.value != ctx.node_id.value:
            return
        self.forwarder.forward(event, 0)
        if (
            event.kind is EventKind.LEAVE
            and event.subject_id.value != ctx.node_id.value
        ):
            # Copy the obituary to the subject itself: unanswered if it is
            # really dead, refuted with a refresh if the failure detection
            # was a false positive (lost probe acks).  The copy is acked
            # and retried like any tree edge — it is the *only* message
            # that can reach a falsely-evicted node (once every list has
            # dropped it, no multicast tree targets it again), so losing
            # the single datagram would make the eviction permanent until
            # the §4.6 refresh cycle, hours later.
            self._copy_to_subject(event, ctx.config.multicast_attempts)
        # Part-merge bridge: forward a copy to cross-part subscribers whose
        # eigenstring covers the subject.
        for ptr in list(ctx.bridge_subscribers.values()):
            if ptr.node_id.shares_prefix(event.subject_id, ptr.level):
                self._mcast_send(ptr, event, ctx.node_id.bits, lambda ok: None)

    def _copy_to_subject(self, event: EventRecord, attempts_left: int) -> None:
        if attempts_left <= 0:
            return
        ctx = self.ctx
        msg = Message(
            ctx.address,
            event.subject_address,
            "mcast",
            payload=(event, ctx.node_id.bits),
            size_bits=ctx.config.event_message_bits,
        )
        self.runtime.request(
            msg,
            timeout=ctx.config.multicast_ack_timeout,
            on_reply=lambda _reply: None,
            on_timeout=lambda: self._copy_to_subject(event, attempts_left - 1),
        )

    def apply(self, event: EventRecord) -> None:
        ctx = self.ctx
        now = self.runtime.now
        departed = None
        if event.kind is EventKind.LEAVE:
            departed = ctx.peer_list.get(event.subject_id)
        changed = apply_event(ctx.peer_list, event, now, owner_id=ctx.node_id)
        if changed:
            ctx.stats.events_applied += 1
            if departed is not None:
                ctx.estimator.observe_departure(departed, now)
        # Keep the top-node list's levels fresh.
        if event.subject_id in ctx.top_list:
            if event.kind is EventKind.LEAVE:
                ctx.top_list.remove(event.subject_id)
            else:
                ctx.top_list.merge([
                    Pointer(
                        node_id=event.subject_id,
                        address=event.subject_address,
                        level=event.subject_level,
                        attached_info=event.attached_info,
                        last_refresh=now,
                        last_event_seq=event.seq,
                    )
                ])

    def _copy_to_recent_downloads(self, event: EventRecord, now: float) -> None:
        """Copy an applied event to requesters we recently served a §4.3
        download (DESIGN.md §8).

        A joiner is in nobody's audience until its JOIN multicast has been
        applied network-wide, so an event whose dissemination completes
        inside that window never reaches it: the downloaded snapshot keeps
        e.g. a dead node's pointer that no one else holds — and since ring
        views now disagree, no one ever probes it on the joiner's behalf.
        Forwarding what we apply during the grace window closes the race.
        Called from the fresh-receipt sites (first sight of the event per
        ``seen_events``), not gated on whether the event changed our own
        list: a server that detected the failure itself removed the
        pointer *before* the obituary existed, yet its requester still
        needs the copy.  Copies are fire-and-forget ``event-copy``
        messages, NOT ``mcast``: an mcast receipt marks the event seen,
        and a seen event makes the receiver ack any later tree delivery
        as a duplicate *without forwarding* — a copy that entered
        ``seen_events`` would black-hole whatever subtree the real tree
        later routes through the joiner.
        """
        ctx = self.ctx
        if not ctx.recent_downloads:
            return
        grace = ctx.config.download_grace
        ctx.recent_downloads = [
            entry for entry in ctx.recent_downloads if now - entry[1] <= grace
        ]
        if not ctx.alive:
            return
        for address, _served in ctx.recent_downloads:
            if address == event.subject_address or address == ctx.address:
                continue
            self.runtime.send(
                Message(
                    ctx.address,
                    address,
                    "event-copy",
                    payload=event,
                    size_bits=ctx.config.event_message_bits,
                )
            )

    def on_event_copy(self, msg: Message) -> None:
        """Apply a download-grace copy.

        No ack, no relaying, no onward copying (copies do not chain, so
        mutual download servers cannot ping-pong one), and — critically —
        no ``seen_events`` marking: the real tree delivery, if one comes,
        must still look fresh so its subtree gets forwarded.  Re-applying
        is harmless because events are sequence-gated.
        """
        ctx = self.ctx
        event: EventRecord = msg.payload
        if event.subject_id.value == ctx.node_id.value:
            return
        if ctx.seen_events.get(event.subject_id.value, -1) >= event.seq:
            return
        self.apply(event)

    # -- report path -------------------------------------------------------

    def report_event(self, event: EventRecord, _attempt: int = 0) -> None:
        """Deliver ``event`` to a top node for multicast (§4.1/§4.5)."""
        ctx = self.ctx
        if event.subject_id.value == ctx.node_id.value:
            ctx.stats.events_originated += 1
        if ctx.is_top:
            # A top node is its own multicast root (this also covers a top
            # node announcing its own leave: alive is already False then).
            self.start_multicast(event)
            return
        top = ctx.top_list.choose(ctx.rng)
        if top is None:
            self._report_fallback(event, _attempt)
            return
        ctx.stats.reports_sent += 1
        msg = Message(
            ctx.address,
            top.address,
            "report",
            payload=event,
            size_bits=ctx.config.event_message_bits,
        )
        self.runtime.request(
            msg,
            timeout=ctx.config.report_timeout,
            on_reply=lambda reply: ctx.top_list.merge(
                [p for p in reply.payload if p.node_id.value != ctx.node_id.value]
            ),
            on_timeout=lambda: self._report_retry(event, top, _attempt),
        )

    def _report_retry(self, event: EventRecord, dead_top: Pointer, attempt: int) -> None:
        ctx = self.ctx
        ctx.top_list.remove(dead_top.node_id)
        if attempt + 1 >= 3 * ctx.config.top_list_size:
            ctx.stats.reports_failed += 1
            return
        self.report_event(event, _attempt=attempt + 1)

    def _report_fallback(self, event: EventRecord, attempt: int) -> None:
        """§4.5: when every top-node pointer is stale, ask a peer for its
        top-node list as a substitution."""
        ctx = self.ctx
        if attempt >= 3 * ctx.config.top_list_size:
            ctx.stats.reports_failed += 1
            return
        peers = [p for p in ctx.peer_list if p.node_id.value != ctx.node_id.value]
        if not peers:
            ctx.stats.reports_failed += 1
            return
        peer = peers[int(ctx.rng.integers(0, len(peers)))]
        msg = Message(
            ctx.address, peer.address, "get-topnodes", size_bits=ctx.config.ack_bits
        )
        self.runtime.request(
            msg,
            timeout=ctx.config.report_timeout,
            on_reply=lambda reply: (
                ctx.top_list.merge(
                    [p for p in reply.payload if p.node_id.value != ctx.node_id.value]
                ),
                self.report_event(event, _attempt=attempt + 1),
            ),
            on_timeout=lambda: self._report_fallback(event, attempt + 1),
        )

    # -- serving -----------------------------------------------------------

    def on_report(self, msg: Message) -> None:
        ctx = self.ctx
        event: EventRecord = msg.payload
        ctx.stats.reports_served += 1
        if not ctx.is_top:
            # Stale top-node pointer at the reporter: we are no longer a
            # top node.  Ack with our *current* top-node list so the
            # reporter heals (§4.5), and relay the event upward ourselves.
            piggyback = [p.copy() for p in ctx.top_list.pointers()]
            self.runtime.send(
                msg.make_reply(
                    "report-ack",
                    payload=piggyback,
                    size_bits=max(1, len(piggyback)) * ctx.config.pointer_bits,
                )
            )
            subject_value = event.subject_id.value
            if (
                ctx.relayed_reports.get(subject_value, -1) < event.seq
                and ctx.seen_events.get(subject_value, -1) < event.seq
            ):
                # Mark *relayed* (not seen!) before relaying, so cycles
                # through other stale "tops" terminate at the first
                # revisit while the eventual tree delivery still looks
                # fresh and gets forwarded — we are ourselves an interior
                # tree node for this event's audience.
                ctx.relayed_reports[subject_value] = event.seq
                self.apply(event)
                self.report_event(event)
            return
        # Piggyback t-1 pointers to top nodes of the reporter's part (§4.5):
        # our own group members (we are a top node of that part).
        piggyback = [
            p.copy()
            for p in ctx.peer_list.group_members()
            if p.node_id.value != ctx.node_id.value
        ][: ctx.config.top_list_size - 1] + [ctx.self_pointer()]
        self.runtime.send(
            msg.make_reply(
                "report-ack",
                payload=piggyback,
                size_bits=len(piggyback) * ctx.config.pointer_bits,
            )
        )
        if ctx.seen_events.get(event.subject_id.value, -1) >= event.seq:
            return
        self.start_multicast(event)

    def on_get_topnodes(self, msg: Message) -> None:
        ctx = self.ctx
        self.runtime.send(
            msg.make_reply(
                "topnodes",
                payload=[p.copy() for p in ctx.top_list.pointers()],
                size_bits=max(1, len(ctx.top_list)) * ctx.config.pointer_bits,
            )
        )

    def on_bridge_subscribe(self, msg: Message) -> None:
        ctx = self.ctx
        ptr, propagate = msg.payload
        fresh = ptr.node_id.value not in ctx.bridge_subscribers
        ctx.bridge_subscribers[ptr.node_id.value] = ptr
        self.runtime.send(msg.make_reply("bridge-ack", size_bits=ctx.config.ack_bits))
        if propagate and fresh:
            # Every top of this part roots multicasts, so the whole top
            # group must carry the subscription (one idempotent hop; group
            # members do not re-propagate).
            for peer in ctx.peer_list.group_members():
                if peer.node_id.value == ctx.node_id.value:
                    continue
                self.runtime.send(
                    Message(
                        ctx.address,
                        peer.address,
                        "bridge-subscribe",
                        payload=(ptr, False),
                        size_bits=ctx.config.pointer_bits,
                    )
                )
