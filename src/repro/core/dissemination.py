"""MulticastService: the §4.2/§4.5 event-dissemination machinery.

One service instance per node, owning:

* origination and relay of the tree multicast (acks, retries,
  stale-pointer redirects) via
  :class:`~repro.core.multicast.MulticastForwarder`;
* the report path — deliver an event to a top node, retry across the
  top-node list, fall back to peers' top-node lists when every pointer is
  stale (§4.5);
* serving reports, top-node-list queries, and bridge subscriptions (the
  part-merge completion of DESIGN.md §8);
* applying received events to the shared peer list and top-node list.

The service is runtime-agnostic: it talks to the network exclusively
through :class:`~repro.core.runtime.NodeRuntime`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.context import NodeContext
from repro.core.events import EventKind, EventRecord, apply_event
from repro.core.multicast import MulticastForwarder
from repro.core.pointer import Pointer
from repro.core.runtime import NodeRuntime
from repro.net.message import Message
from repro.obs import metrics as m
from repro.obs.trace import Span, SpanRef


class MulticastService:
    """Tree multicast + ack/redirect + report retry/fallback (§4.2, §4.5).

    Observability: when ``ctx.obs`` is enabled, a multicast origination
    opens an ``mcast.root`` span, each fresh relay receipt an
    ``mcast.hop`` span parented (via ``Message.trace``) to the sender's
    span, and redirects/obituaries become instant spans in the same
    trace — so one dissemination reconstructs as one span tree.  All
    hooks are attribute-check guards when disabled, and tracing never
    adds messages or RNG draws, so enabling it cannot change behaviour.
    """

    def __init__(self, runtime: NodeRuntime, ctx: NodeContext):
        self.runtime = runtime
        self.ctx = ctx
        self.forwarder = MulticastForwarder(
            ctx.config,
            ctx.node_id,
            ctx.peer_list,
            send_fn=self._mcast_send,
            on_stale_pointer=self._stale_pointer,
            on_redirect=self._on_redirect,
        )

    def _on_redirect(
        self, failed: Pointer, replacement: Pointer, bit: int, trace=None
    ) -> None:
        obs = self.ctx.obs
        obs.registry.inc(m.MCAST_REDIRECTS)
        if obs.enabled:
            obs.instant(
                "mcast.redirect",
                self.runtime.now,
                parent=trace,
                failed=str(failed.address),
                replacement=str(replacement.address),
                bit=bit,
            )

    def _stale_pointer(self, departed: Pointer, trace=None) -> None:
        """A relay target never acked and was removed (§4.2).

        That removal is a failure *detection*, so it must be announced
        like one (§4.1): if the remover happened to be the dead node's
        only ring predecessor, nobody else will ever probe it and the
        stale pointer would survive in every other list forever.  A
        false positive is healed by the subject's own higher-sequence
        REFRESH refutation, exactly as for probe-based detection.
        """
        ctx = self.ctx
        obs = ctx.obs
        ctx.estimator.observe_departure(departed, self.runtime.now)
        obs.registry.inc(m.MCAST_STALE_REMOVED)
        obit: Optional[Span] = None
        if obs.enabled:
            obit = obs.instant(
                "obituary",
                self.runtime.now,
                parent=trace,
                subject=str(departed.address),
                via="mcast-retry",
            )
        ctx.report_event(
            EventRecord(
                kind=EventKind.LEAVE,
                subject_id=departed.node_id,
                subject_level=departed.level,
                subject_address=departed.address,
                seq=departed.last_event_seq + 1,
                origin_time=self.runtime.now,
            ),
            trace=obit.ref() if obit is not None else None,
        )

    # -- relay path --------------------------------------------------------

    def on_mcast(self, msg: Message) -> None:
        ctx = self.ctx
        obs = ctx.obs
        event, start_bit = msg.payload
        ctx.stats.mcasts_received += 1
        obs.registry.inc(m.MCAST_RECEIVED)
        subject_value = event.subject_id.value
        if subject_value == ctx.node_id.value:
            self.runtime.send(
                msg.make_reply("mcast-ack", size_bits=ctx.config.ack_bits)
            )
            # We are in our own audience, so a *false* failure report (a
            # lost probe ack, §4.1) reaches us as our own obituary.  Refute
            # it with a higher-sequence refresh so every audience member
            # re-adds us.  (The paper leaves false positives to the slow
            # §4.6 refresh cycle; this is the immediate version.)
            if ctx.alive and event.kind is EventKind.LEAVE and event.seq >= ctx.seq:
                ctx.seq = event.seq
                self.report_event(ctx.make_event(EventKind.REFRESH), trace=msg.trace)
            return
        if ctx.seen_events.get(subject_value, -1) >= event.seq:
            # Already carried this event: our subtree is covered, so the
            # duplicate can be acknowledged straight away.
            self.runtime.send(
                msg.make_reply("mcast-ack", size_bits=ctx.config.ack_bits)
            )
            ctx.stats.mcast_duplicates += 1
            obs.registry.inc(m.MCAST_DUPLICATES)
            return
        ctx.seen_events[subject_value] = event.seq
        # Strike only targeted direct sends (start_bit past the id width
        # means zero fanout — an accusation aimed at us, the eclipse
        # shape), never tree relays forwarding someone else's event.
        self._believe(
            event,
            msg.src,
            strike=start_bit >= ctx.node_id.bits,
            proceed=lambda: self.apply(event),
        )
        self._copy_to_recent_downloads(event, self.runtime.now)
        hop: Optional[Span] = None
        if obs.enabled:
            depth = msg.trace.depth if isinstance(msg.trace, SpanRef) else 0
            hop = obs.start(
                "mcast.hop",
                self.runtime.now,
                parent=msg.trace,
                kind=event.kind.name,
                subject=str(event.subject_address),
                depth=depth,
                start_bit=start_bit,
            )
            obs.registry.observe(m.MCAST_DEPTH, depth)
        # §5.1: a relay spends 1 s "receiving, calculating and sending".
        # The ack rides at the END of that window: acknowledging a fresh
        # multicast means accepting responsibility for the subtree, so a
        # relay that dies mid-processing leaves the send unacked and the
        # sender's retry -> remove -> redirect re-covers its range through
        # a replacement relay (ack-on-receipt silently lost the subtree).
        self.runtime.schedule(
            ctx.config.multicast_processing_delay,
            self._forward_and_ack,
            msg,
            event,
            start_bit,
            hop,
        )

    def _forward_and_ack(
        self,
        msg: Message,
        event: EventRecord,
        start_bit: int,
        span: Optional[Span] = None,
    ) -> None:
        ctx = self.ctx
        obs = ctx.obs
        if not ctx.alive:
            if span is not None:
                obs.end(span, self.runtime.now, "died")
            return
        self.runtime.send(msg.make_reply("mcast-ack", size_bits=ctx.config.ack_bits))
        trace = span.ref(span.attrs.get("depth", 0)) if span is not None else None
        fanout = self.forwarder.forward(event, start_bit, trace=trace)
        obs.registry.observe(m.MCAST_FANOUT, fanout)
        if span is not None:
            span.attrs["fanout"] = fanout
            obs.end(span, self.runtime.now)

    def _mcast_send(
        self,
        target: Pointer,
        event: EventRecord,
        next_bit: int,
        on_result: Callable[[bool], None],
        trace=None,
    ) -> None:
        ctx = self.ctx
        registry = ctx.obs.registry
        # The wire context: same trace, the sender's span as parent, the
        # receiver's tree depth (sender depth + 1).
        wire = (
            SpanRef(trace.trace_id, trace.span_id, trace.depth + 1)
            if isinstance(trace, SpanRef)
            else None
        )
        msg = Message(
            ctx.address,
            target.address,
            "mcast",
            payload=(event, next_bit),
            size_bits=ctx.config.event_message_bits,
            trace=wire,
        )

        def timed_out() -> None:
            registry.inc(m.MCAST_ACK_TIMEOUTS)
            on_result(False)

        self.runtime.request(
            msg,
            timeout=ctx.config.multicast_ack_timeout,
            on_reply=lambda _reply: on_result(True),
            on_timeout=timed_out,
        )

    # -- origination -------------------------------------------------------

    def start_multicast(self, event: EventRecord, trace=None) -> None:
        """Originate a multicast as a top node (root of the tree).

        ``trace`` links the origination to the operation that caused it
        (a served report, an obituary, our own leave); with no parent the
        root span starts a fresh trace.
        """
        ctx = self.ctx
        obs = ctx.obs
        ctx.seen_events[event.subject_id.value] = event.seq
        self.apply(event)
        self._copy_to_recent_downloads(event, self.runtime.now)
        root: Optional[Span] = None
        if obs.enabled:
            root = obs.start(
                "mcast.root",
                self.runtime.now,
                parent=trace,
                kind=event.kind.name,
                subject=str(event.subject_address),
                depth=0,
            )
            obs.registry.inc(m.MCAST_ORIGINATED)
        self.runtime.schedule(
            ctx.config.multicast_processing_delay, self._root_forward, event, root
        )

    def _root_forward(self, event: EventRecord, span: Optional[Span] = None) -> None:
        ctx = self.ctx
        obs = ctx.obs
        if not ctx.alive and event.subject_id.value != ctx.node_id.value:
            if span is not None:
                obs.end(span, self.runtime.now, "died")
            return
        trace = span.ref(0) if span is not None else None
        fanout = self.forwarder.forward(event, 0, trace=trace)
        obs.registry.observe(m.MCAST_FANOUT, fanout)
        if span is not None:
            span.attrs["fanout"] = fanout
            obs.end(span, self.runtime.now)
        if (
            event.kind is EventKind.LEAVE
            and event.subject_id.value != ctx.node_id.value
        ):
            # Copy the obituary to the subject itself: unanswered if it is
            # really dead, refuted with a refresh if the failure detection
            # was a false positive (lost probe acks).  The copy is acked
            # and retried like any tree edge — it is the *only* message
            # that can reach a falsely-evicted node (once every list has
            # dropped it, no multicast tree targets it again), so losing
            # the single datagram would make the eviction permanent until
            # the §4.6 refresh cycle, hours later.
            self._copy_to_subject(event, ctx.config.multicast_attempts, trace)
        # Part-merge bridge: forward a copy to cross-part subscribers whose
        # eigenstring covers the subject.
        for ptr in list(ctx.bridge_subscribers.values()):
            if ptr.node_id.shares_prefix(event.subject_id, ptr.level):
                self._mcast_send(ptr, event, ctx.node_id.bits, lambda ok: None, trace)

    def _copy_to_subject(
        self, event: EventRecord, attempts_left: int, trace=None
    ) -> None:
        if attempts_left <= 0:
            return
        ctx = self.ctx
        wire = (
            SpanRef(trace.trace_id, trace.span_id, trace.depth + 1)
            if isinstance(trace, SpanRef)
            else None
        )
        msg = Message(
            ctx.address,
            event.subject_address,
            "mcast",
            payload=(event, ctx.node_id.bits),
            size_bits=ctx.config.event_message_bits,
            trace=wire,
        )
        self.runtime.request(
            msg,
            timeout=ctx.config.multicast_ack_timeout,
            on_reply=lambda _reply: None,
            on_timeout=lambda: self._copy_to_subject(event, attempts_left - 1, trace),
        )

    # -- verify-before-believe (DESIGN §16) --------------------------------

    def _believe(
        self,
        event: EventRecord,
        src,
        strike: bool,
        proceed: Callable[[], None],
    ) -> None:
        """Gate a received event's *application* behind obituary
        verification.

        With ``config.obituary_verify`` off (the default), or for
        anything that is not a third-party LEAVE about a node we still
        hold, ``proceed()`` runs immediately — the paper's
        trust-every-message behavior, byte-identical spans included.

        Otherwise the failure detector probes the reported-dead subject
        first: silence confirms the obituary (``proceed()`` runs and the
        eviction happens); a probe ack refutes it (the event is dropped
        and, when ``strike`` is set, the immediate sender earns a strike
        toward quarantine).  ``strike`` is only set for senders that
        *accused* — report senders and targeted direct multicasts — never
        for honest tree relays carrying someone else's forgery.
        Concurrent accusations about one subject coalesce onto a single
        probe chain via ``ctx.obit_pending``.
        """
        ctx = self.ctx
        if (
            not ctx.config.obituary_verify
            or ctx.confirm_dead is None
            or event.kind is not EventKind.LEAVE
            or event.subject_id.value == ctx.node_id.value
        ):
            proceed()
            return
        if src is not None and src in ctx.obit_quarantine:
            ctx.obs.registry.inc(m.OBIT_QUARANTINE_DROPS)
            return
        held = ctx.peer_list.get(event.subject_id)
        if held is None and event.subject_id not in ctx.top_list:
            # Nothing this obituary could evict here; believing it is a
            # no-op and verification would be wasted probes.
            proceed()
            return
        subject = event.subject_id.value
        accuser = src if strike else None
        pending = ctx.obit_pending.get(subject)
        if pending is not None:
            pending.append((accuser, proceed))
            return
        ctx.obit_pending[subject] = [(accuser, proceed)]
        ctx.obs.registry.inc(m.OBIT_VERIFICATIONS)
        ctx.confirm_dead(
            event.subject_id,
            event.subject_address,
            lambda dead: self._obit_settled(subject, dead),
        )

    def _obit_settled(self, subject: int, dead: bool) -> None:
        ctx = self.ctx
        waiters = ctx.obit_pending.pop(subject, [])
        if dead:
            ctx.obs.registry.inc(m.OBIT_CONFIRMED)
            for _accuser, proceed in waiters:
                proceed()
            return
        ctx.obs.registry.inc(m.OBIT_REFUTED)
        for accuser, _proceed in waiters:
            if accuser is None:
                continue
            strikes = ctx.obit_strikes.get(accuser, 0) + 1
            ctx.obit_strikes[accuser] = strikes
            if (
                strikes >= ctx.config.quarantine_strikes
                and accuser not in ctx.obit_quarantine
            ):
                ctx.obit_quarantine.add(accuser)
                ctx.obs.registry.inc(m.QUARANTINE_ADDITIONS)

    def apply(self, event: EventRecord) -> None:
        ctx = self.ctx
        now = self.runtime.now
        departed = None
        if event.kind is EventKind.LEAVE:
            departed = ctx.peer_list.get(event.subject_id)
        changed = apply_event(ctx.peer_list, event, now, owner_id=ctx.node_id)
        if changed:
            ctx.stats.events_applied += 1
            if departed is not None:
                ctx.estimator.observe_departure(departed, now)
        # Keep the top-node list's levels fresh.
        if event.subject_id in ctx.top_list:
            if event.kind is EventKind.LEAVE:
                ctx.top_list.remove(event.subject_id)
            else:
                ctx.top_list.merge([
                    Pointer(
                        node_id=event.subject_id,
                        address=event.subject_address,
                        level=event.subject_level,
                        attached_info=event.attached_info,
                        last_refresh=now,
                        last_event_seq=event.seq,
                    )
                ])

    def _copy_to_recent_downloads(self, event: EventRecord, now: float) -> None:
        """Copy an applied event to requesters we recently served a §4.3
        download (DESIGN.md §8).

        A joiner is in nobody's audience until its JOIN multicast has been
        applied network-wide, so an event whose dissemination completes
        inside that window never reaches it: the downloaded snapshot keeps
        e.g. a dead node's pointer that no one else holds — and since ring
        views now disagree, no one ever probes it on the joiner's behalf.
        Forwarding what we apply during the grace window closes the race.
        Called from the fresh-receipt sites (first sight of the event per
        ``seen_events``), not gated on whether the event changed our own
        list: a server that detected the failure itself removed the
        pointer *before* the obituary existed, yet its requester still
        needs the copy.  Copies are fire-and-forget ``event-copy``
        messages, NOT ``mcast``: an mcast receipt marks the event seen,
        and a seen event makes the receiver ack any later tree delivery
        as a duplicate *without forwarding* — a copy that entered
        ``seen_events`` would black-hole whatever subtree the real tree
        later routes through the joiner.
        """
        ctx = self.ctx
        if not ctx.recent_downloads:
            return
        grace = ctx.config.download_grace
        ctx.recent_downloads = [
            entry for entry in ctx.recent_downloads if now - entry[1] <= grace
        ]
        if not ctx.alive:
            return
        for address, _served in ctx.recent_downloads:
            if address == event.subject_address or address == ctx.address:
                continue
            self.runtime.send(
                Message(
                    ctx.address,
                    address,
                    "event-copy",
                    payload=event,
                    size_bits=ctx.config.event_message_bits,
                )
            )

    def on_event_copy(self, msg: Message) -> None:
        """Apply a download-grace copy.

        No ack, no relaying, no onward copying (copies do not chain, so
        mutual download servers cannot ping-pong one), and — critically —
        no ``seen_events`` marking: the real tree delivery, if one comes,
        must still look fresh so its subtree gets forwarded.  Re-applying
        is harmless because events are sequence-gated.
        """
        ctx = self.ctx
        event: EventRecord = msg.payload
        if event.subject_id.value == ctx.node_id.value:
            return
        if ctx.seen_events.get(event.subject_id.value, -1) >= event.seq:
            return
        self._believe(
            event, msg.src, strike=False, proceed=lambda: self.apply(event)
        )

    # -- report path -------------------------------------------------------

    def report_event(self, event: EventRecord, _attempt: int = 0, trace=None) -> None:
        """Deliver ``event`` to a top node for multicast (§4.1/§4.5).

        ``trace`` (optional span context) ties the report — and the
        multicast it triggers — to the causing operation's trace.
        """
        ctx = self.ctx
        obs = ctx.obs
        if event.subject_id.value == ctx.node_id.value:
            ctx.stats.events_originated += 1
        if ctx.is_top:
            # A top node is its own multicast root (this also covers a top
            # node announcing its own leave: alive is already False then).
            self.start_multicast(event, trace=trace)
            return
        top = ctx.top_list.choose(ctx.rng)
        if top is None:
            self._report_fallback(event, _attempt, trace)
            return
        ctx.stats.reports_sent += 1
        obs.registry.inc(m.REPORT_SENT)
        span: Optional[Span] = None
        if obs.enabled:
            span = obs.start(
                "report",
                self.runtime.now,
                parent=trace,
                kind=event.kind.name,
                subject=str(event.subject_address),
                top=str(top.address),
                attempt=_attempt,
            )
        msg = Message(
            ctx.address,
            top.address,
            "report",
            payload=event,
            size_bits=ctx.config.event_message_bits,
            trace=span.ref() if span is not None else trace,
        )

        def replied(reply: Message) -> None:
            if span is not None:
                obs.end(span, self.runtime.now)
            ctx.top_list.merge(
                [p for p in reply.payload if p.node_id.value != ctx.node_id.value]
            )

        def timed_out() -> None:
            if span is not None:
                obs.end(span, self.runtime.now, "timeout")
            self._report_retry(event, top, _attempt, trace)

        self.runtime.request(
            msg,
            timeout=ctx.config.report_timeout,
            on_reply=replied,
            on_timeout=timed_out,
        )

    def _report_retry(
        self, event: EventRecord, dead_top: Pointer, attempt: int, trace=None
    ) -> None:
        ctx = self.ctx
        ctx.top_list.remove(dead_top.node_id)
        if attempt + 1 >= 3 * ctx.config.top_list_size:
            ctx.stats.reports_failed += 1
            ctx.obs.registry.inc(m.REPORT_FAILED)
            return
        self.report_event(event, _attempt=attempt + 1, trace=trace)

    def _report_fallback(self, event: EventRecord, attempt: int, trace=None) -> None:
        """§4.5: when every top-node pointer is stale, ask a peer for its
        top-node list as a substitution."""
        ctx = self.ctx
        if attempt >= 3 * ctx.config.top_list_size:
            ctx.stats.reports_failed += 1
            ctx.obs.registry.inc(m.REPORT_FAILED)
            return
        peers = [p for p in ctx.peer_list if p.node_id.value != ctx.node_id.value]
        if not peers:
            ctx.stats.reports_failed += 1
            ctx.obs.registry.inc(m.REPORT_FAILED)
            return
        peer = peers[int(ctx.rng.integers(0, len(peers)))]
        msg = Message(
            ctx.address, peer.address, "get-topnodes", size_bits=ctx.config.ack_bits
        )
        self.runtime.request(
            msg,
            timeout=ctx.config.report_timeout,
            on_reply=lambda reply: (
                ctx.top_list.merge(
                    [p for p in reply.payload if p.node_id.value != ctx.node_id.value]
                ),
                self.report_event(event, _attempt=attempt + 1, trace=trace),
            ),
            on_timeout=lambda: self._report_fallback(event, attempt + 1, trace),
        )

    # -- serving -----------------------------------------------------------

    def on_report(self, msg: Message) -> None:
        ctx = self.ctx
        obs = ctx.obs
        event: EventRecord = msg.payload
        ctx.stats.reports_served += 1
        obs.registry.inc(m.REPORT_SERVED)
        if not ctx.is_top:
            # Stale top-node pointer at the reporter: we are no longer a
            # top node.  Ack with our *current* top-node list so the
            # reporter heals (§4.5), and relay the event upward ourselves.
            piggyback = [p.copy() for p in ctx.top_list.pointers()]
            self.runtime.send(
                msg.make_reply(
                    "report-ack",
                    payload=piggyback,
                    size_bits=max(1, len(piggyback)) * ctx.config.pointer_bits,
                )
            )
            subject_value = event.subject_id.value
            if (
                ctx.relayed_reports.get(subject_value, -1) < event.seq
                and ctx.seen_events.get(subject_value, -1) < event.seq
            ):
                # Mark *relayed* (not seen!) before relaying, so cycles
                # through other stale "tops" terminate at the first
                # revisit while the eventual tree delivery still looks
                # fresh and gets forwarded — we are ourselves an interior
                # tree node for this event's audience.
                ctx.relayed_reports[subject_value] = event.seq

                def apply_and_relay() -> None:
                    self.apply(event)
                    relay: Optional[Span] = None
                    if obs.enabled:
                        relay = obs.instant(
                            "report.relay",
                            self.runtime.now,
                            parent=msg.trace,
                            kind=event.kind.name,
                            subject=str(event.subject_address),
                        )
                    self.report_event(
                        event, trace=relay.ref() if relay is not None else msg.trace
                    )

                self._believe(event, msg.src, strike=True, proceed=apply_and_relay)
            return
        # Piggyback t-1 pointers to top nodes of the reporter's part (§4.5):
        # our own group members (we are a top node of that part).
        piggyback = [
            p.copy()
            for p in ctx.peer_list.group_members()
            if p.node_id.value != ctx.node_id.value
        ][: ctx.config.top_list_size - 1] + [ctx.self_pointer()]
        self.runtime.send(
            msg.make_reply(
                "report-ack",
                payload=piggyback,
                size_bits=len(piggyback) * ctx.config.pointer_bits,
            )
        )
        if ctx.seen_events.get(event.subject_id.value, -1) >= event.seq:
            return

        def disseminate() -> None:
            # Re-check: a duplicate report may have multicast this event
            # while the verification probes were in flight.
            if ctx.seen_events.get(event.subject_id.value, -1) >= event.seq:
                return
            self.start_multicast(event, trace=msg.trace)

        self._believe(event, msg.src, strike=True, proceed=disseminate)

    def on_get_topnodes(self, msg: Message) -> None:
        ctx = self.ctx
        self.runtime.send(
            msg.make_reply(
                "topnodes",
                payload=[p.copy() for p in ctx.top_list.pointers()],
                size_bits=max(1, len(ctx.top_list)) * ctx.config.pointer_bits,
            )
        )

    def on_bridge_subscribe(self, msg: Message) -> None:
        ctx = self.ctx
        ptr, propagate = msg.payload
        fresh = ptr.node_id.value not in ctx.bridge_subscribers
        # Copy: with an in-memory transport ``ptr`` is the subscriber's
        # live Pointer object; storing it directly would couple the two
        # nodes' state outside the message fabric (the PR 2 shared-Pointer
        # bug class, now caught statically by ISO001).
        ctx.bridge_subscribers[ptr.node_id.value] = ptr.copy()
        self.runtime.send(msg.make_reply("bridge-ack", size_bits=ctx.config.ack_bits))
        if propagate and fresh:
            # Every top of this part roots multicasts, so the whole top
            # group must carry the subscription (one idempotent hop; group
            # members do not re-propagate).
            for peer in ctx.peer_list.group_members():
                if peer.node_id.value == ctx.node_id.value:
                    continue
                self.runtime.send(
                    Message(
                        ctx.address,
                        peer.address,
                        "bridge-subscribe",
                        payload=(ptr, False),
                        size_bits=ctx.config.pointer_bits,
                    )
                )
