"""Tree-based multicast (§4.2, figure 4).

The dissemination is a binomial broadcast over nodeId bit positions,
restricted to the subject's audience set:

    at step ``s`` every informed node sends the event to another node
    whose nodeId has the same first ``s`` bits and a different
    ``(s+1)``-th bit, choosing **the target with the highest level**
    (smallest level value) among the possibilities, and skipping bit
    positions with no candidate.

Why highest-level-first makes the broadcast complete (the invariant our
property tests check): off the subject's prefix path every remaining
audience member already shares the forwarder's prefix, so it is in the
forwarder's peer list; on the prefix path, choosing the strongest
candidate guarantees the chosen relay's eigenstring is a prefix of every
remaining member's id, so the relay's peer list covers its whole
responsibility.  Consequently, with no failures each audience member
receives the event exactly once (redundancy r = 1) and the root's
out-degree is about ``log2 N``.

Reliability (§4.2): every multicast message is acknowledged; after
``multicast_attempts`` unanswered sends the stale pointer is removed from
the peer list and a new target is chosen for the same bit position.

This module has two layers:

* :func:`plan_tree` — the pure planner (no failures, no timing), used by
  tests, the worked figure examples, and the scalable engine's delay model;
* :class:`MulticastForwarder` — the runtime component a node embeds, doing
  the ack/retry/redirect dance over a real transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import ProtocolConfig
from repro.core.events import EventRecord
from repro.core.nodeid import NodeId
from repro.core.peerlist import PeerList
from repro.core.pointer import Pointer


# ---------------------------------------------------------------------------
# Pure planner
# ---------------------------------------------------------------------------


@dataclass
class TreeNode:
    """One delivery in a planned multicast tree."""

    node_id: NodeId
    level: int
    depth: int  # tree depth (number of forwarding hops from the root)
    start_bit: int  # the bit position this node forwards from
    children: List["TreeNode"] = field(default_factory=list)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def plan_tree(
    root_id: NodeId,
    root_level: int,
    subject_id: NodeId,
    members: Dict[int, Tuple[NodeId, int]],
    start_bit: int = 0,
) -> TreeNode:
    """Plan the failure-free multicast tree.

    ``members`` maps id value -> (NodeId, level) for every live node (the
    planner derives each relay's knowledge from the global membership — a
    relay at level l knows exactly the members sharing its first l bits,
    which is what a correct peer list contains).

    Returns the tree rooted at ``root_id``; every audience member of
    ``subject_id`` appears exactly once (verified by tests).
    """
    bits = subject_id.bits

    def knows(local: NodeId, local_level: int, other: NodeId) -> bool:
        return local.shares_prefix(other, local_level)

    def in_audience(nid: NodeId, lvl: int) -> bool:
        return nid.shares_prefix(subject_id, lvl)

    def build(local: NodeId, local_level: int, depth: int, s: int, pool: Dict[int, Tuple[NodeId, int]]) -> TreeNode:
        node = TreeNode(local, local_level, depth, s)
        pool.pop(local.value, None)
        for b in range(s, bits):
            candidates = [
                (nid, lvl)
                for nid, lvl in pool.values()
                if knows(local, local_level, nid)
                and nid.shares_prefix(local, b)
                and nid.bit(b) != local.bit(b)
            ]
            if not candidates:
                continue
            target_id, target_level = min(
                candidates, key=lambda c: (c[1], c[0].value)
            )
            child = build(target_id, target_level, depth + 1, b + 1, pool)
            node.children.append(child)
        return node

    pool = {
        v: (nid, lvl)
        for v, (nid, lvl) in members.items()
        if in_audience(nid, lvl) and nid.value != subject_id.value
    }
    return build(root_id, root_level, 0, start_bit, pool)


def tree_stats(root: TreeNode) -> Dict[str, float]:
    """Reach, max depth, and root out-degree of a planned tree."""
    nodes = list(root.walk())
    return {
        "reach": len(nodes),
        "max_depth": max(n.depth for n in nodes),
        "root_out_degree": len(root.children),
    }


# ---------------------------------------------------------------------------
# Runtime forwarder
# ---------------------------------------------------------------------------


class MulticastForwarder:
    """The per-node runtime half of the multicast protocol.

    The owner node calls :meth:`forward` when it originates or relays an
    event.  For every bit position the forwarder picks the strongest
    candidate from the owner's peer list and performs a reliable send:
    up to ``config.multicast_attempts`` tries, each with an ack timeout;
    exhaustion removes the pointer (*"turn back to line (3)"*) and redirects
    to a freshly chosen candidate for the same bit position.

    The forwarder is transport-agnostic: the owner injects ``send_fn``
    which must deliver ``(event, next_bit)`` to a target address and call
    back with success/failure.
    """

    def __init__(
        self,
        config: ProtocolConfig,
        local_id: NodeId,
        peer_list: PeerList,
        send_fn: Callable[
            [Pointer, EventRecord, int, Callable[[bool], None], Optional[tuple]], None
        ],
        on_stale_pointer: Optional[Callable[[Pointer, Optional[tuple]], None]] = None,
        on_redirect: Optional[
            Callable[[Pointer, Pointer, int, Optional[tuple]], None]
        ] = None,
    ):
        self.config = config
        self.local_id = local_id
        self.peer_list = peer_list
        self._send_fn = send_fn
        self._on_stale = on_stale_pointer
        self._on_redirect = on_redirect
        # Statistics
        self.forwards = 0
        self.redirects = 0
        self.stale_removed = 0

    def forward(self, event: EventRecord, start_bit: int, trace=None) -> int:
        """Forward ``event`` for all bit positions from ``start_bit``.

        With ``multicast_redundancy`` r > 1, each bit position gets up to
        r targets (strongest first); receivers deduplicate by event
        sequence, so redundancy costs bandwidth but covers relay failures
        mid-dissemination (§2's ``r`` knob).  Returns the number of sends
        initiated (the out-degree).

        ``trace`` is the forwarding node's span context (a
        ``repro.obs.trace.SpanRef`` or ``None``), threaded through every
        send, stale-removal, and redirect so the owner can attribute them
        to the multicast's causal tree.  It never influences forwarding.
        """
        out_degree = 0
        excluded: set = set()
        for bit in range(start_bit, self.local_id.bits):
            for target in self._choose_n(
                event, bit, excluded, self.config.multicast_redundancy
            ):
                out_degree += 1
                excluded.add(target.node_id.value)
                self._reliable_send(
                    event, bit, target, self.config.multicast_attempts, excluded, trace
                )
        return out_degree

    # -- internals -----------------------------------------------------------

    def _candidates(self, event: EventRecord, bit: int, excluded: set) -> List[Pointer]:
        candidates = self.peer_list.multicast_candidates(
            self.local_id, event.subject_id, bit
        )
        return [c for c in candidates if c.node_id.value not in excluded]

    def _choose(self, event: EventRecord, bit: int, excluded: set) -> Optional[Pointer]:
        return self.peer_list.strongest(self._candidates(event, bit, excluded))

    def _choose_n(
        self, event: EventRecord, bit: int, excluded: set, n: int
    ) -> List[Pointer]:
        """The ``n`` strongest distinct candidates for one bit position."""
        pool = self._candidates(event, bit, excluded)
        pool.sort(key=lambda p: (p.level, p.node_id.value))
        return pool[:n]

    def _reliable_send(
        self,
        event: EventRecord,
        bit: int,
        target: Pointer,
        attempts_left: int,
        excluded: set,
        trace=None,
    ) -> None:
        self.forwards += 1

        def on_result(ok: bool) -> None:
            if ok:
                return
            if attempts_left > 1:
                self._reliable_send(
                    event, bit, target, attempts_left - 1, excluded, trace
                )
                return
            # Stale pointer: remove and redirect (§4.2).
            removed = self.peer_list.remove(target.node_id)
            excluded.add(target.node_id.value)
            if removed is not None:
                self.stale_removed += 1
                if self._on_stale is not None:
                    self._on_stale(removed, trace)
            replacement = self._choose(event, bit, excluded)
            if replacement is not None:
                self.redirects += 1
                if self._on_redirect is not None:
                    self._on_redirect(target, replacement, bit, trace)
                self._reliable_send(
                    event, bit, replacement, self.config.multicast_attempts,
                    excluded, trace,
                )

        self._send_fn(target, event, bit + 1, on_result, trace)
